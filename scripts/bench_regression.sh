#!/usr/bin/env bash
# Re-runs the benchmark sweeps and diffs them against the committed
# baselines.
#
# Solver section (BENCH_solver.json): fails on any deterministic-counter
# mismatch, >20% wall-time regression (rows over 250 ms), or a blown
# --budget-ms. Extra flags are forwarded to solver_scale verbatim.
#
# Runtime section (BENCH_runtime.json): re-runs the threaded-runtime
# smoke sweep — both transport backends, in-process channels and
# loopback-TCP sockets — and diffs the cells it covers against the
# committed full sweep. A row's identity includes its transport, so
# socket cells gate against socket baselines only: commits and
# twin-replay status exact, >20% wall-time regression (rows over
# 250 ms) fails. Any twin divergence fails on its own, baseline or not.
#
# Usage: scripts/bench_regression.sh [--max-n N] [--budget-ms MS]
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE="BENCH_solver.json"
if [[ ! -f "$BASELINE" ]]; then
    echo "bench_regression: missing committed baseline $BASELINE" >&2
    exit 1
fi

RUNTIME_BASELINE="BENCH_runtime.json"
if [[ ! -f "$RUNTIME_BASELINE" ]]; then
    echo "bench_regression: missing committed baseline $RUNTIME_BASELINE" >&2
    exit 1
fi

FRESH="$(mktemp /tmp/BENCH_solver.fresh.XXXXXX.json)"
RUNTIME_FRESH="$(mktemp /tmp/BENCH_runtime.fresh.XXXXXX.json)"
trap 'rm -f "$FRESH" "$RUNTIME_FRESH"' EXIT

cargo run --release -p swiper-bench --bin solver_scale -- \
    --out "$FRESH" --diff "$BASELINE" "$@"

cargo run --release -p swiper-bench --bin runtime_scale -- \
    --ci-smoke --transport both --out "$RUNTIME_FRESH" --diff "$RUNTIME_BASELINE"
