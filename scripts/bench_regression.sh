#!/usr/bin/env bash
# Re-runs the benchmark sweeps and diffs them against the committed
# baselines.
#
# Solver section (BENCH_solver.json): fails on any deterministic-counter
# mismatch, >20% wall-time regression (rows over 250 ms), or a blown
# --budget-ms. Extra flags are forwarded to solver_scale verbatim.
#
# Runtime section (BENCH_runtime.json): re-runs the threaded-runtime
# smoke sweep — both transport backends, in-process channels and
# loopback-TCP sockets — and diffs the cells it covers against the
# committed full sweep. A row's identity includes its transport, so
# socket cells gate against socket baselines only: commits and
# twin-replay status exact, >20% wall-time regression (rows over
# 250 ms) fails. Any twin divergence fails on its own, baseline or not.
#
# Accelerator-counter section: parses the fresh solver rows exactly
# (cursor_advances / probes_saved / coarse_cert_hits are deterministic
# counters, already diffed above) and additionally fails if the certified
# n=1e6 warm replay records certificate_skips + coarse_cert_hits == 0 —
# the coarse certificate index has stopped hitting at scale, which is
# exactly the regression this pipeline exists to catch.
#
# Epochs section (BENCH_epochs.json): replays the chain × churn
# reconfiguration scenarios and diffs the seed-deterministic solver-work
# counters (epochs, cert_skips, warm/plain/cold dp, hit rate) exactly;
# `bracket_divergence` is informational and never gated. The epochs bin's
# own --ci-smoke gates (nonzero hit rate / cert skips at 1% churn) apply
# on top.
#
# Gossip section (BENCH_gossip.json): re-runs the overlay dissemination
# sweep (--ci-smoke drops the two slow cells) and diffs the covered rows:
# simulator counters exact, threaded rows on reach + twin status, wall
# with tolerance. Every fresh row is additionally held to the acceptance
# invariants — reach 100%, and overlay msgs/delivery strictly below the
# n²-flood baseline of n at n >= 256 — baseline present or not.
#
# Usage: scripts/bench_regression.sh [--max-n N] [--budget-ms MS]
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE="BENCH_solver.json"
if [[ ! -f "$BASELINE" ]]; then
    echo "bench_regression: missing committed baseline $BASELINE" >&2
    exit 1
fi

RUNTIME_BASELINE="BENCH_runtime.json"
if [[ ! -f "$RUNTIME_BASELINE" ]]; then
    echo "bench_regression: missing committed baseline $RUNTIME_BASELINE" >&2
    exit 1
fi

EPOCHS_BASELINE="BENCH_epochs.json"
if [[ ! -f "$EPOCHS_BASELINE" ]]; then
    echo "bench_regression: missing committed baseline $EPOCHS_BASELINE" >&2
    exit 1
fi

GOSSIP_BASELINE="BENCH_gossip.json"
if [[ ! -f "$GOSSIP_BASELINE" ]]; then
    echo "bench_regression: missing committed baseline $GOSSIP_BASELINE" >&2
    exit 1
fi

FRESH="$(mktemp /tmp/BENCH_solver.fresh.XXXXXX.json)"
RUNTIME_FRESH="$(mktemp /tmp/BENCH_runtime.fresh.XXXXXX.json)"
EPOCHS_FRESH="$(mktemp /tmp/BENCH_epochs.fresh.XXXXXX.json)"
GOSSIP_FRESH="$(mktemp /tmp/BENCH_gossip.fresh.XXXXXX.json)"
trap 'rm -f "$FRESH" "$RUNTIME_FRESH" "$EPOCHS_FRESH" "$GOSSIP_FRESH"' EXIT

cargo run --release -p swiper-bench --bin solver_scale -- \
    --out "$FRESH" --diff "$BASELINE" "$@"

# Exact parse of one accelerator counter from a solver row: row identity by
# case + n, counter by key. The row format is one JSON object per line, so
# a line-oriented extraction is exact, not approximate.
counter_of() { # counter_of <case> <n> <key>
    sed -n "s/.*\"case\":\"$1\",\"n\":$2,.*\"$3\":\([0-9]*\).*/\1/p" "$FRESH" | head -n 1
}

CERT_ROW_PRESENT="$(grep -c "\"case\":\"certified\",\"n\":1000000," "$FRESH" || true)"
if [[ "$CERT_ROW_PRESENT" -gt 0 ]]; then
    SKIPS="$(counter_of certified 1000000 certificate_skips)"
    COARSE="$(counter_of certified 1000000 coarse_cert_hits)"
    CURSOR="$(counter_of certified 1000000 cursor_advances)"
    SAVED="$(counter_of certified 1000000 probes_saved)"
    for v in SKIPS COARSE CURSOR SAVED; do
        if [[ -z "${!v}" ]]; then
            echo "bench_regression: could not parse $v from the certified n=1e6 row" >&2
            exit 1
        fi
    done
    echo "certified n=1e6: certificate_skips=$SKIPS coarse_cert_hits=$COARSE" \
         "cursor_advances=$CURSOR probes_saved=$SAVED"
    if [[ "$((SKIPS + COARSE))" -eq 0 ]]; then
        echo "bench_regression: certified n=1e6 warm replay settled zero checks from" \
             "certificates (certificate_skips + coarse_cert_hits == 0) — the coarse" \
             "certificate index stopped hitting at scale" >&2
        exit 1
    fi
else
    echo "bench_regression: sweep capped below n=1e6; skipping the certificate-hit gate"
fi

cargo run --release -p swiper-bench --bin runtime_scale -- \
    --ci-smoke --transport both --out "$RUNTIME_FRESH" --diff "$RUNTIME_BASELINE"

cargo run --release -p swiper-bench --bin epochs -- \
    --ci-smoke --quiet --out "$EPOCHS_FRESH" --diff "$EPOCHS_BASELINE"

cargo run --release -p swiper-bench --bin gossip_scale -- \
    --ci-smoke --out "$GOSSIP_FRESH" --diff "$GOSSIP_BASELINE"
