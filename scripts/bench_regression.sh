#!/usr/bin/env bash
# Re-runs the solver_scale sweep and diffs it against the committed
# BENCH_solver.json. Fails on any deterministic-counter mismatch, >20%
# wall-time regression (rows over 250 ms), or a blown --budget-ms.
#
# Usage: scripts/bench_regression.sh [--max-n N] [--budget-ms MS]
# Extra flags are forwarded to the solver_scale binary verbatim.
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE="BENCH_solver.json"
if [[ ! -f "$BASELINE" ]]; then
    echo "bench_regression: missing committed baseline $BASELINE" >&2
    exit 1
fi

FRESH="$(mktemp /tmp/BENCH_solver.fresh.XXXXXX.json)"
trap 'rm -f "$FRESH"' EXIT

cargo run --release -p swiper-bench --bin solver_scale -- \
    --out "$FRESH" --diff "$BASELINE" "$@"
