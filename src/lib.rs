//! # swiper — weighted distributed protocols via weight reduction
//!
//! Facade crate for the workspace reproducing *"Swiper: a new paradigm for
//! efficient weighted distributed protocols"* (Tonkikh & Freitas,
//! PODC 2024, arXiv:2307.15561). It re-exports the solver core and gives
//! each substrate a stable module path:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `swiper-core` | WR/WQ/WS problems, the Swiper solver, verifiers, virtual users |
//! | [`field`] | `swiper-field` | `GF(2^8)`, `F_{2^61-1}`, polynomials |
//! | [`erasure`] | `swiper-erasure` | Reed–Solomon, Welch–Berlekamp, online error correction |
//! | [`crypto`] | `swiper-crypto` | Shamir, VSS, simulated threshold crypto, Merkle, hash |
//! | [`net`] | `swiper-net` | deterministic async network simulator, epoch-schedule drivers |
//! | [`protocols`] | `swiper-protocols` | Bracha, AVID, ECBC, beacon, ABA, black-box, SSLE, checkpoints, SMR |
//! | [`weights`] | `swiper-weights` | chain replicas, generators, bootstrap, stats, the epoch reconfiguration loop |
//!
//! ## Quick start
//!
//! ```
//! use swiper::{Ratio, Swiper, Weights, WeightRestriction};
//!
//! # fn main() -> Result<(), swiper::core::CoreError> {
//! let stake = Weights::new(vec![3_400, 2_100, 900, 420, 77])?;
//! let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2))?;
//! let solution = Swiper::new().solve_restriction(&stake, &params)?;
//! println!("tickets: {:?}", solution.assignment.as_slice());
//! assert!(swiper::core::verify_restriction(&stake, &solution.assignment, &params)?);
//! # Ok(())
//! # }
//! ```
//!
//! ## Epoch machinery
//!
//! Long-lived weighted deployments reconfigure across *epochs*: stake
//! moves, the solver re-runs, and live protocol instances splice the
//! change in rather than tearing down. The workhorse types are exported
//! at the crate root:
//!
//! * [`EpochEvent`] — the weight-bearing reconfiguration unit (epoch
//!   number, [`TicketDelta`], the new per-party [`Weights`], a
//!   fingerprint of the previous ones, and a deterministic rekey seed);
//!   `net::Protocol::on_reconfigure` consumes it, and
//!   `weights::epoch::Reconfigurator` emits it per epoch and track.
//! * [`StableId`] / [`VirtualUsers`] — the `(party, offset)` identities
//!   that survive renumbering deltas, and the dense mapping of one epoch.
//! * [`Roster`] — one replica's shared, epoch-aware identity directory:
//!   the black-box wrapper and the nominal automata it hosts resolve and
//!   migrate identities through one atomically-spliced mapping.
//! * [`IdentityView`] — how a protocol maps delivery-time sender ids to
//!   stable identities (fixed party set vs. roster-backed virtual users).
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the binaries regenerating the paper's tables and
//! figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use swiper_core as core;
pub use swiper_crypto as crypto;
pub use swiper_erasure as erasure;
pub use swiper_field as field;
pub use swiper_net as net;
pub use swiper_protocols as protocols;
pub use swiper_weights as weights;

// The workhorse types at the crate root for convenience.
pub use swiper_core::{
    CachingOracle, CheckParams, EpochEvent, FamilyMember, FullOracle, Instance, LinearOracle,
    Mode, PartyId, Ratio, Solution, SolveStats, StableId, Swiper, TicketAssignment,
    TicketDelta, ValidityOracle, Verdict, VirtualUsers, WeightQualification, WeightRestriction,
    WeightSeparation, Weights,
};
pub use swiper_protocols::quorum::{IdentityView, Roster};
