//! The gossip overlay as a dissemination backend, end to end: weighted
//! Bracha rides `OverlayNode` instead of full-mesh expansion, on both
//! substrates (seeded simulator sweeps; threaded runtime over channel and
//! socket transports with bit-identical twin replay), under sabotage
//! (mangled eager copies recovered via graft), and with detected churn
//! composing into the epoch machinery through the `Reconfigurator`.

use std::sync::{Arc, Mutex};

use swiper::net::adversary::{Mangler, Silent};
use swiper::net::{
    ChurnLedger, DelayModel, OverlayCodec, OverlayConfig, OverlayMsg, OverlayNode,
    OverlayStats, Protocol, SendNodes, Simulation, SocketTransport, ThreadedRuntime,
};
use swiper::protocols::bracha::{BrachaConfig, BrachaMsg, BrachaNode};
use swiper::protocols::wire::BrachaCodec;
use swiper::weights::epoch::{Reconfigurator, Setting};
use swiper::{Ratio, Swiper, WeightRestriction, Weights};

const PAYLOAD: &[u8] = b"overlay payload";

/// Skewed-but-bounded stake: every party holds between 1 and 97.
fn stake(n: usize) -> Weights {
    Weights::new((0..n as u64).map(|p| 1 + (p * 7919) % 97).collect()).unwrap()
}

fn bracha_inner(me: usize, weights: &Weights) -> Box<dyn Protocol<Msg = BrachaMsg> + Send> {
    let config = BrachaConfig::weighted(weights.clone());
    if me == 0 {
        Box::new(BrachaNode::sender(config, 0, PAYLOAD.to_vec()))
    } else {
        Box::new(BrachaNode::new(config, 0))
    }
}

/// Weighted Bracha (node 0 the sender) wrapped in the overlay, one shared
/// stats block across the fleet.
fn overlay_bracha(
    n: usize,
    seed: u64,
    cfg: &OverlayConfig,
    stats: Option<&Arc<Mutex<OverlayStats>>>,
) -> SendNodes<OverlayMsg<BrachaMsg>> {
    let weights = stake(n);
    (0..n)
        .map(|me| {
            let mut node = OverlayNode::new(
                bracha_inner(me, &weights),
                weights.clone(),
                cfg.clone(),
                seed,
            );
            if let Some(s) = stats {
                node = node.with_stats(Arc::clone(s));
            }
            Box::new(node) as _
        })
        .collect()
}

/// Drops the `Send` bound so the same constructors feed sim and replay.
fn desend<M>(nodes: SendNodes<M>) -> Vec<Box<dyn Protocol<Msg = M>>> {
    nodes.into_iter().map(|b| b as Box<dyn Protocol<Msg = M>>).collect()
}

/// Reach sweeps on the simulator: every node delivers the weighted Bracha
/// payload over the overlay, every origination reaches all `n` nodes, and
/// the measured msgs/delivery stays well below `n` — the per-delivery cost
/// of the n²-flood baseline (reliable full-mesh dissemination, where each
/// node forwards each new payload to all `n` peers).
#[test]
fn weighted_bracha_reaches_everyone_over_the_overlay() {
    for (n, seeds) in [(64usize, &[1u64, 42, 1337][..]), (256, &[7u64][..])] {
        for &seed in seeds {
            let stats = Arc::new(Mutex::new(OverlayStats::default()));
            let report = Simulation::new(
                desend(overlay_bracha(n, seed, &OverlayConfig::default(), Some(&stats))),
                seed,
            )
            .with_delay(DelayModel::Uniform(1, 20))
            .with_max_events(50_000_000)
            .run();
            for node in 0..n {
                assert_eq!(
                    report.outputs[node].as_deref(),
                    Some(PAYLOAD),
                    "node {node} missed the payload (n {n} seed {seed})"
                );
            }
            let s = stats.lock().unwrap();
            assert_eq!(
                s.deliveries,
                s.broadcasts * n as u64,
                "every origination must reach all {n} nodes (seed {seed})"
            );
            let msgs_per_delivery =
                report.metrics.total_messages() as f64 / s.deliveries as f64;
            assert!(
                msgs_per_delivery < n as f64,
                "overlay msgs/delivery {msgs_per_delivery:.1} must beat the n²-flood \
                 baseline of {n} (seed {seed})"
            );
        }
    }
}

/// The determinism-twin contract holds for overlay runs: a threaded
/// in-process run records a trace whose simulator replay is bit-identical
/// in outputs and metrics. Timers are scaled up because the runtime clock
/// ticks microseconds where the simulator ticks abstract units.
#[test]
fn overlay_bracha_runtime_run_replays_bit_identically() {
    let make = || overlay_bracha(12, 5, &OverlayConfig::default().scaled_by(500), None);
    let full = ThreadedRuntime::new(make()).with_workers(3).run_traced();
    assert!(!full.trace.is_empty(), "the run must record a trace");
    let twin = full.trace.replay(desend(make())).expect("twin replay must not diverge");
    assert_eq!(twin.outputs, full.report.outputs, "outputs must be bit-identical");
    assert_eq!(twin.metrics, full.report.metrics, "metrics must be bit-identical");
    for (node, out) in full.report.outputs.iter().enumerate() {
        assert_eq!(out.as_deref(), Some(PAYLOAD), "node {node} missed the payload");
    }
}

/// The same contract across a real wire: every overlay frame is encoded by
/// `OverlayCodec<BrachaCodec>`, crosses loopback TCP, decodes on the far
/// side — and the trace still replays bit-identically, with the message
/// conservation law exact.
#[test]
fn overlay_bracha_socket_run_replays_bit_identically() {
    let make = || overlay_bracha(10, 8, &OverlayConfig::default().scaled_by(500), None);
    let nodes = make();
    let transport: SocketTransport<OverlayMsg<BrachaMsg>, OverlayCodec<BrachaCodec>> =
        SocketTransport::loopback(nodes.len()).expect("loopback sockets");
    let probe = transport.clone();
    let full =
        ThreadedRuntime::new(nodes).with_transport(transport).with_workers(3).run_traced();
    assert!(!full.trace.is_empty(), "the run must record a trace");
    assert_eq!(probe.decode_errors(), 0, "every frame must decode");
    assert_eq!(
        full.report.metrics.total_messages(),
        full.report.metrics.delivered_messages() + full.dropped,
        "every sent message is delivered or drop-accounted"
    );
    let twin = full.trace.replay(desend(make())).expect("twin replay must not diverge");
    assert_eq!(twin.outputs, full.report.outputs, "outputs must be bit-identical");
    assert_eq!(twin.metrics, full.report.metrics, "metrics must be bit-identical");
}

/// Sabotage the eager path and watch the lazy path repair it: node 1
/// downgrades the *first* outgoing eager copy of every origination to a
/// bare IHAVE (later copies — the graft replies — pass). On a ring-only
/// overlay (active degree 1) the victim's sole eager in-link is starved
/// for every single origination, so delivery *requires* the IHAVE→graft
/// recovery loop — and reach must still be 100%.
#[test]
fn mangled_eager_copies_are_recovered_via_graft() {
    for seed in [3u64, 11] {
        let n = 24;
        let weights = stake(n);
        let cfg = OverlayConfig { active_degree: 1, ..OverlayConfig::default() };
        let stats = Arc::new(Mutex::new(OverlayStats::default()));
        let nodes: Vec<Box<dyn Protocol<Msg = OverlayMsg<BrachaMsg>>>> = (0..n)
            .map(|me| {
                let node = OverlayNode::new(
                    bracha_inner(me, &weights),
                    weights.clone(),
                    cfg.clone(),
                    seed,
                )
                .with_stats(Arc::clone(&stats));
                if me == 1 {
                    let mut withheld = std::collections::BTreeSet::new();
                    Box::new(Mangler::new(node, move |to, msg| {
                        if let OverlayMsg::Eager { origin, seq, .. } = &msg {
                            // Self-originations stay intact — sabotage the
                            // relay links, not the payload source.
                            if to != 1usize && withheld.insert((*origin, *seq)) {
                                return Some(OverlayMsg::IHave { origin: *origin, seq: *seq });
                            }
                        }
                        Some(msg)
                    })) as _
                } else {
                    Box::new(node) as _
                }
            })
            .collect();
        let report = Simulation::new(nodes, seed).with_delay(DelayModel::Uniform(1, 20)).run();
        for node in 0..n {
            assert_eq!(
                report.outputs[node].as_deref(),
                Some(PAYLOAD),
                "node {node} missed the payload despite graft recovery (seed {seed})"
            );
        }
        let s = stats.lock().unwrap();
        assert!(s.grafts > 0, "the sabotage must actually force grafts (seed {seed})");
    }
}

/// Churn composes with the epoch machinery instead of bypassing it: a
/// silent node is probed, suspected, confirmed failed by its peers; the
/// shared churn ledger renders a candidate weight snapshot zeroing the
/// failed stake; and feeding that snapshot to the `Reconfigurator` yields
/// an `EpochEvent` whose application retires the party. No honest node is
/// falsely confirmed along the way.
#[test]
fn confirmed_silent_node_churn_feeds_the_reconfigurator() {
    let n = 12;
    let failed = 5usize;
    let weights = Weights::new(vec![30, 25, 20, 15, 10, 8, 7, 6, 5, 4, 3, 2]).unwrap();
    // Enough probe rounds to cover every active peer round-robin, so the
    // silent node is guaranteed a probe from its ring predecessor.
    let cfg = OverlayConfig { probe_rounds: 8, ..OverlayConfig::default() };
    let ledger = Arc::new(Mutex::new(ChurnLedger::new()));
    let stats = Arc::new(Mutex::new(OverlayStats::default()));
    let nodes: Vec<Box<dyn Protocol<Msg = OverlayMsg<BrachaMsg>>>> = (0..n)
        .map(|me| {
            if me == failed {
                Box::new(Silent::new()) as _
            } else {
                Box::new(
                    OverlayNode::new(
                        bracha_inner(me, &weights),
                        weights.clone(),
                        cfg.clone(),
                        21,
                    )
                    .with_stats(Arc::clone(&stats))
                    .with_churn_ledger(Arc::clone(&ledger)),
                ) as _
            }
        })
        .collect();
    let report = Simulation::new(nodes, 21).with_delay(DelayModel::Uniform(1, 20)).run();
    for node in (0..n).filter(|&i| i != failed) {
        assert_eq!(
            report.outputs[node].as_deref(),
            Some(PAYLOAD),
            "honest node {node} must deliver despite the silent party"
        );
    }
    assert!(stats.lock().unwrap().confirmed_failures > 0, "probes must harden into confirms");

    let guard = ledger.lock().unwrap();
    let confirmed = guard.confirmed_by(1);
    assert!(confirmed.contains(&failed), "the silent node is confirmed failed");
    assert!(
        confirmed.iter().all(|&p| p == failed),
        "no honest node may be falsely confirmed: {confirmed:?}"
    );
    let candidate = guard.candidate_weights(&weights, 1).expect("churn renders a snapshot");
    drop(guard);
    assert_eq!(candidate.get(failed), 0, "the candidate snapshot zeroes the failed stake");
    assert_eq!(candidate.get(0), weights.get(0), "honest stake is untouched");

    // The snapshot drives an ordinary reconfiguration epoch.
    let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let mut loop_ = Reconfigurator::new(Swiper::new(), vec![Setting::Restriction(wr)]);
    let genesis = loop_.advance(&weights).expect("genesis epoch");
    assert!(genesis.event(0).is_none(), "the first epoch has no predecessor delta");
    let outcome = loop_.advance(&candidate).expect("churn epoch");
    let event = outcome.event(0).expect("confirmed churn must produce an epoch event");
    let mut live = weights.clone();
    assert!(event.refresh_weights(&mut live), "the event addresses the pre-churn weights");
    assert_eq!(live.get(failed), 0, "applying the event retires the failed party");
    assert_eq!(live.as_slice()[..failed], weights.as_slice()[..failed]);
}
