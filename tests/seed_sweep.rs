//! Seed-sweep fault injection: protocol safety invariants must hold for
//! *every* schedule the deterministic simulator can produce, so we sweep
//! seeds (= delay schedules) with adversaries in the mix and assert the
//! invariants each time. These are the repro-style robustness tests that
//! catch schedule-dependent protocol bugs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper::net::adversary::Silent;
use swiper::net::{DelayModel, Protocol, Simulation};
use swiper::protocols::aba::{AbaMsg, AbaNode, AbaSetup};
use swiper::protocols::bracha::{BrachaConfig, BrachaMsg, BrachaNode, EquivocatingSender};
use swiper::protocols::ecbc::{EcbcConfig, EcbcMsg, EcbcNode, GarbageEchoer};
use swiper::{Ratio, Swiper, WeightRestriction, Weights};

const SEEDS: std::ops::Range<u64> = 0..25;

/// ABA agreement under mixed inputs + a silent party, across 25 schedules
/// and two delay models.
#[test]
fn aba_agreement_across_schedules() {
    let weights = Weights::new(vec![28, 26, 18, 16, 12]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let tickets = Swiper::new().solve_restriction(&weights, &params).unwrap().assignment;
    for seed in SEEDS {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::BiasAgainstLowIds(1, 40)] {
            let setup = AbaSetup::deal(
                weights.clone(),
                &tickets,
                seed,
                &mut StdRng::seed_from_u64(seed),
            );
            let mut nodes: Vec<Box<dyn Protocol<Msg = AbaMsg>>> = Vec::new();
            for i in 0..5 {
                if i == 4 {
                    nodes.push(Box::new(Silent::new())); // 12% silent
                } else {
                    nodes.push(Box::new(AbaNode::new(setup.clone(), i % 2 == 0)));
                }
            }
            let report = Simulation::new(nodes, seed).with_delay(delay).run();
            let decisions: Vec<&Vec<u8>> =
                (0..4).filter_map(|i| report.outputs[i].as_ref()).collect();
            assert_eq!(decisions.len(), 4, "liveness violated at seed {seed} {delay:?}");
            assert!(
                decisions.windows(2).all(|w| w[0] == w[1]),
                "agreement violated at seed {seed} {delay:?}"
            );
        }
    }
}

/// Bracha agreement under an equivocating sender, across schedules: no two
/// honest parties ever deliver different payloads.
#[test]
fn bracha_equivocation_across_schedules() {
    for seed in SEEDS {
        let config = BrachaConfig::nominal(7); // t = 2
        let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
        nodes.push(Box::new(EquivocatingSender { a: b"A".to_vec(), b: b"B".to_vec() }));
        nodes.push(Box::new(Silent::new())); // second Byzantine: silent
        for _ in 2..7 {
            nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, seed).run();
        assert!(
            report.agreement_among(&[2, 3, 4, 5, 6]),
            "equivocation split honest parties at seed {seed}"
        );
    }
}

/// ECBC totality with garbage echoers: whenever any honest party delivers,
/// every honest party delivers the same data, across schedules.
#[test]
fn ecbc_totality_across_schedules() {
    let blob = b"sweep the schedules".to_vec();
    for seed in SEEDS {
        let config = EcbcConfig::nominal(7); // t = 2
        let mut nodes: Vec<Box<dyn Protocol<Msg = EcbcMsg>>> = Vec::new();
        nodes.push(Box::new(EcbcNode::sender(config.clone(), 0, blob.clone())));
        nodes.push(Box::new(GarbageEchoer::new(config.clone(), 0)));
        nodes.push(Box::new(GarbageEchoer::new(config.clone(), 0)));
        for _ in 3..7 {
            nodes.push(Box::new(EcbcNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, seed).run();
        for i in [0usize, 3, 4, 5, 6] {
            assert_eq!(
                report.outputs[i].as_deref(),
                Some(blob.as_slice()),
                "node {i} failed at seed {seed}"
            );
        }
    }
}

/// Solver determinism across platforms is seed-independent by design;
/// stress it by solving the same instance interleaved with unrelated
/// solves (shared state would show up here).
#[test]
fn solver_state_isolation() {
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
    let a = Weights::new(vec![50, 30, 11, 5, 2, 1, 1]).unwrap();
    let b = Weights::new((1..=64u64).map(|i| i * i).collect()).unwrap();
    let first = Swiper::new().solve_restriction(&a, &params).unwrap();
    for _ in 0..10 {
        let _ = Swiper::new().solve_restriction(&b, &params).unwrap();
        let again = Swiper::new().solve_restriction(&a, &params).unwrap();
        assert_eq!(first.assignment, again.assignment);
    }
}
