//! Seed-sweep fault injection: protocol safety invariants must hold for
//! *every* schedule the deterministic simulator can produce, so we sweep
//! seeds (= delay schedules) with adversaries in the mix and assert the
//! invariants each time. These are the repro-style robustness tests that
//! catch schedule-dependent protocol bugs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper::net::adversary::{SelectiveAck, Silent};
use swiper::net::{AdaptiveDelay, DelayModel, EpochedSimulation, Protocol, Simulation};
use swiper::protocols::aba::{AbaMsg, AbaNode, AbaSetup};
use swiper::protocols::avid::{AvidConfig, AvidMsg, AvidNode, TargetedFragmentSender, BOT};
use swiper::protocols::beacon::{BeaconMsg, BeaconNode, BeaconSetup};
use swiper::protocols::blackbox::{BlackBox, BlackBoxConfig, BlackBoxMsg};
use swiper::protocols::bracha::{BrachaConfig, BrachaMsg, BrachaNode, EquivocatingSender};
use swiper::protocols::ecbc::{EcbcConfig, EcbcMsg, EcbcNode, GarbageEchoer};
use swiper::protocols::smr::{ReconfigureMode, SmrInstance};
use swiper::protocols::tight::{TargetedShareSender, TightConfig, TightMsg, TightNode};
use swiper::weights::epoch::{churn, churn_with, ChurnMode, Reconfigurator, Setting};
use swiper::weights::{gen, Chain};
use swiper::{
    CachingOracle, EpochEvent, FullOracle, Instance, Ratio, Swiper, TicketAssignment,
    TicketDelta, WeightQualification, WeightRestriction, Weights,
};

/// Seeds (= delay schedules) swept per test: 25 by default, widened in the
/// nightly CI job via `SWIPER_SWEEP_SEEDS` (e.g. 200). A set-but-invalid
/// value is a loud failure — a silently narrowed nightly sweep would keep
/// reporting green while providing none of its coverage.
fn seeds() -> std::ops::Range<u64> {
    let n = match std::env::var("SWIPER_SWEEP_SEEDS") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("SWIPER_SWEEP_SEEDS={v:?} is not a seed count: {e}")),
        Err(_) => 25,
    };
    0..n
}

/// Proptest case count, scaled with the sweep width so the nightly job
/// also deepens the warm-resolve equivalence proptest (64 cases per PR,
/// `SWIPER_SWEEP_SEEDS` cases when that is larger).
fn sweep_cases() -> u32 {
    u32::try_from(seeds().end).unwrap_or(u32::MAX).max(64)
}

/// ABA agreement under mixed inputs + a silent party, across 25 schedules
/// and two delay models.
#[test]
fn aba_agreement_across_schedules() {
    let weights = Weights::new(vec![28, 26, 18, 16, 12]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let tickets = Swiper::new().solve_restriction(&weights, &params).unwrap().assignment;
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::BiasAgainstLowIds(1, 40)] {
            let setup = AbaSetup::deal(
                weights.clone(),
                &tickets,
                seed,
                &mut StdRng::seed_from_u64(seed),
            );
            let mut nodes: Vec<Box<dyn Protocol<Msg = AbaMsg>>> = Vec::new();
            for i in 0..5 {
                if i == 4 {
                    nodes.push(Box::new(Silent::new())); // 12% silent
                } else {
                    nodes.push(Box::new(AbaNode::new(setup.clone(), i % 2 == 0)));
                }
            }
            let report = Simulation::new(nodes, seed).with_delay(delay).run();
            let decisions: Vec<&Vec<u8>> =
                (0..4).filter_map(|i| report.outputs[i].as_ref()).collect();
            assert_eq!(decisions.len(), 4, "liveness violated at seed {seed} {delay:?}");
            assert!(
                decisions.windows(2).all(|w| w[0] == w[1]),
                "agreement violated at seed {seed} {delay:?}"
            );
        }
    }
}

/// Bracha agreement under an equivocating sender, across schedules: no two
/// honest parties ever deliver different payloads.
#[test]
fn bracha_equivocation_across_schedules() {
    for seed in seeds() {
        let config = BrachaConfig::nominal(7); // t = 2
        let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
        nodes.push(Box::new(EquivocatingSender { a: b"A".to_vec(), b: b"B".to_vec() }));
        nodes.push(Box::new(Silent::new())); // second Byzantine: silent
        for _ in 2..7 {
            nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, seed).run();
        assert!(
            report.agreement_among(&[2, 3, 4, 5, 6]),
            "equivocation split honest parties at seed {seed}"
        );
    }
}

/// ECBC totality with garbage echoers: whenever any honest party delivers,
/// every honest party delivers the same data, across schedules.
#[test]
fn ecbc_totality_across_schedules() {
    let blob = b"sweep the schedules".to_vec();
    for seed in seeds() {
        let config = EcbcConfig::nominal(7); // t = 2
        let mut nodes: Vec<Box<dyn Protocol<Msg = EcbcMsg>>> = Vec::new();
        nodes.push(Box::new(EcbcNode::sender(config.clone(), 0, blob.clone())));
        nodes.push(Box::new(GarbageEchoer::new(config.clone(), 0)));
        nodes.push(Box::new(GarbageEchoer::new(config.clone(), 0)));
        for _ in 3..7 {
            nodes.push(Box::new(EcbcNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, seed).run();
        for i in [0usize, 3, 4, 5, 6] {
            assert_eq!(
                report.outputs[i].as_deref(),
                Some(blob.as_slice()),
                "node {i} failed at seed {seed}"
            );
        }
    }
}

/// Beacon liveness + agreement across schedules: a sub-`f_w` silent party
/// and both delay models. Audited for halt-before-duty alongside
/// `tight`/`avid`: the beacon's duty (broadcasting its own partials) is
/// discharged in `on_start`, and the sweep pins that halting on combine
/// never starves slower parties of the threshold.
#[test]
fn beacon_liveness_across_schedules() {
    let weights = Weights::new(vec![30, 25, 15, 15, 15]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::BiasAgainstLowIds(1, 40)] {
            let setup = BeaconSetup::deal(
                &sol.assignment,
                Ratio::of(1, 2),
                &mut StdRng::seed_from_u64(seed),
            );
            let mut nodes: Vec<Box<dyn Protocol<Msg = BeaconMsg>>> = Vec::new();
            nodes.push(Box::new(Silent::new())); // party 0: 30% < 1/3, silent
            for _ in 1..5 {
                nodes.push(Box::new(BeaconNode::new(setup.clone(), seed)));
            }
            let report = Simulation::new(nodes, seed).with_delay(delay).run();
            for i in 1..5 {
                assert!(
                    report.outputs[i].is_some(),
                    "beacon liveness violated for party {i} at seed {seed} {delay:?}"
                );
            }
            assert!(report.agreement_among(&[1, 2, 3, 4]), "seed {seed} {delay:?}");
        }
    }
}

/// Tight-threshold totality under the targeted-share adversary — the
/// schedule family that caught the halt-before-release bug (a node
/// combining from shares fed only to it, then exiting before its own
/// release duty). Every honest party must certify on every schedule.
#[test]
fn tight_totality_across_schedules() {
    let weights = Weights::new(vec![25, 25, 25, 25]).unwrap();
    let tickets = TicketAssignment::new(vec![2, 2, 1, 2]);
    let cfg = TightConfig::deal(
        weights,
        &tickets,
        Ratio::of(2, 3),
        b"sweep-the-schedules".to_vec(),
        &mut StdRng::seed_from_u64(3),
    );
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::Uniform(1, 64)] {
            let mut nodes: Vec<Box<dyn Protocol<Msg = TightMsg>>> = Vec::new();
            for _ in 0..3 {
                nodes.push(Box::new(TightNode::new(cfg.clone(), true)));
            }
            nodes.push(Box::new(TargetedShareSender::new(cfg.clone(), 0)));
            let report = Simulation::new(nodes, seed).with_delay(delay).run();
            for i in 0..3 {
                assert!(
                    report.outputs[i].is_some(),
                    "tight party {i} starved at seed {seed} {delay:?}"
                );
            }
            assert!(report.agreement_among(&[0, 1, 2]), "seed {seed} {delay:?}");
        }
    }
}

/// AVID totality under the targeted-fragment adversary — the schedule
/// family that caught the halt-before-relay bug (a node decoding from
/// fragments fed only to it, then exiting before its ack/relay duties).
/// Every honest party, the zero-ticket spectator included, must deliver.
#[test]
fn avid_totality_across_schedules() {
    let weights = Weights::new(vec![25, 25, 25, 25]).unwrap();
    let tickets = TicketAssignment::new(vec![2, 2, 0, 1]);
    let config = AvidConfig::weighted(weights, &tickets, Ratio::of(1, 2));
    let blob = b"sweep the retrieval schedules".to_vec();
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::Uniform(1, 64)] {
            let nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = vec![
                Box::new(AvidNode::dealer(config.clone(), 0, blob.clone())),
                Box::new(AvidNode::new(config.clone(), 0)),
                Box::new(AvidNode::new(config.clone(), 0)),
                Box::new(TargetedFragmentSender::new(0, 1)),
            ];
            let report = Simulation::new(nodes, seed).with_delay(delay).run();
            for i in 0..3 {
                let out = report.outputs[i].as_deref();
                assert_eq!(
                    out,
                    Some(blob.as_slice()),
                    "avid party {i} failed at seed {seed} {delay:?}"
                );
                assert_ne!(out, Some(BOT), "honest dealer never yields BOT");
            }
        }
    }
}

/// Epoch-crossing sweep for the black-box transformation: a Bracha
/// broadcast runs over virtual users while a churned epoch's
/// `TicketDelta` — **mixed joins and leaves included** — is spliced in
/// mid-flight, under both delay models and with a `SelectiveAck`
/// quorum-splitter in the party set. Safety (every produced output is
/// the sender's payload) must hold on every schedule and every delta;
/// liveness is asserted for every honest party on *every* delta shape,
/// shrinking and renumbering ones included — the gain-only carve-out of
/// the dense-id design is gone. The single structural precondition is
/// that the broadcast's designated sender still holds a ticket (a
/// broadcast whose sender retires before dissemination cannot complete
/// under any identity scheme); the mixed churn below never retires the
/// sender's party.
#[test]
fn blackbox_epoch_crossing_sweep() {
    let weights = gen::zipf(40, 0.8, 1 << 16);
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
    let solver = Swiper::new();
    let epoch0 = solver.solve_restriction(&weights, &params).unwrap().assignment;
    let sender_party = (0..epoch0.len()).find(|&p| epoch0.get(p) > 0).unwrap();
    let payload = b"epoch-crossing black-box".to_vec();
    let splitter: usize = 35; // light party, well under f_w = 1/4
    let chosen: Vec<usize> = (0..20).collect();
    for (churn_pct, mode) in [(1usize, ChurnMode::Drift), (5, ChurnMode::Mixed)] {
        let churned_parties = (weights.len() * churn_pct).div_ceil(100);
        for seed in seeds() {
            for delay in [DelayModel::Uniform(1, 24), DelayModel::BiasAgainstLowIds(1, 40)] {
                let mut rng = StdRng::seed_from_u64(seed ^ ((churn_pct as u64) << 32));
                let next = churn_with(mode, &weights, churned_parties, 5, &mut rng);
                let epoch1 = solver.solve_restriction(&next, &params).unwrap().assignment;
                let delta = TicketDelta::between(&epoch0, &epoch1).unwrap();
                let event =
                    EpochEvent::new(1, delta.clone(), &weights, next.clone(), seed).unwrap();
                let sender_lives = epoch1.get(sender_party) > 0;
                let config = BlackBoxConfig::new(weights.clone(), &epoch0, Ratio::of(1, 4));
                // The designated sender is epoch-0 virtual user 0, pinned
                // by *stable* identity: a dense id resolved at spawn time
                // could name a different logical user after the delta.
                let sender_id = config.mapping().stable_of(0);
                let mut nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> =
                    Vec::new();
                for party in 0..weights.len() {
                    let payload = payload.clone();
                    let bb = BlackBox::new(config.clone(), party, move |v, roster| {
                        let bc = BrachaConfig::epochal(roster.clone());
                        if roster.stable_of(v) == sender_id {
                            BrachaNode::sender_with_id(bc, sender_id, payload.clone())
                        } else {
                            BrachaNode::with_sender_id(bc, sender_id)
                        }
                    });
                    if party == splitter {
                        nodes.push(Box::new(SelectiveAck::new(bb, chosen.clone())));
                    } else {
                        nodes.push(Box::new(bb));
                    }
                }
                let report = EpochedSimulation::new(nodes, seed)
                    .with_delay(delay)
                    .inject_at(60, event)
                    .run();
                assert_eq!(report.reconfigurations, 1, "seed {seed} churn {churn_pct}%");
                for (i, out) in report.outputs.iter().enumerate() {
                    if let Some(out) = out {
                        assert_eq!(
                            out.as_slice(),
                            payload.as_slice(),
                            "party {i} adopted a forged output at seed {seed} \
                             churn {churn_pct}% {delay:?}"
                        );
                    }
                }
                assert!(sender_lives, "mixed churn must never retire the sender's party");
                for i in (0..weights.len()).filter(|&i| i != splitter) {
                    assert!(
                        report.outputs[i].is_some(),
                        "party {i} lost liveness on a {mode:?} delta (joining {} \
                         leaving {}) at seed {seed} churn {churn_pct}% {delay:?}",
                        delta.joining(),
                        delta.leaving(),
                    );
                }
            }
        }
    }
}

/// Shrinking-and-renumbering sweep with a hand-crafted mixed delta that
/// exercises every hostile shape at once: the *first* party shrinks (so
/// every surviving dense id renumbers), one party retires entirely
/// (zero tickets — it must fall back to the vouching path), and another
/// party gains users mid-flight. Safety **and liveness** are pinned for
/// every party on every schedule under both delay models — the case the
/// dense-id design provably could not serve (its quorum votes froze
/// under stale numberings and its trackers kept epoch-0 populations).
#[test]
fn blackbox_shrinking_renumbering_sweep() {
    let weights = Weights::new(vec![40, 25, 20, 15]).unwrap();
    let old = TicketAssignment::new(vec![3, 2, 2, 1]);
    // Only 4 of the 8 epoch-1 voters survive from epoch 0: the 2/3
    // delivery quorum (6 of 8) is unreachable from survivor votes alone,
    // so this delta additionally pins the epochal catch-up
    // re-announcement (`BrachaNode::on_reconfigure` re-broadcasting
    // INITIAL/ECHO/READY so joiners can vote) — remove it and every
    // schedule that has not delivered by event 30 stalls forever.
    let new = TicketAssignment::new(vec![1, 2, 0, 5]);
    let delta = TicketDelta::between(&old, &new).unwrap();
    assert!(delta.joining() > 0 && delta.leaving() > 0, "the delta must mix joins and leaves");
    let event = EpochEvent::new(1, delta, &weights, weights.clone(), 0).unwrap();
    let payload = b"shrink, renumber, stay live".to_vec();
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::BiasAgainstLowIds(1, 40)] {
            let config = BlackBoxConfig::new(weights.clone(), &old, Ratio::of(1, 4));
            let sender_id = config.mapping().stable_of(0);
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..4)
                .map(|party| {
                    let payload = payload.clone();
                    Box::new(BlackBox::new(config.clone(), party, move |v, roster| {
                        let bc = BrachaConfig::epochal(roster.clone());
                        if roster.stable_of(v) == sender_id {
                            BrachaNode::sender_with_id(bc, sender_id, payload.clone())
                        } else {
                            BrachaNode::with_sender_id(bc, sender_id)
                        }
                    })) as _
                })
                .collect();
            let report = EpochedSimulation::new(nodes, seed)
                .with_delay(delay)
                .inject_at(30, event.clone())
                .run();
            assert_eq!(report.reconfigurations, 1, "seed {seed} {delay:?}");
            for (i, out) in report.outputs.iter().enumerate() {
                assert_eq!(
                    out.as_deref(),
                    Some(payload.as_slice()),
                    "party {i} lost safety or liveness across the shrinking delta \
                     at seed {seed} {delay:?}"
                );
            }
        }
    }
}

/// Zoo round three, first slice: the `EpochShifter` behaves honestly
/// until the first reconfiguration, then replays its entire old-epoch
/// traffic — the same logical votes arrive once under the pre-epoch
/// numbering and once after the boundary. Each node runs a census that
/// counts *distinct stable voters* with a `CountQuorum` and outputs
/// whether the tally landed exactly on the live population. Under
/// stable-id resolution the replays are duplicates and the count is
/// exact on every schedule; revert to dense-id keying (per-epoch
/// translation of `from`) and the renumbered replays count twice,
/// failing this regression.
#[test]
fn epoch_shifter_replay_cannot_double_count_votes() {
    use swiper::net::adversary::EpochShifter;
    use swiper::protocols::quorum::{CountQuorum, QuorumTracker, Roster};

    /// One virtual user: broadcasts a hello, counts distinct stable
    /// senders, reports the tally long after the boundary.
    struct Census {
        roster: Roster,
        quorum: CountQuorum,
    }
    impl Protocol for Census {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut swiper::net::Context<u64>) {
            ctx.broadcast(1);
            ctx.set_timer(900, 0);
        }
        fn on_message(&mut self, from: usize, _m: u64, _ctx: &mut swiper::net::Context<u64>) {
            self.quorum.vote(self.roster.stable_of(from));
        }
        fn on_reconfigure(&mut self, _e: &EpochEvent, _ctx: &mut swiper::net::Context<u64>) {
            self.quorum.migrate(&self.roster);
        }
        fn on_timer(&mut self, _id: u64, ctx: &mut swiper::net::Context<u64>) {
            let exact = self.quorum.count() == self.roster.total();
            ctx.output(if exact {
                b"exact".to_vec()
            } else {
                format!("count={} of {}", self.quorum.count(), self.roster.total()).into_bytes()
            });
        }
    }

    let weights = Weights::new(vec![40, 30, 15, 15]).unwrap();
    let old = TicketAssignment::new(vec![2, 2, 1, 2]);
    // Party 0 shrinks: every other id renumbers. Party 2 retires; party 3
    // gains a joiner.
    let new = TicketAssignment::new(vec![1, 2, 0, 4]);
    let delta = TicketDelta::between(&old, &new).unwrap();
    let event = EpochEvent::new(1, delta, &weights, weights.clone(), 0).unwrap();
    let shifter: usize = 1;
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::Uniform(1, 64)] {
            let config = BlackBoxConfig::new(weights.clone(), &old, Ratio::of(1, 4));
            let mut nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<u64>>>> = Vec::new();
            for party in 0..4 {
                let bb = BlackBox::new(config.clone(), party, move |_v, roster| Census {
                    roster: roster.clone(),
                    quorum: CountQuorum::at_least(roster.total(), 1),
                });
                if party == shifter {
                    nodes.push(Box::new(EpochShifter::new(bb)));
                } else {
                    nodes.push(Box::new(bb));
                }
            }
            let report = EpochedSimulation::new(nodes, seed)
                .with_delay(delay)
                .inject_at(14, event.clone())
                .run();
            assert_eq!(report.reconfigurations, 1, "seed {seed} {delay:?}");
            for (i, out) in report.outputs.iter().enumerate() {
                assert_eq!(
                    out.as_deref(),
                    Some(b"exact".as_ref()),
                    "party {i}'s census mis-counted under the epoch-shifted replay at \
                     seed {seed} {delay:?}: {:?}",
                    out.as_deref().map(String::from_utf8_lossy)
                );
            }
        }
    }
}

/// The same epoch crossing under the `AdaptiveDelay` zoo member: vouch
/// messages — the zero-ticket catch-up path — are pinned to adversarial
/// latency while inner traffic flows normally. Outputs must still be
/// exactly the sender's payload on every schedule.
#[test]
fn blackbox_epoch_crossing_under_adaptive_vouch_delay() {
    fn is_vouch(m: &BlackBoxMsg<BrachaMsg>) -> bool {
        matches!(m, BlackBoxMsg::Vouch { .. })
    }
    let weights = gen::zipf(24, 0.9, 1 << 16);
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
    let solver = Swiper::new();
    let epoch0 = solver.solve_restriction(&weights, &params).unwrap().assignment;
    let payload = b"vouch-delayed epoch crossing".to_vec();
    for seed in seeds() {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7919));
        let next = churn(&weights, 2, 5, &mut rng);
        let epoch1 = solver.solve_restriction(&next, &params).unwrap().assignment;
        let delta = TicketDelta::between(&epoch0, &epoch1).unwrap();
        let event = EpochEvent::new(1, delta, &weights, next, seed).unwrap();
        let config = BlackBoxConfig::new(weights.clone(), &epoch0, Ratio::of(1, 4));
        let sender_id = config.mapping().stable_of(0);
        let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..weights.len())
            .map(|party| {
                let payload = payload.clone();
                Box::new(BlackBox::new(config.clone(), party, move |v, roster| {
                    let bc = BrachaConfig::epochal(roster.clone());
                    if roster.stable_of(v) == sender_id {
                        BrachaNode::sender_with_id(bc, sender_id, payload.clone())
                    } else {
                        BrachaNode::with_sender_id(bc, sender_id)
                    }
                })) as _
            })
            .collect();
        let adaptive = AdaptiveDelay::new(DelayModel::Uniform(1, 24)).rule(is_vouch, 300);
        let report = EpochedSimulation::new(nodes, seed)
            .with_adaptive_delay(adaptive)
            .inject_at(40, event)
            .run();
        assert_eq!(report.reconfigurations, 1, "seed {seed}");
        for (i, out) in report.outputs.iter().enumerate() {
            if let Some(out) = out {
                assert_eq!(out.as_slice(), payload.as_slice(), "party {i} seed {seed}");
            }
        }
    }
}

/// Drives one live-vs-rebuild SMR replay: every snapshot is re-solved
/// for both tracks (WQ for dissemination, WR for the beacon), spliced
/// into a live [`SmrInstance`] and torn down + rebuilt in a baseline
/// twin, with `rounds_per_epoch` rounds prepared per epoch and two of
/// them left un-committed across each boundary. A vouch-style weighted
/// quorum rides along, reweighed through each epoch's [`EpochEvent`]:
/// its published weights must match every epoch's snapshot exactly —
/// the stake-refresh audit. Returns `(live, base)` fully drained, ready
/// for assertions.
fn replay_smr_live_vs_rebuild(
    snapshots: Vec<Weights>,
    proposer_count: usize,
    rounds_per_epoch: u64,
    session_seed: u64,
) -> (SmrInstance, SmrInstance) {
    use swiper::protocols::quorum::WeightQuorum;
    let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
    let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let mut reconf = Reconfigurator::new(
        Swiper::new(),
        vec![Setting::Qualification(wq), Setting::Restriction(wr)],
    )
    .with_rekey_seed(session_seed);
    let n = snapshots.first().expect("at least one epoch").len();
    let alive: Vec<usize> = (0..n).collect();
    let proposers: Vec<usize> = (0..proposer_count.min(n)).collect();
    let mut live: Option<SmrInstance> = None;
    let mut base: Option<SmrInstance> = None;
    let mut vouch: Option<WeightQuorum> = None;
    let batch = |r: u64, p: usize| format!("b{r}-{p}").into_bytes();
    reconf
        .drive_simulation(snapshots, |weights, outcome| {
            let wq_t = outcome.solutions[0].assignment.clone();
            let wr_t = outcome.solutions[1].assignment.clone();
            let vouch_q = vouch
                .get_or_insert_with(|| WeightQuorum::new(weights.clone(), Ratio::of(1, 4)));
            if let Some(event) = outcome.event(1) {
                assert_eq!(event.weights(), weights, "the event carries the snapshot");
                vouch_q.reweigh(event);
            }
            assert_eq!(
                vouch_q.weights(),
                weights,
                "epoch {}: published vouch-quorum weights diverged from the snapshot",
                outcome.epoch
            );
            match (&mut live, &mut base) {
                (Some(l), Some(b)) => {
                    l.reconfigure(
                        weights.clone(),
                        wq_t.clone(),
                        wr_t.clone(),
                        ReconfigureMode::Live,
                    );
                    b.reconfigure(weights.clone(), wq_t, wr_t, ReconfigureMode::Rebuild);
                }
                _ => {
                    live = Some(SmrInstance::new(
                        weights.clone(),
                        wq_t.clone(),
                        Ratio::of(1, 4),
                        wr_t.clone(),
                        session_seed,
                    ));
                    base = Some(SmrInstance::new(
                        weights.clone(),
                        wq_t,
                        Ratio::of(1, 4),
                        wr_t,
                        session_seed,
                    ));
                }
            }
            let (l, b) = (live.as_mut().expect("init"), base.as_mut().expect("init"));
            for _ in 0..rounds_per_epoch {
                for inst in [&mut *l, &mut *b] {
                    inst.prepare(&proposers, batch);
                    if inst.pipeline_len() > 2 {
                        inst.commit(&alive);
                    }
                }
            }
        })
        .unwrap();
    let (mut l, mut b) = (live.expect("ran"), base.expect("ran"));
    while l.commit(&alive).is_some() {}
    while b.commit(&alive).is_some() {}
    (l, b)
}

/// Builds an epoch chain: the base snapshot followed by successive churn
/// in the given mode.
fn churn_chain(
    mode: ChurnMode,
    base: &Weights,
    epochs: u64,
    churned: usize,
    rng: &mut StdRng,
) -> Vec<Weights> {
    let mut snapshot = base.clone();
    (0..epochs)
        .map(|_| {
            let current = snapshot.clone();
            snapshot = churn_with(mode, &snapshot, churned, 5, rng);
            current
        })
        .collect()
}

/// Epoch-crossing sweep for live SMR: per seed, a 6-epoch churn chain —
/// drift at 1%, **mixed join/leave** at 5% — is re-solved for both
/// tracks and spliced into a live [`SmrInstance`] while a
/// teardown-rebuild twin replays the same epochs. The committed logs
/// must be bit-identical on every seed in both regimes, and the live
/// instance must never restart *more* rounds than the baseline.
#[test]
fn smr_epoch_crossing_sweep() {
    let base_weights = gen::zipf(40, 0.9, 1 << 16);
    for (churn_pct, mode) in [(1usize, ChurnMode::Drift), (5, ChurnMode::Mixed)] {
        let churned_parties = (base_weights.len() * churn_pct).div_ceil(100);
        for seed in seeds() {
            let mut rng = StdRng::seed_from_u64(seed ^ ((churn_pct as u64) << 40));
            let snapshots = churn_chain(mode, &base_weights, 6, churned_parties, &mut rng);
            let (l, b) = replay_smr_live_vs_rebuild(snapshots, 6, 3, seed);
            assert_eq!(
                l.ledger(),
                b.ledger(),
                "live ledger diverged at seed {seed} churn {churn_pct}% ({mode:?})"
            );
            assert!(
                l.restarted_rounds() <= b.restarted_rounds(),
                "live restarted more than the baseline at seed {seed} churn {churn_pct}%"
            );
            assert_eq!(
                l.survived_rounds() + l.restarted_rounds(),
                b.restarted_rounds(),
                "every boundary-crossing round is either survived or restarted \
                 (seed {seed} churn {churn_pct}%)"
            );
        }
    }
}

/// The ISSUE acceptance criterion: a 25-epoch Tezos 1%-churn live-SMR
/// replay under **mixed join/leave** deltas (joins and leaves both occur
/// across the chain, renumbering live ranges) commits the same log as
/// the teardown-rebuild baseline while strictly reducing restarted
/// rounds — no gain-only restriction anywhere.
#[test]
fn tezos_live_smr_replay_matches_baseline_with_strictly_fewer_restarts() {
    let base = Chain::Tezos.weights();
    let churned = base.len().div_ceil(100); // 1% churn
    let mut rng = StdRng::seed_from_u64(1);
    let snapshots = churn_chain(ChurnMode::Mixed, &base, 25, churned, &mut rng);
    // The chain must actually exercise both directions of ticket flow.
    let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let solver = Swiper::new();
    let (mut joins, mut leaves) = (0u128, 0u128);
    let mut prev: Option<swiper::TicketAssignment> = None;
    for snapshot in &snapshots {
        let sol = solver.solve_restriction(snapshot, &wr).unwrap();
        if let Some(prev) = &prev {
            let delta = TicketDelta::between(prev, &sol.assignment).unwrap();
            joins += delta.joining();
            leaves += delta.leaving();
        }
        prev = Some(sol.assignment);
    }
    assert!(
        joins > 0 && leaves > 0,
        "mixed churn must produce joins AND leaves across the chain ({joins}/{leaves})"
    );
    let (l, b) = replay_smr_live_vs_rebuild(snapshots, 8, 4, 7);
    assert_eq!(l.ledger(), b.ledger(), "live must commit the baseline's log");
    assert!(!l.ledger().is_empty(), "the replay must commit blocks");
    assert!(
        l.restarted_rounds() < b.restarted_rounds(),
        "live reconfiguration must strictly reduce restarted rounds: {} vs {}",
        l.restarted_rounds(),
        b.restarted_rounds()
    );
    assert!(l.survived_rounds() > 0, "some rounds must survive an epoch change");
    assert!(l.rekeys() < b.rekeys(), "the beacon state must be carried when WR holds");
}

/// The coin carry/re-deal sweep: a nominal ABA hosted over the black-box
/// wrapper crosses an epoch that HALVES the virtual population —
/// `[2, 2, 2] -> [1, 1, 1]`, so only 3 of the 6 dealt coin shares
/// survive, strictly below the dealing generation's 4-of-6 threshold.
/// Under the retired ticket-only contract the keys stayed pinned to the
/// dealing epoch and every round not yet coined stalled forever; with
/// `AbaSetup::on_epoch` the shares re-deal deterministically over the new
/// population (2-of-3, same group secret, every replica dealing
/// identically from the event's rekey seed) and the instance keeps
/// deciding. Liveness + agreement asserted on every schedule; revert the
/// re-deal hook and the sweep stalls.
#[test]
fn aba_coin_redeal_survives_shrinking_epoch() {
    use swiper::protocols::quorum::Roster;
    let weights = Weights::new(vec![40, 35, 25]).unwrap();
    let old = TicketAssignment::new(vec![2, 2, 2]);
    let new = TicketAssignment::new(vec![1, 1, 1]);
    let delta = TicketDelta::between(&old, &new).unwrap();
    let event = EpochEvent::new(1, delta, &weights, weights.clone(), 7).unwrap();
    let total = old.total() as usize;
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::BiasAgainstLowIds(1, 40)] {
            let config = BlackBoxConfig::new(weights.clone(), &old, Ratio::of(1, 4));
            let setup = AbaSetup::nominal(total, seed, &mut StdRng::seed_from_u64(seed));
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<AbaMsg>>>> = (0..3)
                .map(|party| {
                    let setup = setup.clone();
                    Box::new(BlackBox::new(config.clone(), party, move |v, roster: &Roster| {
                        // Mixed inputs so rounds genuinely need the coin.
                        AbaNode::new(setup.clone().with_roster(roster.clone()), v % 2 == 0)
                    })) as _
                })
                .collect();
            // Inject early: most schedules cross the boundary before any
            // round combines its coin, which is exactly the case where
            // the stranded 3-of-6 shares would deadlock the old keys.
            let report = EpochedSimulation::new(nodes, seed)
                .with_delay(delay)
                .inject_at(6, event.clone())
                .run();
            assert_eq!(report.reconfigurations, 1, "seed {seed} {delay:?}");
            assert!(
                report.unanimity_among(&[0, 1, 2]),
                "ABA lost liveness or agreement across the re-dealing epoch at \
                 seed {seed} {delay:?}: {:?}",
                report.outputs
            );
        }
    }
}

/// The growth half of the coin rule: a joiner-majority epoch
/// `[2, 2, 2] -> [2, 2, 6]` spawns virtual users whose factory-cloned
/// `AbaSetup` still holds the 6-share dealing-generation table. The
/// black-box wrapper now hands every mid-flight joiner the `EpochEvent`
/// before `on_start`, so it re-deals to the same 10-share generation the
/// survivors derived (resharing depends only on the group secret and the
/// event, not on which generation a replica caught up from). Without the
/// propagation the joiner indexes `shares[dense]` out of bounds (panics)
/// or signs with stranded old-generation shares and the quorums over the
/// grown population stall.
#[test]
fn aba_coin_redeal_reaches_joiners_on_growth() {
    use swiper::protocols::quorum::Roster;
    let weights = Weights::new(vec![40, 35, 25]).unwrap();
    let old = TicketAssignment::new(vec![2, 2, 2]);
    let new = TicketAssignment::new(vec![2, 2, 6]);
    let delta = TicketDelta::between(&old, &new).unwrap();
    let event = EpochEvent::new(1, delta, &weights, weights.clone(), 11).unwrap();
    let total = old.total() as usize;
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::BiasAgainstLowIds(1, 40)] {
            let config = BlackBoxConfig::new(weights.clone(), &old, Ratio::of(1, 4));
            let setup = AbaSetup::nominal(total, seed, &mut StdRng::seed_from_u64(seed));
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<AbaMsg>>>> = (0..3)
                .map(|party| {
                    let setup = setup.clone();
                    Box::new(BlackBox::new(config.clone(), party, move |v, roster: &Roster| {
                        AbaNode::new(setup.clone().with_roster(roster.clone()), v % 2 == 0)
                    })) as _
                })
                .collect();
            let report = EpochedSimulation::new(nodes, seed)
                .with_delay(delay)
                .inject_at(6, event.clone())
                .run();
            assert_eq!(report.reconfigurations, 1, "seed {seed} {delay:?}");
            assert!(
                report.unanimity_among(&[0, 1, 2]),
                "ABA lost liveness or agreement across the joiner-majority epoch at \
                 seed {seed} {delay:?}: {:?}",
                report.outputs
            );
        }
    }
}

/// The stale-clone revisit hazard: an epoch chain that shrinks and then
/// returns to the dealing assignment `[1,1,1,1] -> [1,0,0,1] ->
/// [1,1,1,1]`. Survivors reshare twice; the epoch-2 joiners' factory-
/// cloned setups still hold the *construction* generation, whose ticket
/// vector equals the epoch-2 assignment — so any "tickets unchanged =>
/// keys current" shortcut would carry construction keys that no longer
/// match the survivors' reshared generation, stranding the 2 surviving
/// shares below the 3-of-4 threshold forever. `AbaSetup::on_epoch`
/// reshares unconditionally on every changed epoch (resharing is
/// idempotent across catch-up depths), so joiners and survivors converge
/// bit-identically and every schedule decides.
#[test]
fn aba_coin_redeal_survives_revisited_assignment() {
    use swiper::protocols::quorum::Roster;
    let weights = Weights::new(vec![30, 20, 20, 30]).unwrap();
    let e0 = TicketAssignment::new(vec![1, 1, 1, 1]);
    let e1 = TicketAssignment::new(vec![1, 0, 0, 1]);
    let event1 = EpochEvent::new(
        1,
        TicketDelta::between(&e0, &e1).unwrap(),
        &weights,
        weights.clone(),
        5,
    )
    .unwrap();
    let event2 = EpochEvent::new(
        2,
        TicketDelta::between(&e1, &e0).unwrap(),
        &weights,
        weights.clone(),
        5,
    )
    .unwrap();
    let total = e0.total() as usize;
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::BiasAgainstLowIds(1, 40)] {
            let config = BlackBoxConfig::new(weights.clone(), &e0, Ratio::of(1, 4));
            let setup = AbaSetup::nominal(total, seed, &mut StdRng::seed_from_u64(seed));
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<AbaMsg>>>> = (0..4)
                .map(|party| {
                    let setup = setup.clone();
                    Box::new(BlackBox::new(config.clone(), party, move |v, roster: &Roster| {
                        AbaNode::new(setup.clone().with_roster(roster.clone()), v % 2 == 0)
                    })) as _
                })
                .collect();
            let report = EpochedSimulation::new(nodes, seed)
                .with_delay(delay)
                .inject_at(6, event1.clone())
                .inject_at(12, event2.clone())
                .run();
            assert_eq!(report.reconfigurations, 2, "seed {seed} {delay:?}");
            assert!(
                report.unanimity_among(&[0, 1, 2, 3]),
                "ABA stalled across the revisited assignment at seed {seed} {delay:?}: {:?}",
                report.outputs
            );
        }
    }
}

/// Zoo round three, next slice: the `BoundaryEquivocator` is honest
/// within every epoch but re-asserts mangled copies of its own
/// pre-boundary statements at the first `EpochEvent` — here, its Bracha
/// ECHO/READY votes replayed with the original digest over a forged
/// payload. The defense under test is the payload/digest binding check
/// on delivery (`digest(&payload) != d => drop`): with it, the forged
/// replays are discarded and every honest party still delivers the real
/// payload on every schedule; revert it and the forged copy poisons the
/// per-digest quorum, so whichever schedule lets the equivocator cast a
/// quorum-completing vote makes an honest party output the forged bytes.
#[test]
fn boundary_equivocator_cannot_forge_across_the_boundary() {
    use swiper::net::adversary::BoundaryEquivocator;
    let n = 7;
    let payload = b"hold the line across epochs".to_vec();
    let unit = Weights::new(vec![1; n]).unwrap();
    let tickets = TicketAssignment::new(vec![1u64; n]);
    let delta = TicketDelta::between(&tickets, &tickets).unwrap();
    let event = EpochEvent::new(1, delta, &unit, unit.clone(), 0).unwrap();
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 24), DelayModel::BiasAgainstLowIds(1, 40)] {
            let config = BrachaConfig::nominal(n);
            let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
            nodes.push(Box::new(BrachaNode::sender(config.clone(), 0, payload.clone())));
            nodes.push(Box::new(BoundaryEquivocator::new(
                BrachaNode::new(config.clone(), 0),
                |_to, m: BrachaMsg| {
                    Some(match m {
                        BrachaMsg::Echo(d, _) => BrachaMsg::Echo(d, b"forged".to_vec()),
                        BrachaMsg::Ready(d, _) => BrachaMsg::Ready(d, b"forged".to_vec()),
                        other => other,
                    })
                },
            )));
            for _ in 2..n {
                nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
            }
            let report = EpochedSimulation::new(nodes, seed)
                .with_delay(delay)
                .inject_at(10, event.clone())
                .run();
            assert_eq!(report.reconfigurations, 1, "seed {seed} {delay:?}");
            for i in (0..n).filter(|&i| i != 1) {
                assert_eq!(
                    report.outputs[i].as_deref(),
                    Some(payload.as_slice()),
                    "party {i} adopted the boundary equivocation at seed {seed} {delay:?}"
                );
            }
        }
    }
}

/// VBA's first zoo-backed weighted sweep: a `SelectiveAck`
/// quorum-splitter (its votes reach only parties 0..3) plus a silent
/// party — 25% of the stake misbehaving, under `f_w = 1/3` — while a
/// **weight-drift** `EpochEvent` lands mid-protocol (the former whale
/// shrinks, party 1 grows; every hosted RBC/ABA quorum and the
/// proposal-delivery tally must reweigh in place). Agreement + external
/// validity on every schedule, liveness for the unimpeded honest
/// parties. The buffering of early ABA messages (`aba_buffer`) is the
/// zoo-pinned defense: the splitter races its chosen quorum ahead, so
/// un-chosen parties receive view-0 BVal/coin traffic before they learn
/// the leader — drop instead of buffer and they stall.
#[test]
fn vba_weighted_zoo_sweep_with_stake_drift() {
    use swiper::protocols::vba::{VbaConfig, VbaMsg, VbaNode};
    fn valid(p: &[u8]) -> bool {
        p.starts_with(b"ok:")
    }
    let weights0 = Weights::new(vec![30, 25, 20, 15, 10]).unwrap();
    let weights1 = Weights::new(vec![20, 30, 20, 15, 10]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights0, &params).unwrap();
    let delta = TicketDelta::between(&sol.assignment, &sol.assignment).unwrap();
    let event = EpochEvent::new(1, delta, &weights0, weights1, 0).unwrap();
    for seed in seeds() {
        let cfg = VbaConfig::deal(
            weights0.clone(),
            &sol.assignment,
            16,
            &mut StdRng::seed_from_u64(seed),
        );
        let mut nodes: Vec<Box<dyn Protocol<Msg = VbaMsg>>> = Vec::new();
        for p in 0..3 {
            nodes.push(Box::new(VbaNode::new(
                cfg.clone(),
                p,
                format!("ok:proposal-{p}").into_bytes(),
                valid,
            )));
        }
        nodes.push(Box::new(SelectiveAck::new(
            VbaNode::new(cfg.clone(), 3, b"ok:proposal-3".to_vec(), valid),
            vec![0, 1, 2, 3],
        )));
        nodes.push(Box::new(Silent::new()));
        let report = EpochedSimulation::new(nodes, seed).inject_at(25, event.clone()).run();
        assert_eq!(report.reconfigurations, 1, "seed {seed}");
        assert!(report.agreement_among(&[0, 1, 2, 3]), "seed {seed}");
        for p in 0..3 {
            let out = report.outputs[p]
                .as_ref()
                .unwrap_or_else(|| panic!("party {p} never decided at seed {seed}"));
            assert!(valid(out), "externally invalid decision {out:?} at seed {seed}");
        }
    }
}

/// The whale-collapse vouch regression: the stale-stake SAFETY hole the
/// weight-bearing contract closes. A Byzantine whale vouches a forged
/// output for the zero-ticket victim *before* the boundary (24 of the
/// 26.0 needed — almost complete); the epoch event then slashes the
/// whale to dust, and a Byzantine accomplice adds its vote *after* the
/// boundary. Under construction-time weights the pair holds 28 > 26 and
/// the victim adopts the forgery on any schedule that delivers it before
/// the (deliberately late) honest vouches; under `WeightQuorum::reweigh`
/// the whale's kept vote re-tallies at its current weight 2, the forged
/// quorum is revoked (6 of the 19 now needed), and the victim adopts
/// only the honest output — on every schedule.
#[test]
fn whale_collapse_revokes_stale_vouch_weight() {
    const FORGED: &[u8] = b"forged-by-stale-stake";

    /// Byzantine whale: its only act is the pre-boundary forged vouch.
    struct StaleWhale;
    impl Protocol for StaleWhale {
        type Msg = BlackBoxMsg<u64>;
        fn on_start(&mut self, ctx: &mut swiper::net::Context<Self::Msg>) {
            ctx.send(4, BlackBoxMsg::Vouch { output: FORGED.to_vec() });
        }
        fn on_message(
            &mut self,
            _f: usize,
            _m: Self::Msg,
            _c: &mut swiper::net::Context<Self::Msg>,
        ) {
        }
    }

    /// Byzantine accomplice: completes the forged quorum post-boundary.
    struct Accomplice;
    impl Protocol for Accomplice {
        type Msg = BlackBoxMsg<u64>;
        fn on_start(&mut self, _ctx: &mut swiper::net::Context<Self::Msg>) {}
        fn on_message(
            &mut self,
            _f: usize,
            _m: Self::Msg,
            _c: &mut swiper::net::Context<Self::Msg>,
        ) {
        }
        fn on_reconfigure(
            &mut self,
            _e: &EpochEvent,
            ctx: &mut swiper::net::Context<Self::Msg>,
        ) {
            ctx.send(4, BlackBoxMsg::Vouch { output: FORGED.to_vec() });
        }
    }

    /// Honest inner automaton that outputs late, so the forged vouches
    /// always race ahead of the honest ones.
    struct LateOk;
    impl Protocol for LateOk {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut swiper::net::Context<u64>) {
            ctx.set_timer(100, 0);
        }
        fn on_message(&mut self, _f: usize, _m: u64, _c: &mut swiper::net::Context<u64>) {}
        fn on_timer(&mut self, _id: u64, ctx: &mut swiper::net::Context<u64>) {
            ctx.output(b"ok".to_vec());
        }
    }

    // f_w = 1/3. Old stake: whale 24 + accomplice 4 = 28 > 78/3 (the
    // stale crossing); new stake: 2 + 4 = 6 <= 56/3 (revoked). Honest
    // parties 2 and 3 (49 of either total) vouch the real output late.
    let weights0 = Weights::new(vec![24, 4, 30, 19, 1]).unwrap();
    let weights1 = Weights::new(vec![2, 4, 30, 19, 1]).unwrap();
    let tickets = TicketAssignment::new(vec![1, 1, 1, 1, 0]);
    let delta = TicketDelta::between(&tickets, &tickets).unwrap();
    let event = EpochEvent::new(1, delta, &weights0, weights1, 0).unwrap();
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 16), DelayModel::Uniform(1, 48)] {
            let config = BlackBoxConfig::new(weights0.clone(), &tickets, Ratio::of(1, 3));
            let mut nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<u64>>>> = Vec::new();
            nodes.push(Box::new(StaleWhale));
            nodes.push(Box::new(Accomplice));
            for party in 2..4 {
                nodes
                    .push(Box::new(BlackBox::new(config.clone(), party, |_v, _roster| LateOk)));
            }
            nodes.push(Box::new(BlackBox::new(config.clone(), 4, |_v, _roster| LateOk)));
            let report = EpochedSimulation::new(nodes, seed)
                .with_delay(delay)
                .inject_at(1, event.clone())
                .run();
            assert_eq!(report.reconfigurations, 1, "seed {seed} {delay:?}");
            assert_eq!(
                report.outputs[4].as_deref(),
                Some(b"ok".as_ref()),
                "the zero-ticket victim adopted stale-stake forgery at seed {seed} \
                 {delay:?}: {:?}",
                report.outputs[4].as_deref().map(String::from_utf8_lossy)
            );
        }
    }
}

/// The growth half of the stake-refresh contract: a reweigh that
/// COMPLETES a pending quorum must fire the quorum's transition at the
/// boundary, because honest voters vote exactly once and no later vote
/// will re-run the check. Three honest dust parties vouch "ok" toward
/// the zero-ticket victim pre-boundary (29 of the 33.4 needed under the
/// whale-dominated stake); the epoch event then shifts stake onto the
/// vouchers. Every vouch was already delivered — the only way the victim
/// can ever output is the boundary transition itself. Fails with the
/// reweigh-completion check in `BlackBox::on_reconfigure` reverted.
#[test]
fn stake_growth_completes_pending_vouch_quorum_at_the_boundary() {
    /// Byzantine whale: contributes nothing but keeps the event queue
    /// non-empty past the boundary (reconfigurations only fire between
    /// deliveries).
    struct KeepAlive;
    impl Protocol for KeepAlive {
        type Msg = BlackBoxMsg<u64>;
        fn on_start(&mut self, ctx: &mut swiper::net::Context<Self::Msg>) {
            ctx.set_timer(400, 0);
            ctx.set_timer(800, 1);
        }
        fn on_message(
            &mut self,
            _f: usize,
            _m: Self::Msg,
            _c: &mut swiper::net::Context<Self::Msg>,
        ) {
        }
    }

    /// Honest inner automaton: outputs immediately, so every vouch is on
    /// the wire (and delivered) long before the boundary.
    struct InstantOk;
    impl Protocol for InstantOk {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut swiper::net::Context<u64>) {
            ctx.output(b"ok".to_vec());
        }
        fn on_message(&mut self, _f: usize, _m: u64, _c: &mut swiper::net::Context<u64>) {}
    }

    // f_w = 1/3: vouchers hold 29 <= 100/3 before the event, 89 > 100/3
    // after it. The whale (70 -> 10) never vouches.
    let weights0 = Weights::new(vec![70, 10, 10, 9, 1]).unwrap();
    let weights1 = Weights::new(vec![10, 30, 30, 29, 1]).unwrap();
    let tickets = TicketAssignment::new(vec![1, 1, 1, 1, 0]);
    let delta = TicketDelta::between(&tickets, &tickets).unwrap();
    let event = EpochEvent::new(1, delta, &weights0, weights1, 0).unwrap();
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 16), DelayModel::Uniform(1, 48)] {
            let config = BlackBoxConfig::new(weights0.clone(), &tickets, Ratio::of(1, 3));
            let mut nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<u64>>>> = Vec::new();
            nodes.push(Box::new(KeepAlive));
            for party in 1..4 {
                nodes.push(Box::new(BlackBox::new(config.clone(), party, |_v, _r| InstantOk)));
            }
            nodes.push(Box::new(BlackBox::new(config.clone(), 4, |_v, _r| InstantOk)));
            // 15 vouch deliveries (3 broadcasts x 5 nodes) precede the
            // keep-alive timers; the boundary lands after all of them.
            let report = EpochedSimulation::new(nodes, seed)
                .with_delay(delay)
                .inject_at(15, event.clone())
                .run();
            assert_eq!(report.reconfigurations, 1, "seed {seed} {delay:?}");
            assert_eq!(
                report.outputs[4].as_deref(),
                Some(b"ok".as_ref()),
                "the boundary-completed vouch quorum never fired for the zero-ticket \
                 victim at seed {seed} {delay:?}"
            );
        }
    }
}

/// Same transition class for weighted Bracha in the party regime: the
/// echo quorum is pending under a whale-dominated stake when the epoch
/// event shifts weight onto the echoers — with every echo already
/// delivered. `BrachaNode::on_reconfigure`'s re-announcement (duplicate
/// votes are free and return the tracker's current verdict) is the only
/// path to READY and delivery; revert it and the broadcast stalls on
/// every schedule.
#[test]
fn stake_growth_completes_pending_bracha_quorums_at_the_boundary() {
    struct KeepAlive;
    impl Protocol for KeepAlive {
        type Msg = BrachaMsg;
        fn on_start(&mut self, ctx: &mut swiper::net::Context<BrachaMsg>) {
            ctx.set_timer(400, 0);
            ctx.set_timer(800, 1);
        }
        fn on_message(
            &mut self,
            _f: usize,
            _m: BrachaMsg,
            _c: &mut swiper::net::Context<BrachaMsg>,
        ) {
        }
    }

    // Echo threshold > 2/3: echoers hold 20 of 100 pre-event (pending
    // with the whale silent), 95 of 105 post-event.
    let weights0 = Weights::new(vec![80, 10, 5, 5]).unwrap();
    let weights1 = Weights::new(vec![10, 40, 30, 25]).unwrap();
    let tickets = TicketAssignment::new(vec![1u64; 4]);
    let delta = TicketDelta::between(&tickets, &tickets).unwrap();
    let event = EpochEvent::new(1, delta, &weights0, weights1, 0).unwrap();
    let payload = b"growth completes the echo quorum".to_vec();
    for seed in seeds() {
        for delay in [DelayModel::Uniform(1, 16), DelayModel::Uniform(1, 48)] {
            let config = BrachaConfig::weighted(weights0.clone());
            let nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = vec![
                Box::new(KeepAlive),
                Box::new(BrachaNode::sender(config.clone(), 1, payload.clone())),
                Box::new(BrachaNode::new(config.clone(), 1)),
                Box::new(BrachaNode::new(config.clone(), 1)),
            ];
            // 4 INITIAL + 12 ECHO deliveries, then only keep-alive timers.
            let report = EpochedSimulation::new(nodes, seed)
                .with_delay(delay)
                .inject_at(16, event.clone())
                .run();
            assert_eq!(report.reconfigurations, 1, "seed {seed} {delay:?}");
            for i in 1..4 {
                assert_eq!(
                    report.outputs[i].as_deref(),
                    Some(payload.as_slice()),
                    "party {i} stalled on a boundary-completed quorum at seed {seed} \
                     {delay:?}"
                );
            }
        }
    }
}

/// Solver determinism across platforms is seed-independent by design;
/// stress it by solving the same instance interleaved with unrelated
/// solves (shared state would show up here).
#[test]
fn solver_state_isolation() {
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
    let a = Weights::new(vec![50, 30, 11, 5, 2, 1, 1]).unwrap();
    let b = Weights::new((1..=64u64).map(|i| i * i).collect()).unwrap();
    let first = Swiper::new().solve_restriction(&a, &params).unwrap();
    for _ in 0..10 {
        let _ = Swiper::new().solve_restriction(&b, &params).unwrap();
        let again = Swiper::new().solve_restriction(&a, &params).unwrap();
        assert_eq!(first.assignment, again.assignment);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(sweep_cases()))]

    /// Warm-started re-solve equivalence: on a randomly perturbed weight
    /// vector, `resolve_from` through a `CachingOracle` must agree with a
    /// cold `FullOracle` solve — identical assignments and final totals —
    /// whenever the epoch loop's verified mode would publish it, i.e. the
    /// predicate flips once between the brackets. Mild perturbations (one
    /// party ±10%) keep the flip unique on these vectors; the Tezos
    /// replay test in `swiper-weights` covers the dip/fallback behavior.
    #[test]
    fn warm_resolve_with_caching_matches_cold_full_oracle(
        mut ws in proptest::collection::vec(1u64..50_000, 4..20),
        whale in 10_000u64..1_000_000,
        churned_ix in 0usize..20,
        factor in 90u64..111,
        pw in 1u128..6, pn in 2u128..7,
    ) {
        let aw = Ratio::of(pw, 7);
        let an = Ratio::of(pn, 7);
        prop_assume!(aw < an && aw.is_proper() && an.is_proper());
        ws.push(whale);
        let old = Weights::new(ws.clone()).unwrap();
        let p = WeightRestriction::new(aw, an).unwrap();
        // Epoch delta: one party's stake moves by up to ±10%.
        let ix = churned_ix % ws.len();
        ws[ix] = (ws[ix].saturating_mul(factor) / 100).max(1);
        let new = Weights::new(ws).unwrap();
        let solver = Swiper::new();
        let prev = solver.solve_restriction(&old, &p).unwrap();
        let cold = solver.solve_restriction(&new, &p).unwrap();
        let mut oracle = CachingOracle::new(FullOracle::new());
        let inst = Instance::restriction(new.clone(), p);
        let warm = solver.resolve_from_with(&mut oracle, &prev, &inst).unwrap();
        prop_assume!(warm.total_tickets() == cold.total_tickets());
        prop_assert_eq!(&warm.assignment, &cold.assignment,
            "equal totals must mean the identical family member");
        prop_assert_eq!(warm.ticket_bound, cold.ticket_bound);
        // Verified-mode shape: a cold re-solve through the same cache is
        // bit-identical to the fresh cold solve and reuses warm verdicts.
        let verify = solver.solve_restriction_with(&mut oracle, &new, &p).unwrap();
        prop_assert_eq!(&verify.assignment, &cold.assignment);
        // Every probe of the verification pass went through the cache.
        prop_assert_eq!(verify.stats.cache_lookups(), verify.stats.candidates_checked);
    }
}
