//! Cross-crate integration: the full paper pipeline from raw stake
//! distributions through weight reduction to running weighted protocols.

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper::core::verify_restriction;
use swiper::net::{Protocol, Simulation};
use swiper::protocols::avid::{AvidConfig, AvidMsg, AvidNode};
use swiper::protocols::beacon::{BeaconMsg, BeaconNode, BeaconSetup};
use swiper::protocols::checkpoint::CheckpointScheme;
use swiper::weights::{gen, Chain};
use swiper::{Mode, Ratio, Swiper, WeightQualification, WeightRestriction, Weights};

/// Chain replica -> WR solve -> verified tickets -> beacon round.
#[test]
fn aptos_replica_to_beacon() {
    let weights = Chain::Aptos.weights();
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    assert!(verify_restriction(&weights, &sol.assignment, &params).unwrap());
    assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));

    // Run one beacon round over the first 12 validators' ticket profile
    // (simulating the full 104 keeps the test fast enough but adds little).
    let head = Weights::new(weights.as_slice()[..12].to_vec()).unwrap();
    let sol = Swiper::new().solve_restriction(&head, &params).unwrap();
    let setup =
        BeaconSetup::deal(&sol.assignment, Ratio::of(1, 2), &mut StdRng::seed_from_u64(5));
    let nodes: Vec<Box<dyn Protocol<Msg = BeaconMsg>>> =
        (0..12).map(|_| Box::new(BeaconNode::new(setup.clone(), 1)) as _).collect();
    let report = Simulation::new(nodes, 5).run();
    assert!(report.outputs.iter().all(|o| o.is_some()));
    assert!(report.agreement_among(&(0..12).collect::<Vec<_>>()));
}

/// WQ tickets drive a weighted AVID dispersal on a Zipf distribution.
#[test]
fn zipf_distribution_to_weighted_dispersal() {
    let weights = gen::zipf(8, 1.0, 10_000);
    let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
    let sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
    let config = AvidConfig::weighted(weights, &sol.assignment, Ratio::of(1, 4));
    let blob = vec![0x42u8; 10_000];

    let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = Vec::new();
    nodes.push(Box::new(AvidNode::dealer(config.clone(), 0, blob.clone())));
    for _ in 1..8 {
        nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
    }
    let report = Simulation::new(nodes, 9).run();
    for out in &report.outputs {
        assert_eq!(out.as_deref(), Some(blob.as_slice()));
    }
    // Communication stays well below full replication (n * n * |blob|).
    assert!(report.metrics.total_bytes() < (8 * 8 * blob.len()) as u64);
}

/// Full + linear modes agree on validity across all four chain replicas.
#[test]
fn both_modes_valid_on_all_chains() {
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    for chain in [Chain::Aptos, Chain::Tezos] {
        let weights = chain.weights();
        for mode in [Mode::Full, Mode::Linear] {
            let sol = Swiper::with_mode(mode).solve_restriction(&weights, &params).unwrap();
            assert!(
                verify_restriction(&weights, &sol.assignment, &params).unwrap(),
                "{chain} {mode:?}"
            );
        }
    }
}

/// The checkpointing application end to end on a whale-heavy distribution.
#[test]
fn whale_distribution_to_checkpoints() {
    let weights = gen::one_whale(10, 40);
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    let scheme = CheckpointScheme::setup(
        weights.clone(),
        &sol.assignment,
        &mut StdRng::seed_from_u64(3),
    );

    // Any coalition of weight > 2/3 (necessarily containing honest
    // majority-of-stake) certifies: whale + three smalls = 60%... use
    // whale + five smalls (> 2/3).
    let sig = scheme.certify_blunt(b"block-1000", &[0, 1, 2, 3, 4, 5]).unwrap();
    assert!(scheme.verify(b"block-1000", &sig));

    // A sub-1/3 coalition can never certify (the blunt safety guarantee).
    let tiny: Vec<usize> = (1..4).collect(); // 3 * 6.67% = 20%
    let tiny_weight = weights.subset_weight(&tiny);
    assert!(tiny_weight * 3 < weights.total());
    assert!(scheme.certify_blunt(b"block-3000", &tiny).is_err());

    // With a 40% whale the solver may concentrate every ticket on it, so
    // smalls-only certification (i.e. treating the whale as corrupt) is
    // outside the f_w < 1/3 corruption model and may legitimately fail.
    let whale_share = u128::from(weights.get(0)) * 3;
    assert!(whale_share > weights.total(), "whale exceeds f_w by construction");
}

/// Ticket totals on organic distributions stay below n (the Section 7
/// headline finding), while the worst case stays below the bound.
#[test]
fn organic_vs_worst_case_ticket_totals() {
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();

    let algorand = Chain::Algorand.weights();
    let sol = Swiper::new().solve_restriction(&algorand, &params).unwrap();
    assert!(
        sol.total_tickets() < algorand.len() as u128,
        "skewed organic distributions need fewer tickets than parties: {} vs {}",
        sol.total_tickets(),
        algorand.len()
    );

    let equal = gen::equal(1000, 1);
    let sol = Swiper::new().solve_restriction(&equal, &params).unwrap();
    assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
    // Equal weights are the hard case: the total stays Theta(n) — it can
    // dip below n only thanks to the alpha_n - alpha_w slack, never below
    // the point where a light subset could grab alpha_n of the tickets.
    assert!(
        sol.total_tickets() > 2 * 1000 / 3,
        "equal weights cannot compress much: got {}",
        sol.total_tickets()
    );
}
