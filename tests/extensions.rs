//! Integration tests for the paper-extension features (§8–§9 directions):
//! expected fairness, the inverse budget problem, DKG-powered beacons and
//! validated agreement — crossing crate boundaries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper::core::fairness::FairExtension;
use swiper::core::inverse::min_alpha_n_for_budget;
use swiper::core::{verify_restriction, VirtualUsers};
use swiper::protocols::dkg;
use swiper::protocols::ssle::measure_elections;
use swiper::weights::{gen, snapshot};
use swiper::{Ratio, Swiper, WeightRestriction, Weights};

/// Fairness lottery over a bound member keeps SSLE chain quality intact
/// while shrinking the fairness gap.
#[test]
fn fairness_lottery_improves_ssle_fairness() {
    let weights = Weights::new(vec![290, 260, 180, 130, 80, 60]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(3, 10)).unwrap();
    let bound = params.ticket_bound(6).unwrap();
    let base = Swiper::new().restriction_family_member(&weights, &params, bound).unwrap();
    assert!(verify_restriction(&weights, &base, &params).unwrap());

    // Fairness gap with the deterministic base alone.
    let det = measure_elections(&base, &weights, &[], 6000, 3);

    // With the lottery, each round's combined assignment drives the
    // election; measure the gap across rounds.
    let fair = FairExtension::new(&weights, &base).unwrap();
    let rounds = 6000u64;
    let mut wins = [0u64; 6];
    for round in 0..rounds {
        let combined = fair.sample(round);
        let stats = measure_elections(&combined, &weights, &[], 1, round);
        for (p, w) in stats.wins.iter().enumerate() {
            wins[p] += w;
        }
    }
    let total_w = weights.total() as f64;
    let gap = wins
        .iter()
        .enumerate()
        .map(|(p, &w)| (w as f64 / rounds as f64 - weights.get(p) as f64 / total_w).abs())
        .fold(0.0, f64::max);
    assert!(
        gap <= det.fairness_gap + 0.02,
        "lottery must not worsen fairness: {gap} vs {}",
        det.fairness_gap
    );
    // Worst-case safety of the extension holds for this configuration.
    assert!(fair.verify_worst_case(&params).unwrap());
}

/// The inverse solver's threshold is feasible and its neighbor below on
/// the grid is infeasible-or-over-budget for the tested instance.
#[test]
fn inverse_budget_boundary_is_meaningful() {
    let weights = gen::zipf(40, 1.0, 100_000);
    let aw = Ratio::of(1, 3);
    let solver = Swiper::new();
    let budget = 30u64;
    let sol = min_alpha_n_for_budget(&weights, aw, budget, 50, &solver).unwrap().unwrap();
    assert!(sol.assignment.total() <= u128::from(budget));
    let params = WeightRestriction::new(aw, sol.alpha_n).unwrap();
    assert!(verify_restriction(&weights, &sol.assignment, &params).unwrap());
}

/// A DKG-generated key drives a beacon round end to end, with shares
/// distributed by tickets.
#[test]
fn dkg_key_powers_weighted_beacon() {
    let weights = Weights::new(vec![30, 25, 20, 15, 10]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let tickets = Swiper::new().solve_restriction(&weights, &params).unwrap().assignment;
    let mapping = VirtualUsers::from_assignment(&tickets).unwrap();

    let mut rng = StdRng::seed_from_u64(11);
    let dkg_params = dkg::DkgParams::majority(&tickets, &mut rng);
    let dealings: Vec<dkg::Dealing> =
        (0..5).map(|d| dkg::deal(&dkg_params, d, &mut rng)).collect();
    let (scheme, pk, shares) = dkg::aggregate(&dkg_params, &dealings).unwrap();
    let per_party = dkg::shares_by_party(&mapping, &shares);

    // Honest parties 1..5 (70% of weight) produce the beacon alone.
    let msg = b"dkg beacon round 9";
    let mut partials = Vec::new();
    for bundle in per_party.iter().skip(1) {
        for s in bundle {
            partials.push(scheme.partial_sign(s, msg));
        }
    }
    assert!(partials.len() >= scheme.threshold(), "honest majority holds enough shares");
    let sig = scheme.combine(&partials).unwrap();
    assert!(scheme.verify(&pk, msg, &sig));

    // Party 0 alone (30% < 1/3) cannot.
    let lone: Vec<_> = per_party[0].iter().map(|s| scheme.partial_sign(s, msg)).collect();
    assert!(scheme.combine(&lone).is_err());
}

/// CSV snapshots round-trip into the solver pipeline.
#[test]
fn csv_snapshot_to_solution() {
    let csv = "validator,stake\nv0,5000000\nv1,3200000\nv2,1100000\nv3,400000\nv4,90000\n";
    let weights = snapshot::parse_csv(csv).unwrap();
    assert_eq!(weights.len(), 5);
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    assert!(verify_restriction(&weights, &sol.assignment, &params).unwrap());
    // Serialize the weights back out and re-solve identically
    // (determinism across the I/O boundary).
    let back = snapshot::parse_csv(&snapshot::to_csv(&weights)).unwrap();
    let sol2 = Swiper::new().solve_restriction(&back, &params).unwrap();
    assert_eq!(sol.assignment, sol2.assignment);
}

/// Family members at or above the bound are always valid; far above the
/// bound they approach proportionality.
#[test]
fn family_members_above_bound_are_valid_and_proportional() {
    let weights = Weights::new(vec![500, 300, 120, 50, 20, 10]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
    let bound = params.ticket_bound(6).unwrap();
    for total in [bound, bound + 7, 4 * bound] {
        let member = Swiper::new().restriction_family_member(&weights, &params, total).unwrap();
        assert_eq!(member.total(), u128::from(total));
        assert!(
            verify_restriction(&weights, &member, &params).unwrap(),
            "member at total {total} must be valid"
        );
    }
    // Proportionality: at 4x the bound, each party's ticket share is
    // within 2 percentage points of its weight share.
    let big = Swiper::new().restriction_family_member(&weights, &params, 4 * bound).unwrap();
    for (i, w) in weights.iter() {
        let tshare = big.get(i) as f64 / big.total() as f64;
        let wshare = w as f64 / weights.total() as f64;
        assert!((tshare - wshare).abs() < 0.02, "party {i}: {tshare} vs {wshare}");
    }
}
