//! Adversarial integration scenarios: Byzantine behaviours at the
//! resilience boundary, spanning solver, crypto, codec, simulator and
//! protocol crates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper::net::adversary::{CrashAfter, Silent};
use swiper::net::{Protocol, Simulation};
use swiper::protocols::aba::{AbaMsg, AbaNode, AbaSetup};
use swiper::protocols::avid::{AvidConfig, AvidMsg, AvidNode, MisencodingDealer, BOT};
use swiper::protocols::bracha::{BrachaConfig, BrachaMsg, BrachaNode, EquivocatingSender};
use swiper::protocols::ecbc::{EcbcConfig, EcbcMsg, EcbcNode, GarbageEchoer};
use swiper::{Ratio, Swiper, WeightQualification, WeightRestriction, Weights};

/// An equivocating weighted sender cannot split honest parties, across
/// several delay schedules.
#[test]
fn weighted_bracha_equivocation_resistance() {
    let weights = Weights::new(vec![35, 30, 20, 15]).unwrap();
    for seed in 0..8u64 {
        let config = BrachaConfig::weighted(weights.clone());
        let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
        nodes.push(Box::new(EquivocatingSender { a: b"left".to_vec(), b: b"right".to_vec() }));
        for _ in 1..4 {
            nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, seed).run();
        assert!(report.agreement_among(&[1, 2, 3]), "seed {seed}");
    }
}

/// A misencoding AVID dealer is caught: honest parties agree on BOT.
#[test]
fn weighted_avid_misencoding_dealer_is_caught() {
    let weights = Weights::new(vec![40, 25, 20, 15]).unwrap();
    let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
    let sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
    let config = AvidConfig::weighted(weights, &sol.assignment, Ratio::of(1, 4));
    for seed in [3u64, 4, 5] {
        let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = Vec::new();
        nodes.push(Box::new(MisencodingDealer::new(config.clone(), b"poison".to_vec())));
        for _ in 1..4 {
            nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, seed).run();
        for i in 1..4 {
            if let Some(out) = &report.outputs[i] {
                assert_eq!(out.as_slice(), BOT, "party {i} seed {seed}");
            }
        }
        assert!(report.agreement_among(&[1, 2, 3]), "seed {seed}");
    }
}

/// ECBC at the exact fault budget: t garbage + crash-after-k combined.
#[test]
fn ecbc_at_fault_budget_boundary() {
    let n = 7; // t = 2
    let config = EcbcConfig::nominal(n);
    let blob = b"boundary conditions matter".to_vec();
    let mut nodes: Vec<Box<dyn Protocol<Msg = EcbcMsg>>> = Vec::new();
    nodes.push(Box::new(EcbcNode::sender(config.clone(), 0, blob.clone())));
    nodes.push(Box::new(GarbageEchoer::new(config.clone(), 0)));
    nodes.push(Box::new(CrashAfter::new(EcbcNode::new(config.clone(), 0), 1)));
    for _ in 3..n {
        nodes.push(Box::new(EcbcNode::new(config.clone(), 0)));
    }
    let report = Simulation::new(nodes, 13).run();
    for i in [0usize, 3, 4, 5, 6] {
        assert_eq!(report.outputs[i].as_deref(), Some(blob.as_slice()), "node {i}");
    }
}

/// Weighted ABA with silent weight exactly at the edge of f_w: liveness
/// holds just below 1/3, and agreement holds regardless.
#[test]
fn weighted_aba_near_resilience_boundary() {
    // Silent party holds 32% — just under f_w = 1/3.
    let weights = Weights::new(vec![32, 28, 20, 12, 8]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    let setup = AbaSetup::deal(weights, &sol.assignment, 55, &mut StdRng::seed_from_u64(55));
    let mut nodes: Vec<Box<dyn Protocol<Msg = AbaMsg>>> = Vec::new();
    nodes.push(Box::new(Silent::new()));
    for i in 1..5 {
        nodes.push(Box::new(AbaNode::new(setup.clone(), i % 2 == 1)));
    }
    let report = Simulation::new(nodes, 55).run();
    let d: Vec<u8> = (1..5).map(|i| report.outputs[i].as_ref().expect("decided")[0]).collect();
    assert!(d.windows(2).all(|w| w[0] == w[1]), "{d:?}");
}

/// Dust parties with zero tickets still learn broadcast outputs through
/// the voucher mechanism, even when some vouchers never arrive.
#[test]
fn zero_ticket_parties_with_partial_vouchers() {
    use swiper::protocols::blackbox::{BlackBox, BlackBoxConfig, BlackBoxMsg};
    let weights = Weights::new(vec![600, 250, 146, 2, 1, 1]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    let dust: Vec<usize> = (0..6).filter(|&p| sol.assignment.get(p) == 0).collect();
    assert!(!dust.is_empty(), "distribution must produce zero-ticket parties");

    let config = BlackBoxConfig::new(weights, &sol.assignment, Ratio::of(1, 4));
    let total = config.virtual_count();
    let payload = b"for the dust".to_vec();
    let bracha_cfg = BrachaConfig::nominal(total);
    let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..6)
        .map(|party| {
            let bc = bracha_cfg.clone();
            let payload = payload.clone();
            Box::new(BlackBox::new(config.clone(), party, move |v, _roster| {
                if v == 0 {
                    BrachaNode::sender(bc.clone(), 0, payload.clone())
                } else {
                    BrachaNode::new(bc.clone(), 0)
                }
            })) as _
        })
        .collect();
    let report = Simulation::new(nodes, 77).run();
    for &p in &dust {
        assert_eq!(report.outputs[p].as_deref(), Some(payload.as_slice()), "dust party {p}");
    }
}

/// First zoo coverage for SSLE: the election's shared randomness (a
/// beacon value) is disseminated by weighted Bracha whose sender is a
/// `SelectiveAck` adversary — it acknowledges only a chosen top-weight
/// quorum and starves everyone else. The starved parties must still
/// deliver via Echo/Ready amplification, and every party's delivered
/// beacon must elect the *same* leader, whose proof verifies while
/// forgeries and non-winners are rejected. Verified by sabotage: the
/// wrapped sender measurably withholds traffic relative to an honest run.
#[test]
fn ssle_elects_one_leader_under_a_selective_ack_beacon_sender() {
    use swiper::crypto::hash::digest;
    use swiper::net::adversary::SelectiveAck;
    use swiper::net::Simulation;
    use swiper::protocols::ssle::SsleInstance;

    let weights = Weights::new(vec![35, 30, 20, 15, 10, 5, 3]).unwrap();
    let n = 7;
    let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
    let sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
    let inst = SsleInstance::setup(&sol.assignment, 404);
    let beacon = b"round-7 beacon value".to_vec();
    let config = BrachaConfig::weighted(weights.clone());
    let fleet = |starve: bool| {
        let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
        let sender = BrachaNode::sender(config.clone(), 0, beacon.clone());
        if starve {
            nodes.push(Box::new(SelectiveAck::new(sender, vec![0, 1, 2])));
        } else {
            nodes.push(Box::new(sender));
        }
        for _ in 1..n {
            nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
        }
        nodes
    };

    for seed in [2u64, 9, 31] {
        let starved = Simulation::new(fleet(true), seed).run();
        let honest = Simulation::new(fleet(false), seed).run();
        // The sabotage is real: the selective sender withheld traffic.
        assert!(
            starved.metrics.sent_by(0) < honest.metrics.sent_by(0),
            "seed {seed}: the adversary must measurably withhold"
        );
        // Liveness survives the starvation, and the winner is unanimous.
        let winners: Vec<usize> = (0..n)
            .map(|i| {
                let out = starved.outputs[i].as_ref().unwrap_or_else(|| {
                    panic!("party {i} must deliver the beacon (seed {seed})")
                });
                assert_eq!(out, &beacon, "party {i} delivered a forged beacon (seed {seed})");
                inst.winner_party(&inst.elect(7, &digest(out)))
            })
            .collect();
        assert!(winners.windows(2).all(|w| w[0] == w[1]), "split election: {winners:?}");

        // Proof checks: only the winner can prove, tampering is caught.
        let election = inst.elect(7, &digest(&beacon));
        let winner = inst.winner_party(&election);
        let proof = inst.prove(&election, winner).expect("the winner holds the secret");
        assert!(inst.verify(&election, &proof));
        if let Some(loser) = (0..n).find(|&p| p != winner && sol.assignment.get(p) > 0) {
            assert!(inst.prove(&election, loser).is_none(), "non-winners cannot prove");
        }
        let mut forged = proof;
        forged.secret ^= 1;
        assert!(!inst.verify(&election, &forged), "tampered secrets are rejected");
    }
}

/// Forged shares across the stack: VSS commitments, threshold partials and
/// Merkle proofs all reject tampering (defense in depth for the weighted
/// protocols built on them).
#[test]
fn tampering_rejected_across_the_stack() {
    use swiper::crypto::shamir::ShamirScheme;
    use swiper::crypto::thresh::ThresholdScheme;
    use swiper::crypto::{vss, MerkleTree};
    use swiper::field::{Field, F61};

    let mut rng = StdRng::seed_from_u64(2);

    // VSS opening tamper.
    let scheme = ShamirScheme::new(3, 7).unwrap();
    let (com, mut opened) = vss::deal(&scheme, F61::new(5), &mut rng);
    opened[2].share.value = opened[2].share.value + F61::ONE;
    assert!(!vss::verify_share(&com, &opened[2]));

    // Threshold partial tamper.
    let ts = ThresholdScheme::new(2, 4).unwrap();
    let (pk, shares) = ts.keygen(&mut rng);
    let mut partial = ts.partial_sign(&shares[0], b"m");
    partial.value = partial.value + F61::ONE;
    assert!(!ts.verify_partial(&pk, b"m", &partial));

    // Merkle proof reuse on the wrong index.
    let leaves: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 3]).collect();
    let tree = MerkleTree::build(&leaves);
    let proof = tree.proof(1);
    assert!(proof.verify(&tree.root(), &leaves[1], 1));
    assert!(!proof.verify(&tree.root(), &leaves[1], 2));
}
