//! Property-based integration tests for the paper's theorems, crossing
//! crate boundaries (solver + verifier + applications).

use proptest::prelude::*;
use swiper::core::{exact, verify_qualification, verify_restriction, verify_separation};
use swiper::{
    Mode, Ratio, Swiper, WeightQualification, WeightRestriction, WeightSeparation, Weights,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Theorem 2.1: solutions respect the bound and the WR property, for
    /// random weights and random feasible thresholds.
    #[test]
    fn theorem_2_1_bound_and_validity(
        ws in proptest::collection::vec(1u64..1_000_000, 1..25),
        pw in 1u128..10, pn in 2u128..11,
    ) {
        let aw = Ratio::of(pw, 11);
        let an = Ratio::of(pn, 11);
        prop_assume!(aw < an && an.is_proper());
        let weights = Weights::new(ws).unwrap();
        let params = WeightRestriction::new(aw, an).unwrap();
        for mode in [Mode::Full, Mode::Linear] {
            let sol = Swiper::with_mode(mode).solve_restriction(&weights, &params).unwrap();
            prop_assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
            prop_assert!(verify_restriction(&weights, &sol.assignment, &params).unwrap());
        }
    }

    /// Theorem 2.2: a WQ solution obtained via reduction satisfies the
    /// *direct* qualification property: every heavy subset out-tickets the
    /// threshold.
    #[test]
    fn theorem_2_2_qualification_property(
        ws in proptest::collection::vec(1u64..10_000, 2..12),
        pw in 2u128..8, pn in 1u128..7,
    ) {
        let bw = Ratio::of(pw, 8);
        let bn = Ratio::of(pn, 8);
        prop_assume!(bn < bw && bw.is_proper());
        let weights = Weights::new(ws).unwrap();
        let params = WeightQualification::new(bw, bn).unwrap();
        let sol = Swiper::new().solve_qualification(&weights, &params).unwrap();
        prop_assert!(verify_qualification(&weights, &sol.assignment, &params).unwrap());

        // Spot-check the literal Problem 2 statement on all subsets.
        let n = weights.len();
        let t = &sol.assignment;
        for mask in 0u32..(1u32 << n) {
            let set: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
            let w: u128 = weights.subset_weight(&set);
            let heavy = w * bw.den() > bw.num() * weights.total();
            if heavy {
                let tk = t.subset_tickets(&set);
                prop_assert!(
                    tk * bn.den() > bn.num() * t.total(),
                    "heavy set {set:?} under-ticketed"
                );
            }
        }
    }

    /// Theorem 2.4: WS solutions separate light from heavy subsets.
    #[test]
    fn theorem_2_4_separation_property(
        ws in proptest::collection::vec(1u64..10_000, 1..12),
        pa in 1u128..6, pb in 2u128..7,
    ) {
        let alpha = Ratio::of(pa, 7);
        let beta = Ratio::of(pb, 7);
        prop_assume!(alpha < beta && beta.is_proper());
        let weights = Weights::new(ws).unwrap();
        let params = WeightSeparation::new(alpha, beta).unwrap();
        let sol = Swiper::new().solve_separation(&weights, &params).unwrap();
        prop_assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
        prop_assert!(verify_separation(&weights, &sol.assignment, &params).unwrap());
    }

    /// Linear mode never allocates fewer tickets than full mode, and both
    /// stay within the common bound.
    #[test]
    fn linear_mode_dominates_full_mode(
        ws in proptest::collection::vec(1u64..100_000, 1..30),
    ) {
        let weights = Weights::new(ws).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let full = Swiper::with_mode(Mode::Full).solve_restriction(&weights, &params).unwrap();
        let linear =
            Swiper::with_mode(Mode::Linear).solve_restriction(&weights, &params).unwrap();
        prop_assert!(full.total_tickets() <= linear.total_tickets());
        prop_assert_eq!(full.ticket_bound, linear.ticket_bound);
    }

    /// Determinism (the paper's requirement for local, agreement-free
    /// ticket computation): identical inputs give identical assignments.
    #[test]
    fn solver_is_deterministic(
        ws in proptest::collection::vec(1u64..1_000_000, 1..40),
    ) {
        let weights = Weights::new(ws).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let a = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let b = Swiper::new().solve_restriction(&weights, &params).unwrap();
        prop_assert_eq!(a.assignment, b.assignment);
    }

    /// Scaling invariance: multiplying all weights by a constant must not
    /// change the assignment (the problems are scale-free).
    #[test]
    fn scale_invariance(
        ws in proptest::collection::vec(1u64..10_000, 1..20),
        factor in 1u64..1_000,
    ) {
        let weights = Weights::new(ws.clone()).unwrap();
        let scaled = Weights::new(ws.iter().map(|&w| w * factor).collect()).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let a = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let b = Swiper::new().solve_restriction(&scaled, &params).unwrap();
        prop_assert_eq!(a.assignment, b.assignment);
    }
}

/// Swiper never undercuts the true optimum (sanity of "approximate").
#[test]
fn swiper_at_least_optimal_total_on_small_cases() {
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 2)).unwrap();
    for ws in [vec![3u64, 2, 1], vec![5, 5, 5, 5], vec![10, 1, 1], vec![8, 4, 2, 1]] {
        let weights = Weights::new(ws.clone()).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let total = u64::try_from(sol.total_tickets()).unwrap();
        if total <= 12 {
            let best = exact::optimal_restriction(&weights, &params, total)
                .unwrap()
                .expect("swiper's own result witnesses feasibility");
            assert!(best.total() <= sol.total_tickets(), "weights {ws:?}");
        }
    }
}
