//! The determinism-twin contract, pinned end to end: for each protocol
//! chain {bracha, aba, smr}, a run on the threaded in-process runtime
//! records a delivery trace whose replay on the deterministic simulator
//! substrate reproduces the run's outputs and metrics bit for bit.
//!
//! These tests are the seam's safety net — they fail if the trace bridge
//! (`DeliveryTrace` / `replay`) is removed or if either backend drifts
//! from the shared `Protocol` callback semantics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper::net::{
    Protocol, SendNodes, SocketTransport, ThreadedRuntime, Transport, WireCodec,
};
use swiper::protocols::aba::{AbaMsg, AbaNode, AbaSetup};
use swiper::protocols::bracha::{BrachaConfig, BrachaMsg, BrachaNode};
use swiper::protocols::smr::{SmrMsg, SmrNode};
use swiper::protocols::wire::{AbaCodec, BrachaCodec, SmrCodec};
use swiper::Weights;

fn bracha_nodes(n: usize) -> SendNodes<BrachaMsg> {
    (0..n)
        .map(|me| {
            if me == 0 {
                Box::new(BrachaNode::sender(
                    BrachaConfig::nominal(n),
                    0,
                    b"twin payload".to_vec(),
                )) as _
            } else {
                Box::new(BrachaNode::new(BrachaConfig::nominal(n), 0)) as _
            }
        })
        .collect()
}

fn aba_nodes(n: usize, seed: u64) -> SendNodes<AbaMsg> {
    let setup = AbaSetup::nominal(n, 0, &mut StdRng::seed_from_u64(seed));
    (0..n).map(|me| Box::new(AbaNode::new(setup.clone(), me % 2 == 0)) as _).collect()
}

fn smr_nodes(n: usize, seed: u64) -> SendNodes<SmrMsg> {
    let weights = Weights::new((0..n).map(|p| 10 + (p as u64 % 5)).collect()).unwrap();
    (0..n).map(|me| Box::new(SmrNode::new(me, weights.clone(), seed, 6, 128)) as _).collect()
}

/// Drops the `Send` bound so the same constructors feed the replay.
fn desend<M>(nodes: SendNodes<M>) -> Vec<Box<dyn Protocol<Msg = M>>> {
    nodes.into_iter().map(|b| b as Box<dyn Protocol<Msg = M>>).collect()
}

/// Runs a chain on the threaded runtime and asserts its twin replay is
/// bit-identical in outputs and metrics.
fn assert_twin<M, F>(make: F, workers: usize)
where
    M: Clone + swiper::net::MessageSize + Send + 'static,
    F: Fn() -> SendNodes<M>,
{
    let full = ThreadedRuntime::new(make()).with_workers(workers).run_traced();
    assert!(!full.trace.is_empty(), "the run must record a trace");
    let twin = full.trace.replay(desend(make())).expect("twin replay must not diverge");
    assert_eq!(twin.outputs, full.report.outputs, "outputs must be bit-identical");
    assert_eq!(twin.metrics, full.report.metrics, "metrics must be bit-identical");
}

/// The same contract across a real wire: every message of the run is
/// encoded, crosses loopback TCP, is decoded on the far side — and the
/// recorded trace still replays bit-identically on the simulator.
fn assert_twin_socket<M, C, F>(make: F, workers: usize)
where
    M: Clone + swiper::net::MessageSize + Send + 'static,
    C: WireCodec<M> + Default,
    F: Fn() -> SendNodes<M>,
{
    let nodes = make();
    let transport: SocketTransport<M, C> =
        SocketTransport::loopback(nodes.len()).expect("loopback sockets");
    let probe = transport.clone();
    let full = ThreadedRuntime::new(nodes)
        .with_transport(transport)
        .with_workers(workers)
        .run_traced();
    assert!(!full.trace.is_empty(), "the run must record a trace");
    assert_eq!(probe.decode_errors(), 0, "every frame must decode");
    // A healthy wire loses nothing in transit: the only drops are
    // deliveries to nodes that had already halted (Bracha and ABA halt on
    // decision), and the message conservation law stays exact.
    assert_eq!(
        full.report.metrics.total_messages(),
        full.report.metrics.delivered_messages() + full.dropped,
        "every sent message is delivered or drop-accounted"
    );
    let twin = full.trace.replay(desend(make())).expect("twin replay must not diverge");
    assert_eq!(twin.outputs, full.report.outputs, "outputs must be bit-identical");
    assert_eq!(twin.metrics, full.report.metrics, "metrics must be bit-identical");
}

#[test]
fn bracha_runtime_run_replays_bit_identically() {
    assert_twin(|| bracha_nodes(7), 3);
}

#[test]
fn aba_runtime_run_replays_bit_identically() {
    assert_twin(|| aba_nodes(7, 42), 3);
}

#[test]
fn smr_runtime_run_replays_bit_identically() {
    assert_twin(|| smr_nodes(6, 42), 3);
}

#[test]
fn bracha_socket_run_replays_bit_identically() {
    assert_twin_socket::<_, BrachaCodec, _>(|| bracha_nodes(7), 3);
}

#[test]
fn aba_socket_run_replays_bit_identically() {
    assert_twin_socket::<_, AbaCodec, _>(|| aba_nodes(7, 42), 3);
}

#[test]
fn smr_socket_run_replays_bit_identically() {
    assert_twin_socket::<_, SmrCodec, _>(|| smr_nodes(6, 42), 3);
}

/// Transport fault injection: kill the socket transport mid-run. The
/// runtime must account every in-flight envelope exactly like a
/// halted-node drop (counted quiescence converges instead of stalling),
/// and the twin replay must still pass on the delivered prefix.
#[test]
fn socket_close_mid_run_accounts_drops_and_replays_the_prefix() {
    for delay_us in [50, 300, 1500] {
        let n = 7;
        let transport: SocketTransport<BrachaMsg, BrachaCodec> =
            SocketTransport::loopback(n).expect("loopback sockets");
        let saboteur = transport.clone();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
            saboteur.close();
        });
        let full = ThreadedRuntime::new(bracha_nodes(n))
            .with_transport(transport)
            .with_workers(3)
            .run_traced();
        killer.join().unwrap();
        assert!(
            full.wall < std::time::Duration::from_secs(5),
            "drop accounting must converge the run, not ride the stall limit"
        );
        assert_eq!(
            full.report.metrics.total_messages(),
            full.report.metrics.delivered_messages() + full.dropped,
            "in-flight drops are accounted exactly like halted-node drops (close at {delay_us}us)"
        );
        // The delivered prefix — whatever the schedule managed before the
        // wire died — still replays bit-identically.
        let twin = full.trace.replay(desend(bracha_nodes(n))).expect("prefix replay");
        assert_eq!(twin.outputs, full.report.outputs);
        assert_eq!(twin.metrics, full.report.metrics);
    }
}

#[test]
fn bracha_delivers_everywhere_on_the_runtime() {
    let report = ThreadedRuntime::new(bracha_nodes(7)).with_workers(2).run_traced().report;
    for out in &report.outputs {
        assert_eq!(out.as_deref(), Some(b"twin payload".as_ref()));
    }
}

/// Metrics agreement between the two backends for one Bracha scenario.
///
/// Bracha's replicas halt at delivery, so *delivered* counters depend on
/// the schedule (in-flight messages to a halted node are dropped) — those
/// are compared runtime-vs-twin, where bit-identity is the contract. The
/// *sent* counters are schedule-independent: every replica sends exactly
/// one Echo and one Ready broadcast (plus the sender's Initial) before it
/// can ever halt, so a seeded simulator run and an independently
/// scheduled runtime run must agree on them exactly.
#[test]
fn bracha_metrics_agree_between_sim_and_runtime() {
    let n = 7;
    let sim = swiper::net::Simulation::new(desend(bracha_nodes(n)), 99)
        .with_delay(swiper::net::DelayModel::Uniform(1, 20))
        .run();
    let full = ThreadedRuntime::new(bracha_nodes(n)).with_workers(3).run_traced();
    // Schedule-independent sends: identical across backends, per node.
    assert_eq!(sim.metrics.total_messages(), full.report.metrics.total_messages());
    assert_eq!(sim.metrics.total_bytes(), full.report.metrics.total_bytes());
    for node in 0..n {
        assert_eq!(sim.metrics.sent_by(node), full.report.metrics.sent_by(node));
        assert_eq!(sim.metrics.bytes_sent_by(node), full.report.metrics.bytes_sent_by(node));
    }
    // Schedule-dependent deliveries: exact against the twin replay.
    let twin = full.trace.replay(desend(bracha_nodes(n))).expect("twin replay");
    assert_eq!(twin.metrics, full.report.metrics);
    // And both backends deliver the payload everywhere.
    assert_eq!(sim.outputs, full.report.outputs);
}
