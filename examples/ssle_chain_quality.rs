//! Single secret leader election with the chain-quality relaxation (paper
//! Section 4.4): weight reduction keeps corrupt parties below an `f_n`
//! fraction of elections, but win frequencies track tickets — fairness is
//! *not* preserved (Section 9's open problem).
//!
//! ```text
//! cargo run --example ssle_chain_quality
//! ```

use swiper::protocols::ssle::{measure_elections, SsleInstance};
use swiper::weights::stats;
use swiper::{Ratio, Swiper, WeightRestriction, Weights};

fn main() {
    let weights = Weights::new(vec![420, 330, 160, 50, 25, 15]).unwrap();
    println!("stake shares: {:?} (gini {:.2})", weights.as_slice(), stats::gini(&weights));

    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    println!("WR(1/4, 1/3) tickets: {:?}", sol.assignment.as_slice());

    // Corrupt coalition: the three smallest parties (90/1000 = 9% < 25%).
    let corrupt = vec![3usize, 4, 5];
    let stats = measure_elections(&sol.assignment, &weights, &corrupt, 20_000, 7);

    println!("\nelections: {} rounds", stats.rounds);
    for (party, wins) in stats.wins.iter().enumerate() {
        let freq = *wins as f64 / stats.rounds as f64;
        let share = weights.get(party) as f64 / weights.total() as f64;
        println!(
            "  party {party}: won {:5.1}% of rounds (stake share {:5.1}%){}",
            freq * 100.0,
            share * 100.0,
            if corrupt.contains(&party) { "  [corrupt]" } else { "" }
        );
    }
    println!(
        "\nchain quality: corrupt won {:.2}% < f_n = 33.3%  (guaranteed)",
        stats.corrupt_fraction * 100.0
    );
    println!(
        "fairness gap: {:.3} — win frequency deviates from stake share, the\n\
         price of discretized tickets (paper Section 9)",
        stats.fairness_gap
    );

    // Secrecy: only the elected party can open the winning commitment.
    let instance = SsleInstance::setup(&sol.assignment, 7);
    let beacon = swiper::crypto::hash::digest(b"epoch-randomness");
    let election = instance.elect(0, &beacon);
    let winner = instance.winner_party(&election);
    let proof = instance.prove(&election, winner).expect("winner can prove");
    assert!(instance.verify(&election, &proof));
    println!("\nround 0 winner: party {winner} (proof verifies; losers cannot prove)");
}
