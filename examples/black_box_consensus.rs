//! The black-box transformation (paper Section 4.4): take a *nominal*
//! binary agreement implementation, hand each weighted party `t_i` virtual
//! identities via Weight Restriction, and run the wrapped protocol
//! unchanged — resilience `f_w = f_n - epsilon`.
//!
//! ```text
//! cargo run --example black_box_consensus
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper::net::{Protocol, Simulation};
use swiper::protocols::aba::{AbaMsg, AbaNode, AbaSetup};
use swiper::protocols::blackbox::{BlackBox, BlackBoxConfig, BlackBoxMsg};
use swiper::{Ratio, Swiper, WeightRestriction, Weights};

fn main() {
    // Weighted system: 5 parties with skewed but non-dominant stake (no
    // party can run a supermajority of virtual identities alone).
    let weights = Weights::new(vec![300, 250, 200, 150, 100]).unwrap();
    // f_w = 1/4 < f_n = 1/3: the epsilon resilience price of black-boxing.
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    println!(
        "WR(1/4, 1/3) tickets: {:?} -> {} virtual identities",
        sol.assignment.as_slice(),
        sol.total_tickets()
    );

    let config = BlackBoxConfig::new(weights, &sol.assignment, Ratio::of(1, 4));
    let total = config.virtual_count();

    // The nominal protocol: MMR-style binary agreement for `total` nodes.
    let setup = AbaSetup::nominal(total, 1, &mut StdRng::seed_from_u64(1));

    // Parties 0 and 2 propose `true`; the rest propose `false`.
    let inputs = [true, false, true, false, false];
    let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<AbaMsg>>>> = (0..5)
        .map(|party| {
            let s = setup.clone();
            let input = inputs[party];
            // Every virtual identity of a party inherits the party's input
            // (the problem-specific input mapping of Section 4.4).
            Box::new(BlackBox::new(config.clone(), party, move |_v, _roster| {
                AbaNode::new(s.clone(), input)
            })) as _
        })
        .collect();

    let report = Simulation::new(nodes, 99).run();
    for (party, out) in report.outputs.iter().enumerate() {
        println!(
            "party {party} (input {:5}) decided {:?}",
            inputs[party],
            out.as_ref().map(|o| o[0] == 1)
        );
    }
    assert!(report.agreement_among(&[0, 1, 2, 3, 4]), "agreement must hold");
    println!(
        "\nagreement across all weighted parties; {} simulator events, {} messages",
        report.events,
        report.metrics.total_messages()
    );
}
