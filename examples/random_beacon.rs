//! Weighted randomness beacon (paper Section 4.1): Weight Restriction
//! deals threshold-signature shares to virtual users; each round the
//! parties exchange partials and hash the unique combined signature.
//!
//! ```text
//! cargo run --example random_beacon
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper::net::{Protocol, Simulation};
use swiper::protocols::beacon::{BeaconMsg, BeaconNode, BeaconSetup};
use swiper::{Ratio, Swiper, WeightRestriction, Weights};

fn main() {
    let weights = Weights::new(vec![500, 300, 120, 50, 20, 10]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    println!(
        "tickets {:?} -> {} key shares, combine threshold {}",
        sol.assignment.as_slice(),
        sol.total_tickets(),
        sol.total_tickets() / 2 + 1
    );

    let setup =
        BeaconSetup::deal(&sol.assignment, Ratio::of(1, 2), &mut StdRng::seed_from_u64(42));
    println!(
        "share bundles per party: {:?}",
        setup.shares.iter().map(Vec::len).collect::<Vec<_>>()
    );

    for round in 1..=3u64 {
        let nodes: Vec<Box<dyn Protocol<Msg = BeaconMsg>>> = (0..weights.len())
            .map(|_| Box::new(BeaconNode::new(setup.clone(), round)) as _)
            .collect();
        let report = Simulation::new(nodes, round).run();
        let out = report.outputs[0].as_ref().expect("beacon output");
        // All parties agree on the round randomness.
        assert!(report.outputs.iter().all(|o| o.as_ref() == Some(out)));
        let hex: String = out.iter().take(16).map(|b| format!("{b:02x}")).collect();
        println!(
            "round {round}: randomness {hex}.. ({} messages, {} bytes)",
            report.metrics.total_messages(),
            report.metrics.total_bytes()
        );
    }
    println!("\nunpredictability: any coalition below 1/3 of stake holds fewer than");
    println!("half the shares (Weight Restriction), so it cannot combine the signature.");
}
