//! Expected fairness (paper Section 9): rebalance the fairness distortion
//! of deterministic tickets with a small lottery so that every party's
//! expected ticket share equals its weight share exactly — while safety
//! holds even if the adversary wins every lottery ticket.
//!
//! ```text
//! cargo run -p swiper --release --example expected_fairness
//! ```

use swiper::core::fairness::FairExtension;
use swiper::{Ratio, Swiper, WeightRestriction, Weights};

fn main() {
    let weights = Weights::new(vec![290, 260, 180, 130, 80, 60]).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 2)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    println!(
        "deterministic tickets: {:?} (T = {})",
        sol.assignment.as_slice(),
        sol.total_tickets()
    );

    // Deterministic tickets distort shares (the SSLE fairness problem).
    println!("\nshare distortion before the lottery:");
    for (i, w) in weights.iter() {
        let tshare = sol.assignment.get(i) as f64 / sol.total_tickets() as f64;
        let wshare = w as f64 / weights.total() as f64;
        println!(
            "  party {i}: weight {:5.1}%  tickets {:5.1}%  (gap {:+.1}%)",
            wshare * 100.0,
            tshare * 100.0,
            (tshare - wshare) * 100.0
        );
    }

    let fair = FairExtension::new(&weights, &sol.assignment).unwrap();
    println!(
        "\nlottery: {} extra tickets (combined total {})",
        fair.lottery_tickets(),
        fair.total()
    );

    // Empirically the expectation matches the weight share.
    let rounds = 10_000u64;
    let mut sums = vec![0u128; weights.len()];
    for seed in 0..rounds {
        let combined = fair.sample(seed);
        for (i, s) in sums.iter_mut().enumerate() {
            *s += u128::from(combined.get(i));
        }
    }
    println!("\nempirical mean ticket share over {rounds} lotteries:");
    for (i, w) in weights.iter() {
        let mean_share = sums[i] as f64 / rounds as f64 / fair.total() as f64;
        let wshare = w as f64 / weights.total() as f64;
        println!(
            "  party {i}: weight {:5.2}%  mean tickets {:5.2}%  (gap {:+.2}%)",
            wshare * 100.0,
            mean_share * 100.0,
            (mean_share - wshare) * 100.0
        );
    }

    // Worst case: the adversary wins every lottery ticket.
    let safe = fair.verify_worst_case(&params).unwrap();
    println!(
        "\nworst-case safety (adversary wins ALL {} lottery tickets): {}",
        fair.lottery_tickets(),
        if safe { "Weight Restriction still holds" } else { "would break with this tiny base" }
    );

    if !safe {
        // The paper conjectures fairness "can be done while still
        // preserving safety ... deterministically". The knob: use a
        // *larger* family member (the theoretical-bound member is valid by
        // Theorem 2.1 and nearly proportional), so the lottery stays a
        // tiny fraction of the total. A narrow alpha_n gap makes the bound
        // member big.
        let narrow = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(3, 10)).unwrap();
        let bound = narrow.ticket_bound(weights.len() as u64).unwrap();
        let base = Swiper::new().restriction_family_member(&weights, &narrow, bound).unwrap();
        let fair = FairExtension::new(&weights, &base).unwrap();
        let safe = fair.verify_worst_case(&narrow).unwrap();
        println!(
            "with the WR(1/4, 3/10) bound member: base T = {} ({:?}), lottery R = {}, worst case {}",
            base.total(),
            base.as_slice(),
            fair.lottery_tickets(),
            if safe { "SAFE - fairness and safety coexist" } else { "still breaks" }
        );
    }
}
