//! Erasure-coded storage with online error correction (paper Sections
//! 5.1–5.2 substrate): shard a blob, lose fragments, corrupt fragments,
//! and still reconstruct — with the hash check that makes silent
//! corruption impossible.
//!
//! ```text
//! cargo run --example erasure_storage
//! ```

#![allow(clippy::needless_range_loop)]

use swiper::crypto::hash::digest;
use swiper::erasure::shards::{decode_bytes, encode_bytes, pack_symbols, unpack_symbols};
use swiper::erasure::{OnlineDecoder, ReedSolomon};
use swiper::field::F61;

fn main() {
    let blob = b"Weighted distributed protocols need integer fragments; \
                 weight reduction makes the fragment count small."
        .to_vec();
    println!("blob: {} bytes, hash {}", blob.len(), digest(&blob));

    // --- Erasure-only storage (AVID style, Section 5.1) -----------------
    let (k, m) = (4, 12);
    let shards = encode_bytes(&blob, k, m).unwrap();
    println!("\nerasure coding: {m} shards of {} bytes (any {k} reconstruct)", shards[0].len());

    // Keep only shards 5, 7, 9, 11 (8 of 12 lost).
    let kept: Vec<_> =
        shards.iter().filter(|s| s.index % 2 == 1 && s.index >= 5).cloned().collect();
    let restored = decode_bytes(&kept, k, m).unwrap();
    assert_eq!(restored, blob);
    println!(
        "reconstructed from shards {:?}",
        kept.iter().map(|s| s.index).collect::<Vec<_>>()
    );

    // --- Error correction (ECBC style, Section 5.2) ---------------------
    // Symbol-level code: k + 2e fragments survive e corruptions.
    let (k, m) = (5, 15);
    let rs: ReedSolomon<F61> = ReedSolomon::new(k, m).unwrap();
    let symbols = pack_symbols(&blob[..27], k).unwrap();
    let frags = rs.encode(&symbols[..k]).unwrap();

    let mut dec = OnlineDecoder::new(rs);
    let expect_hash = digest(&blob[..27]);
    // Three Byzantine fragments arrive first...
    for i in 0..3 {
        dec.add_fragment(i, F61::new(0xBAD + i as u64)).unwrap();
        println!("fragment {i}: CORRUPTED");
    }
    // ...then honest ones trickle in; decode as soon as possible.
    for i in 3..m {
        dec.add_fragment(i, frags[i]).unwrap();
        if let Some(symbols) =
            dec.try_decode(|cand| unpack_symbols(cand).is_ok_and(|d| digest(&d) == expect_hash))
        {
            let data = unpack_symbols(&symbols).unwrap();
            println!(
                "fragment {i}: decoded through the garbage after {} attempts -> {:?}",
                dec.attempts(),
                String::from_utf8_lossy(&data)
            );
            assert_eq!(data, blob[..27]);
            return;
        }
        println!("fragment {i}: not yet ({} received)", dec.received());
    }
    unreachable!("online error correction must succeed with k + 2e honest fragments");
}
