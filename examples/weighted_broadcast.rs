//! Weighted erasure-coded broadcast (paper Section 5.1): Weight
//! Qualification sizes the fragments, AVID disperses a blob across a
//! weighted validator set on the simulated network, and everyone
//! reconstructs — while a heavy party stays silent.
//!
//! ```text
//! cargo run --example weighted_broadcast
//! ```

use swiper::net::adversary::Silent;
use swiper::net::{Protocol, Simulation};
use swiper::protocols::avid::{AvidConfig, AvidMsg, AvidNode};
use swiper::protocols::bracha::{BrachaConfig, BrachaMsg, BrachaNode};
use swiper::{Ratio, Swiper, WeightQualification, Weights};

fn main() {
    let weights = Weights::new(vec![400, 250, 150, 100, 60, 40]).unwrap();
    let blob = vec![0xAB; 50_000];

    // WQ(beta_w = f_w = 1/3, beta_n = 1/4): fragments per ticket.
    let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
    let sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
    println!("WQ tickets: {:?} (T = {})", sol.assignment.as_slice(), sol.total_tickets());

    let config = AvidConfig::weighted(weights, &sol.assignment, Ratio::of(1, 4));
    println!("code: any {} of {} fragments reconstruct", config.k(), config.m());

    // Party 2 (150/1000 < 1/3 of weight) is silent.
    let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = Vec::new();
    nodes.push(Box::new(AvidNode::dealer(config.clone(), 0, blob.clone())));
    nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
    nodes.push(Box::new(Silent::new()));
    for _ in 3..6 {
        nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
    }
    let avid = Simulation::new(nodes, 7).run();
    for (i, out) in avid.outputs.iter().enumerate() {
        match out {
            Some(data) => println!("party {i}: delivered {} bytes", data.len()),
            None => println!("party {i}: (silent adversary)"),
        }
    }
    assert!(avid.outputs[1].as_deref() == Some(blob.as_slice()));

    // Baseline: Bracha RBC ships the whole blob n^2 times.
    let config = BrachaConfig::nominal(6);
    let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
    nodes.push(Box::new(BrachaNode::sender(config.clone(), 0, blob.clone())));
    for _ in 1..6 {
        nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
    }
    let bracha = Simulation::new(nodes, 7).run();

    println!(
        "\ncommunication: AVID {} bytes vs Bracha {} bytes ({:.1}x saved)",
        avid.metrics.total_bytes(),
        bracha.metrics.total_bytes(),
        bracha.metrics.total_bytes() as f64 / avid.metrics.total_bytes() as f64
    );
}
