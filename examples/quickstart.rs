//! Quickstart: reduce real-looking stake weights to tickets and inspect
//! the guarantees.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use swiper::core::{verify_restriction, CoreError};
use swiper::{Mode, Ratio, Swiper, VirtualUsers, WeightRestriction, Weights};

fn main() -> Result<(), CoreError> {
    // A small proof-of-stake validator set (stake in tokens; no single
    // validator reaches the 1/3 corruption threshold).
    let stake = Weights::new(vec![
        950_000, 880_000, 610_000, 420_000, 220_000, 90_000, 55_000, 31_000, 9_000, 1_200,
    ])?;
    println!("validators: {}  total stake: {}", stake.len(), stake.total());

    // Goal (paper Section 4.1): run a nominal 1/2-threshold randomness
    // beacon while tolerating < 1/3 of *stake* being corrupt.
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2))?;

    for (label, mode) in [("full", Mode::Full), ("linear", Mode::Linear)] {
        let solution = Swiper::with_mode(mode).solve_restriction(&stake, &params)?;
        println!("\n[{label} mode] tickets = {:?}", solution.assignment.as_slice());
        println!(
            "  total T = {} (theoretical bound {}), holders = {}, max = {}",
            solution.total_tickets(),
            solution.ticket_bound,
            solution.assignment.holders(),
            solution.assignment.max_tickets(),
        );
        // The exact verifier replays the knapsack check.
        assert!(verify_restriction(&stake, &solution.assignment, &params)?);
        println!("  verified: every sub-1/3-stake coalition holds < 1/2 of tickets");

        // Hand out virtual users for the nominal protocol.
        let mapping = VirtualUsers::from_assignment(&solution.assignment)?;
        println!(
            "  virtual users: {} (validator 0 controls {:?})",
            mapping.total(),
            mapping.virtuals_of(0).collect::<Vec<_>>()
        );
    }
    Ok(())
}
