//! Offline stand-in for `rand` 0.9.
//!
//! Provides exactly the surface this workspace uses — [`Rng::random`],
//! [`Rng::random_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and slice [`seq::SliceRandom::shuffle`] — backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64. The
//! simulator and tests only need deterministic, well-mixed streams, not
//! cryptographic quality, so the shim is drop-in for this repo; swapping
//! in the real crate later is a manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" (uniform over the domain) distribution.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges a value can be drawn uniformly from (subset of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// Panics when the range is empty, matching `rand`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of an inferred type from the standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

macro_rules! impl_uint_standard {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uint_standard!(u8, u16, u32, u64, usize);

impl StandardUniform for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let draw = u128::from(rng.next_u64()) % span;
                lo + draw as $t
            }
        }
    )*};
}
impl_uint_range!(u8, u16, u32, u64, usize);

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        self.start + u128::sample(rng) % span
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the pathological rounding-up-to-end case.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure — matching the caveat on the
    /// real `StdRng` that its stream is unstable across versions, the
    /// stream here differs from upstream `rand`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_mixed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
