//! Offline stand-in for `criterion`.
//!
//! Supports the subset of the API the `swiper-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / `sample_size` / `throughput`,
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistics engine
//! each benchmark is timed with a simple calibrated wall-clock loop and a
//! `name/id: median time ± spread` line is printed. Good enough to compare
//! orders of magnitude offline; swap the real crate in for publication-grade
//! numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { _c: self, name, sample_size: 24 }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

/// Declared throughput of a benchmark, echoed in its report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take (criterion-compatible signature).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Records the group's throughput (echoed, not used in statistics).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(b) => println!("   throughput: {b} bytes/iter"),
            Throughput::Elements(e) => println!("   throughput: {e} elements/iter"),
        }
        self
    }

    /// Times `f` and prints one report line.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_text();
        let mut b = Bencher { samples: Vec::new(), budget: self.sample_size };
        f(&mut b);
        b.report(&self.name, &id);
        self
    }

    /// Times `f` with an input and prints one report line.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_text();
        let mut b = Bencher { samples: Vec::new(), budget: self.sample_size };
        f(&mut b, input);
        b.report(&self.name, &id);
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Runs `f` repeatedly — one warm-up plus `sample_size` timed samples —
    /// recording per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("   {group}/{id}: no samples");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = *self.samples.last().expect("non-empty");
        println!("   {group}/{id}: {median:?} (min {lo:?}, max {hi:?})");
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(4);
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
