//! Offline stand-in for `proptest`.
//!
//! The registry is unreachable in this build environment, so this crate
//! reimplements the slice of proptest this workspace uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * strategies: integer/float ranges, tuples, [`collection::vec`],
//!   [`arbitrary::any`], [`sample::Index`], [`strategy::Just`].
//!
//! Semantics differ from the real crate in one deliberate way: failing
//! cases are **not shrunk** — the failing input is printed as sampled.
//! Each test's random stream is seeded from a hash of its function name,
//! so runs are deterministic and reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use rand::prelude::*;

    /// Per-test configuration (subset of the real `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Outcome of one sampled case; `Reject` comes from [`crate::prop_assume!`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TestCaseResult {
        /// The case ran to completion (assertions panic on their own).
        Pass,
        /// The case's assumptions did not hold; sample a fresh one.
        Reject,
    }

    /// Deterministic source of randomness for strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from an arbitrary string (the test's name), so each test
        /// gets a distinct but reproducible stream.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// A uniform draw below `bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

/// Strategy trait and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom};

    /// A recipe for generating values (sampling-only subset of the real
    /// `Strategy`: no shrink trees).
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    let draw = (u128::from(rng.next_u64()) % span) as $t;
                    self.start + draw
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (<$t>::MAX - self.start) as u128 + 1;
                    let draw = (u128::from(rng.next_u64()) % span) as $t;
                    self.start + draw
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<u128> {
        type Value = u128;
        fn sample(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
            self.start + wide % span
        }
    }

    impl Strategy for RangeFrom<u128> {
        type Value = u128;
        fn sample(&self, rng: &mut TestRng) -> u128 {
            let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
            // Uniform over [start, MAX] without widening past u128: draw in
            // [0, MAX - start] by rejection-free modulo on the span + 1 when
            // it fits, falling back to a plain draw when span covers the type.
            let span = u128::MAX - self.start;
            if span == u128::MAX {
                wide
            } else {
                self.start + wide % (span + 1)
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// `any::<T>()` and the `Arbitrary` trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.below(65) as usize;
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling helper types.
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use site
    /// (mirror of `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics when `len == 0`, matching the real crate.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Marks a case as rejected (resampled) when its assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::test_runner::TestCaseResult::Reject;
        }
    };
}

/// `assert!` under a name the real proptest uses inside [`proptest!`] blocks.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Property-test entry point: samples each strategy, binds the patterns and
/// runs the body for the configured number of accepted cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let cases = config.cases;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts <= cases.saturating_mul(200),
                        "prop_assume rejected too many samples in {}",
                        stringify!($name),
                    );
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // An IIFE so prop_assume! can `return Reject` early.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (move || -> $crate::test_runner::TestCaseResult {
                        $body
                        $crate::test_runner::TestCaseResult::Pass
                    })();
                    if outcome == $crate::test_runner::TestCaseResult::Pass {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_in_bounds(
            x in 10u64..20,
            ws in crate::collection::vec(1u64..100, 2..5),
            (a, b) in (0u32..4, 0u64..1_000_000),
            pick in any::<crate::sample::Index>(),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(ws.len() >= 2 && ws.len() < 5);
            prop_assert!(ws.iter().all(|&w| (1..100).contains(&w)));
            prop_assert!(a < 4);
            prop_assert!(b < 1_000_000);
            prop_assert!(pick.index(7) < 7);
        }

        #[test]
        fn assume_resamples(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        let mut c = crate::test_runner::TestRng::deterministic("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
