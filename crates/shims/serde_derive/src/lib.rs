//! Offline stand-in for `serde_derive`.
//!
//! The real derive generates `Serialize`/`Deserialize` impls; the shim's
//! `serde` crate instead blanket-implements both marker traits, so these
//! derives only need to *accept* the syntax (including `#[serde(...)]`
//! attributes) and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; the blanket impl in `serde` supplies the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; the blanket impl in `serde` supplies the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
