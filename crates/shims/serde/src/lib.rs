//! Offline stand-in for `serde`.
//!
//! This workspace builds in an environment without registry access, so the
//! real `serde` cannot be fetched. The codebase only uses
//! `#[derive(Serialize, Deserialize)]` as forward-compatible annotations —
//! nothing serializes yet — so this shim provides the two trait names with
//! blanket impls and re-exports no-op derive macros. Swapping in the real
//! `serde` later is a one-line manifest change; no source edits needed.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
