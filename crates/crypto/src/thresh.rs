//! Simulated threshold signatures and threshold encryption.
//!
//! **Substitution notice.** The paper instantiates its weighted threshold
//! primitives with BLS/RSA/Schnorr threshold signatures and ElGamal-style
//! threshold encryption. None of those are implementable offline without a
//! pairing/group library, and the paper's claims concern *share
//! allocation*, not the hardness assumptions. We therefore simulate the
//! group `g^x` by the field product `x * h` over `F_{2^61-1}`: everything
//! protocol-visible is preserved —
//!
//! * partials combine via Lagrange interpolation exactly like BLS shares
//!   combine in the exponent;
//! * partial signatures are verifiable against per-share verification keys
//!   (`sigma_i * h == vk_i * H(m)`);
//! * the combined signature is **unique and deterministic**
//!   (`sigma = s * H(m)`), the property randomness beacons require;
//! * per-operation cost is one field multiplication per share plus one
//!   Lagrange combination, mirroring the nominal cost model.
//!
//! The scheme is of course forgeable by dividing field elements; see the
//! crate-level disclaimer.

use rand::Rng;
use serde::{Deserialize, Serialize};
use swiper_field::{poly, Field, F61};

use crate::error::CryptoError;
use crate::hash::{digest_parts, digest_to_f61, Digest};

/// Hashes a message into a non-zero field element.
fn hash_to_field(msg: &[u8]) -> F61 {
    let d = digest_parts(&[b"swiper.thresh.h2f", msg]);
    let x = digest_to_f61(&d);
    if x.is_zero() {
        F61::ONE
    } else {
        x
    }
}

/// A share of the signing key (one per virtual user).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyShare {
    /// Share index in `0..total`.
    pub index: u64,
    /// Secret scalar share.
    pub value: F61,
}

/// Public material: the base point stand-in `h`, the group verification key
/// and per-share verification keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    /// Simulated base point (non-zero field element).
    pub h: F61,
    /// `s * h` for the group secret `s`.
    pub group: F61,
    /// `s_i * h` for each key share.
    pub per_share: Vec<F61>,
}

/// A partial signature from one virtual user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialSignature {
    /// Index of the signing share.
    pub index: u64,
    /// `s_i * H(m)`.
    pub value: F61,
}

/// A combined threshold signature (`s * H(m)` — unique per message).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature(pub F61);

impl Signature {
    /// Deterministic digest of the signature — the beacon output of
    /// Section 4.1 ("practical randomness beacons ... employ unique
    /// threshold signatures").
    pub fn beacon_output(&self) -> Digest {
        digest_parts(&[b"swiper.thresh.beacon", &self.0.value().to_le_bytes()])
    }
}

/// A `(threshold, total)` threshold signature scheme instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdScheme {
    threshold: usize,
    total: usize,
}

impl ThresholdScheme {
    /// Creates a scheme where any `threshold` of `total` shares sign.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] when `threshold == 0` or
    /// `threshold > total`.
    pub fn new(threshold: usize, total: usize) -> Result<Self, CryptoError> {
        if threshold == 0 || threshold > total {
            return Err(CryptoError::InvalidParameters {
                what: format!("need 0 < threshold <= total, got {threshold}/{total}"),
            });
        }
        Ok(ThresholdScheme { threshold, total })
    }

    /// Signing threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Total number of key shares.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Trusted-dealer key generation (the setting of Section 4.1; the paper
    /// also cites DKGs, which live in `swiper-protocols`).
    pub fn keygen<R: Rng + ?Sized>(&self, rng: &mut R) -> (PublicKey, Vec<KeyShare>) {
        let secret = F61::new(rng.random::<u64>());
        let h = loop {
            let c = F61::new(rng.random::<u64>());
            if !c.is_zero() {
                break c;
            }
        };
        // Shamir-share the secret.
        let mut coeffs = vec![secret];
        for _ in 1..self.threshold {
            coeffs.push(F61::new(rng.random::<u64>()));
        }
        let shares: Vec<KeyShare> = (0..self.total)
            .map(|i| KeyShare {
                index: i as u64,
                value: poly::eval(&coeffs, F61::eval_point(i)),
            })
            .collect();
        let per_share = shares.iter().map(|ks| ks.value * h).collect();
        (PublicKey { h, group: secret * h, per_share }, shares)
    }

    /// Deals fresh shares of an **existing** group secret to this scheme's
    /// population — proactive resharing, the epoch-crossing form of
    /// [`ThresholdScheme::keygen`]. `self` is the *new* `(threshold,
    /// total)` scheme; the secret is recovered from at least
    /// `old.threshold()` of the old generation's shares (the trusted-
    /// dealer simulation holds them all) and re-split over a fresh random
    /// polynomial, keeping the old base point.
    ///
    /// Because the group secret and base survive, the group verification
    /// key — and therefore the **unique combined signature of every
    /// message** — is identical across generations: a consumer deriving
    /// randomness from combined signatures (common coins, beacons) sees
    /// the same output whether a tag is combined from old-generation or
    /// new-generation partials, which is what makes mid-protocol re-deals
    /// safe. Old-generation *partials* do not verify against the new
    /// per-share keys, so post-reshare traffic cleanly rejects them.
    ///
    /// # Errors
    ///
    /// As [`ThresholdScheme::combine`], for the secret recovery.
    pub fn reshare<R: Rng + ?Sized>(
        &self,
        old: &ThresholdScheme,
        old_pk: &PublicKey,
        old_shares: &[KeyShare],
        rng: &mut R,
    ) -> Result<(PublicKey, Vec<KeyShare>), CryptoError> {
        // Recover the secret by interpolating `old.threshold` distinct
        // shares at zero.
        let mut seen = std::collections::HashSet::new();
        let mut use_shares = Vec::with_capacity(old.threshold);
        for s in old_shares {
            if !seen.insert(s.index) {
                return Err(CryptoError::DuplicateShare { index: s.index });
            }
            if use_shares.len() < old.threshold {
                use_shares.push(*s);
            }
        }
        if use_shares.len() < old.threshold {
            return Err(CryptoError::NotEnoughShares {
                needed: old.threshold,
                have: use_shares.len(),
            });
        }
        let xs: Vec<F61> =
            use_shares.iter().map(|s| F61::eval_point(s.index as usize)).collect();
        let lambdas = poly::lagrange_coefficients(&xs, F61::ZERO);
        let mut secret = F61::ZERO;
        for (s, l) in use_shares.iter().zip(lambdas) {
            secret = secret + s.value * l;
        }
        // Fresh polynomial, same constant term, same base point.
        let h = old_pk.h;
        let mut coeffs = vec![secret];
        for _ in 1..self.threshold {
            coeffs.push(F61::new(rng.random::<u64>()));
        }
        let shares: Vec<KeyShare> = (0..self.total)
            .map(|i| KeyShare {
                index: i as u64,
                value: poly::eval(&coeffs, F61::eval_point(i)),
            })
            .collect();
        let per_share = shares.iter().map(|ks| ks.value * h).collect();
        Ok((PublicKey { h, group: secret * h, per_share }, shares))
    }

    /// Produces a partial signature.
    pub fn partial_sign(&self, share: &KeyShare, msg: &[u8]) -> PartialSignature {
        PartialSignature { index: share.index, value: share.value * hash_to_field(msg) }
    }

    /// Verifies a partial signature against the per-share verification key:
    /// `sigma_i * h == vk_i * H(m)`.
    pub fn verify_partial(
        &self,
        pk: &PublicKey,
        msg: &[u8],
        partial: &PartialSignature,
    ) -> bool {
        let Some(&vk_i) = pk.per_share.get(partial.index as usize) else {
            return false;
        };
        partial.value * pk.h == vk_i * hash_to_field(msg)
    }

    /// Combines `threshold` distinct valid partials into the unique group
    /// signature via Lagrange interpolation at zero.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::NotEnoughShares`] below the threshold.
    /// * [`CryptoError::DuplicateShare`] on repeated indices.
    pub fn combine(&self, partials: &[PartialSignature]) -> Result<Signature, CryptoError> {
        let mut seen = std::collections::HashSet::new();
        let mut use_partials = Vec::with_capacity(self.threshold);
        for p in partials {
            if !seen.insert(p.index) {
                return Err(CryptoError::DuplicateShare { index: p.index });
            }
            if use_partials.len() < self.threshold {
                use_partials.push(*p);
            }
        }
        if use_partials.len() < self.threshold {
            return Err(CryptoError::NotEnoughShares {
                needed: self.threshold,
                have: use_partials.len(),
            });
        }
        let xs: Vec<F61> =
            use_partials.iter().map(|p| F61::eval_point(p.index as usize)).collect();
        let lambdas = poly::lagrange_coefficients(&xs, F61::ZERO);
        let mut sig = F61::ZERO;
        for (p, l) in use_partials.iter().zip(lambdas) {
            sig = sig + p.value * l;
        }
        Ok(Signature(sig))
    }

    /// Verifies a combined signature: `sigma * h == group_vk * H(m)`.
    pub fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        sig.0 * pk.h == pk.group * hash_to_field(msg)
    }
}

/// A threshold-encrypted ciphertext (simulated ElGamal).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    /// `r * h`.
    pub c1: F61,
    /// `payload XOR KDF(r * group_vk)`.
    pub masked: Vec<u8>,
}

/// A decryption share `s_i * c1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecryptionShare {
    /// Index of the contributing key share.
    pub index: u64,
    /// `s_i * c1`.
    pub value: F61,
}

fn kdf(x: F61, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u64;
    while out.len() < len {
        let d = digest_parts(&[
            b"swiper.thresh.kdf",
            &x.value().to_le_bytes(),
            &counter.to_le_bytes(),
        ]);
        out.extend_from_slice(d.as_bytes());
        counter += 1;
    }
    out.truncate(len);
    out
}

impl ThresholdScheme {
    /// Encrypts to the group key.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        pk: &PublicKey,
        payload: &[u8],
        rng: &mut R,
    ) -> Ciphertext {
        let r = F61::new(rng.random::<u64>());
        let mask = kdf(r * pk.group, payload.len());
        let masked = payload.iter().zip(mask).map(|(b, m)| b ^ m).collect();
        Ciphertext { c1: r * pk.h, masked }
    }

    /// Produces a decryption share.
    pub fn decryption_share(&self, share: &KeyShare, ct: &Ciphertext) -> DecryptionShare {
        DecryptionShare { index: share.index, value: share.value * ct.c1 }
    }

    /// Combines `threshold` decryption shares and unmasks the payload.
    ///
    /// Note `s * c1 = s * r * h = r * group_vk`, matching the encryption
    /// mask.
    ///
    /// # Errors
    ///
    /// As [`ThresholdScheme::combine`].
    pub fn decrypt(
        &self,
        ct: &Ciphertext,
        shares: &[DecryptionShare],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut seen = std::collections::HashSet::new();
        let mut use_shares = Vec::with_capacity(self.threshold);
        for s in shares {
            if !seen.insert(s.index) {
                return Err(CryptoError::DuplicateShare { index: s.index });
            }
            if use_shares.len() < self.threshold {
                use_shares.push(*s);
            }
        }
        if use_shares.len() < self.threshold {
            return Err(CryptoError::NotEnoughShares {
                needed: self.threshold,
                have: use_shares.len(),
            });
        }
        let xs: Vec<F61> =
            use_shares.iter().map(|s| F61::eval_point(s.index as usize)).collect();
        let lambdas = poly::lagrange_coefficients(&xs, F61::ZERO);
        let mut combined = F61::ZERO;
        for (s, l) in use_shares.iter().zip(lambdas) {
            combined = combined + s.value * l;
        }
        let mask = kdf(combined, ct.masked.len());
        Ok(ct.masked.iter().zip(mask).map(|(b, m)| b ^ m).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEA_C04)
    }

    #[test]
    fn sign_combine_verify() {
        let scheme = ThresholdScheme::new(3, 7).unwrap();
        let (pk, shares) = scheme.keygen(&mut rng());
        let msg = b"round-42";
        let partials: Vec<PartialSignature> =
            shares[2..5].iter().map(|s| scheme.partial_sign(s, msg)).collect();
        for p in &partials {
            assert!(scheme.verify_partial(&pk, msg, p));
        }
        let sig = scheme.combine(&partials).unwrap();
        assert!(scheme.verify(&pk, msg, &sig));
        assert!(!scheme.verify(&pk, b"round-43", &sig));
    }

    #[test]
    fn signature_is_unique_across_quorums() {
        // The uniqueness property beacons need: ANY quorum combines to the
        // same signature.
        let scheme = ThresholdScheme::new(2, 5).unwrap();
        let (_, shares) = scheme.keygen(&mut rng());
        let msg = b"beacon-epoch-7";
        let all: Vec<PartialSignature> =
            shares.iter().map(|s| scheme.partial_sign(s, msg)).collect();
        let mut sigs = std::collections::HashSet::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                sigs.insert(scheme.combine(&[all[a], all[b]]).unwrap());
            }
        }
        assert_eq!(sigs.len(), 1, "all quorums agree on one signature");
        // And the derived beacon output is deterministic.
        let s = sigs.into_iter().next().unwrap();
        assert_eq!(s.beacon_output(), s.beacon_output());
    }

    #[test]
    fn reshare_carries_the_group_key_and_retires_old_partials() {
        let old_scheme = ThresholdScheme::new(4, 6).unwrap();
        let (old_pk, old_shares) = old_scheme.keygen(&mut rng());
        // Shrink to a 3-holder population: any 2 of the new shares sign.
        let new_scheme = ThresholdScheme::new(2, 3).unwrap();
        let (new_pk, new_shares) = new_scheme
            .reshare(&old_scheme, &old_pk, &old_shares, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(new_pk.group, old_pk.group, "the group verification key survives");
        assert_eq!(new_pk.per_share.len(), 3);
        let msg = b"straddling-round-coin";
        // The unique combined signature is identical across generations —
        // a round combined pre-reshare and one combined post-reshare see
        // the same coin.
        let old_partials: Vec<PartialSignature> =
            old_shares[..4].iter().map(|s| old_scheme.partial_sign(s, msg)).collect();
        let new_partials: Vec<PartialSignature> =
            new_shares[..2].iter().map(|s| new_scheme.partial_sign(s, msg)).collect();
        let old_sig = old_scheme.combine(&old_partials).unwrap();
        let new_sig = new_scheme.combine(&new_partials).unwrap();
        assert_eq!(old_sig, new_sig);
        assert!(new_scheme.verify(&new_pk, msg, &new_sig));
        // Old-generation partials are rejected under the new per-share
        // keys (in-flight pre-boundary traffic cannot poison a tally).
        for p in &old_partials {
            assert!(!new_scheme.verify_partial(&new_pk, msg, p));
        }
        // Determinism: the same rng state deals the same shares.
        let (again_pk, again_shares) = new_scheme
            .reshare(&old_scheme, &old_pk, &old_shares, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(again_pk, new_pk);
        assert_eq!(again_shares, new_shares);
    }

    #[test]
    fn reshare_needs_a_recovery_quorum() {
        let old_scheme = ThresholdScheme::new(3, 5).unwrap();
        let (old_pk, old_shares) = old_scheme.keygen(&mut rng());
        let new_scheme = ThresholdScheme::new(2, 4).unwrap();
        assert!(matches!(
            new_scheme.reshare(&old_scheme, &old_pk, &old_shares[..2], &mut rng()),
            Err(CryptoError::NotEnoughShares { needed: 3, have: 2 })
        ));
    }

    #[test]
    fn forged_partial_detected() {
        let scheme = ThresholdScheme::new(2, 4).unwrap();
        let (pk, shares) = scheme.keygen(&mut rng());
        let msg = b"m";
        let mut p = scheme.partial_sign(&shares[1], msg);
        p.value = p.value + F61::ONE;
        assert!(!scheme.verify_partial(&pk, msg, &p));
        // Out-of-range index is rejected too.
        let q = PartialSignature { index: 99, value: p.value };
        assert!(!scheme.verify_partial(&pk, msg, &q));
    }

    #[test]
    fn combine_guards() {
        let scheme = ThresholdScheme::new(3, 5).unwrap();
        let (_, shares) = scheme.keygen(&mut rng());
        let msg = b"m";
        let p0 = scheme.partial_sign(&shares[0], msg);
        let p1 = scheme.partial_sign(&shares[1], msg);
        assert!(matches!(
            scheme.combine(&[p0, p1]),
            Err(CryptoError::NotEnoughShares { needed: 3, have: 2 })
        ));
        assert!(matches!(
            scheme.combine(&[p0, p0, p1]),
            Err(CryptoError::DuplicateShare { index: 0 })
        ));
    }

    #[test]
    fn encryption_round_trip() {
        let scheme = ThresholdScheme::new(3, 6).unwrap();
        let (pk, shares) = scheme.keygen(&mut rng());
        let payload = b"the nuclear launch codes are 0000";
        let ct = scheme.encrypt(&pk, payload, &mut rng());
        assert_ne!(ct.masked, payload.to_vec(), "ciphertext must differ");
        let dshares: Vec<DecryptionShare> =
            shares[3..6].iter().map(|s| scheme.decryption_share(s, &ct)).collect();
        assert_eq!(scheme.decrypt(&ct, &dshares).unwrap(), payload.to_vec());
    }

    #[test]
    fn below_threshold_decryption_fails() {
        let scheme = ThresholdScheme::new(4, 6).unwrap();
        let (pk, shares) = scheme.keygen(&mut rng());
        let ct = scheme.encrypt(&pk, b"secret", &mut rng());
        let dshares: Vec<DecryptionShare> =
            shares[..3].iter().map(|s| scheme.decryption_share(s, &ct)).collect();
        assert!(scheme.decrypt(&ct, &dshares).is_err());
    }

    #[test]
    fn wrong_share_set_decrypts_to_garbage_not_panic() {
        let scheme = ThresholdScheme::new(2, 4).unwrap();
        let (pk, shares) = scheme.keygen(&mut rng());
        let ct = scheme.encrypt(&pk, b"hello", &mut rng());
        let mut bad = scheme.decryption_share(&shares[0], &ct);
        bad.value = bad.value + F61::ONE;
        let good = scheme.decryption_share(&shares[1], &ct);
        let out = scheme.decrypt(&ct, &[bad, good]).unwrap();
        assert_ne!(out, b"hello".to_vec());
    }

    #[test]
    fn empty_payload_encrypts() {
        let scheme = ThresholdScheme::new(1, 2).unwrap();
        let (pk, shares) = scheme.keygen(&mut rng());
        let ct = scheme.encrypt(&pk, b"", &mut rng());
        let d = scheme.decryption_share(&shares[0], &ct);
        assert_eq!(scheme.decrypt(&ct, &[d]).unwrap(), Vec::<u8>::new());
    }
}
