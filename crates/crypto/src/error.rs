//! Error types for the crypto crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the secret sharing / threshold primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// Invalid scheme parameters (e.g. threshold of zero, threshold larger
    /// than the number of shares).
    InvalidParameters {
        /// Human-readable description.
        what: String,
    },
    /// Too few shares/partials to reach the threshold.
    NotEnoughShares {
        /// Shares required.
        needed: usize,
        /// Shares available.
        have: usize,
    },
    /// Duplicate share index in a reconstruction set.
    DuplicateShare {
        /// The repeated index.
        index: u64,
    },
    /// A share or partial failed verification against its commitment.
    VerificationFailed,
    /// The opened shares are inconsistent (dealer misbehaviour detected).
    InconsistentShares,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidParameters { what } => write!(f, "invalid parameters: {what}"),
            CryptoError::NotEnoughShares { needed, have } => {
                write!(f, "not enough shares: need {needed}, have {have}")
            }
            CryptoError::DuplicateShare { index } => write!(f, "duplicate share index {index}"),
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::InconsistentShares => write!(f, "inconsistent shares"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            CryptoError::InvalidParameters { what: "k = 0".into() },
            CryptoError::NotEnoughShares { needed: 3, have: 2 },
            CryptoError::DuplicateShare { index: 7 },
            CryptoError::VerificationFailed,
            CryptoError::InconsistentShares,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
