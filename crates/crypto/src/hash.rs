//! A 256-bit hash built on the ChaCha20 permutation.
//!
//! The protocols only need a deterministic, uniform-looking, collision-
//! scarce digest (fragment fingerprints, commitments, beacon outputs). We
//! build a sponge over the well-studied ChaCha20 double-round permutation:
//! a 64-byte state absorbs 32-byte blocks into its rate half, applies 20
//! rounds, and squeezes the first 32 bytes after a padded final block.
//! This stands in for SHA-256, which is not available offline; see the
//! crate-level security disclaimer.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 256-bit digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest (placeholder / sentinel).
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// First 8 bytes as a little-endian integer — handy for seeding RNGs
    /// and leader lotteries from beacon outputs.
    pub fn to_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "..")
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const ROUNDS: usize = 20;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha20 permutation (20 rounds of column/diagonal quarter-rounds)
/// with a Davies–Meyer style feed-forward to make it non-invertible.
fn permute(state: &mut [u32; 16]) {
    let input = *state;
    for _ in 0..ROUNDS / 2 {
        // Column rounds.
        quarter_round(state, 0, 4, 8, 12);
        quarter_round(state, 1, 5, 9, 13);
        quarter_round(state, 2, 6, 10, 14);
        quarter_round(state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(state, 0, 5, 10, 15);
        quarter_round(state, 1, 6, 11, 12);
        quarter_round(state, 2, 7, 8, 13);
        quarter_round(state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(input) {
        *s = s.wrapping_add(i);
    }
}

/// Incremental hasher (sponge with 32-byte rate, 32-byte capacity).
///
/// # Examples
///
/// ```
/// use swiper_crypto::{hash, Hasher};
///
/// let mut h = Hasher::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), hash::digest(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Hasher {
    state: [u32; 16],
    buf: [u8; 32],
    buf_len: usize,
    total_len: u64,
}

impl Hasher {
    /// Fresh hasher with the "expand 32-byte k" constants in the capacity.
    pub fn new() -> Self {
        let mut state = [0u32; 16];
        // Capacity half initialized with the ChaCha constants, repeated.
        state[8] = 0x6170_7865;
        state[9] = 0x3320_646e;
        state[10] = 0x7962_2d32;
        state[11] = 0x6b20_6574;
        state[12] = 0x6170_7865;
        state[13] = 0x3320_646e;
        state[14] = 0x7962_2d32;
        state[15] = 0x6b20_6574;
        Hasher { state, buf: [0u8; 32], buf_len: 0, total_len: 0 }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        while !rest.is_empty() {
            let take = (32 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 32 {
                self.absorb_block();
            }
        }
    }

    fn absorb_block(&mut self) {
        for i in 0..8 {
            let word =
                u32::from_le_bytes(self.buf[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
            self.state[i] ^= word;
        }
        permute(&mut self.state);
        self.buf_len = 0;
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        // Pad: 0x80, zeros, then the total length in the last 8 bytes
        // (flushing an extra block if the length does not fit).
        let len_bytes = self.total_len.to_le_bytes();
        self.buf[self.buf_len] = 0x80;
        for b in &mut self.buf[self.buf_len + 1..] {
            *b = 0;
        }
        if self.buf_len + 1 > 24 {
            self.absorb_block();
            self.buf = [0u8; 32];
        }
        self.buf[24..32].copy_from_slice(&len_bytes);
        self.buf_len = 32;
        self.absorb_block();
        let mut out = [0u8; 32];
        for i in 0..8 {
            out[i * 4..i * 4 + 4].copy_from_slice(&self.state[i].to_le_bytes());
        }
        Digest(out)
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// One-shot hash of a byte slice.
pub fn digest(data: &[u8]) -> Digest {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

/// Hash of the concatenation of several labelled parts, with length framing
/// so that `(["ab", "c"])` and `(["a", "bc"])` differ.
pub fn digest_parts(parts: &[&[u8]]) -> Digest {
    let mut h = Hasher::new();
    for p in parts {
        h.update(&(p.len() as u64).to_le_bytes());
        h.update(p);
    }
    h.finalize()
}

/// Maps a digest to a field element of `F_{2^61-1}` (for hash-to-field in
/// the simulated threshold schemes).
pub fn digest_to_f61(d: &Digest) -> swiper_field::F61 {
    swiper_field::F61::new(d.to_u64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        assert_eq!(digest(b"abc"), digest(b"abc"));
        assert_ne!(digest(b"abc"), digest(b"abd"));
        assert_ne!(digest(b""), digest(b"\0"));
        assert_ne!(digest(b"a"), digest(b"a\0"));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 31, 32, 33, 64, 999, 1000] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split={split}");
        }
    }

    #[test]
    fn framing_prevents_concatenation_ambiguity() {
        assert_ne!(digest_parts(&[b"ab", b"c"]), digest_parts(&[b"a", b"bc"]));
        assert_ne!(digest_parts(&[b"ab"]), digest_parts(&[b"ab", b""]));
    }

    #[test]
    fn block_boundary_padding_cases() {
        // Lengths around the 24-byte length-field cutoff and the 32-byte
        // block size must all hash distinctly and deterministically.
        let mut seen = std::collections::HashSet::new();
        for len in 0..100usize {
            let data = vec![0x5Au8; len];
            let d = digest(&data);
            assert!(seen.insert(d), "collision at length {len}");
            assert_eq!(d, digest(&data));
        }
    }

    #[test]
    fn output_looks_uniform() {
        // Crude avalanche check: flipping one input bit changes ~half the
        // output bits.
        let a = digest(b"the quick brown fox");
        let b = digest(b"the quick brown foy");
        let differing: u32 = a.0.iter().zip(&b.0).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!(differing > 80 && differing < 176, "differing bits: {differing}");
    }

    #[test]
    fn digest_display_and_u64() {
        let d = digest(b"x");
        assert!(d.to_string().ends_with(".."));
        let _ = d.to_u64(); // just exercises the path
        assert_eq!(Digest::ZERO.to_u64(), 0);
    }

    proptest! {
        #[test]
        fn no_accidental_collisions(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
            if a != b {
                prop_assert_ne!(digest(&a), digest(&b));
            } else {
                prop_assert_eq!(digest(&a), digest(&b));
            }
        }

        #[test]
        fn arbitrary_split_points_agree(
            data in proptest::collection::vec(any::<u8>(), 0..200),
            splits in proptest::collection::vec(any::<proptest::sample::Index>(), 0..5),
        ) {
            let mut h = Hasher::new();
            let mut cuts: Vec<usize> =
                splits.iter().map(|ix| ix.index(data.len() + 1)).collect();
            cuts.sort_unstable();
            let mut prev = 0;
            for c in cuts {
                h.update(&data[prev..c]);
                prev = c;
            }
            h.update(&data[prev..]);
            prop_assert_eq!(h.finalize(), digest(&data));
        }
    }
}
