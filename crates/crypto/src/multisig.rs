//! Aggregatable multi-signatures with signer bitmaps.
//!
//! Section 6.2 of the paper: for system sizes below ~1000 participants,
//! multi-signatures replace tight threshold signatures with almost no
//! overhead — the aggregate is appended with an `n`-bit vector identifying
//! the signers, and the verifier checks both the aggregate and that the
//! signers hold sufficient *weight*.
//!
//! Same simulation discipline as [`crate::thresh`]: `g^x` becomes `x * h`
//! over `F_{2^61-1}`, so aggregation is the sum of signature scalars and
//! the verification key of a signer set is the sum of member keys — exactly
//! the BLS multi-signature algebra.

use rand::Rng;
use serde::{Deserialize, Serialize};
use swiper_field::{Field, F61};

use crate::error::CryptoError;
use crate::hash::{digest_parts, digest_to_f61};

fn hash_to_field(msg: &[u8]) -> F61 {
    let d = digest_parts(&[b"swiper.multisig.h2f", msg]);
    let x = digest_to_f61(&d);
    if x.is_zero() {
        F61::ONE
    } else {
        x
    }
}

/// A party's signing key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SigningKey(F61);

/// A party's public key (`sk * h`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey(F61);

/// Common reference: the simulated base point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Base(F61);

/// An individual signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndividualSignature {
    /// Index of the signer in the agreed party ordering.
    pub signer: usize,
    /// `sk_i * H(m)`.
    pub value: F61,
}

/// An aggregate signature plus the signer bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiSignature {
    /// Sum of the individual signature scalars.
    pub aggregate: F61,
    /// `signers[i]` iff party `i` contributed.
    pub signers: Vec<bool>,
}

impl MultiSignature {
    /// Indices of contributing signers.
    pub fn signer_indices(&self) -> Vec<usize> {
        self.signers.iter().enumerate().filter(|(_, &s)| s).map(|(i, _)| i).collect()
    }

    /// Size in bytes: one scalar plus the n-bit vector (the paper's "array
    /// of n bits" overhead accounting).
    pub fn size_bytes(&self) -> usize {
        8 + self.signers.len().div_ceil(8)
    }
}

/// Generates the common base point.
pub fn setup<R: Rng + ?Sized>(rng: &mut R) -> Base {
    loop {
        let c = F61::new(rng.random::<u64>());
        if !c.is_zero() {
            return Base(c);
        }
    }
}

/// Generates one party's key pair.
pub fn keygen<R: Rng + ?Sized>(base: &Base, rng: &mut R) -> (SigningKey, PublicKey) {
    let sk = F61::new(rng.random::<u64>());
    (SigningKey(sk), PublicKey(sk * base.0))
}

/// Signs a message.
pub fn sign(sk: &SigningKey, signer: usize, msg: &[u8]) -> IndividualSignature {
    IndividualSignature { signer, value: sk.0 * hash_to_field(msg) }
}

/// Verifies an individual signature.
pub fn verify_individual(
    base: &Base,
    pk: &PublicKey,
    msg: &[u8],
    sig: &IndividualSignature,
) -> bool {
    sig.value * base.0 == pk.0 * hash_to_field(msg)
}

/// Aggregates individual signatures over an `n`-party universe.
///
/// # Errors
///
/// * [`CryptoError::InvalidParameters`] for a signer index `>= n`.
/// * [`CryptoError::DuplicateShare`] when a signer appears twice.
pub fn aggregate(
    n: usize,
    sigs: &[IndividualSignature],
) -> Result<MultiSignature, CryptoError> {
    let mut signers = vec![false; n];
    let mut agg = F61::ZERO;
    for s in sigs {
        if s.signer >= n {
            return Err(CryptoError::InvalidParameters {
                what: format!("signer index {} out of range (n = {n})", s.signer),
            });
        }
        if signers[s.signer] {
            return Err(CryptoError::DuplicateShare { index: s.signer as u64 });
        }
        signers[s.signer] = true;
        agg = agg + s.value;
    }
    Ok(MultiSignature { aggregate: agg, signers })
}

/// Verifies an aggregate against the public keys of the claimed signers:
/// `agg * h == (sum of signer pks) * H(m)`.
pub fn verify_aggregate(
    base: &Base,
    pks: &[PublicKey],
    msg: &[u8],
    ms: &MultiSignature,
) -> bool {
    if ms.signers.len() != pks.len() {
        return false;
    }
    let mut sum_pk = F61::ZERO;
    for (i, &contributed) in ms.signers.iter().enumerate() {
        if contributed {
            sum_pk = sum_pk + pks[i].0;
        }
    }
    ms.aggregate * base.0 == sum_pk * hash_to_field(msg)
}

/// Checks that the signers of an aggregate hold more than
/// `threshold_num/threshold_den` of the total weight — the weighted-voting
/// check the paper appends to multi-signature verification.
pub fn signers_hold_weight(
    ms: &MultiSignature,
    weights: &[u64],
    threshold_num: u128,
    threshold_den: u128,
) -> bool {
    if weights.len() != ms.signers.len() || threshold_den == 0 {
        return false;
    }
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    let signed: u128 =
        ms.signers.iter().zip(weights).filter(|(&s, _)| s).map(|(_, &w)| u128::from(w)).sum();
    // signed > threshold * total  <=>  signed * den > num * total
    signed
        .checked_mul(threshold_den)
        .zip(threshold_num.checked_mul(total))
        .is_some_and(|(lhs, rhs)| lhs > rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup_parties(n: usize) -> (Base, Vec<SigningKey>, Vec<PublicKey>) {
        let mut rng = StdRng::seed_from_u64(9);
        let base = setup(&mut rng);
        let mut sks = Vec::new();
        let mut pks = Vec::new();
        for _ in 0..n {
            let (sk, pk) = keygen(&base, &mut rng);
            sks.push(sk);
            pks.push(pk);
        }
        (base, sks, pks)
    }

    #[test]
    fn individual_sign_verify() {
        let (base, sks, pks) = setup_parties(3);
        let sig = sign(&sks[1], 1, b"msg");
        assert!(verify_individual(&base, &pks[1], b"msg", &sig));
        assert!(!verify_individual(&base, &pks[0], b"msg", &sig));
        assert!(!verify_individual(&base, &pks[1], b"other", &sig));
    }

    #[test]
    fn aggregate_verifies_with_correct_bitmap() {
        let (base, sks, pks) = setup_parties(5);
        let msg = b"block-123";
        let sigs: Vec<IndividualSignature> =
            [0usize, 2, 4].iter().map(|&i| sign(&sks[i], i, msg)).collect();
        let ms = aggregate(5, &sigs).unwrap();
        assert!(verify_aggregate(&base, &pks, msg, &ms));
        assert_eq!(ms.signer_indices(), vec![0, 2, 4]);
    }

    #[test]
    fn bitmap_tampering_detected() {
        let (base, sks, pks) = setup_parties(4);
        let msg = b"m";
        let sigs: Vec<IndividualSignature> =
            [0usize, 1].iter().map(|&i| sign(&sks[i], i, msg)).collect();
        let mut ms = aggregate(4, &sigs).unwrap();
        // Claim signer 2 also signed.
        ms.signers[2] = true;
        assert!(!verify_aggregate(&base, &pks, msg, &ms));
        // Drop a real signer from the bitmap.
        ms.signers[2] = false;
        ms.signers[1] = false;
        assert!(!verify_aggregate(&base, &pks, msg, &ms));
    }

    #[test]
    fn duplicate_and_out_of_range_rejected() {
        let (_, sks, _) = setup_parties(3);
        let s0 = sign(&sks[0], 0, b"m");
        assert!(matches!(
            aggregate(3, &[s0, s0]),
            Err(CryptoError::DuplicateShare { index: 0 })
        ));
        let bad = sign(&sks[0], 7, b"m");
        assert!(matches!(aggregate(3, &[bad]), Err(CryptoError::InvalidParameters { .. })));
    }

    #[test]
    fn weight_check_works() {
        let (_, sks, _) = setup_parties(4);
        let msg = b"m";
        let weights = [10u64, 20, 30, 40];
        // Signers {2, 3} hold 70/100 > 2/3.
        let sigs: Vec<IndividualSignature> =
            [2usize, 3].iter().map(|&i| sign(&sks[i], i, msg)).collect();
        let ms = aggregate(4, &sigs).unwrap();
        assert!(signers_hold_weight(&ms, &weights, 2, 3));
        // Signers {0, 1} hold 30/100 < 2/3.
        let sigs: Vec<IndividualSignature> =
            [0usize, 1].iter().map(|&i| sign(&sks[i], i, msg)).collect();
        let ms = aggregate(4, &sigs).unwrap();
        assert!(!signers_hold_weight(&ms, &weights, 2, 3));
        // Exactly at the threshold does not pass a strict check.
        let sigs: Vec<IndividualSignature> =
            [1usize, 2].iter().map(|&i| sign(&sks[i], i, msg)).collect();
        let ms = aggregate(4, &sigs).unwrap();
        assert!(!signers_hold_weight(&ms, &weights, 1, 2));
    }

    #[test]
    fn size_accounting() {
        let ms = MultiSignature { aggregate: F61::ZERO, signers: vec![false; 100] };
        assert_eq!(ms.size_bytes(), 8 + 13);
    }
}
