//! Shamir secret sharing over `F_{2^61-1}`, nominal and weighted.
//!
//! The weighted variant implements Section 4.1 of the paper verbatim: run
//! Weight Restriction with `alpha_w := f_w` and `alpha_n <= 1/2`, deal
//! `T` shares, and hand party `i` its `t_i` shares (one per virtual user).
//! Honest parties — holding more than `(1 - alpha_n) T >= ceil(alpha_n T)`
//! shares — can always reconstruct; corrupt parties — holding fewer than
//! `alpha_n T` — never can.

use rand::Rng;
use serde::{Deserialize, Serialize};
use swiper_core::{TicketAssignment, VirtualUsers};
use swiper_field::{poly, Field, F61};

use crate::error::CryptoError;

/// One Shamir share: the polynomial evaluated at `x = index + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Share {
    /// Share index in `0..total` (the evaluation point is `index + 1`).
    pub index: u64,
    /// The share value `f(index + 1)`.
    pub value: F61,
}

/// A `(threshold, total)` Shamir scheme: any `threshold` shares reconstruct,
/// fewer reveal nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShamirScheme {
    threshold: usize,
    total: usize,
}

impl ShamirScheme {
    /// Creates a scheme.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] when `threshold == 0` or
    /// `threshold > total`.
    pub fn new(threshold: usize, total: usize) -> Result<Self, CryptoError> {
        if threshold == 0 || threshold > total {
            return Err(CryptoError::InvalidParameters {
                what: format!("need 0 < threshold <= total, got {threshold}/{total}"),
            });
        }
        Ok(ShamirScheme { threshold, total })
    }

    /// Reconstruction threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Total number of shares dealt.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Deals shares of `secret` using fresh randomness.
    pub fn share<R: Rng + ?Sized>(&self, secret: F61, rng: &mut R) -> Vec<Share> {
        // f(0) = secret; higher coefficients uniform.
        let mut coeffs = vec![secret];
        for _ in 1..self.threshold {
            coeffs.push(F61::new(rng.random::<u64>()));
        }
        (0..self.total)
            .map(|i| Share { index: i as u64, value: poly::eval(&coeffs, F61::eval_point(i)) })
            .collect()
    }

    /// Reconstructs the secret from at least `threshold` distinct shares.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::NotEnoughShares`] below the threshold.
    /// * [`CryptoError::DuplicateShare`] on repeated indices.
    pub fn reconstruct(&self, shares: &[Share]) -> Result<F61, CryptoError> {
        let use_shares = self.dedup(shares)?;
        let xs: Vec<F61> =
            use_shares.iter().map(|s| F61::eval_point(s.index as usize)).collect();
        let lambdas = poly::lagrange_coefficients(&xs, F61::ZERO);
        let mut secret = F61::ZERO;
        for (share, lambda) in use_shares.iter().zip(lambdas) {
            secret = secret + share.value * lambda;
        }
        Ok(secret)
    }

    /// Reconstructs and additionally checks that **all** provided shares lie
    /// on one degree `< threshold` polynomial, detecting forged shares
    /// (with honest majority of the provided set this catches a dealer or
    /// share forger; it cannot identify *which* share was bad).
    ///
    /// # Errors
    ///
    /// As [`ShamirScheme::reconstruct`], plus
    /// [`CryptoError::InconsistentShares`] when a provided share deviates.
    pub fn reconstruct_checked(&self, shares: &[Share]) -> Result<F61, CryptoError> {
        let all = self.dedup_all(shares)?;
        if all.len() < self.threshold {
            return Err(CryptoError::NotEnoughShares {
                needed: self.threshold,
                have: all.len(),
            });
        }
        let pts: Vec<(F61, F61)> =
            all.iter().map(|s| (F61::eval_point(s.index as usize), s.value)).collect();
        let coeffs = poly::interpolate(&pts[..self.threshold]);
        if poly::degree(&coeffs).is_some_and(|d| d >= self.threshold) {
            return Err(CryptoError::InconsistentShares);
        }
        for &(x, y) in &pts[self.threshold..] {
            if poly::eval(&coeffs, x) != y {
                return Err(CryptoError::InconsistentShares);
            }
        }
        Ok(poly::eval(&coeffs, F61::ZERO))
    }

    fn dedup<'a>(&self, shares: &'a [Share]) -> Result<Vec<&'a Share>, CryptoError> {
        let all = self.dedup_all(shares)?;
        if all.len() < self.threshold {
            return Err(CryptoError::NotEnoughShares {
                needed: self.threshold,
                have: all.len(),
            });
        }
        Ok(all.into_iter().take(self.threshold).collect())
    }

    fn dedup_all<'a>(&self, shares: &'a [Share]) -> Result<Vec<&'a Share>, CryptoError> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(shares.len());
        for s in shares {
            if !seen.insert(s.index) {
                return Err(CryptoError::DuplicateShare { index: s.index });
            }
            out.push(s);
        }
        Ok(out)
    }
}

/// Weighted secret sharing via tickets (paper Section 4.1): party `i`
/// receives the shares of its `t_i` virtual users.
#[derive(Debug, Clone)]
pub struct WeightedShamir {
    scheme: ShamirScheme,
    mapping: VirtualUsers,
}

impl WeightedShamir {
    /// Builds the weighted scheme from a ticket assignment and the nominal
    /// ticket-threshold `ceil(alpha_n * T)` expressed directly as a share
    /// count.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] when the threshold is infeasible
    /// or the assignment is empty.
    pub fn new(
        tickets: &TicketAssignment,
        threshold_shares: usize,
    ) -> Result<Self, CryptoError> {
        let mapping = VirtualUsers::from_assignment(tickets)
            .map_err(|e| CryptoError::InvalidParameters { what: e.to_string() })?;
        let scheme = ShamirScheme::new(threshold_shares, mapping.total())?;
        Ok(WeightedShamir { scheme, mapping })
    }

    /// The underlying nominal scheme.
    pub fn scheme(&self) -> &ShamirScheme {
        &self.scheme
    }

    /// The virtual-user mapping.
    pub fn mapping(&self) -> &VirtualUsers {
        &self.mapping
    }

    /// Deals the secret; returns per-party share bundles (empty for
    /// zero-ticket parties).
    pub fn share<R: Rng + ?Sized>(&self, secret: F61, rng: &mut R) -> Vec<Vec<Share>> {
        let all = self.scheme.share(secret, rng);
        (0..self.mapping.parties())
            .map(|p| self.mapping.virtuals_of(p).map(|v| all[v]).collect())
            .collect()
    }

    /// Reconstructs from the pooled shares of a set of parties.
    ///
    /// # Errors
    ///
    /// As [`ShamirScheme::reconstruct`].
    pub fn reconstruct_from_parties(
        &self,
        bundles: &[(usize, Vec<Share>)],
    ) -> Result<F61, CryptoError> {
        let pooled: Vec<Share> =
            bundles.iter().flat_map(|(_, shares)| shares.iter().copied()).collect();
        self.scheme.reconstruct(&pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Ratio, Swiper, WeightRestriction, Weights};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn basic_round_trip() {
        let scheme = ShamirScheme::new(3, 7).unwrap();
        let secret = F61::new(0xDEADBEEF);
        let shares = scheme.share(secret, &mut rng());
        assert_eq!(scheme.reconstruct(&shares[2..5]).unwrap(), secret);
        assert_eq!(scheme.reconstruct(&shares).unwrap(), secret);
    }

    #[test]
    fn below_threshold_fails() {
        let scheme = ShamirScheme::new(4, 6).unwrap();
        let shares = scheme.share(F61::new(42), &mut rng());
        assert!(matches!(
            scheme.reconstruct(&shares[..3]),
            Err(CryptoError::NotEnoughShares { needed: 4, have: 3 })
        ));
    }

    #[test]
    fn duplicates_rejected() {
        let scheme = ShamirScheme::new(2, 4).unwrap();
        let shares = scheme.share(F61::new(42), &mut rng());
        let dup = vec![shares[0], shares[0], shares[1]];
        assert!(matches!(
            scheme.reconstruct(&dup),
            Err(CryptoError::DuplicateShare { index: 0 })
        ));
    }

    #[test]
    fn any_quorum_reconstructs_same_secret() {
        let scheme = ShamirScheme::new(3, 6).unwrap();
        let secret = F61::new(777);
        let shares = scheme.share(secret, &mut rng());
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let got = scheme.reconstruct(&[shares[a], shares[b], shares[c]]).unwrap();
                    assert_eq!(got, secret);
                }
            }
        }
    }

    #[test]
    fn checked_reconstruction_catches_forgery() {
        let scheme = ShamirScheme::new(3, 6).unwrap();
        let secret = F61::new(31337);
        let mut shares = scheme.share(secret, &mut rng());
        shares[5].value = shares[5].value + F61::ONE;
        assert!(matches!(
            scheme.reconstruct_checked(&shares),
            Err(CryptoError::InconsistentShares)
        ));
        // Without the forged share everything is fine.
        assert_eq!(scheme.reconstruct_checked(&shares[..5]).unwrap(), secret);
    }

    #[test]
    fn invalid_parameters() {
        assert!(ShamirScheme::new(0, 5).is_err());
        assert!(ShamirScheme::new(6, 5).is_err());
    }

    #[test]
    fn weighted_sharing_respects_restriction_guarantee() {
        // Section 4.1 end-to-end: weights, WR(fw = 1/3, an = 1/2), deal,
        // then *any* subset with weight >= 2/3 W reconstructs and any subset
        // with weight < 1/3 W cannot reach the threshold.
        let weights = Weights::new(vec![50, 30, 10, 5, 3, 2]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let total = sol.total_tickets() as usize;
        let threshold = (total / 2) + 1; // > alpha_n * T = T/2
        let ws = WeightedShamir::new(&sol.assignment, threshold).unwrap();
        let secret = F61::new(123_456_789);
        let bundles = ws.share(secret, &mut rng());

        // The honest-majority subset {0, 1} holds 80/100 weight.
        let honest: Vec<(usize, Vec<Share>)> =
            [0usize, 1].iter().map(|&p| (p, bundles[p].clone())).collect();
        assert_eq!(ws.reconstruct_from_parties(&honest).unwrap(), secret);

        // Adversarial subset {2,3,4,5} holds 20/100 < 1/3: must fail.
        let corrupt: Vec<(usize, Vec<Share>)> =
            [2usize, 3, 4, 5].iter().map(|&p| (p, bundles[p].clone())).collect();
        assert!(matches!(
            ws.reconstruct_from_parties(&corrupt),
            Err(CryptoError::NotEnoughShares { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_quorums_reconstruct(
            secret in 0u64..u64::MAX,
            k in 1usize..6,
            extra in 0usize..5,
            seed in any::<u64>(),
        ) {
            let total = k + extra;
            let scheme = ShamirScheme::new(k, total).unwrap();
            let secret = F61::new(secret);
            let mut r = StdRng::seed_from_u64(seed);
            let shares = scheme.share(secret, &mut r);
            prop_assert_eq!(scheme.reconstruct(&shares[extra..]).unwrap(), secret);
        }

        #[test]
        fn fewer_than_threshold_shares_are_uniform_consistent(
            secret_a in 0u64..1000, secret_b in 1001u64..2000, seed in any::<u64>(),
        ) {
            // Information-theoretic check (weak form): k-1 shares of secret A
            // can be extended to a valid sharing of ANY secret B — i.e. the
            // partial view does not pin down the secret.
            let scheme = ShamirScheme::new(3, 5).unwrap();
            let mut r = StdRng::seed_from_u64(seed);
            let shares = scheme.share(F61::new(secret_a), &mut r);
            let partial = &shares[..2];
            // Interpolate a degree-2 polynomial through (0, B) and the two
            // observed shares: always possible, and it is a valid sharing.
            let pts = vec![
                (F61::ZERO, F61::new(secret_b)),
                (F61::eval_point(partial[0].index as usize), partial[0].value),
                (F61::eval_point(partial[1].index as usize), partial[1].value),
            ];
            let coeffs = swiper_field::poly::interpolate(&pts);
            prop_assert!(swiper_field::poly::degree(&coeffs).is_none_or(|d| d < 3));
            prop_assert_eq!(
                swiper_field::poly::eval(&coeffs, F61::ZERO),
                F61::new(secret_b)
            );
        }
    }
}
