//! Merkle trees with inclusion proofs.
//!
//! AVID-style erasure-coded broadcast (paper Section 5.1, reference \[17\])
//! commits to the fragment vector with a Merkle root so that recipients can
//! validate their fragment before acknowledging storage.

use serde::{Deserialize, Serialize};

use crate::hash::{digest_parts, Digest};

/// Domain separation prefixes so leaves can never masquerade as nodes.
const LEAF_TAG: &[u8] = b"swiper.merkle.leaf";
const NODE_TAG: &[u8] = b"swiper.merkle.node";

fn leaf_hash(data: &[u8]) -> Digest {
    digest_parts(&[LEAF_TAG, data])
}

fn node_hash(l: &Digest, r: &Digest) -> Digest {
    digest_parts(&[NODE_TAG, l.as_bytes(), r.as_bytes()])
}

/// A complete Merkle tree over a list of byte leaves.
///
/// # Examples
///
/// ```
/// use swiper_crypto::MerkleTree;
///
/// let leaves: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 4]).collect();
/// let tree = MerkleTree::build(&leaves);
/// let proof = tree.proof(3);
/// assert!(proof.verify(&tree.root(), &leaves[3], 3));
/// assert!(!proof.verify(&tree.root(), &leaves[2], 3));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = the root alone.
    levels: Vec<Vec<Digest>>,
    leaf_count: usize,
}

/// An inclusion proof: sibling hashes from leaf to root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    siblings: Vec<Digest>,
}

impl MerkleTree {
    /// Builds a tree; odd nodes are paired with themselves.
    ///
    /// # Panics
    ///
    /// Panics on an empty leaf list.
    pub fn build<L: AsRef<[u8]>>(leaves: &[L]) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut levels = vec![leaves.iter().map(|l| leaf_hash(l.as_ref())).collect::<Vec<_>>()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let l = &pair[0];
                let r = pair.get(1).unwrap_or(l);
                next.push(node_hash(l, r));
            }
            levels.push(next);
        }
        let leaf_count = leaves.len();
        MerkleTree { levels, leaf_count }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaf_count
    }

    /// Whether the tree is empty (never true — construction requires a
    /// leaf; kept alongside [`MerkleTree::len`] for API completeness).
    pub fn is_empty(&self) -> bool {
        self.leaf_count == 0
    }

    /// Inclusion proof for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn proof(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count, "leaf index out of range");
        let mut siblings = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sib = if i.is_multiple_of(2) {
                // Right sibling, or self when unpaired.
                *level.get(i + 1).unwrap_or(&level[i])
            } else {
                level[i - 1]
            };
            siblings.push(sib);
            i /= 2;
        }
        MerkleProof { siblings }
    }
}

impl MerkleProof {
    /// Verifies that `leaf_data` is the `index`-th leaf under `root`.
    pub fn verify(&self, root: &Digest, leaf_data: &[u8], index: usize) -> bool {
        let mut acc = leaf_hash(leaf_data);
        let mut i = index;
        for sib in &self.siblings {
            acc = if i.is_multiple_of(2) { node_hash(&acc, sib) } else { node_hash(sib, &acc) };
            i /= 2;
        }
        acc == *root
    }

    /// Proof size in hashes (communication accounting).
    pub fn len(&self) -> usize {
        self.siblings.len()
    }

    /// Whether the proof is empty (single-leaf tree).
    pub fn is_empty(&self) -> bool {
        self.siblings.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let ls = leaves(1);
        let t = MerkleTree::build(&ls);
        let p = t.proof(0);
        assert!(p.is_empty());
        assert!(p.verify(&t.root(), &ls[0], 0));
        assert!(!p.verify(&t.root(), b"other", 0));
    }

    #[test]
    fn all_proofs_verify_various_sizes() {
        for n in [2usize, 3, 4, 5, 7, 8, 9, 16, 33] {
            let ls = leaves(n);
            let t = MerkleTree::build(&ls);
            for i in 0..n {
                let p = t.proof(i);
                assert!(p.verify(&t.root(), &ls[i], i), "n={n} i={i}");
                assert_eq!(p.len(), t.levels.len() - 1);
            }
        }
    }

    #[test]
    fn wrong_index_or_data_fails() {
        let ls = leaves(6);
        let t = MerkleTree::build(&ls);
        let p = t.proof(2);
        assert!(!p.verify(&t.root(), &ls[2], 3));
        assert!(!p.verify(&t.root(), &ls[3], 2));
        let other = MerkleTree::build(&leaves(7));
        assert!(!p.verify(&other.root(), &ls[2], 2));
    }

    #[test]
    fn root_commits_to_order() {
        let a = MerkleTree::build(&[b"x".to_vec(), b"y".to_vec()]);
        let b = MerkleTree::build(&[b"y".to_vec(), b"x".to_vec()]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_cannot_pretend_to_be_node() {
        // Build a 2-leaf tree and check that feeding the concatenated child
        // hashes as a "leaf" yields a different digest (domain separation).
        let ls = leaves(2);
        let t = MerkleTree::build(&ls);
        let l0 = super::leaf_hash(&ls[0]);
        let l1 = super::leaf_hash(&ls[1]);
        let mut forged = Vec::new();
        forged.extend_from_slice(l0.as_bytes());
        forged.extend_from_slice(l1.as_bytes());
        assert_ne!(super::leaf_hash(&forged), t.root());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_trees_verify(
            ls in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..40),
            pick in any::<proptest::sample::Index>(),
        ) {
            let t = MerkleTree::build(&ls);
            let i = pick.index(ls.len());
            let p = t.proof(i);
            prop_assert!(p.verify(&t.root(), &ls[i], i));
        }

        #[test]
        fn proofs_do_not_transfer(
            ls in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..10), 2..20),
            pick in any::<proptest::sample::Index>(),
        ) {
            let t = MerkleTree::build(&ls);
            let i = pick.index(ls.len());
            let j = (i + 1) % ls.len();
            let p = t.proof(i);
            // Proof for i must not validate leaf j at position i when the
            // leaves differ.
            if ls[i] != ls[j] {
                prop_assert!(!p.verify(&t.root(), &ls[j], i));
            }
        }
    }
}
