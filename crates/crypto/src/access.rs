//! Access structures: nominal thresholds, weighted thresholds, and the
//! paper's *blunt* access structures (Definition 4.1).
//!
//! A blunt access structure w.r.t. an adversary structure `F` only promises
//! that (i) no corruptible set is authorized and (ii) some all-honest set
//! is authorized — precisely what liveness + safety of most protocols
//! need. Theorem 4.2 shows that instantiating a nominal threshold scheme on
//! Weight-Restriction tickets yields a blunt structure for the weighted
//! adversary; [`ticket_threshold_is_blunt`] checks that construction.

use serde::{Deserialize, Serialize};
use swiper_core::{Ratio, TicketAssignment, Weights};

/// An access structure over parties `0..n`: which sets may perform the
/// guarded action.
pub trait AccessStructure {
    /// Number of parties.
    fn parties(&self) -> usize;

    /// Whether the given set of party indices is authorized.
    fn authorized(&self, set: &[usize]) -> bool;
}

/// Nominal threshold structure `A_n(alpha)`: sets with `|P| > alpha * n`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NominalThreshold {
    n: usize,
    alpha: Ratio,
}

impl NominalThreshold {
    /// Creates the structure; `alpha` in `[0, 1)`.
    pub fn new(n: usize, alpha: Ratio) -> Self {
        NominalThreshold { n, alpha }
    }
}

impl AccessStructure for NominalThreshold {
    fn parties(&self) -> usize {
        self.n
    }

    fn authorized(&self, set: &[usize]) -> bool {
        let distinct: std::collections::HashSet<_> = set.iter().collect();
        // |P| > alpha * n  <=>  |P| * den > num * n
        (distinct.len() as u128) * self.alpha.den() > self.alpha.num() * (self.n as u128)
    }
}

/// Weighted threshold structure `A_w(alpha)`: sets with
/// `w(P) > alpha * W`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedThreshold {
    weights: Weights,
    alpha: Ratio,
}

impl WeightedThreshold {
    /// Creates the structure.
    pub fn new(weights: Weights, alpha: Ratio) -> Self {
        WeightedThreshold { weights, alpha }
    }

    /// The weight vector.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }
}

impl AccessStructure for WeightedThreshold {
    fn parties(&self) -> usize {
        self.weights.len()
    }

    fn authorized(&self, set: &[usize]) -> bool {
        let mut distinct: Vec<usize> = set.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let w = self.weights.subset_weight(&distinct);
        w * self.alpha.den() > self.alpha.num() * self.weights.total()
    }
}

/// Ticket-threshold structure: sets whose pooled tickets reach
/// `ceil(alpha_n * T)` — the structure a nominal scheme instantiated on
/// virtual users actually implements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TicketThreshold {
    tickets: TicketAssignment,
    alpha_n: Ratio,
}

impl TicketThreshold {
    /// Creates the structure.
    pub fn new(tickets: TicketAssignment, alpha_n: Ratio) -> Self {
        TicketThreshold { tickets, alpha_n }
    }

    /// The minimum pooled tickets an authorized set needs
    /// (`>= alpha_n * T`, i.e. `ceil` with strict handling folded in).
    pub fn required_tickets(&self) -> u128 {
        let t = self.tickets.total();
        let num = self.alpha_n.num() * t;
        num.div_ceil(self.alpha_n.den())
    }
}

impl AccessStructure for TicketThreshold {
    fn parties(&self) -> usize {
        self.tickets.len()
    }

    fn authorized(&self, set: &[usize]) -> bool {
        let mut distinct: Vec<usize> = set.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let pooled = self.tickets.subset_tickets(&distinct);
        // Authorized iff pooled >= alpha_n * T (can reconstruct a
        // ceil(alpha_n T)-of-T sharing).
        pooled * self.alpha_n.den() >= self.alpha_n.num() * self.tickets.total()
    }
}

/// Checks Definition 4.1 against explicit adversary sets: `access` is blunt
/// w.r.t. `adversary_sets` over `n` parties iff no adversary set is
/// authorized and each complement (the honest set) is.
pub fn is_blunt_for<A: AccessStructure>(access: &A, adversary_sets: &[Vec<usize>]) -> bool {
    let n = access.parties();
    for f in adversary_sets {
        if access.authorized(f) {
            return false;
        }
        let complement: Vec<usize> = (0..n).filter(|i| !f.contains(i)).collect();
        if !access.authorized(&complement) {
            return false;
        }
    }
    true
}

/// The Theorem 4.2 check specialized to weighted threshold adversaries:
/// the ticket structure built from a Weight Restriction solution with
/// `alpha_w := f_w`, `alpha_n <= 1/2` is blunt w.r.t.
/// `F_w(f_w) = { P : w(P) < f_w * W }` — verified here by exhaustive subset
/// enumeration (test-sized `n` only).
///
/// # Panics
///
/// Panics if `weights.len() >= 20`.
pub fn ticket_threshold_is_blunt(
    weights: &Weights,
    tickets: &TicketAssignment,
    f_w: Ratio,
    alpha_n: Ratio,
) -> bool {
    let n = weights.len();
    assert!(n < 20, "exhaustive bluntness check limited to n < 20");
    let access = TicketThreshold::new(tickets.clone(), alpha_n);
    for mask in 0u32..(1u32 << n) {
        let set: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
        let w = weights.subset_weight(&set);
        let corruptible = w * f_w.den() < f_w.num() * weights.total();
        if corruptible {
            // (i) No corruptible set is authorized.
            if access.authorized(&set) {
                return false;
            }
            // (ii) Its honest complement is authorized.
            let complement: Vec<usize> = (0..n).filter(|i| !set.contains(i)).collect();
            if !access.authorized(&complement) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiper_core::{Swiper, WeightRestriction};

    #[test]
    fn nominal_threshold_counts_distinct_parties() {
        let a = NominalThreshold::new(4, Ratio::of(1, 2));
        assert!(!a.authorized(&[0, 1]));
        assert!(a.authorized(&[0, 1, 2]));
        // Duplicates do not inflate the count.
        assert!(!a.authorized(&[0, 0, 0, 1]));
    }

    #[test]
    fn weighted_threshold_uses_weight() {
        let w = Weights::new(vec![60, 20, 10, 10]).unwrap();
        let a = WeightedThreshold::new(w, Ratio::of(1, 2));
        assert!(a.authorized(&[0]));
        assert!(!a.authorized(&[1, 2, 3])); // 40 < 50... wait, need > 50
        assert!(!a.authorized(&[1, 2, 2, 3]));
    }

    #[test]
    fn ticket_threshold_required_tickets() {
        let t = TicketAssignment::new(vec![3, 2, 1]);
        let a = TicketThreshold::new(t, Ratio::of(1, 2));
        assert_eq!(a.required_tickets(), 3);
        assert!(a.authorized(&[0]));
        assert!(a.authorized(&[1, 2]));
        assert!(!a.authorized(&[2]));
    }

    #[test]
    fn explicit_bluntness_check() {
        // 3 parties; adversary can corrupt any single party; access = 2+.
        let a = NominalThreshold::new(3, Ratio::of(1, 2));
        let adv: Vec<Vec<usize>> = vec![vec![0], vec![1], vec![2]];
        assert!(is_blunt_for(&a, &adv));
        // Adversary corrupting pairs breaks it (pair complement = 1 party,
        // not authorized).
        let adv2: Vec<Vec<usize>> = vec![vec![0, 1]];
        assert!(!is_blunt_for(&a, &adv2));
    }

    #[test]
    fn theorem_4_2_holds_on_solved_instances() {
        // For several weight vectors, solve WR(fw, an) and verify the
        // resulting ticket threshold is blunt for the weighted adversary.
        let cases: Vec<Vec<u64>> = vec![
            vec![1, 1, 1, 1, 1, 1],
            vec![50, 30, 10, 5, 3, 2],
            vec![100, 1, 1, 1, 1, 1, 1, 1],
            vec![7, 6, 5, 4, 3, 2, 1],
        ];
        let f_w = Ratio::of(1, 3);
        let a_n = Ratio::of(1, 2);
        let params = WeightRestriction::new(f_w, a_n).unwrap();
        for ws in cases {
            let weights = Weights::new(ws.clone()).unwrap();
            let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
            assert!(
                ticket_threshold_is_blunt(&weights, &sol.assignment, f_w, a_n),
                "weights {ws:?}"
            );
        }
    }
}
