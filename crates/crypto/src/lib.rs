//! # swiper-crypto — secret sharing and simulated threshold cryptography
//!
//! The Swiper paper converts nominal threshold primitives into weighted ones
//! by handing each party `t_i` *virtual users* of the nominal scheme
//! (Sections 4.1–4.3). This crate provides those nominal primitives:
//!
//! * [`hash`] — a 256-bit hash built on the ChaCha20 permutation, plus
//!   Merkle trees with inclusion proofs ([`merkle`]).
//! * [`shamir`] — Shamir secret sharing over `F_{2^61-1}` and its weighted
//!   wrapper driven by a ticket assignment.
//! * [`vss`] — verifiable secret sharing with per-share hash commitments.
//! * [`thresh`] — *simulated* threshold signatures and threshold
//!   encryption: shares combine linearly over the field exactly like BLS
//!   partials combine in the exponent, preserving the interface, the
//!   Lagrange aggregation cost and the uniqueness property the paper's
//!   randomness beacons rely on.
//! * [`multisig`] — aggregatable multi-signatures with signer bitmaps
//!   (Section 6.2's practical alternative to threshold signatures).
//! * [`access`] — threshold / weighted-threshold / blunt access structures
//!   (Definition 4.1) and the Theorem 4.2 construction.
//!
//! ## Security disclaimer (deliberate substitution)
//!
//! The signature/encryption schemes here are **simulations**: they are
//! algebraically faithful (linear share combination, deterministic unique
//! signatures, partial-verification equations) but are trivially forgeable
//! by an adversary that can divide field elements. The paper's results are
//! about *how weights are reduced and shares are allocated*, not about the
//! underlying hardness assumptions; see DESIGN.md for the substitution
//! rationale. Do not use this crate for real cryptography.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
mod error;
pub mod hash;
pub mod merkle;
pub mod multisig;
pub mod shamir;
pub mod thresh;
pub mod vss;

pub use error::CryptoError;
pub use hash::{Digest, Hasher};
pub use merkle::{MerkleProof, MerkleTree};
