//! Verifiable secret sharing with per-share hash commitments.
//!
//! The paper obtains weighted VSS (Table 1, "Verifiable Secret Sharing")
//! by applying Weight Restriction and dealing to virtual users. The
//! underlying nominal VSS here commits to every share with a salted hash:
//! each holder can check its own share against the public commitment
//! vector, and reconstruction rejects openings that do not match.
//!
//! This replaces the discrete-log (Feldman/Pedersen) commitments of the
//! referenced constructions — which need group arithmetic unavailable
//! offline — while preserving the protocol-visible interface: a public
//! commitment broadcast by the dealer, per-share verification, and
//! dealer-equivocation detection at reconstruction (see DESIGN.md).

use rand::Rng;
use serde::{Deserialize, Serialize};
use swiper_field::F61;

use crate::error::CryptoError;
use crate::hash::{digest_parts, Digest};
use crate::shamir::{ShamirScheme, Share};

/// Public commitment to a dealt share vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Commitment {
    /// `per_share[i]` commits to share `i`.
    per_share: Vec<Digest>,
}

impl Commitment {
    /// Number of committed shares.
    pub fn len(&self) -> usize {
        self.per_share.len()
    }

    /// Whether the commitment is empty.
    pub fn is_empty(&self) -> bool {
        self.per_share.is_empty()
    }

    /// Digest binding the whole commitment (what the dealer broadcasts).
    pub fn root(&self) -> Digest {
        let parts: Vec<&[u8]> =
            self.per_share.iter().map(|d| d.as_bytes().as_slice()).collect();
        digest_parts(&parts)
    }
}

/// A share together with its opening salt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifiableShare {
    /// The underlying Shamir share.
    pub share: Share,
    /// The salt proving the commitment opening.
    pub salt: u64,
}

fn commit_one(share: &Share, salt: u64) -> Digest {
    digest_parts(&[
        b"swiper.vss.share",
        &share.index.to_le_bytes(),
        &share.value.value().to_le_bytes(),
        &salt.to_le_bytes(),
    ])
}

/// Dealer side: shares a secret and publishes a commitment.
///
/// Returns the public [`Commitment`] and the private per-share openings.
pub fn deal<R: Rng + ?Sized>(
    scheme: &ShamirScheme,
    secret: F61,
    rng: &mut R,
) -> (Commitment, Vec<VerifiableShare>) {
    let shares = scheme.share(secret, rng);
    let opened: Vec<VerifiableShare> = shares
        .into_iter()
        .map(|share| VerifiableShare { share, salt: rng.random::<u64>() })
        .collect();
    let per_share = opened.iter().map(|vs| commit_one(&vs.share, vs.salt)).collect();
    (Commitment { per_share }, opened)
}

/// Holder side: checks a received share against the public commitment.
pub fn verify_share(commitment: &Commitment, vs: &VerifiableShare) -> bool {
    let idx = vs.share.index as usize;
    match commitment.per_share.get(idx) {
        Some(expected) => commit_one(&vs.share, vs.salt) == *expected,
        None => false,
    }
}

/// Reconstruction: verifies every opening against the commitment, then
/// performs consistency-checked Shamir reconstruction.
///
/// # Errors
///
/// * [`CryptoError::VerificationFailed`] when an opening does not match the
///   commitment.
/// * Errors from [`ShamirScheme::reconstruct_checked`] otherwise.
pub fn reconstruct(
    scheme: &ShamirScheme,
    commitment: &Commitment,
    openings: &[VerifiableShare],
) -> Result<F61, CryptoError> {
    for vs in openings {
        if !verify_share(commitment, vs) {
            return Err(CryptoError::VerificationFailed);
        }
    }
    let shares: Vec<Share> = openings.iter().map(|vs| vs.share).collect();
    scheme.reconstruct_checked(&shares)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_field::Field;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn deal_verify_reconstruct() {
        let scheme = ShamirScheme::new(3, 7).unwrap();
        let secret = F61::new(987_654_321);
        let (com, opened) = deal(&scheme, secret, &mut rng());
        assert_eq!(com.len(), 7);
        for vs in &opened {
            assert!(verify_share(&com, vs));
        }
        assert_eq!(reconstruct(&scheme, &com, &opened[1..4]).unwrap(), secret);
    }

    #[test]
    fn tampered_share_detected_by_commitment() {
        let scheme = ShamirScheme::new(2, 5).unwrap();
        let (com, mut opened) = deal(&scheme, F61::new(5), &mut rng());
        opened[0].share.value = opened[0].share.value + F61::ONE;
        assert!(!verify_share(&com, &opened[0]));
        assert!(matches!(
            reconstruct(&scheme, &com, &opened[..2]),
            Err(CryptoError::VerificationFailed)
        ));
    }

    #[test]
    fn wrong_salt_fails() {
        let scheme = ShamirScheme::new(2, 4).unwrap();
        let (com, mut opened) = deal(&scheme, F61::new(5), &mut rng());
        opened[1].salt ^= 1;
        assert!(!verify_share(&com, &opened[1]));
    }

    #[test]
    fn commitment_root_is_stable_and_binding() {
        let scheme = ShamirScheme::new(2, 4).unwrap();
        let (com1, _) = deal(&scheme, F61::new(5), &mut rng());
        assert_eq!(com1.root(), com1.root());
        let (com2, _) = deal(&scheme, F61::new(5), &mut StdRng::seed_from_u64(8));
        // Different salts/coefficients -> different commitment.
        assert_ne!(com1.root(), com2.root());
    }

    #[test]
    fn equivocating_dealer_caught_at_reconstruction() {
        // A dealer that commits to shares NOT on one polynomial: honest
        // verification of individual shares passes, but checked
        // reconstruction with a larger opening set flags inconsistency.
        let scheme = ShamirScheme::new(2, 4).unwrap();
        let mut r = rng();
        let (_, mut opened) = deal(&scheme, F61::new(5), &mut r);
        // Forge the last share and rebuild a commitment that matches the
        // forged vector (the dealer controls the commitment).
        opened[3].share.value = opened[3].share.value + F61::ONE;
        let per_share = opened.iter().map(|vs| super::commit_one(&vs.share, vs.salt)).collect();
        let forged_com = Commitment { per_share };
        for vs in &opened {
            assert!(verify_share(&forged_com, vs), "dealer-made openings verify");
        }
        assert!(matches!(
            reconstruct(&scheme, &forged_com, &opened),
            Err(CryptoError::InconsistentShares)
        ));
    }

    #[test]
    fn out_of_range_share_index_fails_verification() {
        let scheme = ShamirScheme::new(2, 3).unwrap();
        let (com, opened) = deal(&scheme, F61::new(5), &mut rng());
        let mut vs = opened[0];
        vs.share.index = 99;
        assert!(!verify_share(&com, &vs));
    }
}
