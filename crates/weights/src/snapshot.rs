//! Stake-snapshot I/O: load weight vectors from CSV dumps.
//!
//! The paper's empirical section works on stake snapshots crawled from
//! block explorers. A downstream user of this library will have their own
//! dump; this module reads the common shapes — one stake value per line,
//! or `identifier,stake` rows with an optional header — and quantizes to
//! the solver's `u64` domain.

use std::path::Path;

use swiper_core::{CoreError, Weights};

/// Parses a stake snapshot from CSV text.
///
/// Accepted row shapes (mixed freely, `#`-comments and blank lines
/// skipped; one optional non-numeric header row is tolerated):
///
/// * `12345` — a bare stake value;
/// * `validator-xyz,12345` — the stake is the **last** field, everything
///   before the last comma is the row's identifier; a repeated identifier
///   is an error (a crawler artifact that would otherwise silently
///   miscount a validator's stake);
/// * stake values may carry a fractional part (quantized via
///   [`Weights::from_floats`] against the maximum).
///
/// # Errors
///
/// * [`CoreError::ParseRatio`] for a malformed row (reported with its
///   content).
/// * [`CoreError::DuplicateKey`] for a repeated row identifier.
/// * [`CoreError::NoParties`] / [`CoreError::ZeroTotalWeight`] when the
///   snapshot has no usable rows.
pub fn parse_csv(text: &str) -> Result<Weights, CoreError> {
    let mut stakes: Vec<f64> = Vec::new();
    let mut keys: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut header_skipped = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let last = line.rsplit(',').next().unwrap_or(line).trim();
        match last.parse::<f64>() {
            Ok(v) => {
                if let Some((key, _)) = line.rsplit_once(',') {
                    let key = key.trim();
                    if !key.is_empty() && !keys.insert(key) {
                        return Err(CoreError::DuplicateKey { key: key.to_string() });
                    }
                }
                stakes.push(v);
            }
            Err(_) if !header_skipped && stakes.is_empty() => {
                // Tolerate exactly one header row at the top.
                header_skipped = true;
            }
            Err(_) => {
                return Err(CoreError::ParseRatio { input: line.to_string() });
            }
        }
    }
    if stakes.is_empty() {
        return Err(CoreError::NoParties);
    }
    // Integral snapshots that fit u64 load losslessly; otherwise quantize.
    let all_integral = stakes
        .iter()
        .all(|&v| v.fract() == 0.0 && (0.0..=(u64::MAX as f64 / 2.0)).contains(&v));
    if all_integral {
        Weights::new(stakes.into_iter().map(|v| v as u64).collect())
    } else {
        Weights::from_floats(&stakes, u32::MAX as u64)
    }
}

/// Loads a snapshot from a CSV file; see [`parse_csv`].
///
/// # Errors
///
/// As [`parse_csv`]; I/O failures surface as [`CoreError::ParseRatio`]
/// with the path as context.
pub fn load_csv<P: AsRef<Path>>(path: P) -> Result<Weights, CoreError> {
    let text = std::fs::read_to_string(&path).map_err(|e| CoreError::ParseRatio {
        input: format!("{}: {e}", path.as_ref().display()),
    })?;
    parse_csv(&text)
}

/// Serializes a weight vector back to `party,stake` CSV.
pub fn to_csv(weights: &Weights) -> String {
    let mut out = String::from("party,stake\n");
    for (i, w) in weights.iter() {
        out.push_str(&format!("{i},{w}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_values() {
        let w = parse_csv("100\n200\n300\n").unwrap();
        assert_eq!(w.as_slice(), &[100, 200, 300]);
    }

    #[test]
    fn keyed_rows_with_header_and_comments() {
        let text = "validator,stake\n# top validators\nval-a,500\nval-b,250\n\nval-c,125\n";
        let w = parse_csv(text).unwrap();
        assert_eq!(w.as_slice(), &[500, 250, 125]);
    }

    #[test]
    fn fractional_values_quantize_proportionally() {
        let w = parse_csv("0.5\n1.0\n0.25\n").unwrap();
        assert_eq!(w.get(1), u32::MAX as u64);
        assert_eq!(w.get(0), w.get(1).div_ceil(2));
    }

    #[test]
    fn bad_rows_are_reported() {
        // A non-numeric row after data started is an error (only one
        // header row is tolerated).
        assert!(parse_csv("100\nnot-a-number\n").is_err());
        assert!(parse_csv("").is_err());
        assert!(parse_csv("# only comments\n").is_err());
    }

    #[test]
    fn duplicate_keys_are_reported() {
        // A repeated identifier is an error like any other bad row — it
        // would otherwise silently miscount that validator's stake.
        let err = parse_csv("val-a,500\nval-b,250\nval-a,125\n").unwrap_err();
        assert!(matches!(&err, CoreError::DuplicateKey { key } if key == "val-a"), "{err}");
        // Even with identical values: a crawler artifact, still reported.
        assert!(parse_csv("val-a,500\nval-a,500\n").is_err());
        // Bare rows carry no identifier — repeated *values* stay fine.
        assert_eq!(parse_csv("500\n500\n").unwrap().as_slice(), &[500, 500]);
        // Identifiers live left of the *last* comma, whole.
        assert!(parse_csv("a,b,1\na,b,2\n").is_err());
        assert_eq!(parse_csv("a,b,1\na,c,2\n").unwrap().as_slice(), &[1, 2]);
    }

    #[test]
    fn round_trip_through_csv() {
        let w = Weights::new(vec![9, 8, 7]).unwrap();
        let text = to_csv(&w);
        let back = parse_csv(&text).unwrap();
        assert_eq!(back.as_slice(), w.as_slice());
    }

    #[test]
    fn file_io_round_trip() {
        let dir = std::env::temp_dir().join("swiper-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stake.csv");
        std::fs::write(&path, "42\n7\n").unwrap();
        let w = load_csv(&path).unwrap();
        assert_eq!(w.as_slice(), &[42, 7]);
        assert!(load_csv(dir.join("missing.csv")).is_err());
    }
}
