//! Synthetic weight-distribution generators.
//!
//! All generators are deterministic given their inputs (and seed, where
//! randomized); `rand_distr` is not available offline, so the classic
//! inverse-transform / Box–Muller constructions are implemented directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swiper_core::Weights;

/// Equal weights — the theoretical worst case for weight reduction.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn equal(n: usize, weight: u64) -> Weights {
    Weights::new(vec![weight.max(1); n]).expect("n > 0 and positive weights")
}

/// One party holding `whale_share_percent`% of the total, the rest equal.
///
/// # Panics
///
/// Panics if `n == 0` or `whale_share_percent >= 100`.
pub fn one_whale(n: usize, whale_share_percent: u64) -> Weights {
    assert!(whale_share_percent < 100, "whale share must leave something for the rest");
    assert!(n > 0);
    let rest = 100 - whale_share_percent;
    let mut w = vec![0u64; n];
    // Scale so small parties hold at least 1.
    let unit = (n as u64 - 1).max(1);
    w[0] = whale_share_percent * unit * 100;
    for slot in w.iter_mut().skip(1) {
        *slot = rest * 100;
    }
    Weights::new(w).expect("non-zero total")
}

/// Zipf-like weights: `w_i` proportional to `1 / (i + 1)^exponent`,
/// scaled so the largest weight is `scale`. Deterministic.
///
/// # Panics
///
/// Panics if `n == 0` or `scale == 0`.
pub fn zipf(n: usize, exponent: f64, scale: u64) -> Weights {
    assert!(n > 0 && scale > 0);
    let w: Vec<u64> = (0..n)
        .map(|i| {
            let v = (scale as f64) / ((i + 1) as f64).powf(exponent);
            (v.round() as u64).max(1)
        })
        .collect();
    Weights::new(w).expect("positive weights")
}

/// Pareto-distributed weights via inverse-transform sampling:
/// `w = x_min / u^(1/alpha)`, clipped to `u64`. Seeded.
///
/// # Panics
///
/// Panics if `n == 0`, `alpha <= 0`, or `x_min == 0`.
pub fn pareto(n: usize, alpha: f64, x_min: u64, seed: u64) -> Weights {
    assert!(n > 0 && alpha > 0.0 && x_min > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<u64> = (0..n)
        .map(|_| {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let v = (x_min as f64) / u.powf(1.0 / alpha);
            v.min(u64::MAX as f64 / 2.0).max(1.0) as u64
        })
        .collect();
    Weights::new(w).expect("positive weights")
}

/// Log-normal weights via Box–Muller. `mu`/`sigma` act on `ln w`. Seeded.
///
/// # Panics
///
/// Panics if `n == 0` or `sigma < 0`.
pub fn lognormal(n: usize, mu: f64, sigma: f64, seed: u64) -> Weights {
    assert!(n > 0 && sigma >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<u64> = (0..n)
        .map(|_| {
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = (mu + sigma * z).exp();
            v.min(u64::MAX as f64 / 2.0).max(1.0) as u64
        })
        .collect();
    Weights::new(w).expect("positive weights")
}

/// Exponentially distributed weights (`-mean * ln u`). Seeded.
///
/// # Panics
///
/// Panics if `n == 0` or `mean <= 0`.
pub fn exponential(n: usize, mean: f64, seed: u64) -> Weights {
    assert!(n > 0 && mean > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<u64> = (0..n)
        .map(|_| {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            ((-mean * u.ln()).max(1.0)).min(u64::MAX as f64 / 2.0) as u64
        })
        .collect();
    Weights::new(w).expect("positive weights")
}

/// Whale-skewed population: a small Zipf head of whales grafted onto a
/// log-normal body, then shuffled so the heavy parties are scattered
/// through the index space (adversarial for anything that assumes sorted
/// or clustered stake). This is the profile real validator sets show —
/// a few exchange-scale whales over a long retail tail — and the input
/// family the `solver_scale` bench sweeps. Deterministic per seed.
///
/// `whales` is clamped to `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn whale_mix(n: usize, whales: usize, seed: u64) -> Weights {
    assert!(n > 0);
    let whales = whales.min(n);
    // Body: ln-stake centered at e^10 (~22k) with heavy spread.
    let mut w = lognormal(n, 10.0, 1.5, seed).as_slice().to_vec();
    // Head: whale i holds ~whale_scale / (i+1)^0.8 — flat-ish Zipf, so
    // several parties are individually dominant.
    let body_total: u128 = w.iter().map(|&x| u128::from(x)).sum();
    let whale_scale = u64::try_from((body_total / 8).clamp(1, u128::from(u64::MAX / 4)))
        .expect("clamped to u64 range");
    for (i, slot) in w.iter_mut().take(whales).enumerate() {
        let v = (whale_scale as f64) / ((i + 1) as f64).powf(0.8);
        *slot = (v.round() as u64).max(1);
    }
    // Fisher–Yates with the same seeded stream, offset past the body draws.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    for i in (1..w.len()).rev() {
        let j = rng.random_range(0..=i);
        w.swap(i, j);
    }
    Weights::new(w).expect("positive weights")
}

/// Rescales a weight vector so that the total is (approximately, up to
/// rounding with a guaranteed minimum of 1 per non-zero party) `target`.
///
/// # Panics
///
/// Panics if `target` is zero.
pub fn rescale_total(weights: &Weights, target: u128) -> Weights {
    assert!(target > 0, "target total must be positive");
    let current = weights.total();
    let scaled: Vec<u64> = weights
        .as_slice()
        .iter()
        .map(|&w| {
            if w == 0 {
                return 0;
            }
            let v = u128::from(w) * target / current;
            u64::try_from(v.max(1)).unwrap_or(u64::MAX)
        })
        .collect();
    Weights::new(scaled).expect("non-zero total preserved")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_is_flat() {
        let w = equal(10, 5);
        assert!(w.as_slice().iter().all(|&x| x == 5));
    }

    #[test]
    fn one_whale_dominates() {
        let w = one_whale(11, 60);
        let total = w.total();
        // Whale holds ~60%.
        let share = u128::from(w.get(0)) * 100 / total;
        assert!((59..=61).contains(&share), "share = {share}");
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let w = zipf(100, 1.0, 1_000_000);
        for i in 1..100 {
            assert!(w.get(i - 1) >= w.get(i));
        }
        assert_eq!(w.get(0), 1_000_000);
        assert_eq!(w.get(99), 10_000);
    }

    #[test]
    fn pareto_seeded_determinism() {
        let a = pareto(50, 1.2, 100, 7);
        let b = pareto(50, 1.2, 100, 7);
        let c = pareto(50, 1.2, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&w| w >= 100 || w >= 1));
    }

    #[test]
    fn lognormal_and_exponential_positive() {
        let l = lognormal(40, 10.0, 2.0, 3);
        let e = exponential(40, 1000.0, 3);
        assert!(l.as_slice().iter().all(|&w| w >= 1));
        assert!(e.as_slice().iter().all(|&w| w >= 1));
    }

    #[test]
    fn whale_mix_is_seeded_skewed_and_scattered() {
        let a = whale_mix(500, 8, 42);
        let b = whale_mix(500, 8, 42);
        let c = whale_mix(500, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // The 8 whales should dominate: top-8 share well above a uniform
        // 8/500 slice.
        let mut sorted: Vec<u64> = a.as_slice().to_vec();
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        let top: u128 = sorted.iter().take(8).map(|&x| u128::from(x)).sum();
        assert!(top * 4 > a.total(), "whale share too small: {top} of {}", a.total());
        // And scattered: the heaviest party should (for this seed) not sit
        // at index 0 where the unshuffled head would leave it.
        let max = a.as_slice().iter().max().unwrap();
        assert_ne!(a.get(0), *max);
        assert!(a.as_slice().iter().all(|&w| w >= 1));
    }

    #[test]
    fn rescale_hits_target_approximately() {
        let w = zipf(20, 1.0, 1000);
        let target: u128 = 1_000_000;
        let r = rescale_total(&w, target);
        let total = r.total();
        // Within 5% of the target (rounding + minimum-1 effects).
        assert!(total > target * 95 / 100 && total < target * 105 / 100, "total={total}");
    }

    #[test]
    fn rescale_preserves_zeroes_and_order() {
        let w = Weights::new(vec![0, 10, 100, 1000]).unwrap();
        let r = rescale_total(&w, 555_555);
        assert_eq!(r.get(0), 0);
        assert!(r.get(1) <= r.get(2) && r.get(2) <= r.get(3));
    }
}
