//! Snapshot-driven epoch reconfiguration.
//!
//! Stake moves every epoch, but per-epoch deltas touch few parties, so
//! re-running the solver from scratch wastes almost all of its work. This
//! module is the reconfiguration loop built on the two incremental
//! primitives in `swiper-core`:
//!
//! * **warm-started search** — [`Swiper::resolve_from`] seeds the binary
//!   search bracket from the previous epoch's ticket total instead of
//!   `[0, bound]`;
//! * **verdict caching** — each tracked instance keeps a persistent
//!   [`CachingOracle`], so any check whose `(member, params)` fingerprint
//!   was already judged (an unchanged snapshot, a verification re-solve, a
//!   repeated settings-grid cell) is answered without touching the
//!   knapsack machinery.
//!
//! A [`Reconfigurator`] tracks one or more [`Setting`]s (problem shapes
//! with fixed thresholds), consumes a stream of [`Weights`] snapshots via
//! [`Reconfigurator::advance`], and per epoch emits the new
//! [`Solution`]s plus a [`TicketDelta`] per track — the compact
//! joining/leaving diff that `swiper_core::VirtualUsers::apply_delta`
//! splices into a live mapping without rebuilding it.
//!
//! The warm path returns a valid local minimum with the same guarantees
//! (and determinism) as a cold solve, but the validity predicate is not
//! perfectly monotone along the family — isolated dips can hold several
//! local minima, and a warm bracket may settle on a different one than
//! cold bisection (see `Swiper::resolve_from`). Left unchecked, that
//! difference is *sticky*: the warm chain re-anchors on its own previous
//! total each epoch, so it can sit a few tickets above the cold answer
//! for many epochs. [`Reconfigurator::with_cold_check`] is the verified
//! mode for deployments that care: every epoch is additionally re-derived
//! cold through the same shared caches (the flip-region verdicts the warm
//! pass just filled in answer much of it), the **cold result is the one
//! published and chained** — bit-identical to a from-scratch solve, by
//! construction — and [`EpochOutcome::verified`] reports whether the warm
//! pass had agreed.
//!
//! The `epochs` binary in `swiper-bench` replays churned chain snapshots
//! through this loop and reports `dp_invocations` and cache hit rates per
//! epoch.

use rand::rngs::StdRng;
use rand::Rng;
use swiper_core::{
    CachingOracle, CoreError, EpochEvent, FullOracle, Instance, Solution, SolveStats, Swiper,
    TicketDelta, WeightQualification, WeightRestriction, WeightSeparation, Weights,
};

/// A tracked problem shape with fixed thresholds; the weights come from
/// each epoch's snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// Weight Restriction with fixed `(alpha_w, alpha_n)`.
    Restriction(WeightRestriction),
    /// Weight Qualification with fixed `(beta_w, beta_n)`.
    Qualification(WeightQualification),
    /// Weight Separation with fixed `(alpha, beta)`.
    Separation(WeightSeparation),
}

impl Setting {
    /// Binds this setting to a snapshot, producing a solvable instance.
    #[must_use]
    pub fn instance(&self, weights: Weights) -> Instance {
        match *self {
            Setting::Restriction(p) => Instance::restriction(weights, p),
            Setting::Qualification(p) => Instance::qualification(weights, p),
            Setting::Separation(p) => Instance::separation(weights, p),
        }
    }
}

/// What one [`Reconfigurator::advance`] call produced.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The epoch index (0 for the first snapshot consumed).
    pub epoch: u64,
    /// Per-track **published** solutions for this epoch's snapshot, in
    /// setting order: the warm-pass results in incremental mode, the
    /// cold-identical results under [`Reconfigurator::with_cold_check`].
    pub solutions: Vec<Solution>,
    /// Per-track weight-bearing reconfiguration events: the diff of the
    /// published assignment against the previous epoch's plus this
    /// epoch's snapshot and the loop's rekey seed (`None` on epoch 0 —
    /// there is nothing to reconfigure *from*).
    pub events: Vec<Option<EpochEvent>>,
    /// The warm pass, when it is not the published one (`Some` only under
    /// [`Reconfigurator::with_cold_check`]): telemetry for how far the
    /// warm bracket got and what it cost.
    pub warm_solutions: Option<Vec<Solution>>,
}

impl EpochOutcome {
    /// This track's reconfiguration event (`None` on epoch 0).
    #[must_use]
    pub fn event(&self, track: usize) -> Option<&EpochEvent> {
        self.events[track].as_ref()
    }

    /// This track's ticket delta (`None` on epoch 0) — shorthand for
    /// [`EpochOutcome::event`]`.map(EpochEvent::delta)`.
    #[must_use]
    pub fn delta(&self, track: usize) -> Option<&TicketDelta> {
        self.events[track].as_ref().map(EpochEvent::delta)
    }

    /// Aggregated counters of the published solve pass across all tracks.
    #[must_use]
    pub fn stats(&self) -> SolveStats {
        let mut total = SolveStats::default();
        for sol in &self.solutions {
            total.absorb(&sol.stats);
        }
        total
    }

    /// Aggregated counters of the warm pass under
    /// [`Reconfigurator::with_cold_check`] (`None` in incremental mode,
    /// where [`EpochOutcome::stats`] already describes the warm pass).
    #[must_use]
    pub fn warm_stats(&self) -> Option<SolveStats> {
        self.warm_solutions.as_ref().map(|solutions| {
            let mut total = SolveStats::default();
            for sol in solutions {
                total.absorb(&sol.stats);
            }
            total
        })
    }

    /// Whether the warm pass agreed with the published cold-identical
    /// assignments (`None` in incremental mode). `Some(false)` marks an
    /// epoch where the warm bracket settled on a different local minimum —
    /// expected occasionally (see the module docs), surfaced for
    /// telemetry.
    #[must_use]
    pub fn verified(&self) -> Option<bool> {
        self.warm_solutions.as_ref().map(|warm| {
            warm.len() == self.solutions.len()
                && warm.iter().zip(&self.solutions).all(|(w, p)| {
                    w.assignment == p.assignment && w.ticket_bound == p.ticket_bound
                })
        })
    }
}

/// The epoch reconfiguration loop: persistent per-track caching oracles,
/// warm-started re-solves, delta emission.
///
/// # Examples
///
/// ```
/// use swiper_core::{Ratio, Swiper, VirtualUsers, WeightRestriction, Weights};
/// use swiper_weights::epoch::{Reconfigurator, Setting};
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2))?;
/// let mut loop_ = Reconfigurator::new(Swiper::new(), vec![Setting::Restriction(wr)]);
///
/// let epoch0 = loop_.advance(&Weights::new(vec![50, 30, 11, 5, 2, 1, 1])?)?;
/// let mut mapping = VirtualUsers::from_assignment(&epoch0.solutions[0].assignment)?;
///
/// // One party's stake moved: warm re-solve, splice the event's delta.
/// let epoch1 = loop_.advance(&Weights::new(vec![50, 30, 11, 5, 2, 4, 1])?)?;
/// if let Some(event) = epoch1.event(0) {
///     mapping.apply_delta(event.delta())?;
///     assert!(event.weights_changed());
/// }
/// assert_eq!(mapping, VirtualUsers::from_assignment(&epoch1.solutions[0].assignment)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Reconfigurator {
    solver: Swiper,
    settings: Vec<Setting>,
    oracles: Vec<CachingOracle<FullOracle>>,
    prev: Vec<Option<Solution>>,
    prev_snapshot: Option<Weights>,
    epoch: u64,
    cold_check: bool,
    rekey_seed: u64,
}

impl Reconfigurator {
    /// A reconfiguration loop tracking the given settings. Each track gets
    /// a dedicated persistent [`CachingOracle`] around a [`FullOracle`]
    /// with delta-stable verdict certificates enabled (the loop is exactly
    /// the replay workload certificates exist for; disable via
    /// [`Reconfigurator::with_certificates`]); the solver's mode is
    /// ignored for oracle construction (the loop's identity guarantees are
    /// stated for exact oracles).
    #[must_use]
    pub fn new(solver: Swiper, settings: Vec<Setting>) -> Self {
        let oracles = settings
            .iter()
            .map(|_| CachingOracle::new(FullOracle::new()).with_certificates(true))
            .collect();
        let prev = settings.iter().map(|_| None).collect();
        Reconfigurator {
            solver,
            settings,
            oracles,
            prev,
            prev_snapshot: None,
            epoch: 0,
            cold_check: false,
            rekey_seed: 0,
        }
    }

    /// Sets the session rekey seed carried by every emitted
    /// [`EpochEvent`] (default 0). Consumers fold it with the new
    /// assignment's fingerprint when re-dealing epoch-pinned keys, so one
    /// seed per deployment keeps every replica — and any teardown-rebuild
    /// twin — dealing identical keys.
    #[must_use]
    pub fn with_rekey_seed(mut self, seed: u64) -> Self {
        self.rekey_seed = seed;
        self
    }

    /// Enables verified mode: every `advance` additionally re-solves each
    /// track cold (no warm hint) through the same shared cache, publishes
    /// and chains the **cold** results — making the loop's output
    /// bit-identical to from-scratch solves by construction — and keeps
    /// the warm pass as telemetry ([`EpochOutcome::warm_solutions`],
    /// [`EpochOutcome::verified`]). Publishing cold also re-anchors the
    /// next epoch's warm bracket, so a warm-pass divergence never sticks.
    #[must_use]
    pub fn with_cold_check(mut self, on: bool) -> Self {
        self.cold_check = on;
        self
    }

    /// Enables or disables delta-stable verdict certificates on every
    /// track's caching oracle (default: enabled). Certificates never
    /// change a verdict — see `swiper_core::oracle` — so this only moves
    /// `dp_invocations` into `certificate_skips`.
    #[must_use]
    pub fn with_certificates(mut self, on: bool) -> Self {
        self.oracles = self.oracles.into_iter().map(|o| o.with_certificates(on)).collect();
        self
    }

    /// Whether the per-track oracles replay delta-stable certificates.
    #[must_use]
    pub fn certificates_enabled(&self) -> bool {
        self.oracles.iter().any(CachingOracle::certificates_enabled)
    }

    /// The tracked settings, in track order.
    #[must_use]
    pub fn settings(&self) -> &[Setting] {
        &self.settings
    }

    /// Epochs consumed so far.
    #[must_use]
    pub fn epochs_consumed(&self) -> u64 {
        self.epoch
    }

    /// Total verdicts currently cached across all tracks.
    #[must_use]
    pub fn cached_verdicts(&self) -> usize {
        self.oracles.iter().map(CachingOracle::len).sum()
    }

    /// Consumes the next snapshot: warm re-solves every track (cold on the
    /// first epoch), emits per-track [`EpochEvent`]s against the previous
    /// epoch, and rolls the loop state forward.
    ///
    /// # Errors
    ///
    /// [`CoreError::PartyCountChanged`] when the snapshot covers a
    /// different number of parties than the previous epoch's — party sets
    /// are fixed across epochs, and validating here surfaces the real
    /// mistake instead of the downstream `DeltaMismatch` the stale-base
    /// check would eventually raise deep in `apply_delta`. Otherwise
    /// propagates solver errors; the loop state is unchanged on failure.
    pub fn advance(&mut self, snapshot: &Weights) -> Result<EpochOutcome, CoreError> {
        if let Some(prev) = &self.prev_snapshot {
            if prev.len() != snapshot.len() {
                return Err(CoreError::PartyCountChanged {
                    expected: prev.len(),
                    found: snapshot.len(),
                });
            }
        }
        let instances: Vec<Instance> =
            self.settings.iter().map(|s| s.instance(snapshot.clone())).collect();
        let warm = self.solver.resolve_many_with(&instances, &self.prev, &mut self.oracles)?;
        // In verified mode the cold pass (through the same caches, so the
        // flip-region verdicts the warm pass just judged are hits) is the
        // published truth; the warm pass becomes telemetry.
        let (published, warm_solutions) = if self.cold_check {
            let cold_priors: Vec<Option<Solution>> = vec![None; instances.len()];
            let cold =
                self.solver.resolve_many_with(&instances, &cold_priors, &mut self.oracles)?;
            (cold, Some(warm))
        } else {
            (warm, None)
        };
        let prev_snapshot = self.prev_snapshot.as_ref().unwrap_or(snapshot);
        let events = self
            .prev
            .iter()
            .zip(&published)
            .map(|(prev, sol)| {
                prev.as_ref()
                    .map(|p| {
                        let delta = TicketDelta::between(&p.assignment, &sol.assignment)?;
                        EpochEvent::new(
                            self.epoch,
                            delta,
                            prev_snapshot,
                            snapshot.clone(),
                            self.rekey_seed,
                        )
                    })
                    .transpose()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let outcome = EpochOutcome {
            epoch: self.epoch,
            solutions: published.clone(),
            events,
            warm_solutions,
        };
        self.prev = published.into_iter().map(Some).collect();
        self.prev_snapshot = Some(snapshot.clone());
        self.epoch += 1;
        Ok(outcome)
    }

    /// Drives the loop over a whole snapshot stream.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first failing epoch.
    pub fn run<I>(&mut self, snapshots: I) -> Result<Vec<EpochOutcome>, CoreError>
    where
        I: IntoIterator<Item = Weights>,
    {
        snapshots.into_iter().map(|s| self.advance(&s)).collect()
    }

    /// Drives the loop over a snapshot stream *against a live instance*:
    /// after each epoch's solve, `driver` receives the snapshot and the
    /// [`EpochOutcome`] — per-track solutions and [`EpochEvent`]s — and splices
    /// them into whatever long-running protocol state it owns (an SMR
    /// pipeline, black-box virtual users, ...) before the next snapshot
    /// is consumed. This is the adapter the `epochs` bench bin uses to
    /// replay churn chains against live SMR instead of solver-only.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first failing epoch; epochs already
    /// driven stay driven.
    pub fn drive_simulation<I, F>(
        &mut self,
        snapshots: I,
        mut driver: F,
    ) -> Result<Vec<EpochOutcome>, CoreError>
    where
        I: IntoIterator<Item = Weights>,
        F: FnMut(&Weights, &EpochOutcome),
    {
        snapshots
            .into_iter()
            .map(|snapshot| {
                let outcome = self.advance(&snapshot)?;
                driver(&snapshot, &outcome);
                Ok(outcome)
            })
            .collect()
    }
}

/// How [`churn_with`] draws per-party stake moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChurnMode {
    /// Unbiased drift: each churned party rescales by a factor drawn
    /// uniformly from `±magnitude_pct` percent — the benchmark default.
    #[default]
    Drift,
    /// Mixed join/leave pressure: the churned parties are split half and
    /// half into strict losers (factor in `[100 - magnitude, 99]`%) and
    /// strict gainers (`[101, 100 + magnitude]`%). Re-solving such
    /// snapshots yields [`TicketDelta`]s that *shrink some ranges while
    /// growing others* — the live-renumbering epochs the stable-identity
    /// plumbing must survive, where dense-id designs double-count or
    /// strand voters.
    Mixed,
}

impl ChurnMode {
    /// Parses a CLI spelling (`drift` / `mixed`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "drift" => Some(ChurnMode::Drift),
            "mixed" => Some(ChurnMode::Mixed),
            _ => None,
        }
    }
}

/// Perturbs a snapshot the way per-epoch stake churn does: `churned`
/// distinct parties (picked uniformly) have their stake rescaled by a
/// factor drawn per [`ChurnMode`], floored at 1 so no party vanishes.
/// Per-epoch stake moves are small in practice — delegation drift,
/// rewards, partial unbonds — so `magnitude_pct = 5` is the benchmark
/// default. Deterministic given the RNG state.
///
/// # Panics
///
/// Panics if `churned > snapshot.len()`, `magnitude_pct >= 100`, or
/// (mixed mode) `magnitude_pct == 0` — a mixed draw needs room on both
/// sides of 100%.
#[must_use]
pub fn churn_with(
    mode: ChurnMode,
    snapshot: &Weights,
    churned: usize,
    magnitude_pct: u64,
    rng: &mut StdRng,
) -> Weights {
    assert!(churned <= snapshot.len(), "cannot churn more parties than exist");
    assert!(magnitude_pct < 100, "stake cannot shrink below zero");
    assert!(
        mode == ChurnMode::Drift || magnitude_pct > 0,
        "mixed churn needs a nonzero magnitude"
    );
    let n = snapshot.len();
    let mut order: Vec<usize> = (0..n).collect();
    // Partial Fisher–Yates: the first `churned` slots are a uniform draw
    // of distinct parties.
    for i in 0..churned {
        let j = rng.random_range(i..n);
        order.swap(i, j);
    }
    let mut next = snapshot.as_slice().to_vec();
    for (slot, &party) in order[..churned].iter().enumerate() {
        let factor = match mode {
            ChurnMode::Drift => rng.random_range(100 - magnitude_pct..=100 + magnitude_pct),
            // First half loses, second half gains (odd counts lean
            // loser-heavy: shrink is the historically under-tested side).
            ChurnMode::Mixed if slot < churned.div_ceil(2) => {
                rng.random_range(100 - magnitude_pct..=99)
            }
            ChurnMode::Mixed => rng.random_range(101..=100 + magnitude_pct),
        };
        next[party] = (next[party].saturating_mul(factor) / 100).max(1);
    }
    Weights::new(next).expect("churn keeps every weight positive")
}

/// [`churn_with`] in the default [`ChurnMode::Drift`] regime.
///
/// # Panics
///
/// Panics if `churned > snapshot.len()` or `magnitude_pct >= 100`.
#[must_use]
pub fn churn(
    snapshot: &Weights,
    churned: usize,
    magnitude_pct: u64,
    rng: &mut StdRng,
) -> Weights {
    churn_with(ChurnMode::Drift, snapshot, churned, magnitude_pct, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use swiper_core::{Ratio, VirtualUsers};

    fn wr() -> Setting {
        Setting::Restriction(WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap())
    }

    fn ws() -> Setting {
        Setting::Separation(WeightSeparation::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap())
    }

    #[test]
    fn mixed_churn_moves_stake_in_both_directions() {
        let w = crate::gen::zipf(64, 0.8, 1 << 20);
        let mut rng = StdRng::seed_from_u64(5);
        let next = churn_with(ChurnMode::Mixed, &w, 8, 10, &mut rng);
        let mut gained = 0usize;
        let mut lost = 0usize;
        for (a, b) in w.as_slice().iter().zip(next.as_slice()) {
            gained += usize::from(b > a);
            lost += usize::from(b < a);
        }
        // 8 churned parties, half strict losers and half strict gainers
        // (integer floor can only ever soften a move to "unchanged", and
        // only for tiny stakes, which zipf(1<<20) does not produce here).
        assert_eq!(gained, 4, "gainers: {gained}");
        assert_eq!(lost, 4, "losers: {lost}");
    }

    #[test]
    fn churn_touches_exactly_the_requested_parties() {
        let w = crate::gen::zipf(64, 0.8, 1 << 20);
        let mut rng = StdRng::seed_from_u64(7);
        let next = churn(&w, 3, 50, &mut rng);
        let changed = w.as_slice().iter().zip(next.as_slice()).filter(|(a, b)| a != b).count();
        assert!(changed <= 3, "at most the churned parties move: {changed}");
        assert_eq!(next.len(), w.len());
        assert!(next.as_slice().iter().all(|&x| x > 0));
        // Zero churn is the identity.
        assert_eq!(churn(&w, 0, 50, &mut rng), w);
    }

    #[test]
    fn reconfigurator_emits_deltas_that_splice_mappings() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut loop_ = Reconfigurator::new(Swiper::new(), vec![wr(), ws()]);
        let mut snapshot = crate::gen::zipf(48, 0.9, 1 << 16);
        let first = loop_.advance(&snapshot).unwrap();
        assert_eq!(first.epoch, 0);
        assert!(first.events.iter().all(Option::is_none), "no event before epoch 1");
        let mut mappings: Vec<VirtualUsers> = first
            .solutions
            .iter()
            .map(|s| VirtualUsers::from_assignment(&s.assignment).unwrap())
            .collect();
        for _ in 0..6 {
            snapshot = churn(&snapshot, 2, 30, &mut rng);
            let outcome = loop_.advance(&snapshot).unwrap();
            for (track, mapping) in mappings.iter_mut().enumerate() {
                if let Some(event) = outcome.event(track) {
                    mapping.apply_delta(event.delta()).unwrap();
                    assert_eq!(event.weights(), &snapshot, "track {track} stake refresh");
                }
                let rebuilt =
                    VirtualUsers::from_assignment(&outcome.solutions[track].assignment)
                        .unwrap();
                assert_eq!(*mapping, rebuilt, "track {track}");
            }
        }
        assert_eq!(loop_.epochs_consumed(), 7);
        assert!(loop_.cached_verdicts() > 0);
    }

    /// `drive_simulation` hands each epoch's snapshot + outcome to the
    /// live-instance driver, in order, and the deltas it delivers splice
    /// a mapping identically to rebuilding from the published solutions.
    #[test]
    fn drive_simulation_feeds_each_epoch_to_the_driver() {
        let mut loop_ = Reconfigurator::new(Swiper::new(), vec![wr()]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut snapshots = vec![crate::gen::zipf(32, 0.8, 1 << 16)];
        for _ in 0..4 {
            let next = churn(snapshots.last().unwrap(), 2, 20, &mut rng);
            snapshots.push(next);
        }
        let mut mapping: Option<VirtualUsers> = None;
        let mut driven = 0u64;
        let outcomes = loop_
            .drive_simulation(snapshots, |snapshot, outcome| {
                assert_eq!(snapshot.len(), 32);
                assert_eq!(outcome.epoch, driven);
                driven += 1;
                match (&mut mapping, &outcome.events[0]) {
                    (Some(m), Some(event)) => m.apply_delta(event.delta()).unwrap(),
                    (m, _) => {
                        *m = Some(
                            VirtualUsers::from_assignment(&outcome.solutions[0].assignment)
                                .unwrap(),
                        );
                    }
                }
            })
            .unwrap();
        assert_eq!(driven, 5);
        assert_eq!(outcomes.len(), 5);
        let final_mapping =
            VirtualUsers::from_assignment(&outcomes.last().unwrap().solutions[0].assignment)
                .unwrap();
        assert_eq!(mapping.unwrap(), final_mapping);
    }

    /// Satellite fix: a snapshot that changes the party *count* is
    /// rejected at the API boundary with the typed error — not with the
    /// `DeltaMismatch` that used to surface much later from deep inside
    /// `apply_delta` — and the loop state stays untouched.
    #[test]
    fn party_count_change_is_a_typed_boundary_error() {
        let mut loop_ = Reconfigurator::new(Swiper::new(), vec![wr()]);
        loop_.advance(&crate::gen::zipf(12, 0.8, 1 << 12)).unwrap();
        let grown = crate::gen::zipf(13, 0.8, 1 << 12);
        let err = loop_.advance(&grown).unwrap_err();
        assert_eq!(err, CoreError::PartyCountChanged { expected: 12, found: 13 });
        assert_eq!(
            err.to_string(),
            "snapshot changes the party count (12 -> 13) without a matching delta: \
             party sets are fixed across epochs"
        );
        // The boundary check leaves the loop usable: the original shape
        // still advances, and epoch numbering never consumed the reject.
        assert_eq!(loop_.epochs_consumed(), 1);
        let ok = loop_.advance(&crate::gen::zipf(12, 0.7, 1 << 12)).unwrap();
        assert_eq!(ok.epoch, 1);
    }

    /// The emitted events chain: each epoch's previous-weights
    /// fingerprint is exactly the fingerprint of the snapshot before it,
    /// the carried weights are the epoch's snapshot, and the rekey seed
    /// is the session's.
    #[test]
    fn events_chain_fingerprints_across_epochs() {
        let mut loop_ = Reconfigurator::new(Swiper::new(), vec![wr()]).with_rekey_seed(77);
        let mut rng = StdRng::seed_from_u64(9);
        let mut snapshot = crate::gen::zipf(24, 0.9, 1 << 14);
        loop_.advance(&snapshot).unwrap();
        for epoch in 1..5 {
            let prev = snapshot.clone();
            snapshot = churn(&snapshot, 2, 40, &mut rng);
            let outcome = loop_.advance(&snapshot).unwrap();
            let event = outcome.event(0).expect("events from epoch 1 on");
            assert_eq!(event.epoch(), epoch);
            assert_eq!(event.prev_weights_fingerprint(), prev.fingerprint());
            assert_eq!(event.weights(), &snapshot);
            assert_eq!(event.rekey_seed(), 77);
            assert_eq!(event.weights_changed(), snapshot != prev);
        }
    }

    #[test]
    fn unchanged_snapshot_is_fully_cached() {
        let mut loop_ = Reconfigurator::new(Swiper::new(), vec![wr()]);
        let snapshot = crate::gen::zipf(40, 0.7, 1 << 16);
        loop_.advance(&snapshot).unwrap();
        let again = loop_.advance(&snapshot).unwrap();
        let stats = again.stats();
        assert_eq!(stats.cache_misses, 0, "identical epoch re-solves from the cache");
        assert!(stats.cache_hits > 0);
        assert!(again.delta(0).unwrap().is_unchanged());
        assert!(!again.event(0).unwrap().weights_changed());
    }

    /// The ISSUE acceptance criterion: on a 1%-churn replay, the
    /// warm-started, verdict-cached re-solve produces assignments
    /// identical to independent cold solves while invoking the knapsack
    /// DP strictly fewer times. Tezos is the scenario where the cold
    /// search actually pays for DP calls on the mid-path (Aptos settles
    /// everything by the quick bounds), so the saving is observable and
    /// the assertion is strict.
    #[test]
    fn one_percent_churn_replay_matches_cold_with_strictly_fewer_dp_calls() {
        let solver = Swiper::new();
        let setting = wr();
        let mut loop_ = Reconfigurator::new(solver, vec![setting]).with_cold_check(true);
        // Tezos replica: 382 parties; 1% churn = 4 parties per epoch, each
        // moving at most ±5% of its stake.
        let mut snapshot = crate::Chain::Tezos.weights();
        let churned = snapshot.len().div_ceil(100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut warm_dp = 0u64;
        let mut cold_dp = 0u64;
        let mut lookups = 0u64;
        let mut warm_agreed = 0u64;
        for epoch in 0..25 {
            let outcome = loop_.advance(&snapshot).unwrap();
            // Independent cold solve: fresh oracle, no cache, no hint.
            let cold = solver.solve_instance(&setting.instance(snapshot.clone())).unwrap();
            assert_eq!(
                outcome.solutions[0].assignment, cold.assignment,
                "epoch {epoch}: published assignments must be identical to cold"
            );
            let warm = outcome.warm_stats().expect("verified mode records the warm pass");
            warm_dp += warm.dp_invocations;
            cold_dp += cold.stats.dp_invocations;
            lookups += warm.cache_lookups() + outcome.stats().cache_lookups();
            warm_agreed += u64::from(outcome.verified() == Some(true));
            snapshot = churn(&snapshot, churned, 5, &mut rng);
        }
        assert!(
            warm_dp < cold_dp,
            "the warm pass must need strictly fewer DP invocations: \
             warm {warm_dp} vs cold {cold_dp}"
        );
        assert!(lookups > 0, "the shared caches must actually be consulted");
        assert!(warm_agreed >= 20, "warm pass should agree on most epochs: {warm_agreed}/25");
    }

    /// The PR-6 acceptance criterion: on the same 25-epoch Tezos 1%-churn
    /// replay, a certificate-enabled loop publishes bit-identical
    /// assignments to a certificate-free one while running the DP strictly
    /// fewer times — the skipped calls show up in `certificate_skips`.
    #[test]
    fn certified_replay_beats_warm_baseline_dp_count() {
        let setting = wr();
        let mut base =
            Reconfigurator::new(Swiper::new(), vec![setting]).with_certificates(false);
        let mut cert = Reconfigurator::new(Swiper::new(), vec![setting]);
        assert!(!base.certificates_enabled());
        assert!(cert.certificates_enabled());
        let mut snapshot = crate::Chain::Tezos.weights();
        let churned = snapshot.len().div_ceil(100);
        let mut rng = StdRng::seed_from_u64(1);
        let (mut base_dp, mut cert_dp, mut skips) = (0u64, 0u64, 0u64);
        for epoch in 0..25 {
            let b = base.advance(&snapshot).unwrap();
            let c = cert.advance(&snapshot).unwrap();
            assert_eq!(
                b.solutions[0].assignment, c.solutions[0].assignment,
                "epoch {epoch}: certificates must not change the published assignment"
            );
            let (bs, cs) = (b.stats(), c.stats());
            assert_eq!(bs.certificate_skips, 0);
            base_dp += bs.dp_invocations;
            cert_dp += cs.dp_invocations;
            skips += cs.certificate_skips;
            snapshot = churn(&snapshot, churned, 5, &mut rng);
        }
        assert!(
            cert_dp < base_dp,
            "certificates must skip DP calls: certified {cert_dp} vs baseline {base_dp}"
        );
        assert!(skips > 0, "the skip counter must surface the fast path");
    }
}
