//! Calibrated synthetic replicas of the four blockchain stake
//! distributions the paper evaluates on (Section 7, Table 2, Appendix C).
//!
//! | system   | n      | W           | character |
//! |----------|--------|-------------|-----------|
//! | Aptos    | 104    | 8.47 x 10^8 | validator set, mildly skewed |
//! | Tezos    | 382    | 6.76 x 10^8 | bakers, moderately skewed    |
//! | Filecoin | 3700   | 2.52 x 10^19| storage power, heavy tail    |
//! | Algorand | 42920  | 9.72 x 10^9 | open accounts, extreme skew  |
//!
//! The real snapshots are not redistributable/reachable offline, so each
//! replica is a deterministic Zipf-like draw calibrated to the published
//! `(n, W)` and to the qualitative skew the paper reports (ticket totals
//! often *below* `n`, max-tickets saturating around 10^3 parties). The
//! absolute Table 2 cells therefore differ from the paper's; the shapes and
//! orderings — which is what Section 7 analyzes — are preserved.

use serde::{Deserialize, Serialize};
use swiper_core::Weights;

use crate::gen;

/// One of the four evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Chain {
    /// Aptos validator stake (104 validators).
    Aptos,
    /// Tezos baker stake (382 bakers).
    Tezos,
    /// Filecoin storage power (3700 providers).
    Filecoin,
    /// Algorand account stake (42920 accounts).
    Algorand,
}

/// All four chains in paper order.
pub const CHAINS: [Chain; 4] = [Chain::Aptos, Chain::Tezos, Chain::Filecoin, Chain::Algorand];

impl Chain {
    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Chain::Aptos => "Aptos",
            Chain::Tezos => "Tezos",
            Chain::Filecoin => "Filecoin",
            Chain::Algorand => "Algorand",
        }
    }

    /// Published number of parties `n` (Table 2).
    pub fn n(&self) -> usize {
        match self {
            Chain::Aptos => 104,
            Chain::Tezos => 382,
            Chain::Filecoin => 3_700,
            Chain::Algorand => 42_920,
        }
    }

    /// Published total weight `W` (Table 2).
    pub fn total_weight(&self) -> u128 {
        match self {
            Chain::Aptos => 847_000_000,                   // 8.47e8
            Chain::Tezos => 676_000_000,                   // 6.76e8
            Chain::Filecoin => 25_200_000_000_000_000_000, // 2.52e19
            Chain::Algorand => 9_720_000_000,              // 9.72e9
        }
    }

    /// Zipf exponent of the calibrated replica. Chosen so the solver's
    /// behaviour matches the paper's qualitative findings: validator sets
    /// (Aptos) are flattest; open account sets (Algorand) are dominated by
    /// a tiny head with a huge dust tail.
    fn zipf_exponent(&self) -> f64 {
        match self {
            Chain::Aptos => 0.45,
            Chain::Tezos => 0.95,
            Chain::Filecoin => 0.85,
            Chain::Algorand => 1.35,
        }
    }

    /// The deterministic synthetic stake distribution for this chain.
    pub fn weights(&self) -> Weights {
        let raw = gen::zipf(self.n(), self.zipf_exponent(), 1 << 40);
        gen::rescale_total(&raw, self.total_weight())
    }

    /// Parses a chain from its lowercase name.
    pub fn parse(s: &str) -> Option<Chain> {
        match s.to_ascii_lowercase().as_str() {
            "aptos" => Some(Chain::Aptos),
            "tezos" => Some(Chain::Tezos),
            "filecoin" => Some(Chain::Filecoin),
            "algorand" => Some(Chain::Algorand),
            _ => None,
        }
    }
}

impl std::fmt::Display for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn replicas_match_published_n_and_w() {
        for chain in CHAINS {
            let w = chain.weights();
            assert_eq!(w.len(), chain.n(), "{chain}");
            let total = w.total();
            let target = chain.total_weight();
            assert!(
                total > target * 95 / 100 && total < target * 105 / 100,
                "{chain}: total {total} vs target {target}"
            );
        }
    }

    #[test]
    fn replicas_are_deterministic() {
        for chain in CHAINS {
            assert_eq!(chain.weights(), chain.weights(), "{chain}");
        }
    }

    #[test]
    fn skew_ordering_matches_narrative() {
        // Gini: Aptos flattest, Algorand most unequal.
        let gini: Vec<f64> = CHAINS.iter().map(|c| stats::gini(&c.weights())).collect();
        assert!(gini[0] < gini[1], "Aptos flatter than Tezos");
        assert!(gini[1] < gini[3], "Tezos flatter than Algorand");
        assert!(gini[3] > 0.7, "Algorand replica is extremely skewed: {}", gini[3]);
    }

    #[test]
    fn parse_round_trips() {
        for chain in CHAINS {
            assert_eq!(Chain::parse(chain.name()).unwrap(), chain);
            assert_eq!(Chain::parse(&chain.name().to_uppercase()).unwrap(), chain);
        }
        assert!(Chain::parse("bitcoin").is_none());
    }

    #[test]
    fn per_party_weights_fit_u64() {
        // Filecoin's W = 2.52e19 exceeds u64::MAX, but per-party weights
        // must not.
        let w = Chain::Filecoin.weights();
        assert!(u128::from(w.max()) < u128::from(u64::MAX));
        assert!(w.total() > u128::from(u64::MAX), "total deliberately exceeds u64");
    }
}
