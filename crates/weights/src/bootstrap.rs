//! Bootstrap resampling (paper Section 7).
//!
//! "In order to simulate having the same blockchain with different numbers
//! of parties, we used the statistical technique known as bootstrapping
//! ... 100 experiments sampling parties with replacement from the
//! blockchain data and taking the average of the results."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swiper_core::Weights;

/// Draws a bootstrap replica of `size` parties, sampling with replacement.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn resample(weights: &Weights, size: usize, rng: &mut StdRng) -> Weights {
    assert!(size > 0, "bootstrap size must be positive");
    let n = weights.len();
    loop {
        let sample: Vec<u64> = (0..size).map(|_| weights.get(rng.random_range(0..n))).collect();
        // All-zero draws are possible when the source contains zero
        // weights; redraw (the paper's data has positive stakes).
        if sample.iter().any(|&w| w > 0) {
            return Weights::new(sample).expect("non-zero total");
        }
    }
}

/// Runs `reps` bootstrap experiments of `size` parties each, applying `f`
/// to every replica and averaging the results (the Figure 1–5 right-column
/// methodology; the paper uses `reps = 100`).
///
/// # Panics
///
/// Panics if `reps == 0` or `size == 0`.
pub fn bootstrap_mean<F>(
    weights: &Weights,
    size: usize,
    reps: usize,
    seed: u64,
    mut f: F,
) -> f64
where
    F: FnMut(&Weights) -> f64,
{
    assert!(reps > 0, "need at least one repetition");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0.0;
    for _ in 0..reps {
        let sample = resample(weights, size, &mut rng);
        acc += f(&sample);
    }
    acc / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Weights {
        Weights::new((1..=100u64).collect()).unwrap()
    }

    #[test]
    fn resample_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = resample(&base(), 37, &mut rng);
        assert_eq!(s.len(), 37);
    }

    #[test]
    fn resample_draws_from_source_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = resample(&base(), 500, &mut rng);
        assert!(s.as_slice().iter().all(|&w| (1..=100).contains(&w)));
    }

    #[test]
    fn bootstrap_mean_is_deterministic_per_seed() {
        let f = |w: &Weights| w.total() as f64 / w.len() as f64;
        let a = bootstrap_mean(&base(), 50, 20, 9, f);
        let b = bootstrap_mean(&base(), 50, 20, 9, f);
        let c = bootstrap_mean(&base(), 50, 20, 10, f);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bootstrap_mean_estimates_population_mean() {
        // Mean weight of 1..=100 is 50.5; the bootstrap mean of means
        // should land close with enough reps.
        let f = |w: &Weights| w.total() as f64 / w.len() as f64;
        let est = bootstrap_mean(&base(), 100, 200, 42, f);
        assert!((est - 50.5).abs() < 2.5, "estimate {est}");
    }

    #[test]
    fn resample_skips_all_zero_draws() {
        // Source with many zeros: resampling must still return non-zero
        // totals.
        let w = Weights::new(vec![0, 0, 0, 0, 0, 0, 0, 1]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let s = resample(&w, 3, &mut rng);
            assert!(s.total() > 0);
        }
    }
}
