//! Inequality and concentration statistics over weight vectors.

use swiper_core::Weights;

/// Gini coefficient in `[0, 1)`: 0 = perfectly equal.
pub fn gini(weights: &Weights) -> f64 {
    let mut w: Vec<u64> = weights.as_slice().to_vec();
    w.sort_unstable();
    let n = w.len() as f64;
    let total: f64 = weights.total() as f64;
    if total == 0.0 {
        return 0.0;
    }
    // G = (2 * sum_i i*w_i) / (n * total) - (n + 1) / n, with 1-based i on
    // ascending weights.
    let weighted_rank_sum: f64 =
        w.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
    (2.0 * weighted_rank_sum) / (n * total) - (n + 1.0) / n
}

/// Nakamoto coefficient for threshold `num/den`: the minimum number of
/// parties whose combined weight *exceeds* that fraction of the total.
///
/// # Panics
///
/// Panics if `den == 0`.
pub fn nakamoto(weights: &Weights, num: u128, den: u128) -> usize {
    assert!(den > 0);
    let mut w: Vec<u64> = weights.as_slice().to_vec();
    w.sort_unstable_by(|a, b| b.cmp(a));
    let total = weights.total();
    let mut acc: u128 = 0;
    for (i, &x) in w.iter().enumerate() {
        acc += u128::from(x);
        if acc * den > num * total {
            return i + 1;
        }
    }
    w.len()
}

/// Fraction (in percent, rounded down) of total weight held by the top `k`
/// parties.
pub fn top_k_share_percent(weights: &Weights, k: usize) -> u128 {
    let mut w: Vec<u64> = weights.as_slice().to_vec();
    w.sort_unstable_by(|a, b| b.cmp(a));
    let top: u128 = w.iter().take(k).map(|&x| u128::from(x)).sum();
    top * 100 / weights.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_equal_weights_is_zero() {
        let w = Weights::new(vec![5; 100]).unwrap();
        assert!(gini(&w).abs() < 1e-9);
    }

    #[test]
    fn gini_of_single_whale_approaches_one() {
        let mut v = vec![0u64; 99];
        v.push(1_000_000);
        let w = Weights::new(v).unwrap();
        assert!(gini(&w) > 0.98);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = Weights::new(vec![1, 2, 3, 4]).unwrap();
        let b = Weights::new(vec![100, 200, 300, 400]).unwrap();
        assert!((gini(&a) - gini(&b)).abs() < 1e-12);
    }

    #[test]
    fn nakamoto_thresholds() {
        let w = Weights::new(vec![40, 30, 20, 10]).unwrap();
        // > 1/3 of 100 needs just the top party (40 > 33.3).
        assert_eq!(nakamoto(&w, 1, 3), 1);
        // > 1/2 needs two (70 > 50).
        assert_eq!(nakamoto(&w, 1, 2), 2);
        // > 2/3 needs two (70 > 66.7).
        assert_eq!(nakamoto(&w, 2, 3), 2);
        // > 99/100 needs all four.
        assert_eq!(nakamoto(&w, 99, 100), 4);
    }

    #[test]
    fn top_k_share() {
        let w = Weights::new(vec![50, 30, 15, 5]).unwrap();
        assert_eq!(top_k_share_percent(&w, 1), 50);
        assert_eq!(top_k_share_percent(&w, 2), 80);
        assert_eq!(top_k_share_percent(&w, 4), 100);
        assert_eq!(top_k_share_percent(&w, 0), 0);
    }
}
