//! # swiper-weights — weight distributions for the empirical study
//!
//! Section 7 / Appendix C of the Swiper paper analyze the solver on the
//! stake distributions of four blockchains (Aptos, Tezos, Filecoin,
//! Algorand). The original snapshots were crawled from explorer endpoints
//! in 2023 and are not redistributable; this crate generates **calibrated
//! synthetic replicas** matching the published `(n, W)` of each system and
//! the qualitative skew of proof-of-stake distributions (a few whales plus
//! a heavy dust tail) — see DESIGN.md for the substitution rationale.
//!
//! Also here: generic distribution generators ([`gen`]), the bootstrap
//! resampler used for the right-hand columns of Figures 1–5
//! ([`bootstrap`]), and inequality statistics ([`stats`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod chains;
pub mod epoch;
pub mod gen;
pub mod snapshot;
pub mod stats;

pub use chains::{Chain, CHAINS};
