//! Validated (multi-valued) asynchronous Byzantine agreement
//! (paper Definition 4.3 and Section 6.2).
//!
//! A practical VABA composition in the weighted model, built from the
//! pieces the paper derives:
//!
//! 1. every party reliably broadcasts its proposal
//!    ([`crate::bracha`], converted by weighted voting);
//! 2. once proposals of weight `> 2 f_w` are delivered, a *leader
//!    election coin* — threshold signatures over WR tickets
//!    (Section 4.1) — picks a stake-weighted leader, unpredictable until
//!    the election quorum releases its shares;
//! 3. a weighted binary agreement ([`crate::aba`]) decides whether to
//!    adopt the leader's proposal (input 1 iff delivered and externally
//!    valid); on 0, a new view elects a fresh leader.
//!
//! Properties (exercised in the tests): agreement and external validity
//! always; liveness with probability 1 — each view succeeds when the
//! elected leader's valid proposal was delivered everywhere, which
//! happens with constant probability per view.

use std::collections::HashMap;

use rand::Rng;
use swiper_core::{EpochEvent, Ratio, StableId, TicketAssignment, VirtualUsers, Weights};
use swiper_crypto::thresh::{KeyShare, PartialSignature, PublicKey, ThresholdScheme};
use swiper_net::{Context, Effects, MessageSize, NodeId, Protocol};

use crate::aba::{AbaMsg, AbaNode, AbaSetup};
use crate::bracha::{BrachaConfig, BrachaMsg, BrachaNode};
use crate::quorum::{QuorumTracker, WeightQuorum};

/// VBA wrapper messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VbaMsg {
    /// A message of proposal-broadcast instance `instance`.
    Rbc {
        /// Which party's proposal broadcast this belongs to.
        instance: u32,
        /// The wrapped Bracha message.
        inner: BrachaMsg,
    },
    /// A message of the view-`view` binary agreement.
    Aba {
        /// The view number.
        view: u32,
        /// The wrapped ABA message.
        inner: AbaMsg,
    },
    /// Leader-election coin shares for a view.
    LeaderShare {
        /// The view number.
        view: u32,
        /// Partial signatures from the sender's key shares.
        partials: Vec<PartialSignature>,
    },
}

impl MessageSize for VbaMsg {
    fn size_bytes(&self) -> usize {
        match self {
            VbaMsg::Rbc { inner, .. } => 4 + inner.size_bytes(),
            VbaMsg::Aba { inner, .. } => 4 + inner.size_bytes(),
            VbaMsg::LeaderShare { partials, .. } => 4 + partials.len() * 16,
        }
    }
}

/// Shared trusted setup for one VBA instance.
#[derive(Debug, Clone)]
pub struct VbaConfig {
    weights: Weights,
    /// The current epoch's WR assignment — the base the next event's
    /// delta must chain from (the election `mapping` itself stays pinned
    /// to the dealing epoch; see [`VbaConfig::on_epoch`]).
    tickets: TicketAssignment,
    mapping: VirtualUsers,
    scheme: ThresholdScheme,
    pk: PublicKey,
    shares: Vec<Vec<KeyShare>>,
    aba_setups: Vec<AbaSetup>,
    max_views: u32,
}

impl VbaConfig {
    /// Deals the instance: the WR ticket assignment powers both the
    /// leader-election coin and the per-view ABA coins.
    ///
    /// # Panics
    ///
    /// Panics on weight/ticket mismatch, an empty assignment, or
    /// `max_views == 0`.
    pub fn deal<R: Rng + ?Sized>(
        weights: Weights,
        tickets: &TicketAssignment,
        max_views: u32,
        rng: &mut R,
    ) -> Self {
        assert!(max_views > 0, "need at least one view");
        assert_eq!(weights.len(), tickets.len(), "weights/tickets mismatch");
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        let total = mapping.total();
        assert!(total > 0, "leader election needs at least one ticket");
        let scheme = ThresholdScheme::new(total / 2 + 1, total).expect("threshold <= total");
        let (pk, all) = scheme.keygen(rng);
        let shares: Vec<Vec<KeyShare>> = (0..mapping.parties())
            .map(|p| mapping.virtuals_of(p).map(|v| all[v]).collect())
            .collect();
        let aba_setups = (0..max_views)
            .map(|view| {
                AbaSetup::deal(weights.clone(), tickets, 0xABA_000 + u64::from(view), rng)
            })
            .collect();
        VbaConfig {
            weights,
            tickets: tickets.clone(),
            mapping,
            scheme,
            pk,
            shares,
            aba_setups,
            max_views,
        }
    }

    /// Maximum number of views before giving up.
    pub fn max_views(&self) -> u32 {
        self.max_views
    }

    /// Epoch stake refresh for the shared config, all-or-nothing: an
    /// event whose delta does not chain from the current WR assignment is
    /// rejected (`false`) and NOTHING is touched — refreshing the weights
    /// while the hosted setups ignore the same event would leave the
    /// proposal tally and the per-view quorums under different epochs'
    /// stake. On a chaining event the weight vector future quorums are
    /// minted from follows it, and every per-view ABA setup applies its
    /// coin carry/re-deal rule (so a view instantiated *after* the
    /// boundary deals from the same key generation as a live instance
    /// that re-keyed at it). The **leader-election coin stays pinned to
    /// its dealing epoch**: its shares are released within a single
    /// view's lifetime, and re-dealing mid-election would race the
    /// release — the per-view ABA carry/re-deal split already covers the
    /// long-lived material.
    fn on_epoch(&mut self, event: &EpochEvent) -> bool {
        let Ok(next) = event.delta().apply_to(&self.tickets) else {
            return false;
        };
        self.tickets = next;
        let _ = event.refresh_weights(&mut self.weights);
        for setup in &mut self.aba_setups {
            let _ = setup.on_epoch(event);
        }
        true
    }

    fn election_tag(&self, view: u32) -> Vec<u8> {
        let mut tag = b"swiper.vba.leader.".to_vec();
        tag.extend_from_slice(&view.to_le_bytes());
        tag
    }
}

/// One VBA party.
pub struct VbaNode<V> {
    config: VbaConfig,
    validity: V,
    // Hosted proposal broadcasts, one per party (instance = sender id).
    rbc: Vec<BrachaNode>,
    rbc_halted: Vec<bool>,
    delivered: Vec<Option<Vec<u8>>>,
    delivered_quorum: WeightQuorum,
    // Views.
    view: u32,
    view_entered: bool,
    election_seen: HashMap<u32, std::collections::HashSet<u64>>,
    election_partials: HashMap<u32, Vec<PartialSignature>>,
    leaders: HashMap<u32, usize>,
    abas: HashMap<u32, AbaNode>,
    aba_halted: std::collections::HashSet<u32>,
    /// ABA messages that arrived before the view's instance existed.
    aba_buffer: HashMap<u32, Vec<(NodeId, AbaMsg)>>,
    aba_decisions: HashMap<u32, bool>,
    pending_output_view: Option<u32>,
    output_done: bool,
}

impl<V: Fn(&[u8]) -> bool> VbaNode<V> {
    /// Creates party `me`'s node with its proposal and external validity
    /// predicate.
    pub fn new(config: VbaConfig, me: NodeId, proposal: Vec<u8>, validity: V) -> Self {
        let n = config.weights.len();
        let rbc: Vec<BrachaNode> = (0..n)
            .map(|sender| {
                let bc = BrachaConfig::weighted(config.weights.clone());
                if sender == me {
                    BrachaNode::sender(bc, sender, proposal.clone())
                } else {
                    BrachaNode::new(bc, sender)
                }
            })
            .collect();
        let delivered_quorum = WeightQuorum::new(config.weights.clone(), Ratio::of(2, 3));
        VbaNode {
            config,
            validity,
            rbc,
            rbc_halted: vec![false; n],
            delivered: vec![None; n],
            delivered_quorum,
            view: 0,
            view_entered: false,
            election_seen: HashMap::new(),
            election_partials: HashMap::new(),
            leaders: HashMap::new(),
            abas: HashMap::new(),
            aba_halted: Default::default(),
            aba_buffer: HashMap::new(),
            aba_decisions: HashMap::new(),
            pending_output_view: None,
            output_done: false,
        }
    }

    /// Routes effects of a hosted RBC instance.
    fn route_rbc(
        &mut self,
        instance: usize,
        effects: Effects<BrachaMsg>,
        ctx: &mut Context<VbaMsg>,
    ) {
        for (to, inner) in effects.outbox {
            ctx.send(to, VbaMsg::Rbc { instance: instance as u32, inner });
        }
        if let Some(out) = effects.output {
            if self.delivered[instance].is_none() {
                self.delivered[instance] = Some(out);
                self.delivered_quorum.vote(StableId::solo(instance));
            }
        }
        if effects.halted {
            self.rbc_halted[instance] = true;
        }
    }

    /// Routes effects of a hosted ABA instance.
    fn route_aba(&mut self, view: u32, effects: Effects<AbaMsg>, ctx: &mut Context<VbaMsg>) {
        for (to, inner) in effects.outbox {
            ctx.send(to, VbaMsg::Aba { view, inner });
        }
        if let Some(out) = effects.output {
            self.aba_decisions.entry(view).or_insert(out == vec![1]);
        }
        if effects.halted {
            self.aba_halted.insert(view);
        }
    }

    /// Advances the state machine as far as possible.
    fn progress(&mut self, ctx: &mut Context<VbaMsg>) {
        // Enter the current view once enough proposals are delivered.
        if !self.view_entered
            && self.delivered_quorum.reached()
            && self.view < self.config.max_views
        {
            self.view_entered = true;
            let view = self.view;
            let tag = self.config.election_tag(view);
            let partials: Vec<PartialSignature> = self.config.shares[ctx.me()]
                .iter()
                .map(|s| self.config.scheme.partial_sign(s, &tag))
                .collect();
            ctx.broadcast(VbaMsg::LeaderShare { view, partials });
        }
        // Combine the election once the share threshold is met.
        let view = self.view;
        if self.view_entered && !self.leaders.contains_key(&view) {
            if let Some(partials) = self.election_partials.get(&view) {
                if partials.len() >= self.config.scheme.threshold() {
                    if let Ok(sig) = self.config.scheme.combine(partials) {
                        let tag = self.config.election_tag(view);
                        if self.config.scheme.verify(&self.config.pk, &tag, &sig) {
                            let total = self.config.mapping.total() as u64;
                            let winner_virtual =
                                (sig.beacon_output().to_u64() % total) as usize;
                            let leader = self.config.mapping.owner_of(winner_virtual);
                            self.leaders.insert(view, leader);
                        }
                    }
                }
            }
        }
        // Start the view's ABA once the leader is known.
        if let Some(&leader) = self.leaders.get(&view) {
            if !self.abas.contains_key(&view) {
                let input =
                    self.delivered[leader].as_deref().is_some_and(|p| (self.validity)(p));
                let mut node =
                    AbaNode::new(self.config.aba_setups[view as usize].clone(), input);
                let mut inner_ctx = Context::detached(ctx.me(), ctx.n(), ctx.now());
                node.on_start(&mut inner_ctx);
                self.abas.insert(view, node);
                let fx = inner_ctx.into_effects();
                self.route_aba(view, fx, ctx);
                // Replay messages that arrived before the instance existed.
                for (from, inner) in self.aba_buffer.remove(&view).unwrap_or_default() {
                    if self.aba_halted.contains(&view) {
                        break;
                    }
                    if let Some(node) = self.abas.get_mut(&view) {
                        let mut inner_ctx = Context::detached(ctx.me(), ctx.n(), ctx.now());
                        node.on_message(from, inner, &mut inner_ctx);
                        let fx = inner_ctx.into_effects();
                        self.route_aba(view, fx, ctx);
                    }
                }
            }
        }
        // Act on the view's decision.
        if let Some(&decided) = self.aba_decisions.get(&view) {
            if decided {
                self.pending_output_view = Some(view);
            } else if self.view + 1 < self.config.max_views {
                self.view += 1;
                self.view_entered = false;
                // Re-enter immediately (the proposal quorum only grows).
                self.progress(ctx);
                return;
            }
        }
        // Deliver the output once the winning leader's proposal arrives.
        if let Some(v) = self.pending_output_view {
            if !self.output_done {
                if let Some(&leader) = self.leaders.get(&v) {
                    if let Some(p) = self.delivered[leader].clone() {
                        self.output_done = true;
                        ctx.output(p);
                    }
                }
            }
        }
    }
}

impl<V: Fn(&[u8]) -> bool> Protocol for VbaNode<V> {
    type Msg = VbaMsg;

    fn on_start(&mut self, ctx: &mut Context<VbaMsg>) {
        let n = ctx.n();
        for instance in 0..n {
            let mut inner_ctx = Context::detached(ctx.me(), n, ctx.now());
            self.rbc[instance].on_start(&mut inner_ctx);
            let fx = inner_ctx.into_effects();
            self.route_rbc(instance, fx, ctx);
        }
        self.progress(ctx);
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<VbaMsg>) {
        // Stake refresh end to end: the shared config (future quorums +
        // per-view coin setups), the proposal-delivery tally, and every
        // hosted automaton — the RBC instances reweigh their own quorums,
        // live ABA instances reweigh and apply the coin rule. A
        // mis-addressed event is ignored wholesale (half-applying it
        // would split the tallies across epochs).
        if !self.config.on_epoch(event) {
            return;
        }
        self.delivered_quorum.reweigh(event);
        for instance in 0..self.rbc.len() {
            if self.rbc_halted[instance] {
                continue;
            }
            let mut inner_ctx = Context::detached(ctx.me(), ctx.n(), ctx.now());
            self.rbc[instance].on_reconfigure(event, &mut inner_ctx);
            let fx = inner_ctx.into_effects();
            self.route_rbc(instance, fx, ctx);
        }
        let views: Vec<u32> = self.abas.keys().copied().collect();
        for view in views {
            if self.aba_halted.contains(&view) {
                continue;
            }
            if let Some(node) = self.abas.get_mut(&view) {
                let mut inner_ctx = Context::detached(ctx.me(), ctx.n(), ctx.now());
                node.on_reconfigure(event, &mut inner_ctx);
                let fx = inner_ctx.into_effects();
                self.route_aba(view, fx, ctx);
            }
        }
        self.progress(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: VbaMsg, ctx: &mut Context<VbaMsg>) {
        match msg {
            VbaMsg::Rbc { instance, inner } => {
                let instance = instance as usize;
                if instance >= self.rbc.len() || self.rbc_halted[instance] {
                    return;
                }
                let mut inner_ctx = Context::detached(ctx.me(), ctx.n(), ctx.now());
                self.rbc[instance].on_message(from, inner, &mut inner_ctx);
                let fx = inner_ctx.into_effects();
                self.route_rbc(instance, fx, ctx);
            }
            VbaMsg::Aba { view, inner } => {
                if view >= self.config.max_views || self.aba_halted.contains(&view) {
                    return;
                }
                // ABA messages may arrive before the view's instance exists
                // (we only create it once the leader is known); buffer and
                // replay at creation so no BVal/coin share is ever lost.
                if let Some(node) = self.abas.get_mut(&view) {
                    let mut inner_ctx = Context::detached(ctx.me(), ctx.n(), ctx.now());
                    node.on_message(from, inner, &mut inner_ctx);
                    let fx = inner_ctx.into_effects();
                    self.route_aba(view, fx, ctx);
                } else {
                    self.aba_buffer.entry(view).or_default().push((from, inner));
                }
            }
            VbaMsg::LeaderShare { view, partials } => {
                if view >= self.config.max_views {
                    return;
                }
                let tag = self.config.election_tag(view);
                let seen = self.election_seen.entry(view).or_default();
                let bucket = self.election_partials.entry(view).or_default();
                for p in partials {
                    if self.config.scheme.verify_partial(&self.config.pk, &tag, &p)
                        && seen.insert(p.index)
                    {
                        bucket.push(p);
                    }
                }
            }
        }
        self.progress(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Swiper, WeightRestriction};
    use swiper_net::adversary::Silent;
    use swiper_net::Simulation;

    fn config(ws: &[u64], seed: u64) -> VbaConfig {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        VbaConfig::deal(weights, &sol.assignment, 16, &mut StdRng::seed_from_u64(seed))
    }

    fn valid(p: &[u8]) -> bool {
        p.starts_with(b"ok:")
    }

    #[test]
    fn all_honest_agree_on_a_valid_proposal() {
        for seed in [1u64, 2, 3] {
            let cfg = config(&[30, 25, 20, 15, 10], seed);
            let nodes: Vec<Box<dyn Protocol<Msg = VbaMsg>>> = (0..5)
                .map(|p| {
                    Box::new(VbaNode::new(
                        cfg.clone(),
                        p,
                        format!("ok:proposal-{p}").into_bytes(),
                        valid,
                    )) as _
                })
                .collect();
            let report = Simulation::new(nodes, seed).run();
            // Agreement.
            assert!(report.agreement_among(&[0, 1, 2, 3, 4]), "seed {seed}");
            // Liveness + external validity.
            let out =
                report.outputs[0].as_ref().unwrap_or_else(|| panic!("no output, seed {seed}"));
            assert!(valid(out), "invalid output {out:?}, seed {seed}");
            // Integrity: the output is one of the proposals.
            let all: Vec<Vec<u8>> =
                (0..5).map(|p| format!("ok:proposal-{p}").into_bytes()).collect();
            assert!(all.contains(out), "seed {seed}");
        }
    }

    #[test]
    fn tolerates_silent_weight_below_third() {
        // Party 0 (30%) silent: others still decide.
        for seed in [5u64, 6] {
            let cfg = config(&[30, 25, 20, 15, 10], seed);
            let mut nodes: Vec<Box<dyn Protocol<Msg = VbaMsg>>> = Vec::new();
            nodes.push(Box::new(Silent::new()));
            for p in 1..5 {
                nodes.push(Box::new(VbaNode::new(
                    cfg.clone(),
                    p,
                    format!("ok:p{p}").into_bytes(),
                    valid,
                )));
            }
            let report = Simulation::new(nodes, seed).run();
            assert!(report.agreement_among(&[1, 2, 3, 4]), "seed {seed}");
            for p in 1..5 {
                let out = report.outputs[p]
                    .as_ref()
                    .unwrap_or_else(|| panic!("party {p} no output, seed {seed}"));
                assert!(valid(out), "seed {seed}");
            }
        }
    }

    #[test]
    fn invalid_proposals_never_win() {
        // Two parties propose invalid values; the decision must be a valid
        // proposal (external validity), possibly after extra views.
        for seed in [7u64, 8] {
            let cfg = config(&[30, 25, 20, 15, 10], seed);
            let nodes: Vec<Box<dyn Protocol<Msg = VbaMsg>>> = (0..5)
                .map(|p| {
                    let proposal = if p < 2 {
                        format!("BAD:{p}").into_bytes()
                    } else {
                        format!("ok:{p}").into_bytes()
                    };
                    Box::new(VbaNode::new(cfg.clone(), p, proposal, valid)) as _
                })
                .collect();
            let report = Simulation::new(nodes, seed).run();
            assert!(report.agreement_among(&[0, 1, 2, 3, 4]), "seed {seed}");
            if let Some(out) = &report.outputs[2] {
                assert!(valid(out), "invalid decision {out:?}, seed {seed}");
            }
        }
    }

    #[test]
    fn leader_election_is_stake_weighted_and_common() {
        let cfg = config(&[60, 20, 10, 10], 42);
        // Combine the election for view 0 from all shares and check every
        // party computes the same leader.
        let tag = cfg.election_tag(0);
        let partials: Vec<PartialSignature> =
            cfg.shares.iter().flatten().map(|s| cfg.scheme.partial_sign(s, &tag)).collect();
        let sig = cfg.scheme.combine(&partials).unwrap();
        assert!(cfg.scheme.verify(&cfg.pk, &tag, &sig));
        let total = cfg.mapping.total() as u64;
        let leader = cfg.mapping.owner_of((sig.beacon_output().to_u64() % total) as usize);
        assert!(leader < 4);
    }
}
