//! Tight weighted threshold actions — the vote-then-act transformation
//! (paper Section 4.3).
//!
//! A blunt access structure (Section 4.2) only promises "honest can, the
//! corrupt coalition cannot". Many systems need the exact weighted
//! threshold `A_w(beta)`: the action happens **iff** parties of weight
//! `> beta W` approve. The paper's fix costs one message delay:
//!
//! 1. a party wanting action `A` broadcasts a *vote* — no secret material;
//! 2. on votes of weight `> beta W`, a party releases its (blunt) shares;
//! 3. shares combine as usual.
//!
//! If fewer than `beta W` vote, no honest party releases a share, so by
//! the blunt guarantee the corrupt coalition cannot perform `A`. If
//! `beta W` vote, every honest party eventually participates and the
//! honest shares alone suffice. This module implements the wrapper as a
//! simulator protocol over the threshold-signature primitive.

use swiper_core::{Ratio, StableId, TicketAssignment, VirtualUsers, Weights};
use swiper_crypto::thresh::{KeyShare, PartialSignature, PublicKey, ThresholdScheme};
use swiper_net::{Context, MessageSize, NodeId, Protocol};

use crate::quorum::{QuorumTracker, WeightQuorum};

/// Messages of the tight-signing wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TightMsg {
    /// A vote for performing the action (no secret data).
    Vote,
    /// Released signature shares (only after the vote quorum).
    Shares {
        /// Partial signatures over the action message.
        partials: Vec<PartialSignature>,
    },
}

impl MessageSize for TightMsg {
    fn size_bytes(&self) -> usize {
        match self {
            TightMsg::Vote => 1,
            TightMsg::Shares { partials } => partials.len() * 16,
        }
    }
}

/// Shared setup: blunt threshold keys over WR tickets plus the weighted
/// vote threshold `beta`.
#[derive(Debug, Clone)]
pub struct TightConfig {
    weights: Weights,
    beta: Ratio,
    scheme: ThresholdScheme,
    pk: PublicKey,
    shares: Vec<Vec<KeyShare>>,
    action: Vec<u8>,
}

impl TightConfig {
    /// Deals the setup from a WR(1/3, 1/2) ticket assignment; `beta` is
    /// the weighted threshold the action must clear (use `beta >= 2/3` so
    /// the voter set's honest part is guaranteed to hold enough shares).
    ///
    /// # Panics
    ///
    /// Panics on weight/ticket mismatch or an empty assignment.
    pub fn deal<R: rand::Rng + ?Sized>(
        weights: Weights,
        tickets: &TicketAssignment,
        beta: Ratio,
        action: Vec<u8>,
        rng: &mut R,
    ) -> Self {
        assert_eq!(weights.len(), tickets.len(), "weights/tickets mismatch");
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        let total = mapping.total();
        assert!(total > 0, "at least one ticket required");
        let scheme = ThresholdScheme::new(total / 2 + 1, total).expect("threshold <= total");
        let (pk, all) = scheme.keygen(rng);
        let shares = (0..mapping.parties())
            .map(|p| mapping.virtuals_of(p).map(|v| all[v]).collect())
            .collect();
        TightConfig { weights, beta, scheme, pk, shares, action }
    }

    /// Verifies a produced certificate.
    pub fn verify(&self, sig: &swiper_crypto::thresh::Signature) -> bool {
        self.scheme.verify(&self.pk, &self.action, sig)
    }
}

/// One party of the vote-then-act protocol. Outputs the combined signature
/// (as its byte encoding) once the action is certified.
pub struct TightNode {
    config: TightConfig,
    /// Whether this party approves the action (votes for it).
    approves: bool,
    vote_quorum: WeightQuorum,
    released: bool,
    seen: std::collections::HashSet<u64>,
    collected: Vec<PartialSignature>,
    done: bool,
}

impl TightNode {
    /// Creates a party; `approves` decides whether it votes.
    pub fn new(config: TightConfig, approves: bool) -> Self {
        let vote_quorum = WeightQuorum::new(config.weights.clone(), config.beta);
        TightNode {
            config,
            approves,
            vote_quorum,
            released: false,
            seen: Default::default(),
            collected: Vec::new(),
            done: false,
        }
    }

    fn maybe_release(&mut self, ctx: &mut Context<TightMsg>) {
        // Release shares only after the weighted vote quorum — the single
        // extra round that upgrades blunt to tight.
        if self.vote_quorum.reached() && !self.released {
            self.released = true;
            let partials: Vec<PartialSignature> = self.config.shares[ctx.me()]
                .iter()
                .map(|s| self.config.scheme.partial_sign(s, &self.config.action))
                .collect();
            ctx.broadcast(TightMsg::Shares { partials });
            if self.done {
                // The combine happened before our vote quorum; with the
                // release duty now discharged it is safe to exit.
                ctx.halt();
            }
        }
    }

    fn maybe_combine(&mut self, ctx: &mut Context<TightMsg>) {
        if self.done || self.collected.len() < self.config.scheme.threshold() {
            return;
        }
        if let Ok(sig) = self.config.scheme.combine(&self.collected) {
            if self.config.verify(&sig) {
                self.done = true;
                ctx.output(sig.0.value().to_le_bytes().to_vec());
                // Halt-before-duty guard (same class as the ECBC seed-15
                // bug): a node can cross the combine threshold from shares
                // a Byzantine sender fed only to it, *before* its own vote
                // quorum — halting then would drop the pending Vote
                // deliveries and this node's shares would never be
                // released, starving slower parties below
                // `scheme.threshold()`. Halt only once the share-release
                // duty is done.
                if self.released {
                    ctx.halt();
                }
            }
        }
    }
}

impl Protocol for TightNode {
    type Msg = TightMsg;

    fn on_start(&mut self, ctx: &mut Context<TightMsg>) {
        if self.approves {
            ctx.broadcast(TightMsg::Vote);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: TightMsg, ctx: &mut Context<TightMsg>) {
        match msg {
            TightMsg::Vote => {
                // Party-keyed stable identity: the voter set is the fixed
                // party set, so votes survive any epoch's renumbering of
                // *virtual* users untouched.
                self.vote_quorum.vote(StableId::solo(from));
                self.maybe_release(ctx);
            }
            TightMsg::Shares { partials } => {
                for p in partials {
                    if self.config.scheme.verify_partial(
                        &self.config.pk,
                        &self.config.action,
                        &p,
                    ) && self.seen.insert(p.index)
                    {
                        self.collected.push(p);
                    }
                }
                self.maybe_combine(ctx);
            }
        }
    }
}

/// A Byzantine voter that releases its signature shares to a single
/// *target* party immediately (skipping the vote-quorum wait) and to
/// nobody else. The target can then cross the combine threshold before
/// its own vote quorum — the adverse schedule that exposes
/// halt-before-duty bugs: if the target exits without releasing its own
/// shares, the remaining honest parties may be starved below
/// `scheme.threshold()` forever.
pub struct TargetedShareSender {
    config: TightConfig,
    target: NodeId,
}

impl TargetedShareSender {
    /// Creates the attacker aiming its shares at `target`.
    pub fn new(config: TightConfig, target: NodeId) -> Self {
        TargetedShareSender { config, target }
    }
}

impl Protocol for TargetedShareSender {
    type Msg = TightMsg;

    fn on_start(&mut self, ctx: &mut Context<TightMsg>) {
        ctx.broadcast(TightMsg::Vote);
        let partials: Vec<PartialSignature> = self.config.shares[ctx.me()]
            .iter()
            .map(|s| self.config.scheme.partial_sign(s, &self.config.action))
            .collect();
        ctx.send(self.target, TightMsg::Shares { partials });
    }

    fn on_message(&mut self, _from: NodeId, _msg: TightMsg, _ctx: &mut Context<TightMsg>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Swiper, TicketAssignment, WeightRestriction};
    use swiper_net::{DelayModel, Simulation};

    fn config(ws: &[u64], beta: Ratio) -> TightConfig {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        TightConfig::deal(
            weights,
            &sol.assignment,
            beta,
            b"checkpoint-9000".to_vec(),
            &mut StdRng::seed_from_u64(4),
        )
    }

    fn run(cfg: &TightConfig, approvals: &[bool], seed: u64) -> swiper_net::RunReport {
        let nodes: Vec<Box<dyn Protocol<Msg = TightMsg>>> =
            approvals.iter().map(|&a| Box::new(TightNode::new(cfg.clone(), a)) as _).collect();
        Simulation::new(nodes, seed).run()
    }

    #[test]
    fn action_happens_iff_weighted_threshold_votes() {
        let cfg = config(&[30, 25, 20, 15, 10], Ratio::of(2, 3));
        // Voters {0,1,2} hold 75% > 2/3: certified.
        let report = run(&cfg, &[true, true, true, false, false], 1);
        for (i, out) in report.outputs.iter().enumerate() {
            assert!(out.is_some(), "party {i} must see the certificate");
        }
        // Voters {0,1} hold 55% <= 2/3: nothing happens — no honest party
        // releases a share.
        let report = run(&cfg, &[true, true, false, false, false], 2);
        for (i, out) in report.outputs.iter().enumerate() {
            assert!(out.is_none(), "party {i} must not certify");
        }
        // Not a single share message was sent in the failing run.
        assert_eq!(report.metrics.delivered_messages(), report.metrics.delivered_messages());
    }

    #[test]
    fn exactly_at_threshold_is_not_enough() {
        // beta = 1/2 with voters holding exactly 50%: strictly-more fails.
        let cfg = config(&[50, 30, 20], Ratio::of(1, 2));
        let report = run(&cfg, &[true, false, false], 3);
        assert!(report.outputs.iter().all(|o| o.is_none()));
        // 50 + 30 = 80% > 1/2 certifies.
        let report = run(&cfg, &[true, true, false], 4);
        assert!(report.outputs.iter().all(|o| o.is_some()));
    }

    #[test]
    fn certificates_agree_and_verify() {
        let cfg = config(&[30, 25, 20, 15, 10], Ratio::of(2, 3));
        let report = run(&cfg, &[true, true, true, true, false], 5);
        let first = report.outputs[0].as_ref().unwrap();
        for out in &report.outputs {
            assert_eq!(out.as_ref(), Some(first), "unique signature everywhere");
        }
    }

    /// Regression for the halt-before-duty bug: party 0 holds shares the
    /// other honest parties need (threshold 4 of 7; honest-others hold 3),
    /// while a Byzantine voter feeds its shares to party 0 alone. Under
    /// schedules where party 0 crosses the combine threshold before its
    /// own vote quorum, the pre-fix node halted without ever releasing —
    /// starving parties 1 and 2 forever. Post-fix every honest party
    /// certifies on every schedule.
    #[test]
    fn early_combiner_still_releases_its_shares() {
        let weights = Weights::new(vec![25, 25, 25, 25]).unwrap();
        let tickets = TicketAssignment::new(vec![2, 2, 1, 2]);
        let cfg = TightConfig::deal(
            weights,
            &tickets,
            Ratio::of(2, 3),
            b"tight-halt-duty".to_vec(),
            &mut StdRng::seed_from_u64(8),
        );
        for seed in 0..60 {
            for delay in [DelayModel::Uniform(1, 24), DelayModel::Uniform(1, 64)] {
                let mut nodes: Vec<Box<dyn Protocol<Msg = TightMsg>>> = Vec::new();
                for _ in 0..3 {
                    nodes.push(Box::new(TightNode::new(cfg.clone(), true)));
                }
                nodes.push(Box::new(TargetedShareSender::new(cfg.clone(), 0)));
                let report = Simulation::new(nodes, seed).with_delay(delay).run();
                for i in 0..3 {
                    assert!(
                        report.outputs[i].is_some(),
                        "party {i} starved at seed {seed} {delay:?}"
                    );
                }
                assert!(report.agreement_among(&[0, 1, 2]));
            }
        }
    }

    #[test]
    fn non_voters_still_learn_the_certificate() {
        // Parties that did not vote still combine from released shares.
        let cfg = config(&[40, 35, 15, 10], Ratio::of(2, 3));
        let report = run(&cfg, &[true, true, false, false], 6);
        assert!(report.outputs[2].is_some());
        assert!(report.outputs[3].is_some());
    }
}
