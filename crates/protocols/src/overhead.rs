//! Analytic worst-case overhead factors — the generator behind Table 1.
//!
//! Each row of the paper's Table 1 bounds the communication/computation
//! overhead of a weighted protocol relative to its nominal counterpart with
//! the same number of parties. The factors derive from two quantities:
//!
//! * the **ticket inflation** `T/n <= c(1-c)/gap` from Theorems 2.1/2.3
//!   (more fragments / shares / virtual users to process);
//! * the **rate loss** `r_nominal / r_weighted` for coded protocols
//!   (Sections 5.1–5.2 walk through the arithmetic).
//!
//! Where the published table used the pre-optimization bound
//! `alpha_w / (alpha_n - alpha_w)` (without the constant-`c` improvement
//! credited to Benny Pinkas in the acknowledgements), our tighter factors
//! are smaller; `paper_value` records the published number for comparison
//! in EXPERIMENTS.md.

use swiper_core::{CoreError, Ratio, WeightQualification, WeightRestriction};

/// One row of the overhead table.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Protocol family (paper row label).
    pub protocol: &'static str,
    /// Which weight reduction problem powers it.
    pub reduction: &'static str,
    /// Weighted resilience `f_w`.
    pub f_w: Ratio,
    /// Nominal resilience `f_n`.
    pub f_n: Ratio,
    /// Worst-case communication overhead factor (ours, tight bound).
    pub comm: f64,
    /// Worst-case computation overhead factor (ours, tight bound).
    pub comp: f64,
    /// The factor printed in the paper's Table 1 (comm, comp).
    pub paper: (f64, f64),
    /// Derivation note.
    pub note: &'static str,
}

/// Ticket inflation `T/n` for a Weight Restriction instance
/// (`alpha_w (1 - alpha_w) / (alpha_n - alpha_w)`, Theorem 2.1).
///
/// # Errors
///
/// Propagates threshold validation errors.
pub fn wr_ticket_factor(alpha_w: Ratio, alpha_n: Ratio) -> Result<f64, CoreError> {
    let params = WeightRestriction::new(alpha_w, alpha_n)?;
    // Evaluate the bound at a large n to squeeze out the ceiling.
    let n = 1_000_000u64;
    Ok(params.ticket_bound(n)? as f64 / n as f64)
}

/// Ticket inflation for a Weight Qualification instance (Corollary 2.3).
///
/// # Errors
///
/// Propagates threshold validation errors.
pub fn wq_ticket_factor(beta_w: Ratio, beta_n: Ratio) -> Result<f64, CoreError> {
    let params = WeightQualification::new(beta_w, beta_n)?;
    let n = 1_000_000u64;
    Ok(params.ticket_bound(n)? as f64 / n as f64)
}

/// Communication overhead of a coded protocol: the rate ratio
/// `r_nominal / r_weighted`.
pub fn rate_overhead(nominal_rate: Ratio, weighted_rate: Ratio) -> f64 {
    nominal_rate.to_f64() / weighted_rate.to_f64()
}

/// Computation overhead of Berlekamp–Massey-style decoding:
/// `(r_n / r_w) * (m_w / n)` — rate loss times fragment inflation
/// (Section 5.1's `O(m / r * M)` cost model).
pub fn decode_overhead(rate_factor: f64, ticket_factor: f64) -> f64 {
    rate_factor * ticket_factor
}

/// Builds the full Table 1 (paper order).
pub fn table1() -> Vec<OverheadRow> {
    let third = Ratio::of(1, 3);
    let quarter = Ratio::of(1, 4);
    let half = Ratio::of(1, 2);

    // Broadcast (WQ, beta_w = 1/3, beta_n = 1/4): x1.33 comm, x3.56 comp.
    let bc_tickets = wq_ticket_factor(third, quarter).expect("valid");
    let bc_comm = rate_overhead(third, quarter);
    let bc_comp = decode_overhead(bc_comm, bc_tickets);

    // RNG / signing (WR 1/3 -> 1/2): tickets x4/3; comm & comp x1.33.
    let rng_tickets = wr_ticket_factor(third, half).expect("valid");

    // Error-corrected broadcast (WQ beta_w = 2/3, beta_n = 5/8, r = 1/4):
    // comm x(1/3)/(1/4) = 1.33, comp x(4/3)*(16/3) = 7.11.
    let ec_tickets = wq_ticket_factor(Ratio::of(2, 3), Ratio::of(5, 8)).expect("valid");
    let ec_comm = rate_overhead(third, quarter);
    let ec_comp = decode_overhead(ec_comm, ec_tickets);

    // Black-box transformation at f_w = 1/4, f_n = 1/3 (WR 1/4 -> 1/3).
    let bb_tickets = wr_ticket_factor(quarter, third).expect("valid");

    // Common-coin family uses WR(1/3, 1/2) against nominal f_n = 1/2.
    let coin_tickets = rng_tickets;

    vec![
        OverheadRow {
            protocol: "Efficient Asynchronous State-Machine Replication",
            reduction: "WR for RNG + WQ for Broadcast",
            f_w: third,
            f_n: third,
            comm: bc_comm.max(rng_tickets),
            comp: bc_comp.max(rng_tickets),
            paper: (1.33, 3.56),
            note: "x1.33 broadcast & RNG comm; x3.56 broadcast comp",
        },
        OverheadRow {
            protocol: "Structured Mempool",
            reduction: "WQ for Broadcast",
            f_w: third,
            f_n: third,
            comm: bc_comm,
            comp: bc_comp,
            paper: (1.33, 3.56),
            note: "same broadcast bound",
        },
        OverheadRow {
            protocol: "Validated Asynchronous Byzantine Agreement",
            reduction: "WR for RNG",
            f_w: third,
            f_n: third,
            comm: rng_tickets,
            comp: rng_tickets,
            paper: (1.33, 1.33),
            note: "WR(1/3,1/2) ticket inflation only",
        },
        OverheadRow {
            protocol: "Consensus with Checkpoints",
            reduction: "WR for signing",
            f_w: third,
            f_n: third,
            comm: rng_tickets,
            comp: rng_tickets,
            paper: (1.33, 1.33),
            note: "share inflation only",
        },
        OverheadRow {
            protocol: "Linear BFT Consensus / Chain-Quality SSLE",
            reduction: "WR (black box)",
            f_w: quarter,
            f_n: third,
            comm: bb_tickets,
            comp: bb_tickets,
            paper: (2.67, 2.67),
            note: "virtual-user inflation; paper used the pre-Pinkas bound",
        },
        OverheadRow {
            protocol: "Erasure-Coded Storage and Broadcast",
            reduction: "WQ",
            f_w: third,
            f_n: third,
            comm: bc_comm,
            comp: bc_comp,
            paper: (1.33, 3.56),
            note: "(beta_w, beta_n) = (1/3, 1/4); Section 5.1",
        },
        OverheadRow {
            protocol: "Erasure-Coded Storage and Broadcast (black box)",
            reduction: "WR (black box)",
            f_w: quarter,
            f_n: third,
            comm: 1.0,
            comp: bb_tickets,
            paper: (1.0, 3.0),
            note: "no comm overhead; paper used the pre-Pinkas bound",
        },
        OverheadRow {
            protocol: "Error-Corrected Broadcast",
            reduction: "WQ",
            f_w: third,
            f_n: third,
            comm: ec_comm,
            comp: ec_comp,
            paper: (1.33, 7.11),
            note: "(beta_w, beta_n, r) = (2/3, 5/8, 1/4); Section 5.2",
        },
        OverheadRow {
            protocol: "Verifiable Secret Sharing",
            reduction: "WR",
            f_w: third,
            f_n: third,
            comm: rng_tickets,
            comp: rng_tickets,
            paper: (1.33, 1.33),
            note: "share inflation",
        },
        OverheadRow {
            protocol: "Common Coin / Blunt Threshold Signatures / Encryption / FHE",
            reduction: "WR",
            f_w: third,
            f_n: half,
            comm: coin_tickets,
            comp: coin_tickets,
            paper: (1.33, 1.33),
            note: "WR(1/3, 1/2); blunt access structure (Section 4.2)",
        },
        OverheadRow {
            protocol: "Tight Secret Sharing / Signatures / Encryption / FHE",
            reduction: "WR",
            f_w: half,
            f_n: half,
            comm: rng_tickets,
            comp: rng_tickets,
            paper: (1.33, 1.33),
            note: "plus O(n^2) small vote messages (Section 4.3)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_factor_matches_closed_form() {
        // aw(1-aw)/(an-aw) for (1/3, 1/2): (1/3)(2/3)/(1/6) = 4/3.
        let f = wr_ticket_factor(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        assert!((f - 4.0 / 3.0).abs() < 1e-5, "{f}");
        // (1/4, 1/3): (1/4)(3/4)/(1/12) = 9/4.
        let f = wr_ticket_factor(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        assert!((f - 2.25).abs() < 1e-5, "{f}");
    }

    #[test]
    fn wq_factor_via_reduction() {
        // (beta_w, beta_n) = (1/3, 1/4) -> WR(2/3, 3/4) -> (2/3)(1/3)/(1/12) = 8/3.
        let f = wq_ticket_factor(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        assert!((f - 8.0 / 3.0).abs() < 1e-5, "{f}");
        // (2/3, 5/8): (2/3)(1/3)/(1/24) = 16/3.
        let f = wq_ticket_factor(Ratio::of(2, 3), Ratio::of(5, 8)).unwrap();
        assert!((f - 16.0 / 3.0).abs() < 1e-5, "{f}");
        // (2/3, 1/2): (2/3)(1/3)/(1/6) = 4/3.
        let f = wq_ticket_factor(Ratio::of(2, 3), Ratio::of(1, 2)).unwrap();
        assert!((f - 4.0 / 3.0).abs() < 1e-5, "{f}");
    }

    #[test]
    fn section_5_1_worked_example() {
        // x1.33 comm, x3.56 comp for (beta_w, beta_n) = (1/3, 1/4).
        let comm = rate_overhead(Ratio::of(1, 3), Ratio::of(1, 4));
        assert!((comm - 4.0 / 3.0).abs() < 1e-9);
        let tickets = wq_ticket_factor(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        let comp = decode_overhead(comm, tickets);
        assert!((comp - 32.0 / 9.0).abs() < 1e-4, "expected 3.56, got {comp}");
    }

    #[test]
    fn section_5_2_worked_example() {
        // x7.11 comp for (2/3, 5/8, r = 1/4).
        let comm = rate_overhead(Ratio::of(1, 3), Ratio::of(1, 4));
        let tickets = wq_ticket_factor(Ratio::of(2, 3), Ratio::of(5, 8)).unwrap();
        let comp = decode_overhead(comm, tickets);
        assert!((comp - 64.0 / 9.0).abs() < 1e-4, "expected 7.11, got {comp}");
    }

    #[test]
    fn higher_threshold_variant() {
        // Section 5.1's second instantiation: beta_w = 2/3, beta_n = 1/2:
        // m <= 4/3 n and comp x1.78.
        let comm = rate_overhead(Ratio::of(2, 3), Ratio::of(1, 2));
        let tickets = wq_ticket_factor(Ratio::of(2, 3), Ratio::of(1, 2)).unwrap();
        let comp = decode_overhead(comm, tickets);
        assert!((comp - 16.0 / 9.0).abs() < 1e-4, "expected 1.78, got {comp}");
    }

    #[test]
    fn table_has_all_paper_rows_and_sane_factors() {
        let rows = table1();
        assert!(rows.len() >= 11);
        for row in &rows {
            assert!(row.comm >= 0.99, "{}: comm {}", row.protocol, row.comm);
            assert!(row.comp >= 0.99, "{}: comp {}", row.protocol, row.comp);
            // Our tight bounds never exceed the published ones by more than
            // rounding noise.
            assert!(
                row.comm <= row.paper.0 + 0.01,
                "{}: comm {} vs paper {}",
                row.protocol,
                row.comm,
                row.paper.0
            );
            assert!(
                row.comp <= row.paper.1 + 0.01,
                "{}: comp {} vs paper {}",
                row.protocol,
                row.comp,
                row.paper.1
            );
        }
    }

    #[test]
    fn preserved_resilience_rows() {
        // The headline claim: most rows keep f_w = f_n.
        let rows = table1();
        let preserved = rows.iter().filter(|r| r.f_w == r.f_n).count();
        assert!(preserved >= 7, "only {preserved} rows preserve resilience");
    }
}
