//! Wire codecs for the protocol message enums: what puts the zoo's
//! automata on a real socket.
//!
//! Each codec implements [`WireCodec`] for one message type with a
//! hand-rolled tagged little-endian record (the vendored serde shim is
//! marker-only, so there is no derive to lean on). The discipline is the
//! one `swiper_net::codec` documents: exact round-tripping, every decode
//! consuming precisely the body it is given — a trailing byte or an
//! unknown tag is version skew and fails loudly, it never produces a
//! near-miss message.
//!
//! These codecs are what the socket variants of `tests/runtime_twin.rs`
//! run through: the determinism-twin contract must survive a real
//! encode → TCP → decode round trip, which is exactly what these types
//! make possible.

use swiper_crypto::hash::Digest;
use swiper_crypto::thresh::PartialSignature;
use swiper_field::F61;
use swiper_net::{put_bool, put_slice, put_u32, put_u64, WireCodec, WireError, WireReader};

use crate::aba::AbaMsg;
use crate::bracha::BrachaMsg;
use crate::smr::SmrMsg;

fn put_digest(out: &mut Vec<u8>, d: &Digest) {
    out.extend_from_slice(d.as_bytes());
}

fn take_digest(r: &mut WireReader<'_>) -> Result<Digest, WireError> {
    let raw = r.take_bytes(32)?;
    Ok(Digest(raw.try_into().expect("32 bytes")))
}

fn take_f61(r: &mut WireReader<'_>) -> Result<F61, WireError> {
    let v = r.take_u64()?;
    let f = F61::new(v);
    // `new` reduces mod p; a wire value it does not fix is non-canonical.
    if f.value() != v {
        return Err(WireError::BadValue("F61 element not canonical"));
    }
    Ok(f)
}

/// Codec for [`BrachaMsg`].
#[derive(Debug, Default, Clone, Copy)]
pub struct BrachaCodec;

impl WireCodec<BrachaMsg> for BrachaCodec {
    fn encode(&self, msg: &BrachaMsg, out: &mut Vec<u8>) {
        match msg {
            BrachaMsg::Initial(p) => {
                out.push(0);
                put_slice(out, p);
            }
            BrachaMsg::Echo(d, p) => {
                out.push(1);
                put_digest(out, d);
                put_slice(out, p);
            }
            BrachaMsg::Ready(d, p) => {
                out.push(2);
                put_digest(out, d);
                put_slice(out, p);
            }
        }
    }

    fn decode(&self, buf: &[u8]) -> Result<BrachaMsg, WireError> {
        let mut r = WireReader::new(buf);
        let msg = match r.take_u8()? {
            0 => BrachaMsg::Initial(r.take_slice()?.to_vec()),
            1 => {
                let d = take_digest(&mut r)?;
                BrachaMsg::Echo(d, r.take_slice()?.to_vec())
            }
            2 => {
                let d = take_digest(&mut r)?;
                BrachaMsg::Ready(d, r.take_slice()?.to_vec())
            }
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Codec for [`AbaMsg`].
#[derive(Debug, Default, Clone, Copy)]
pub struct AbaCodec;

impl WireCodec<AbaMsg> for AbaCodec {
    fn encode(&self, msg: &AbaMsg, out: &mut Vec<u8>) {
        match msg {
            AbaMsg::BVal { round, value } => {
                out.push(0);
                put_u32(out, *round);
                put_bool(out, *value);
            }
            AbaMsg::Aux { round, value } => {
                out.push(1);
                put_u32(out, *round);
                put_bool(out, *value);
            }
            AbaMsg::CoinShare { round, partials } => {
                out.push(2);
                put_u32(out, *round);
                put_u32(out, u32::try_from(partials.len()).expect("share count fits u32"));
                for p in partials {
                    put_u64(out, p.index);
                    put_u64(out, p.value.value());
                }
            }
            AbaMsg::Decided { value } => {
                out.push(3);
                put_bool(out, *value);
            }
        }
    }

    fn decode(&self, buf: &[u8]) -> Result<AbaMsg, WireError> {
        let mut r = WireReader::new(buf);
        let msg = match r.take_u8()? {
            0 => AbaMsg::BVal { round: r.take_u32()?, value: r.take_bool()? },
            1 => AbaMsg::Aux { round: r.take_u32()?, value: r.take_bool()? },
            2 => {
                let round = r.take_u32()?;
                let count = r.take_u32()? as usize;
                // Truncation would surface on the next take anyway; the
                // explicit bound stops a corrupt count from preallocating.
                let mut partials = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let index = r.take_u64()?;
                    let value = take_f61(&mut r)?;
                    partials.push(PartialSignature { index, value });
                }
                AbaMsg::CoinShare { round, partials }
            }
            3 => AbaMsg::Decided { value: r.take_bool()? },
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Codec for [`SmrMsg`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SmrCodec;

impl WireCodec<SmrMsg> for SmrCodec {
    fn encode(&self, msg: &SmrMsg, out: &mut Vec<u8>) {
        match msg {
            SmrMsg::Propose(round, batch) => {
                out.push(0);
                put_u64(out, *round);
                put_slice(out, batch);
            }
            SmrMsg::Echo(round, d) => {
                out.push(1);
                put_u64(out, *round);
                put_digest(out, d);
            }
            SmrMsg::Ready(round, d) => {
                out.push(2);
                put_u64(out, *round);
                put_digest(out, d);
            }
        }
    }

    fn decode(&self, buf: &[u8]) -> Result<SmrMsg, WireError> {
        let mut r = WireReader::new(buf);
        let msg = match r.take_u8()? {
            0 => {
                let round = r.take_u64()?;
                SmrMsg::Propose(round, r.take_slice()?.to_vec())
            }
            1 => {
                let round = r.take_u64()?;
                SmrMsg::Echo(round, take_digest(&mut r)?)
            }
            2 => {
                let round = r.take_u64()?;
                SmrMsg::Ready(round, take_digest(&mut r)?)
            }
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: PartialEq + std::fmt::Debug, C: WireCodec<M>>(codec: &C, msgs: Vec<M>) {
        for msg in msgs {
            let mut buf = Vec::new();
            codec.encode(&msg, &mut buf);
            assert_eq!(codec.decode(&buf).as_ref(), Ok(&msg));
            // Strictness: a trailing byte is version skew, not noise.
            buf.push(0xAA);
            assert!(codec.decode(&buf).is_err(), "{msg:?} accepted trailing bytes");
        }
    }

    #[test]
    fn bracha_messages_roundtrip() {
        let d = swiper_crypto::hash::digest(b"payload");
        roundtrip(
            &BrachaCodec,
            vec![
                BrachaMsg::Initial(Vec::new()),
                BrachaMsg::Initial(b"payload".to_vec()),
                BrachaMsg::Echo(d, b"payload".to_vec()),
                BrachaMsg::Ready(d, b"payload".to_vec()),
            ],
        );
        assert_eq!(BrachaCodec.decode(&[9]), Err(WireError::BadTag(9)));
        assert_eq!(BrachaCodec.decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn aba_messages_roundtrip() {
        let partials = (0..5)
            .map(|i| PartialSignature { index: i, value: F61::new(i * 31 + 7) })
            .collect();
        roundtrip(
            &AbaCodec,
            vec![
                AbaMsg::BVal { round: 0, value: false },
                AbaMsg::BVal { round: 3, value: true },
                AbaMsg::Aux { round: u32::MAX, value: true },
                AbaMsg::CoinShare { round: 2, partials: Vec::new() },
                AbaMsg::CoinShare { round: 2, partials },
                AbaMsg::Decided { value: false },
            ],
        );
        // A non-canonical field element must not decode.
        let mut buf = Vec::new();
        AbaCodec.encode(
            &AbaMsg::CoinShare {
                round: 1,
                partials: vec![PartialSignature { index: 0, value: F61::new(1) }],
            },
            &mut buf,
        );
        let value_at = buf.len() - 8;
        buf[value_at..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            AbaCodec.decode(&buf),
            Err(WireError::BadValue("F61 element not canonical"))
        );
    }

    #[test]
    fn smr_messages_roundtrip() {
        let d = swiper_crypto::hash::digest(b"batch");
        roundtrip(
            &SmrCodec,
            vec![
                SmrMsg::Propose(0, Vec::new()),
                SmrMsg::Propose(41, b"batch bytes".to_vec()),
                SmrMsg::Echo(41, d),
                SmrMsg::Ready(u64::MAX, d),
            ],
        );
        assert!(SmrCodec.decode(&[1, 0, 0]).is_err(), "truncated echo must not decode");
    }
}
