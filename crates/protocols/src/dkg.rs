//! Weighted distributed key generation from aggregated VSS dealings.
//!
//! The paper's broadcast protocols are motivated partly by asynchronous
//! DKG (references \[1, 28\]): the threshold keys that power the common
//! coin (Section 4.1) should not require a trusted dealer. This module
//! removes the dealer: every party deals a verifiable sharing of a random
//! secret to the `T` virtual users (WR tickets, as everywhere), bad
//! dealings are excluded after verification, and the remaining dealings
//! are **summed** — Shamir sharings are linear, so the sums are a sharing
//! of the sum of secrets, which no strict subset of qualified dealers
//! knows.
//!
//! The output is interoperable with [`swiper_crypto::thresh`]: an
//! aggregated [`PublicKey`] plus per-virtual-user [`KeyShare`]s that drive
//! `partial_sign` / `combine` / `verify` unchanged, so the randomness
//! beacon and the ABA coin can run on DKG keys instead of dealt ones.
//!
//! Dealing verification is Feldman-style, expressible exactly in the
//! simulated scheme: the per-share verification keys `vk_i = f(x_i) * h`
//! must interpolate to a degree `< threshold` polynomial whose value at
//! zero is the dealing's group key.

use rand::Rng;
use swiper_core::{TicketAssignment, VirtualUsers};
use swiper_crypto::thresh::{KeyShare, PublicKey, ThresholdScheme};
use swiper_crypto::CryptoError;
use swiper_field::{poly, Field, F61};

/// One party's dealing: a verifiable sharing of a fresh random secret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dealing {
    /// The dealer's party id.
    pub dealer: usize,
    /// `f(0) * h` for the dealer's secret polynomial `f`.
    pub group_vk: F61,
    /// `f(x_v) * h` for every virtual user `v`.
    pub per_share_vk: Vec<F61>,
    /// The secret shares, one per virtual user (in a real deployment these
    /// travel encrypted to each owner; the simulation carries them
    /// openly).
    pub shares: Vec<F61>,
}

/// Common parameters of a DKG run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DkgParams {
    /// Share threshold of the resulting scheme.
    pub threshold: usize,
    /// Total shares (= ticket total `T`).
    pub total: usize,
    /// The common base-point stand-in (public, agreed in advance).
    pub h: F61,
}

impl DkgParams {
    /// Standard parameters over a ticket assignment: majority threshold
    /// (`alpha_n = 1/2`, matching WR(f_w, 1/2) tickets).
    ///
    /// # Panics
    ///
    /// Panics if the assignment allocates no tickets.
    pub fn majority<R: Rng + ?Sized>(tickets: &TicketAssignment, rng: &mut R) -> Self {
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        let total = mapping.total();
        assert!(total > 0, "DKG needs at least one ticket");
        let h = loop {
            let c = F61::new(rng.random::<u64>());
            if !c.is_zero() {
                break c;
            }
        };
        DkgParams { threshold: total / 2 + 1, total, h }
    }
}

/// Produces one dealing with a fresh random secret.
pub fn deal<R: Rng + ?Sized>(params: &DkgParams, dealer: usize, rng: &mut R) -> Dealing {
    let mut coeffs = Vec::with_capacity(params.threshold);
    for _ in 0..params.threshold {
        coeffs.push(F61::new(rng.random::<u64>()));
    }
    let shares: Vec<F61> =
        (0..params.total).map(|v| poly::eval(&coeffs, F61::eval_point(v))).collect();
    let per_share_vk = shares.iter().map(|&s| s * params.h).collect();
    Dealing { dealer, group_vk: coeffs[0] * params.h, per_share_vk, shares }
}

/// Verifies a dealing: correct sizes, shares matching their verification
/// keys, and the Feldman consistency check (the verification keys lie on
/// one polynomial of degree `< threshold` through the group key).
pub fn verify_dealing(params: &DkgParams, dealing: &Dealing) -> bool {
    if dealing.shares.len() != params.total || dealing.per_share_vk.len() != params.total {
        return false;
    }
    // Each share opens its verification key.
    for (s, vk) in dealing.shares.iter().zip(&dealing.per_share_vk) {
        if *s * params.h != *vk {
            return false;
        }
    }
    // Degree check: interpolate the vk points; a correct dealing has
    // degree < threshold (shares are scaled evaluations of f).
    let pts: Vec<(F61, F61)> = dealing
        .per_share_vk
        .iter()
        .enumerate()
        .map(|(v, &vk)| (F61::eval_point(v), vk))
        .collect();
    let coeffs = poly::interpolate(&pts);
    if poly::degree(&coeffs).is_some_and(|d| d >= params.threshold) {
        return false;
    }
    poly::eval(&coeffs, F61::ZERO) == dealing.group_vk
}

/// Aggregates the qualified dealings into a threshold key pair compatible
/// with [`swiper_crypto::thresh`]. Rejects unverifiable dealings.
///
/// # Errors
///
/// * [`CryptoError::VerificationFailed`] if any supplied dealing fails
///   verification (filter with [`verify_dealing`] first to *exclude*
///   instead of abort).
/// * [`CryptoError::NotEnoughShares`] when no dealing is supplied.
pub fn aggregate(
    params: &DkgParams,
    dealings: &[Dealing],
) -> Result<(ThresholdScheme, PublicKey, Vec<KeyShare>), CryptoError> {
    if dealings.is_empty() {
        return Err(CryptoError::NotEnoughShares { needed: 1, have: 0 });
    }
    for d in dealings {
        if !verify_dealing(params, d) {
            return Err(CryptoError::VerificationFailed);
        }
    }
    let mut group = F61::ZERO;
    let mut per_share_vk = vec![F61::ZERO; params.total];
    let mut shares = vec![F61::ZERO; params.total];
    for d in dealings {
        group = group + d.group_vk;
        for v in 0..params.total {
            per_share_vk[v] = per_share_vk[v] + d.per_share_vk[v];
            shares[v] = shares[v] + d.shares[v];
        }
    }
    let scheme = ThresholdScheme::new(params.threshold, params.total)
        .map_err(|_| CryptoError::InvalidParameters { what: "threshold/total".into() })?;
    let pk = PublicKey { h: params.h, group, per_share: per_share_vk };
    let key_shares = shares
        .into_iter()
        .enumerate()
        .map(|(v, value)| KeyShare { index: v as u64, value })
        .collect();
    Ok((scheme, pk, key_shares))
}

/// Distributes aggregated key shares to their owning parties per the
/// virtual-user mapping.
///
/// # Panics
///
/// Panics if `shares.len()` does not match the mapping's total.
pub fn shares_by_party(mapping: &VirtualUsers, shares: &[KeyShare]) -> Vec<Vec<KeyShare>> {
    assert_eq!(shares.len(), mapping.total(), "share/mapping mismatch");
    (0..mapping.parties())
        .map(|p| mapping.virtuals_of(p).map(|v| shares[v]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Ratio, Swiper, WeightRestriction, Weights};

    fn tickets() -> TicketAssignment {
        // No dominant party, so the solution spreads over several tickets.
        let weights = Weights::new(vec![30, 25, 20, 15, 10]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let t = Swiper::new().solve_restriction(&weights, &params).unwrap().assignment;
        assert!(t.total() >= 3, "test premise: multiple tickets ({t:?})");
        t
    }

    #[test]
    fn honest_dealings_verify_and_aggregate() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = tickets();
        let params = DkgParams::majority(&t, &mut rng);
        let dealings: Vec<Dealing> = (0..5).map(|d| deal(&params, d, &mut rng)).collect();
        for d in &dealings {
            assert!(verify_dealing(&params, d), "dealer {}", d.dealer);
        }
        let (scheme, pk, shares) = aggregate(&params, &dealings).unwrap();
        // The aggregated key signs and verifies through the stock
        // threshold machinery.
        let msg = b"dkg-powered beacon round 1";
        let partials: Vec<_> = shares
            .iter()
            .take(scheme.threshold())
            .map(|s| scheme.partial_sign(s, msg))
            .collect();
        for p in &partials {
            assert!(scheme.verify_partial(&pk, msg, p));
        }
        let sig = scheme.combine(&partials).unwrap();
        assert!(scheme.verify(&pk, msg, &sig));
    }

    #[test]
    fn corrupt_dealings_are_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = tickets();
        let params = DkgParams::majority(&t, &mut rng);
        let good = deal(&params, 0, &mut rng);

        // Tampered share.
        let mut bad = good.clone();
        bad.shares[1] = bad.shares[1] + F61::ONE;
        assert!(!verify_dealing(&params, &bad));

        // Consistently tampered share + vk: breaks the degree check.
        let mut bad = good.clone();
        bad.shares[1] = bad.shares[1] + F61::ONE;
        bad.per_share_vk[1] = bad.shares[1] * params.h;
        assert!(!verify_dealing(&params, &bad));

        // Wrong group key.
        let mut bad = good.clone();
        bad.group_vk = bad.group_vk + F61::ONE;
        assert!(!verify_dealing(&params, &bad));

        // Truncated dealing.
        let mut bad = good.clone();
        bad.shares.pop();
        assert!(!verify_dealing(&params, &bad));

        assert!(matches!(
            aggregate(&params, &[good, bad]),
            Err(CryptoError::VerificationFailed)
        ));
    }

    #[test]
    fn excluding_bad_dealers_still_yields_working_keys() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = tickets();
        let params = DkgParams::majority(&t, &mut rng);
        let mut dealings: Vec<Dealing> = (0..5).map(|d| deal(&params, d, &mut rng)).collect();
        // Dealer 4 misbehaves; the qualified set excludes it.
        dealings[4].shares[0] = dealings[4].shares[0] + F61::ONE;
        let qualified: Vec<Dealing> =
            dealings.into_iter().filter(|d| verify_dealing(&params, d)).collect();
        assert_eq!(qualified.len(), 4);
        let (scheme, pk, shares) = aggregate(&params, &qualified).unwrap();
        let msg = b"still works";
        let partials: Vec<_> = shares
            .iter()
            .take(scheme.threshold())
            .map(|s| scheme.partial_sign(s, msg))
            .collect();
        let sig = scheme.combine(&partials).unwrap();
        assert!(scheme.verify(&pk, msg, &sig));
    }

    #[test]
    fn no_single_dealer_knows_the_group_secret() {
        // The aggregated group key differs from every individual dealing's
        // group key (with overwhelming probability) — the secrecy point of
        // running a DKG at all.
        let mut rng = StdRng::seed_from_u64(4);
        let t = tickets();
        let params = DkgParams::majority(&t, &mut rng);
        let dealings: Vec<Dealing> = (0..3).map(|d| deal(&params, d, &mut rng)).collect();
        let (_, pk, _) = aggregate(&params, &dealings).unwrap();
        for d in &dealings {
            assert_ne!(pk.group, d.group_vk);
        }
    }

    #[test]
    fn shares_distribute_per_tickets() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = tickets();
        let params = DkgParams::majority(&t, &mut rng);
        let mapping = VirtualUsers::from_assignment(&t).unwrap();
        let dealings: Vec<Dealing> = (0..2).map(|d| deal(&params, d, &mut rng)).collect();
        let (_, _, shares) = aggregate(&params, &dealings).unwrap();
        let per_party = shares_by_party(&mapping, &shares);
        for (p, bundle) in per_party.iter().enumerate() {
            assert_eq!(bundle.len() as u64, t.get(p), "party {p}");
        }
    }

    #[test]
    fn any_quorum_signs_identically_with_dkg_keys() {
        // Uniqueness survives aggregation: different quorums combine to the
        // same signature (the beacon requirement).
        let mut rng = StdRng::seed_from_u64(6);
        let t = tickets();
        let params = DkgParams::majority(&t, &mut rng);
        let dealings: Vec<Dealing> = (0..4).map(|d| deal(&params, d, &mut rng)).collect();
        let (scheme, pk, shares) = aggregate(&params, &dealings).unwrap();
        let msg = b"unique";
        let all: Vec<_> = shares.iter().map(|s| scheme.partial_sign(s, msg)).collect();
        let k = scheme.threshold();
        let sig_a = scheme.combine(&all[..k]).unwrap();
        let sig_b = scheme.combine(&all[all.len() - k..]).unwrap();
        assert_eq!(sig_a, sig_b);
        assert!(scheme.verify(&pk, msg, &sig_a));
    }
}
