//! Distributed randomness beacon / common coin (paper Section 4.1).
//!
//! The nominal construction: a trusted dealer shares a signing key with an
//! `(alpha_n, T)`-threshold scheme; each round, parties exchange partial
//! signatures over the round tag, and the (unique, deterministic) combined
//! signature hashes into the round's randomness.
//!
//! The weighted construction is Weight Restriction with `alpha_w := f_w`
//! and `alpha_n <= 1/2`: party `i` holds the key shares of its `t_i`
//! virtual users. WR guarantees
//!
//! * corrupt parties (weight `< f_w * W`) hold `< alpha_n * T` shares —
//!   the beacon stays **unpredictable** to them;
//! * honest parties hold `> (1 - alpha_n) * T >= ceil(alpha_n * T)` shares
//!   — the beacon stays **live** without any corrupt help.

use rand::Rng;
use swiper_core::{EpochEvent, Ratio, TicketAssignment, VirtualUsers};
use swiper_crypto::hash::Digest;
use swiper_crypto::thresh::{KeyShare, PartialSignature, PublicKey, ThresholdScheme};
use swiper_net::{Context, MessageSize, NodeId, Protocol};

/// Public setup broadcast by the (simulated) trusted dealer.
#[derive(Debug, Clone)]
pub struct BeaconSetup {
    /// The threshold scheme parameters.
    pub scheme: ThresholdScheme,
    /// Public verification material.
    pub pk: PublicKey,
    /// Per-party key share bundles (party `i` controls `tickets[i]`).
    pub shares: Vec<Vec<KeyShare>>,
    /// The virtual-user mapping used to deal the shares.
    pub mapping: VirtualUsers,
}

impl BeaconSetup {
    /// Deals a beacon setup over a ticket assignment with ticket-side
    /// threshold `alpha_n` (use `alpha_n <= 1/2`; the threshold is
    /// `ceil(alpha_n * T)` shares).
    ///
    /// # Panics
    ///
    /// Panics if the ticket total is zero.
    pub fn deal<R: Rng + ?Sized>(
        tickets: &TicketAssignment,
        alpha_n: Ratio,
        rng: &mut R,
    ) -> Self {
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        let total = mapping.total();
        assert!(total > 0, "ticket assignment must allocate tickets");
        let threshold_num = alpha_n.num() * total as u128;
        let threshold =
            usize::try_from(threshold_num.div_ceil(alpha_n.den())).expect("fits").max(1);
        let scheme = ThresholdScheme::new(threshold, total).expect("threshold <= total");
        let (pk, all_shares) = scheme.keygen(rng);
        let shares = (0..mapping.parties())
            .map(|p| mapping.virtuals_of(p).map(|v| all_shares[v]).collect())
            .collect();
        BeaconSetup { scheme, pk, shares, mapping }
    }

    /// Nominal setup: one share per party, threshold `ceil(alpha_n * n)`.
    pub fn nominal<R: Rng + ?Sized>(n: usize, alpha_n: Ratio, rng: &mut R) -> Self {
        let tickets = TicketAssignment::new(vec![1; n]);
        Self::deal(&tickets, alpha_n, rng)
    }

    /// The round tag signed by all parties for round `r`.
    pub fn round_tag(round: u64) -> Vec<u8> {
        let mut tag = b"swiper.beacon.round.".to_vec();
        tag.extend_from_slice(&round.to_le_bytes());
        tag
    }

    /// Derives the round output from the combined signature.
    pub fn output_of(sig: &swiper_crypto::thresh::Signature) -> Digest {
        sig.beacon_output()
    }
}

/// Beacon messages: a bundle of partial signatures for one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeaconMsg {
    /// The beacon round.
    pub round: u64,
    /// Partial signatures from the sender's key shares.
    pub partials: Vec<PartialSignature>,
}

impl MessageSize for BeaconMsg {
    fn size_bytes(&self) -> usize {
        8 + self.partials.len() * 16
    }
}

/// One beacon party, producing the round-`round` output.
pub struct BeaconNode {
    setup: BeaconSetup,
    round: u64,
    collected: Vec<PartialSignature>,
    seen: std::collections::HashSet<u64>,
    /// Whether this party's own partials have been broadcast — the duty
    /// that must be done before halting (see [`BeaconNode::try_combine`]).
    shared: bool,
    done: bool,
}

impl BeaconNode {
    /// A party contributing to (and outputting) round `round`.
    pub fn new(setup: BeaconSetup, round: u64) -> Self {
        BeaconNode {
            setup,
            round,
            collected: Vec::new(),
            seen: Default::default(),
            shared: false,
            done: false,
        }
    }

    fn try_combine(&mut self, ctx: &mut Context<BeaconMsg>) {
        if self.done || self.collected.len() < self.setup.scheme.threshold() {
            return;
        }
        if let Ok(sig) = self.setup.scheme.combine(&self.collected) {
            let msg = BeaconSetup::round_tag(self.round);
            if self.setup.scheme.verify(&self.setup.pk, &msg, &sig) {
                self.done = true;
                ctx.output(BeaconSetup::output_of(&sig).as_bytes().to_vec());
                // Halt-before-duty audit (same class as the ECBC seed-15
                // bug, found live in `tight.rs`/`avid.rs`): the beacon's
                // only duty towards slower parties is broadcasting its own
                // partials, which `on_start` discharges unconditionally
                // before any message can be delivered — so this halt can
                // never starve anyone. The explicit gate keeps that
                // invariant structural rather than incidental: if share
                // broadcasting ever becomes conditional or message-driven,
                // the node stays live until the duty is done.
                if self.shared {
                    ctx.halt();
                }
            }
        }
    }
}

impl Protocol for BeaconNode {
    type Msg = BeaconMsg;

    fn on_start(&mut self, ctx: &mut Context<BeaconMsg>) {
        let tag = BeaconSetup::round_tag(self.round);
        let partials: Vec<PartialSignature> = self.setup.shares[ctx.me()]
            .iter()
            .map(|s| self.setup.scheme.partial_sign(s, &tag))
            .collect();
        ctx.broadcast(BeaconMsg { round: self.round, partials });
        self.shared = true;
    }

    fn on_message(&mut self, _from: NodeId, msg: BeaconMsg, ctx: &mut Context<BeaconMsg>) {
        if msg.round != self.round || self.done {
            return;
        }
        let tag = BeaconSetup::round_tag(self.round);
        for p in msg.partials {
            // Verify and deduplicate by share index.
            if self.setup.scheme.verify_partial(&self.setup.pk, &tag, &p)
                && self.seen.insert(p.index)
            {
                self.collected.push(p);
            }
        }
        self.try_combine(ctx);
    }

    fn on_reconfigure(&mut self, _event: &EpochEvent, _ctx: &mut Context<BeaconMsg>) {
        // Deliberate no-op, per the stable-identity contract: the beacon
        // tracks no per-sender quorums — partials deduplicate by *share
        // index*, a fixed point of the threshold scheme dealt once per
        // setup, so neither identity nor stake enters a tally here. An
        // event whose delta moves the WR assignment invalidates the dealt
        // shares themselves; hosts re-deal for the new epoch from the
        // event's rekey seed (the SMR composition's deterministic
        // carry/re-deal split, which `AbaSetup::on_epoch` now shares)
        // rather than splice this round.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Swiper, WeightRestriction, Weights};
    use swiper_net::adversary::Silent;
    use swiper_net::Simulation;

    fn weighted_setup(ws: &[u64]) -> BeaconSetup {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        BeaconSetup::deal(&sol.assignment, Ratio::of(1, 2), &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn all_parties_agree_on_randomness() {
        let setup = weighted_setup(&[50, 30, 10, 5, 3, 2]);
        let n = setup.shares.len();
        let nodes: Vec<Box<dyn Protocol<Msg = BeaconMsg>>> =
            (0..n).map(|_| Box::new(BeaconNode::new(setup.clone(), 7)) as _).collect();
        let report = Simulation::new(nodes, 5).run();
        let first = report.outputs[0].clone().expect("output produced");
        assert_eq!(first.len(), 32);
        for out in &report.outputs {
            assert_eq!(out.as_ref(), Some(&first));
        }
    }

    #[test]
    fn different_rounds_different_randomness() {
        let setup = weighted_setup(&[50, 30, 10, 5, 3, 2]);
        let n = setup.shares.len();
        let mut outputs = Vec::new();
        for round in [1u64, 2] {
            let nodes: Vec<Box<dyn Protocol<Msg = BeaconMsg>>> =
                (0..n).map(|_| Box::new(BeaconNode::new(setup.clone(), round)) as _).collect();
            let report = Simulation::new(nodes, 5).run();
            outputs.push(report.outputs[0].clone().unwrap());
        }
        assert_ne!(outputs[0], outputs[1]);
    }

    #[test]
    fn liveness_without_corrupt_weight() {
        // Parties holding 30% of weight (< 1/3) stay silent: the rest still
        // produce the beacon — the WR honest-side guarantee.
        let weights = vec![30u64, 25, 15, 15, 15];
        let setup = weighted_setup(&weights);
        let mut nodes: Vec<Box<dyn Protocol<Msg = BeaconMsg>>> = Vec::new();
        nodes.push(Box::new(Silent::new())); // party 0: 30%
        for _ in 1..5 {
            nodes.push(Box::new(BeaconNode::new(setup.clone(), 3)));
        }
        let report = Simulation::new(nodes, 9).run();
        for i in 1..5 {
            assert!(report.outputs[i].is_some(), "party {i} must output");
        }
    }

    #[test]
    fn corrupt_minority_cannot_predict() {
        // Structural unpredictability: the pooled shares of any sub-f_w
        // coalition stay below the combining threshold.
        let weights = Weights::new(vec![30, 25, 15, 15, 15]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let setup =
            BeaconSetup::deal(&sol.assignment, Ratio::of(1, 2), &mut StdRng::seed_from_u64(2));
        let total = setup.mapping.total() as u128;
        let w_total = weights.total();
        // Enumerate all coalitions with weight < W/3.
        for mask in 0u32..(1 << 5) {
            let coalition: Vec<usize> = (0..5).filter(|i| mask >> i & 1 == 1).collect();
            let coalition_weight = weights.subset_weight(&coalition);
            if coalition_weight * 3 < w_total {
                let shares: u128 =
                    coalition.iter().map(|&p| setup.shares[p].len() as u128).sum();
                assert!(
                    shares < (setup.scheme.threshold() as u128),
                    "coalition {coalition:?} holds {shares}/{total} shares"
                );
            }
        }
    }

    #[test]
    fn forged_partials_rejected() {
        // The forger holds 20% (< 1/3) of the weight, so the honest parties
        // hold enough shares on their own.
        let setup = weighted_setup(&[20, 40, 40]);
        let n = setup.shares.len();
        // One node injects partials with flipped values.
        struct Forger {
            setup: BeaconSetup,
        }
        impl Protocol for Forger {
            type Msg = BeaconMsg;
            fn on_start(&mut self, ctx: &mut Context<BeaconMsg>) {
                let tag = BeaconSetup::round_tag(4);
                let partials: Vec<PartialSignature> = self.setup.shares[ctx.me()]
                    .iter()
                    .map(|s| {
                        let mut p = self.setup.scheme.partial_sign(s, &tag);
                        p.value = p.value + swiper_field::F61::new(1);
                        p
                    })
                    .collect();
                ctx.broadcast(BeaconMsg { round: 4, partials });
            }
            fn on_message(&mut self, _f: NodeId, _m: BeaconMsg, _c: &mut Context<BeaconMsg>) {}
        }
        let mut nodes: Vec<Box<dyn Protocol<Msg = BeaconMsg>>> = Vec::new();
        nodes.push(Box::new(Forger { setup: setup.clone() }));
        for _ in 1..n {
            nodes.push(Box::new(BeaconNode::new(setup.clone(), 4)));
        }
        let report = Simulation::new(nodes, 13).run();
        // Honest parties still agree (forged partials are filtered).
        assert!(report.agreement_among(&(1..n).collect::<Vec<_>>()));
        for i in 1..n {
            assert!(report.outputs[i].is_some());
        }
    }
}
