//! Weighted voting (paper Section 1.2): quorum trackers with exact
//! rational thresholds, keyed on **epoch-stable identities**.
//!
//! Converting a protocol from "wait for `2t+1` parties" to "wait for
//! parties holding more than a `2/3` fraction of the weight" is the
//! *weighted voting* strategy. [`QuorumTracker`] abstracts both forms so a
//! protocol implementation is generic over them.
//!
//! # Cross-epoch identity
//!
//! Votes are keyed by [`StableId`] — `(party, offset)` — never by dense
//! per-epoch indices. Dense virtual ids renumber whenever a
//! [`TicketDelta`] touches an earlier party, so
//! a dense-keyed tracker would count one logical voter under both its
//! pre- and post-epoch ids (double-counting) while freezing in the weight
//! of voters that have since retired. Stable keying makes vote survival
//! automatic; an epoch crossing only needs [`QuorumTracker::migrate`] to
//! re-derive the threshold base for the new population and shed retired
//! voters.
//!
//! Two identity regimes exist, captured by [`IdentityView`]:
//!
//! * **party-keyed** protocols (weighted Bracha, AVID acks, vote-then-act,
//!   vouching) vote as [`StableId::solo`] — party sets are fixed across
//!   epochs, so these identities never retire;
//! * **virtual-user-keyed** nominal protocols hosted by the black-box
//!   transformation resolve delivery-time dense ids through a shared
//!   [`Roster`], the per-replica identity directory the wrapper splices
//!   each epoch's delta into.
//!
//! Identity *validation* (spoof checks, membership of the wire sender) is
//! the hosting protocol's job — the simulator guarantees `from` is the
//! real wire sender, and the black-box wrapper rejects inner messages
//! whose claimed identity is not owned by the wire sender. Trackers count
//! whatever distinct identities they are handed.

use std::sync::{Arc, Mutex};
use std::{collections::HashSet, fmt};

use swiper_core::{CoreError, EpochEvent, Ratio, StableId, TicketDelta, VirtualUsers, Weights};

/// A shared, epoch-aware identity directory: one replica's view of the
/// current virtual-user mapping, shared between a black-box wrapper and
/// the nominal automata it hosts so that *one* [`Roster::apply_delta`] at
/// the epoch boundary atomically re-keys every component's identity
/// resolution.
///
/// The handle is `Arc<Mutex<_>>`-backed (rather than `Rc<RefCell<_>>`) so
/// that roster-carrying automata are `Send` and can be hosted by the
/// threaded runtime as well as the simulator. The lock is uncontended in
/// practice — a roster is shared only *within* one node, and a node's
/// callbacks run on one thread at a time.
///
/// Cloning a `Roster` shares the underlying mapping; replicas must **not**
/// share rosters with each other (each node splices deltas into its own).
#[derive(Clone)]
pub struct Roster {
    map: Arc<Mutex<VirtualUsers>>,
}

impl Roster {
    /// A directory over the given epoch's mapping.
    pub fn new(mapping: VirtualUsers) -> Self {
        Roster { map: Arc::new(Mutex::new(mapping)) }
    }

    fn read(&self) -> std::sync::MutexGuard<'_, VirtualUsers> {
        self.map.lock().expect("roster poisoned")
    }

    /// Current number of virtual users `T`.
    pub fn total(&self) -> usize {
        self.read().total()
    }

    /// Number of real parties (fixed across epochs).
    pub fn parties(&self) -> usize {
        self.read().parties()
    }

    /// Current tickets of `party`.
    ///
    /// # Panics
    ///
    /// Panics if `party >= self.parties()`.
    pub fn tickets_of(&self, party: usize) -> u64 {
        self.read().tickets_of(party)
    }

    /// The stable identity of the current dense id `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.total()`.
    pub fn stable_of(&self, v: usize) -> StableId {
        self.read().stable_of(v)
    }

    /// The current dense id backing `id`, or `None` when retired/unknown.
    pub fn dense_of(&self, id: StableId) -> Option<usize> {
        self.read().dense_of(id)
    }

    /// Whether `id` is live in the current epoch.
    pub fn contains(&self, id: StableId) -> bool {
        self.read().contains(id)
    }

    /// The party owning the current dense id `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.total()`.
    pub fn owner_of(&self, v: usize) -> usize {
        self.read().owner_of(v)
    }

    /// Splices an epoch's delta into the shared mapping; every component
    /// holding a clone of this roster sees the new epoch at once.
    ///
    /// # Errors
    ///
    /// Propagates [`swiper_core::VirtualUsers::apply_delta`] errors (the
    /// mapping is untouched on failure).
    pub fn apply_delta(&self, delta: &TicketDelta) -> Result<(), CoreError> {
        self.read().apply_delta(delta)
    }

    /// A snapshot of the current mapping (for assertions and spawning).
    pub fn snapshot(&self) -> VirtualUsers {
        self.read().clone()
    }
}

impl fmt::Debug for Roster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Roster")
            .field("total", &self.total())
            .field("parties", &self.parties())
            .finish()
    }
}

/// How a protocol maps delivery-time sender ids to stable identities.
#[derive(Clone, Debug, Default)]
pub enum IdentityView {
    /// Fixed party set: the sender id *is* the identity
    /// ([`StableId::solo`]); nothing ever renumbers or retires.
    #[default]
    Party,
    /// Epoch-aware virtual users: dense ids resolve through the shared
    /// [`Roster`], which the host splices each epoch's delta into.
    Virtual(Roster),
}

impl IdentityView {
    /// Resolves a delivery-time sender id into its stable identity.
    ///
    /// # Panics
    ///
    /// In the [`IdentityView::Virtual`] regime, panics when `from` is not
    /// a live dense id — hosts deliver only translated, live ids.
    pub fn stable_of(&self, from: usize) -> StableId {
        match self {
            IdentityView::Party => StableId::solo(from),
            IdentityView::Virtual(roster) => roster.stable_of(from),
        }
    }

    /// The roster, in the epoch-aware regime.
    pub fn roster(&self) -> Option<&Roster> {
        match self {
            IdentityView::Party => None,
            IdentityView::Virtual(roster) => Some(roster),
        }
    }
}

/// Tracks votes from distinct stable identities until a threshold is
/// reached.
pub trait QuorumTracker {
    /// Registers a vote from `voter`; duplicate votes are ignored.
    /// Returns `true` once (and as long as) the quorum is reached.
    fn vote(&mut self, voter: StableId) -> bool;

    /// Whether the quorum has been reached.
    fn reached(&self) -> bool;

    /// Resets to the empty vote set.
    fn reset(&mut self);

    /// Epoch migration: re-derives the threshold base from the roster's
    /// new population and sheds votes of retired identities, so
    /// accumulated progress survives renumbering while retired voters'
    /// weight is released rather than frozen in.
    fn migrate(&mut self, roster: &Roster);
}

/// Nominal quorum: strictly more than `num/den` of the `population`
/// eligible voters.
#[derive(Debug, Clone)]
pub struct CountQuorum {
    population: usize,
    num: u128,
    den: u128,
    voted: HashSet<StableId>,
}

impl CountQuorum {
    /// Quorum of strictly more than `threshold * n` voters.
    pub fn new(n: usize, threshold: Ratio) -> Self {
        CountQuorum {
            population: n,
            num: threshold.num(),
            den: threshold.den(),
            voted: HashSet::new(),
        }
    }

    /// Classic `k`-of-`n` quorum (at least `k` distinct voters).
    pub fn at_least(n: usize, k: usize) -> Self {
        // "at least k" == "strictly more than k-1": represent as (k-1)/n.
        CountQuorum {
            population: n,
            num: k.saturating_sub(1) as u128,
            den: n.max(1) as u128,
            voted: HashSet::new(),
        }
    }

    /// Current number of distinct voters.
    pub fn count(&self) -> usize {
        self.voted.len()
    }

    /// The threshold base (eligible-voter population).
    pub fn population(&self) -> usize {
        self.population
    }
}

impl QuorumTracker for CountQuorum {
    fn vote(&mut self, voter: StableId) -> bool {
        self.voted.insert(voter);
        self.reached()
    }

    fn reached(&self) -> bool {
        (self.voted.len() as u128) * self.den > self.num * (self.population as u128)
    }

    fn reset(&mut self) {
        self.voted.clear();
    }

    fn migrate(&mut self, roster: &Roster) {
        self.population = roster.total();
        self.voted.retain(|id| roster.contains(*id));
    }
}

/// Weighted quorum: strictly more than `threshold * W` of total weight.
///
/// Weights are per *party*; each distinct voter contributes its party's
/// weight once. The weighted protocols in this crate host exactly one
/// voter per party ([`StableId::solo`]), which gives the exact
/// weighted-voting semantics of paper §1.2.
#[derive(Debug, Clone)]
pub struct WeightQuorum {
    weights: Weights,
    num: u128,
    den: u128,
    voted: HashSet<StableId>,
    weight: u128,
}

impl WeightQuorum {
    /// Quorum of strictly more than `threshold * W` weight.
    pub fn new(weights: Weights, threshold: Ratio) -> Self {
        WeightQuorum {
            weights,
            num: threshold.num(),
            den: threshold.den(),
            voted: HashSet::new(),
            weight: 0,
        }
    }

    /// Accumulated voting weight.
    pub fn weight(&self) -> u128 {
        self.weight
    }

    /// The weight vector this quorum currently tallies under.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Epoch stake refresh: re-derives the tally under the event's new
    /// per-party weight vector. Votes are **kept** — identity progress is
    /// orthogonal to stake — but each voter's contribution and the
    /// threshold base `W` are recomputed from the new weights, so the
    /// verdict after `reweigh` equals a fresh tracker's fed the same
    /// votes under the new weights: no ghost stake (a collapsed whale's
    /// kept vote now carries its *current* dust weight, which can
    /// **revoke** an almost-complete quorum), no lost votes.
    ///
    /// Party sets are fixed across epochs; an event whose weight vector
    /// covers a different party count is a driver bug and is ignored
    /// (`debug_assert` in debug builds).
    pub fn reweigh(&mut self, event: &EpochEvent) {
        self.reweigh_to(event.weights());
    }

    /// [`WeightQuorum::reweigh`] from a bare weight vector (the form
    /// internal epoch plumbing uses once the event is unpacked).
    pub fn reweigh_to(&mut self, weights: &Weights) {
        if weights.len() != self.weights.len() {
            debug_assert!(false, "reweigh with a different party count");
            return;
        }
        self.weights = weights.clone();
        self.weight = self
            .voted
            .iter()
            .filter(|id| id.party_ix() < self.weights.len())
            .map(|id| u128::from(self.weights.get(id.party_ix())))
            .sum();
    }
}

impl QuorumTracker for WeightQuorum {
    fn vote(&mut self, voter: StableId) -> bool {
        // A voter naming a party outside the weight vector carries no
        // weight (and party sets are fixed, so it never will).
        if voter.party_ix() < self.weights.len() && self.voted.insert(voter) {
            self.weight += u128::from(self.weights.get(voter.party_ix()));
        }
        self.reached()
    }

    fn reached(&self) -> bool {
        self.weight * self.den > self.num * self.weights.total()
    }

    fn reset(&mut self) {
        self.voted.clear();
        self.weight = 0;
    }

    fn migrate(&mut self, roster: &Roster) {
        // Shed retired voters and release their weight; the weight vector
        // itself is per-party and parties never retire, so it is kept.
        self.voted.retain(|id| roster.contains(*id));
        self.weight = self
            .voted
            .iter()
            .filter(|id| id.party_ix() < self.weights.len())
            .map(|id| u128::from(self.weights.get(id.party_ix())))
            .sum();
    }
}

/// Builds the tracker family used across the weighted protocols: a nominal
/// tracker when `weights` is `None`, a weighted one otherwise.
#[derive(Debug, Clone)]
pub enum Quorum {
    /// Count-based (nominal model).
    Count(CountQuorum),
    /// Weight-based (weighted model).
    Weight(WeightQuorum),
}

impl Quorum {
    /// Nominal quorum over `n` voters.
    pub fn nominal(n: usize, threshold: Ratio) -> Self {
        Quorum::Count(CountQuorum::new(n, threshold))
    }

    /// Weighted quorum.
    pub fn weighted(weights: Weights, threshold: Ratio) -> Self {
        Quorum::Weight(WeightQuorum::new(weights, threshold))
    }

    /// Epoch stake refresh: weighted trackers re-derive their tally under
    /// the event's weights ([`WeightQuorum::reweigh`]); count-based
    /// trackers have no stake to refresh and are untouched (their
    /// population moves through [`QuorumTracker::migrate`]).
    pub fn reweigh(&mut self, event: &EpochEvent) {
        match self {
            Quorum::Count(_) => {}
            Quorum::Weight(q) => q.reweigh(event),
        }
    }
}

impl QuorumTracker for Quorum {
    fn vote(&mut self, voter: StableId) -> bool {
        match self {
            Quorum::Count(q) => q.vote(voter),
            Quorum::Weight(q) => q.vote(voter),
        }
    }

    fn reached(&self) -> bool {
        match self {
            Quorum::Count(q) => q.reached(),
            Quorum::Weight(q) => q.reached(),
        }
    }

    fn reset(&mut self) {
        match self {
            Quorum::Count(q) => q.reset(),
            Quorum::Weight(q) => q.reset(),
        }
    }

    fn migrate(&mut self, roster: &Roster) {
        match self {
            Quorum::Count(q) => q.migrate(roster),
            Quorum::Weight(q) => q.migrate(roster),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiper_core::{TicketAssignment, TicketDelta};

    fn solo(p: usize) -> StableId {
        StableId::solo(p)
    }

    #[test]
    fn count_quorum_strict_threshold() {
        // n = 6, threshold 2/3: need > 4, i.e. 5 parties.
        let mut q = CountQuorum::new(6, Ratio::of(2, 3));
        for p in 0..4 {
            assert!(!q.vote(solo(p)), "party {p}");
        }
        assert!(q.vote(solo(4)));
        assert!(q.reached());
    }

    #[test]
    fn count_quorum_at_least() {
        let mut q = CountQuorum::at_least(4, 3);
        q.vote(solo(0));
        q.vote(solo(1));
        assert!(!q.reached());
        q.vote(solo(2));
        assert!(q.reached());
    }

    #[test]
    fn duplicates_ignored() {
        let mut q = CountQuorum::at_least(3, 2);
        q.vote(solo(1));
        q.vote(solo(1));
        q.vote(solo(1));
        assert!(!q.reached());
        assert_eq!(q.count(), 1);
    }

    #[test]
    fn distinct_offsets_are_distinct_voters() {
        // Virtual users of the same party are independent voters in the
        // nominal model — the black-box transformation depends on it.
        let mut q = CountQuorum::at_least(4, 3);
        q.vote(StableId::new(0, 0));
        q.vote(StableId::new(0, 1));
        assert!(!q.reached());
        q.vote(StableId::new(1, 0));
        assert!(q.reached());
    }

    #[test]
    fn weight_quorum_strict() {
        let w = Weights::new(vec![50, 30, 20]).unwrap();
        let mut q = WeightQuorum::new(w, Ratio::of(1, 2));
        q.vote(solo(0)); // exactly 50 = W/2, not strictly more
        assert!(!q.reached());
        q.vote(solo(2)); // 70 > 50
        assert!(q.reached());
    }

    #[test]
    fn weighted_vs_nominal_divergence() {
        // A whale alone passes the weighted 1/2 quorum but never the
        // nominal one.
        let w = Weights::new(vec![90, 5, 5]).unwrap();
        let mut wq = Quorum::weighted(w, Ratio::of(1, 2));
        let mut nq = Quorum::nominal(3, Ratio::of(1, 2));
        assert!(wq.vote(solo(0)));
        assert!(!nq.vote(solo(0)));
    }

    #[test]
    fn reset_clears_state() {
        let w = Weights::new(vec![10, 10]).unwrap();
        let mut q = Quorum::weighted(w, Ratio::of(1, 3));
        q.vote(solo(0));
        assert!(q.reached());
        q.reset();
        assert!(!q.reached());
        q.vote(solo(1));
        assert!(q.reached());
    }

    #[test]
    fn unknown_party_votes_carry_no_weight() {
        // Identity validation is upstream; a voter naming a party beyond
        // the weight vector must at least never add weight or panic.
        let w = Weights::new(vec![10, 10]).unwrap();
        let mut q = WeightQuorum::new(w, Ratio::of(1, 3));
        q.vote(solo(99));
        assert!(!q.reached());
        assert_eq!(q.weight(), 0);
    }

    /// The dense-id double-counting regression the `StableId` re-keying
    /// exists to kill. One cohort of voters votes under the epoch-0
    /// numbering; a renumbering delta is spliced in; every *live* voter
    /// votes again under the epoch-1 numbering (the in-flight-duplicate
    /// schedule an epoch-crossing adversary forces). Keyed on stable
    /// identities the tracker must end with exactly the live population —
    /// a dense-keyed tracker counts survivors under both their pre- and
    /// post-epoch ids and blows past it.
    #[test]
    fn renumbering_epoch_never_double_counts_voters() {
        let old = TicketAssignment::new(vec![2, 3, 1, 2]);
        // Mixed delta: party 0 shrinks (renumbers *everyone* after it),
        // party 2 retires entirely, party 3 grows.
        let new = TicketAssignment::new(vec![1, 3, 0, 3]);
        let delta = TicketDelta::between(&old, &new).unwrap();
        let old_map = VirtualUsers::from_assignment(&old).unwrap();
        let roster = Roster::new(old_map.clone());

        let mut q = CountQuorum::at_least(old_map.total(), old_map.total());
        for v in 0..old_map.total() {
            q.vote(roster.stable_of(v));
        }
        assert_eq!(q.count(), old_map.total());
        assert!(q.reached());

        roster.apply_delta(&delta).unwrap();
        q.migrate(&roster);
        // Retired voters shed: (0,1), (2,0); survivors retained.
        assert_eq!(q.count(), old_map.total() - 2);
        assert_eq!(q.population(), roster.total());

        // Epoch-1 duplicates: every live voter votes again under the new
        // numbering. Stable keying dedupes them all; the only fresh voter
        // is party 3's joiner.
        for v in 0..roster.total() {
            q.vote(roster.stable_of(v));
        }
        assert_eq!(
            q.count(),
            roster.total(),
            "one logical voter was counted under two epochs' numberings"
        );
    }

    /// Retired voters' weight is shed on migration, not frozen into the
    /// accumulated total — the "ghost weight" half of the cross-epoch
    /// quorum-identity fix.
    #[test]
    fn migrate_sheds_retired_weight() {
        let w = Weights::new(vec![40, 35, 25]).unwrap();
        let old = TicketAssignment::new(vec![1, 1, 1]);
        let new = TicketAssignment::new(vec![1, 0, 1]);
        let delta = TicketDelta::between(&old, &new).unwrap();
        let roster = Roster::new(VirtualUsers::from_assignment(&old).unwrap());

        let mut q = WeightQuorum::new(w, Ratio::of(2, 3));
        q.vote(solo(0));
        q.vote(solo(1));
        assert!(q.reached(), "75 > 2/3 of 100");

        roster.apply_delta(&delta).unwrap();
        // Party-keyed voters never retire: solo identities stay live as
        // long as the party holds a ticket; party 1's retired here.
        q.migrate(&roster);
        assert_eq!(q.weight(), 40, "retired voter's 35 released");
        assert!(!q.reached());
        q.vote(solo(2));
        assert!(!q.reached(), "65 is not > 2/3 of 100");
    }

    /// Builds a stake-refresh event over an unchanged assignment — the
    /// pure weight-drift epoch the reweigh machinery exists for.
    fn stake_event(prev: &Weights, next: &[u64]) -> EpochEvent {
        let tickets = TicketAssignment::new(vec![1; prev.len()]);
        let delta = TicketDelta::between(&tickets, &tickets).unwrap();
        EpochEvent::new(1, delta, prev, Weights::new(next.to_vec()).unwrap(), 0).unwrap()
    }

    /// The stale-stake hole the reweigh API closes: a pending quorum that
    /// was one dust vote short under the old weights must NOT cross the
    /// threshold after the whale backing it collapsed — the kept votes
    /// re-tally under current stake, revoking the almost-complete quorum.
    #[test]
    fn reweigh_revokes_an_almost_complete_quorum_after_whale_collapse() {
        let old = Weights::new(vec![50, 30, 20]).unwrap();
        let mut q = WeightQuorum::new(old.clone(), Ratio::of(2, 3));
        q.vote(solo(0));
        assert_eq!(q.weight(), 50);
        assert!(!q.reached(), "50 is not > 2/3 of 100");
        // The whale's stake collapses mid-vouch (slashed / unbonded).
        q.reweigh(&stake_event(&old, &[5, 30, 20]));
        assert_eq!(q.weight(), 5, "the kept vote carries current stake");
        // Under the old weights this vote would have completed the quorum
        // (50 + 30 = 80 > 66); under live stake it must not (35 ≤ 36.7).
        assert!(!q.vote(solo(1)), "stale whale weight crossed a current-epoch threshold");
        assert_eq!(q.weight(), 35);
        // A fresh tracker under the new weights agrees vote-for-vote.
        let mut fresh =
            WeightQuorum::new(Weights::new(vec![5, 30, 20]).unwrap(), Ratio::of(2, 3));
        fresh.vote(solo(0));
        fresh.vote(solo(1));
        assert_eq!((fresh.weight(), fresh.reached()), (q.weight(), q.reached()));
        // Stake moving the other way completes it without new votes.
        q.reweigh(&stake_event(&Weights::new(vec![5, 30, 20]).unwrap(), &[90, 30, 20]));
        assert!(q.reached(), "re-grown stake counts immediately");
    }

    #[test]
    fn reweigh_ignores_party_count_mismatches_in_release() {
        // Release builds must not corrupt the tracker on a mis-addressed
        // event (debug builds assert).
        let old = Weights::new(vec![10, 10]).unwrap();
        let mut q = WeightQuorum::new(old.clone(), Ratio::of(1, 3));
        q.vote(solo(0));
        let before = q.weight();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.reweigh_to(&Weights::new(vec![1, 1, 1]).unwrap());
        }));
        if result.is_ok() {
            assert_eq!(q.weight(), before);
            assert_eq!(q.weights().len(), 2);
        }
    }

    #[test]
    fn roster_is_shared_between_clones() {
        let old = TicketAssignment::new(vec![2, 1]);
        let new = TicketAssignment::new(vec![1, 2]);
        let delta = TicketDelta::between(&old, &new).unwrap();
        let roster = Roster::new(VirtualUsers::from_assignment(&old).unwrap());
        let view = roster.clone();
        roster.apply_delta(&delta).unwrap();
        assert_eq!(view.total(), 3);
        assert_eq!(view.tickets_of(0), 1);
        assert_eq!(view.dense_of(StableId::new(0, 1)), None, "retired via the shared map");
        assert_eq!(view.dense_of(StableId::new(1, 1)), Some(2), "joined via the shared map");
    }

    #[test]
    fn identity_view_regimes() {
        let view = IdentityView::Party;
        assert_eq!(view.stable_of(3), StableId::solo(3));
        assert!(view.roster().is_none());
        let roster = Roster::new(
            VirtualUsers::from_assignment(&TicketAssignment::new(vec![2, 1])).unwrap(),
        );
        let view = IdentityView::Virtual(roster);
        assert_eq!(view.stable_of(1), StableId::new(0, 1));
        assert_eq!(view.stable_of(2), StableId::new(1, 0));
        assert!(view.roster().is_some());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// On equal weights, weighted voting degenerates to nominal
            /// counting — the consistency the paper's weighted-voting
            /// conversion relies on.
            #[test]
            fn weighted_equals_nominal_on_equal_weights(
                n in 1usize..30,
                votes in proptest::collection::vec(any::<proptest::sample::Index>(), 0..40),
                num in 1u128..6,
            ) {
                let threshold = Ratio::of(num, 6);
                prop_assume!(threshold.is_proper());
                let weights = Weights::new(vec![7; n]).unwrap();
                let mut wq = Quorum::weighted(weights, threshold);
                let mut nq = Quorum::nominal(n, threshold);
                for ix in votes {
                    let party = ix.index(n);
                    wq.vote(StableId::solo(party));
                    nq.vote(StableId::solo(party));
                    prop_assert_eq!(wq.reached(), nq.reached());
                }
            }

            /// Votes are monotone: once reached, a quorum stays reached.
            #[test]
            fn quorums_are_monotone(
                ws in proptest::collection::vec(1u64..100, 1..12),
                votes in proptest::collection::vec(any::<proptest::sample::Index>(), 1..40),
            ) {
                let n = ws.len();
                let weights = Weights::new(ws).unwrap();
                let mut q = Quorum::weighted(weights, Ratio::of(1, 2));
                let mut was_reached = false;
                for ix in votes {
                    q.vote(StableId::solo(ix.index(n)));
                    if was_reached {
                        prop_assert!(q.reached(), "quorum regressed");
                    }
                    was_reached = q.reached();
                }
            }

            /// Voting everyone always reaches any proper threshold.
            #[test]
            fn full_participation_reaches(
                ws in proptest::collection::vec(1u64..100, 1..12),
                num in 1u128..7,
            ) {
                let threshold = Ratio::of(num, 7);
                prop_assume!(threshold.is_proper());
                let n = ws.len();
                let weights = Weights::new(ws).unwrap();
                let mut q = Quorum::weighted(weights, threshold);
                for p in 0..n {
                    q.vote(StableId::solo(p));
                }
                prop_assert!(q.reached());
            }

            /// The reweigh contract, in full generality: for ANY vote
            /// prefix and ANY weight re-draw, the re-weighed tracker's
            /// verdict — and its exact tally — equals a fresh tracker's
            /// fed the same votes under the new weights. No ghost stake
            /// (old weights never linger in the tally), no lost votes
            /// (identity progress survives the re-draw). Checked after
            /// every single vote on both sides of the boundary.
            #[test]
            fn reweigh_matches_fresh_tracker_on_any_prefix_and_redraw(
                old_ws in proptest::collection::vec(1u64..1000, 1..10),
                new_ws in proptest::collection::vec(1u64..1000, 10),
                votes in proptest::collection::vec(any::<proptest::sample::Index>(), 0..24),
                split in any::<proptest::sample::Index>(),
                num in 1u128..5,
            ) {
                let n = old_ws.len();
                let threshold = Ratio::of(num, 5);
                prop_assume!(threshold.is_proper());
                let old = Weights::new(old_ws).unwrap();
                let new = Weights::new(new_ws[..n].to_vec()).unwrap();
                let boundary = split.index(votes.len() + 1);
                let mut reweighed = WeightQuorum::new(old.clone(), threshold);
                // Pre-boundary votes under the old weights...
                for ix in &votes[..boundary] {
                    reweighed.vote(StableId::solo(ix.index(n)));
                }
                // ...then the stake refresh...
                reweighed.reweigh(&stake_event(&old, new.as_slice()));
                // ...must leave a tracker indistinguishable from a fresh
                // one that saw every vote under the new weights.
                let mut fresh = WeightQuorum::new(new, threshold);
                for ix in &votes[..boundary] {
                    fresh.vote(StableId::solo(ix.index(n)));
                }
                prop_assert_eq!(reweighed.weight(), fresh.weight());
                prop_assert_eq!(reweighed.reached(), fresh.reached());
                for ix in &votes[boundary..] {
                    let party = ix.index(n);
                    prop_assert_eq!(
                        reweighed.vote(StableId::solo(party)),
                        fresh.vote(StableId::solo(party))
                    );
                    prop_assert_eq!(reweighed.weight(), fresh.weight());
                }
            }

            /// Stable keying is invariant under delta chains: voting every
            /// virtual user once per epoch along a random chain, with a
            /// migrate at each boundary, ends with exactly the final
            /// population — never more (double counts), never less (lost
            /// survivors), whatever the renumbering did.
            #[test]
            fn vote_once_per_epoch_counts_each_logical_voter_once(
                base in proptest::collection::vec(0u64..6, 1..10),
                epochs in proptest::collection::vec(
                    proptest::collection::vec(0u64..6, 10), 1..5),
            ) {
                let n = base.len();
                let mut current = TicketAssignment::new(base);
                let roster = Roster::new(VirtualUsers::from_assignment(&current).unwrap());
                let mut q = CountQuorum::at_least(roster.total(), 1);
                for v in 0..roster.total() {
                    q.vote(roster.stable_of(v));
                }
                for epoch in &epochs {
                    let next = TicketAssignment::new(epoch[..n].to_vec());
                    let delta = TicketDelta::between(&current, &next).unwrap();
                    roster.apply_delta(&delta).unwrap();
                    current = next;
                    q.migrate(&roster);
                    for v in 0..roster.total() {
                        q.vote(roster.stable_of(v));
                    }
                    prop_assert_eq!(q.count(), roster.total());
                }
            }
        }
    }
}
