//! Weighted voting (paper Section 1.2): quorum trackers with exact
//! rational thresholds.
//!
//! Converting a protocol from "wait for `2t+1` parties" to "wait for
//! parties holding more than a `2/3` fraction of the weight" is the
//! *weighted voting* strategy. [`QuorumTracker`] abstracts both forms so a
//! protocol implementation is generic over them.

use swiper_core::{Ratio, Weights};

/// Tracks votes from distinct parties until a threshold is reached.
pub trait QuorumTracker {
    /// Registers a vote from `party`; duplicate votes are ignored.
    /// Returns `true` once (and as long as) the quorum is reached.
    fn vote(&mut self, party: usize) -> bool;

    /// Whether the quorum has been reached.
    fn reached(&self) -> bool;

    /// Resets to the empty vote set.
    fn reset(&mut self);
}

/// Nominal quorum: strictly more than `num/den` of the `n` parties.
#[derive(Debug, Clone)]
pub struct CountQuorum {
    n: usize,
    num: u128,
    den: u128,
    voted: Vec<bool>,
    count: usize,
}

impl CountQuorum {
    /// Quorum of strictly more than `threshold * n` parties.
    ///
    /// # Panics
    ///
    /// Panics if the threshold denominator is zero (cannot happen for a
    /// valid [`Ratio`]).
    pub fn new(n: usize, threshold: Ratio) -> Self {
        CountQuorum {
            n,
            num: threshold.num(),
            den: threshold.den(),
            voted: vec![false; n],
            count: 0,
        }
    }

    /// Classic `k`-of-`n` quorum (at least `k` distinct parties).
    pub fn at_least(n: usize, k: usize) -> Self {
        // "at least k" == "strictly more than k-1": represent as (k-1)/n.
        CountQuorum {
            n,
            num: k.saturating_sub(1) as u128,
            den: n.max(1) as u128,
            voted: vec![false; n],
            count: 0,
        }
    }

    /// Current number of distinct voters.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl QuorumTracker for CountQuorum {
    fn vote(&mut self, party: usize) -> bool {
        if party < self.n && !self.voted[party] {
            self.voted[party] = true;
            self.count += 1;
        }
        self.reached()
    }

    fn reached(&self) -> bool {
        (self.count as u128) * self.den > self.num * (self.n as u128)
    }

    fn reset(&mut self) {
        self.voted.iter_mut().for_each(|v| *v = false);
        self.count = 0;
    }
}

/// Weighted quorum: strictly more than `threshold * W` of total weight.
#[derive(Debug, Clone)]
pub struct WeightQuorum {
    weights: Weights,
    num: u128,
    den: u128,
    voted: Vec<bool>,
    weight: u128,
}

impl WeightQuorum {
    /// Quorum of strictly more than `threshold * W` weight.
    pub fn new(weights: Weights, threshold: Ratio) -> Self {
        let n = weights.len();
        WeightQuorum {
            weights,
            num: threshold.num(),
            den: threshold.den(),
            voted: vec![false; n],
            weight: 0,
        }
    }

    /// Accumulated voting weight.
    pub fn weight(&self) -> u128 {
        self.weight
    }
}

impl QuorumTracker for WeightQuorum {
    fn vote(&mut self, party: usize) -> bool {
        if party < self.voted.len() && !self.voted[party] {
            self.voted[party] = true;
            self.weight += u128::from(self.weights.get(party));
        }
        self.reached()
    }

    fn reached(&self) -> bool {
        self.weight * self.den > self.num * self.weights.total()
    }

    fn reset(&mut self) {
        self.voted.iter_mut().for_each(|v| *v = false);
        self.weight = 0;
    }
}

/// Builds the tracker family used across the weighted protocols: a nominal
/// tracker when `weights` is `None`, a weighted one otherwise.
#[derive(Debug, Clone)]
pub enum Quorum {
    /// Count-based (nominal model).
    Count(CountQuorum),
    /// Weight-based (weighted model).
    Weight(WeightQuorum),
}

impl Quorum {
    /// Nominal quorum over `n` parties.
    pub fn nominal(n: usize, threshold: Ratio) -> Self {
        Quorum::Count(CountQuorum::new(n, threshold))
    }

    /// Weighted quorum.
    pub fn weighted(weights: Weights, threshold: Ratio) -> Self {
        Quorum::Weight(WeightQuorum::new(weights, threshold))
    }
}

impl QuorumTracker for Quorum {
    fn vote(&mut self, party: usize) -> bool {
        match self {
            Quorum::Count(q) => q.vote(party),
            Quorum::Weight(q) => q.vote(party),
        }
    }

    fn reached(&self) -> bool {
        match self {
            Quorum::Count(q) => q.reached(),
            Quorum::Weight(q) => q.reached(),
        }
    }

    fn reset(&mut self) {
        match self {
            Quorum::Count(q) => q.reset(),
            Quorum::Weight(q) => q.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_quorum_strict_threshold() {
        // n = 6, threshold 2/3: need > 4, i.e. 5 parties.
        let mut q = CountQuorum::new(6, Ratio::of(2, 3));
        for p in 0..4 {
            assert!(!q.vote(p), "party {p}");
        }
        assert!(q.vote(4));
        assert!(q.reached());
    }

    #[test]
    fn count_quorum_at_least() {
        let mut q = CountQuorum::at_least(4, 3);
        q.vote(0);
        q.vote(1);
        assert!(!q.reached());
        q.vote(2);
        assert!(q.reached());
    }

    #[test]
    fn duplicates_ignored() {
        let mut q = CountQuorum::at_least(3, 2);
        q.vote(1);
        q.vote(1);
        q.vote(1);
        assert!(!q.reached());
        assert_eq!(q.count(), 1);
    }

    #[test]
    fn weight_quorum_strict() {
        let w = Weights::new(vec![50, 30, 20]).unwrap();
        let mut q = WeightQuorum::new(w, Ratio::of(1, 2));
        q.vote(0); // exactly 50 = W/2, not strictly more
        assert!(!q.reached());
        q.vote(2); // 70 > 50
        assert!(q.reached());
    }

    #[test]
    fn weighted_vs_nominal_divergence() {
        // A whale alone passes the weighted 1/2 quorum but never the
        // nominal one.
        let w = Weights::new(vec![90, 5, 5]).unwrap();
        let mut wq = Quorum::weighted(w, Ratio::of(1, 2));
        let mut nq = Quorum::nominal(3, Ratio::of(1, 2));
        assert!(wq.vote(0));
        assert!(!nq.vote(0));
    }

    #[test]
    fn reset_clears_state() {
        let w = Weights::new(vec![10, 10]).unwrap();
        let mut q = Quorum::weighted(w, Ratio::of(1, 3));
        q.vote(0);
        assert!(q.reached());
        q.reset();
        assert!(!q.reached());
        q.vote(1);
        assert!(q.reached());
    }

    #[test]
    fn out_of_range_votes_ignored() {
        let mut q = CountQuorum::at_least(2, 1);
        q.vote(99);
        assert!(!q.reached());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// On equal weights, weighted voting degenerates to nominal
            /// counting — the consistency the paper's weighted-voting
            /// conversion relies on.
            #[test]
            fn weighted_equals_nominal_on_equal_weights(
                n in 1usize..30,
                votes in proptest::collection::vec(any::<proptest::sample::Index>(), 0..40),
                num in 1u128..6,
            ) {
                let threshold = Ratio::of(num, 6);
                prop_assume!(threshold.is_proper());
                let weights = Weights::new(vec![7; n]).unwrap();
                let mut wq = Quorum::weighted(weights, threshold);
                let mut nq = Quorum::nominal(n, threshold);
                for ix in votes {
                    let party = ix.index(n);
                    wq.vote(party);
                    nq.vote(party);
                    prop_assert_eq!(wq.reached(), nq.reached());
                }
            }

            /// Votes are monotone: once reached, a quorum stays reached.
            #[test]
            fn quorums_are_monotone(
                ws in proptest::collection::vec(1u64..100, 1..12),
                votes in proptest::collection::vec(any::<proptest::sample::Index>(), 1..40),
            ) {
                let n = ws.len();
                let weights = Weights::new(ws).unwrap();
                let mut q = Quorum::weighted(weights, Ratio::of(1, 2));
                let mut was_reached = false;
                for ix in votes {
                    q.vote(ix.index(n));
                    if was_reached {
                        prop_assert!(q.reached(), "quorum regressed");
                    }
                    was_reached = q.reached();
                }
            }

            /// Voting everyone always reaches any proper threshold.
            #[test]
            fn full_participation_reaches(
                ws in proptest::collection::vec(1u64..100, 1..12),
                num in 1u128..7,
            ) {
                let threshold = Ratio::of(num, 7);
                prop_assume!(threshold.is_proper());
                let n = ws.len();
                let weights = Weights::new(ws).unwrap();
                let mut q = Quorum::weighted(weights, threshold);
                for p in 0..n {
                    q.vote(p);
                }
                prop_assert!(q.reached());
            }
        }
    }
}
