//! Asynchronous binary Byzantine agreement with a weighted common coin.
//!
//! A Mostéfaoui–Moumen–Raynal-style signature-free binary agreement
//! (BV-broadcast + AUX + common coin), converted to the weighted model the
//! way the paper prescribes for "Validated Asynchronous Byzantine
//! Agreement" (Section 6.2 and Table 1):
//!
//! * every quorum becomes a **weighted** quorum (weighted voting, §1.2):
//!   BV relay at weight `> f_w`, `bin_values` insertion and AUX collection
//!   at weight `> 2 f_w`, with `f_w = f_n = 1/3`;
//! * the **common coin** is the only part that needs weight reduction: WR
//!   with `alpha_w := f_w = 1/3`, `alpha_n := 1/2` deals threshold-signature
//!   key shares to virtual users (Section 4.1), and the unique combined
//!   signature of the round tag hashes into the coin.
//!
//! Termination uses the standard decide-amplification gadget: a party that
//! decides broadcasts `Decided(v)`; weight `> f_w` of `Decided(v)` lets
//! anyone adopt `v`, and weight `> 2 f_w` lets a party halt.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swiper_core::{EpochEvent, Ratio, StableId, TicketAssignment, VirtualUsers, Weights};
use swiper_crypto::thresh::{KeyShare, PartialSignature, PublicKey, ThresholdScheme};
use swiper_net::{Context, MessageSize, NodeId, Protocol};

use crate::quorum::{CountQuorum, IdentityView, Quorum, QuorumTracker, Roster, WeightQuorum};

/// ABA protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbaMsg {
    /// BV-broadcast of a binary estimate.
    BVal {
        /// Round number.
        round: u32,
        /// The broadcast value.
        value: bool,
    },
    /// Second-phase auxiliary value.
    Aux {
        /// Round number.
        round: u32,
        /// The chosen `bin_values` element.
        value: bool,
    },
    /// Threshold-signature shares for the round's coin.
    CoinShare {
        /// Round number.
        round: u32,
        /// Partial signatures from the sender's key shares.
        partials: Vec<PartialSignature>,
    },
    /// Decision announcement (termination gadget).
    Decided {
        /// The decided value.
        value: bool,
    },
}

impl MessageSize for AbaMsg {
    fn size_bytes(&self) -> usize {
        match self {
            AbaMsg::BVal { .. } | AbaMsg::Aux { .. } => 5,
            AbaMsg::CoinShare { partials, .. } => 4 + partials.len() * 16,
            AbaMsg::Decided { .. } => 1,
        }
    }
}

/// Shared setup: weights for quorums plus the dealt coin keys.
///
/// # The coin carry/re-deal rule
///
/// Coin keys are dealt to the **virtual users of a ticket assignment**,
/// and share indices are fixed points of the threshold scheme — so the
/// keys are pinned to their dealing epoch's assignment. Across an
/// [`EpochEvent`] boundary ([`AbaSetup::on_epoch`]) the rule mirrors the
/// SMR composition's beacon split:
///
/// * **carry** — when the event's delta leaves the backing tickets
///   unchanged, the dealt keys remain exactly right and nothing happens;
/// * **re-deal** — when the tickets moved, every replica *reshares* the
///   group secret deterministically from `event.rekey_seed()` folded with
///   the new assignment's fingerprint: fresh shares for the new
///   population (old partials stop verifying), same group key. Keeping
///   the secret keeps the unique combined signature of every round tag,
///   so a round whose coin was combined before the boundary and one
///   combined after it see the **same coin value** — re-dealing can never
///   fork an in-flight round's randomness.
#[derive(Debug, Clone)]
pub struct AbaSetup {
    weights: Weights,
    /// The assignment the coin keys are currently dealt to.
    tickets: TicketAssignment,
    scheme: ThresholdScheme,
    pk: PublicKey,
    shares: Vec<Vec<KeyShare>>,
    /// Domain-separation tag so concurrent instances draw distinct coins.
    instance: u64,
    /// Identity regime: [`IdentityView::Party`] for fixed party sets (the
    /// default), [`IdentityView::Virtual`] for a nominal instance hosted
    /// over a black-box roster whose population renumbers across epochs.
    view: IdentityView,
}

impl AbaSetup {
    /// Deals an instance: weighted quorums over `weights`, coin keys dealt
    /// to the WR ticket assignment (use `WR(1/3, 1/2)` tickets).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != tickets.len()` or no tickets were
    /// allocated.
    pub fn deal<R: Rng + ?Sized>(
        weights: Weights,
        tickets: &TicketAssignment,
        instance: u64,
        rng: &mut R,
    ) -> Self {
        assert_eq!(weights.len(), tickets.len(), "weights/tickets mismatch");
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        let total = mapping.total();
        assert!(total > 0, "coin needs at least one ticket");
        // Strict majority of tickets: unreachable below 1/2, held by the
        // honest (> 1/2 by WR with alpha_n = 1/2).
        let threshold = total / 2 + 1;
        let scheme = ThresholdScheme::new(threshold, total).expect("threshold <= total");
        let (pk, all_shares) = scheme.keygen(rng);
        let shares = (0..mapping.parties())
            .map(|p| mapping.virtuals_of(p).map(|v| all_shares[v]).collect())
            .collect();
        AbaSetup {
            weights,
            tickets: tickets.clone(),
            scheme,
            pk,
            shares,
            instance,
            view: IdentityView::Party,
        }
    }

    /// Nominal instance: equal weights, one coin share per party.
    pub fn nominal<R: Rng + ?Sized>(n: usize, instance: u64, rng: &mut R) -> Self {
        let weights = Weights::new(vec![1; n]).expect("n > 0");
        let tickets = TicketAssignment::new(vec![1; n]);
        Self::deal(weights, &tickets, instance, rng)
    }

    /// Installs the epoch-aware identity regime for a *nominal* instance
    /// hosted over a black-box [`Roster`]: quorums become count-based over
    /// the roster's current population, votes are keyed by stable
    /// `(party, offset)` identity, and [`Protocol::on_reconfigure`]
    /// migrates them across renumbering deltas. Coin keys follow the
    /// carry/re-deal rule (see the type docs): an epoch whose delta moves
    /// the hosting tickets re-deals them deterministically over the new
    /// population from the event's rekey seed; an epoch that does not
    /// carries them untouched. (Under the retired ticket-only contract
    /// the keys stayed pinned to the dealing epoch forever — a shrinking
    /// delta could strand the coin below its own threshold, and a growing
    /// one left joiners shareless.)
    #[must_use]
    pub fn with_roster(mut self, roster: Roster) -> Self {
        self.view = IdentityView::Virtual(roster);
        self
    }

    /// Splices an [`EpochEvent`] into the setup, applying the coin
    /// carry/re-deal rule (see the type docs). Returns `Some(rekeyed)` —
    /// callers must, on a re-deal, drop buffered partials of un-combined
    /// rounds (they no longer verify) and re-release their own shares —
    /// or `None` when the event does not address this setup (a party-
    /// regime delta that does not chain from the dealt tickets): the
    /// setup is then left **wholly** untouched, stake included, and the
    /// caller should ignore the event too rather than half-apply it.
    ///
    /// In the roster regime the hosting [`Roster`] must already hold the
    /// new epoch (the black-box wrapper splices it before propagating the
    /// event, and validates the event against its own mapping).
    pub fn on_epoch(&mut self, event: &EpochEvent) -> Option<bool> {
        match self.view.roster().cloned() {
            // Party regime: chain the delta from our dealt tickets; only
            // an event that does chain is allowed to touch anything.
            None => match event.delta().apply_to(&self.tickets) {
                Err(_) => None,
                Ok(next) => {
                    let _ = event.refresh_weights(&mut self.weights);
                    if next != self.tickets {
                        self.redeal(next, event);
                        Some(true)
                    } else {
                        Some(false)
                    }
                }
            },
            // Roster regime: the wrapper already spliced the mapping. The
            // hosted nominal instance treats each virtual user as a
            // one-ticket party, so shares re-deal over the roster's new
            // *population*; the seed folds the real per-party assignment,
            // which is what the epoch actually changed. Every changed
            // epoch reshares unconditionally: ticket-vector equality is
            // NOT a proxy for key currency — a factory-cloned joiner
            // still holds the construction generation, and an epoch chain
            // that revisits the dealing assignment would otherwise let it
            // carry those stale keys while survivors hold a reshared
            // generation. Resharing is idempotent across catch-up depths
            // (same secret, same base, same event-derived polynomial), so
            // the unconditional reshare is what makes joiners and
            // survivors converge bit-identically.
            Some(roster) => {
                if event.delta().is_unchanged() {
                    return Some(false);
                }
                let per_party: Vec<u64> =
                    (0..roster.parties()).map(|p| roster.tickets_of(p)).collect();
                self.redeal(TicketAssignment::new(per_party), event);
                Some(true)
            }
        }
    }

    /// Deterministically reshares the coin keys for the new epoch: same
    /// group secret (straddling rounds keep their coin value), fresh
    /// shares for the new population, identical on every replica. In the
    /// party regime shares distribute over `tickets`' virtual users; in
    /// the roster regime every virtual user of the new population is its
    /// own one-share holder (the nominal hosting shape).
    fn redeal(&mut self, tickets: TicketAssignment, event: &EpochEvent) {
        let seed = event.fold_rekey(tickets.fingerprint()) ^ self.instance;
        let deal_over = match self.view.roster() {
            None => tickets.clone(),
            Some(roster) => TicketAssignment::new(vec![1; roster.total()]),
        };
        let mapping = VirtualUsers::from_assignment(&deal_over).expect("fits memory");
        let total = mapping.total();
        assert!(total > 0, "coin needs at least one ticket");
        let new_scheme =
            ThresholdScheme::new(total / 2 + 1, total).expect("threshold <= total");
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<KeyShare> = self.shares.iter().flatten().copied().collect();
        let (pk, all) = new_scheme
            .reshare(&self.scheme, &self.pk, &flat, &mut rng)
            .expect("the dealt generation holds a recovery quorum");
        self.shares = (0..mapping.parties())
            .map(|p| mapping.virtuals_of(p).map(|v| all[v]).collect())
            .collect();
        self.scheme = new_scheme;
        self.pk = pk;
        self.tickets = tickets;
        // In the roster-hosted nominal regime the weight vector is the
        // (unused) equal-weight one over the old population; keep it in
        // step so `weights.len()` matches the new share table.
        if self.view.roster().is_some() {
            self.weights = Weights::new(vec![1; total]).expect("total > 0");
        }
    }

    fn coin_tag(&self, round: u32) -> Vec<u8> {
        let mut tag = b"swiper.aba.coin.".to_vec();
        tag.extend_from_slice(&self.instance.to_le_bytes());
        tag.extend_from_slice(&round.to_le_bytes());
        tag
    }

    fn quorum(&self, threshold: Ratio) -> Quorum {
        match self.view.roster() {
            None => Quorum::Weight(WeightQuorum::new(self.weights.clone(), threshold)),
            Some(roster) => Quorum::Count(CountQuorum::new(roster.total(), threshold)),
        }
    }

    /// One voter's contribution to a weighted tally (unit in the
    /// roster-hosted nominal regime, the party's stake otherwise).
    fn weight_of(&self, voter: StableId) -> u128 {
        match self.view.roster() {
            None => u128::from(self.weights.get(voter.party_ix())),
            Some(_) => 1,
        }
    }

    /// The weighted tally's denominator (current population or stake
    /// total).
    fn weight_total(&self) -> u128 {
        match self.view.roster() {
            None => self.weights.total(),
            Some(roster) => roster.total() as u128,
        }
    }
}

/// Per-round state.
struct RoundState {
    bval_sent: [bool; 2],
    bval_votes: [Quorum; 2],
    bval_relay: [Quorum; 2],
    bin: [bool; 2],
    aux_sent: bool,
    /// The AUX value this node broadcast (`Some` iff `aux_sent`), kept so
    /// the epochal form can re-announce it to joiners spawned mid-flight.
    aux_value: Option<bool>,
    /// First AUX value per stable voter identity.
    aux_of: HashMap<StableId, bool>,
    coin_sent: bool,
    coin_seen: std::collections::HashSet<u64>,
    coin_partials: Vec<PartialSignature>,
    coin: Option<bool>,
    /// `vals` snapshot (as a {false, true} membership pair) taken when the
    /// AUX quorum first completed.
    vals: Option<[bool; 2]>,
}

impl RoundState {
    fn new(setup: &AbaSetup) -> Self {
        RoundState {
            bval_sent: [false; 2],
            // bin_values insertion: weight > 2 f_w.
            bval_votes: [setup.quorum(Ratio::of(2, 3)), setup.quorum(Ratio::of(2, 3))],
            // relay: weight > f_w.
            bval_relay: [setup.quorum(Ratio::of(1, 3)), setup.quorum(Ratio::of(1, 3))],
            bin: [false; 2],
            aux_sent: false,
            aux_value: None,
            aux_of: HashMap::new(),
            coin_sent: false,
            coin_seen: Default::default(),
            coin_partials: Vec::new(),
            coin: None,
            vals: None,
        }
    }
}

/// One agreement party.
pub struct AbaNode {
    setup: AbaSetup,
    est: bool,
    round: u32,
    rounds: HashMap<u32, RoundState>,
    decided: Option<bool>,
    decided_sent: bool,
    decided_adopt: [Quorum; 2],
    decided_halt: [Quorum; 2],
    /// Rounds completed before this node moved on (expected O(1)).
    pub rounds_run: u32,
}

impl AbaNode {
    /// A party with binary input `input`.
    pub fn new(setup: AbaSetup, input: bool) -> Self {
        let adopt = [setup.quorum(Ratio::of(1, 3)), setup.quorum(Ratio::of(1, 3))];
        let halt = [setup.quorum(Ratio::of(2, 3)), setup.quorum(Ratio::of(2, 3))];
        AbaNode {
            setup,
            est: input,
            round: 0,
            rounds: HashMap::new(),
            decided: None,
            decided_sent: false,
            decided_adopt: adopt,
            decided_halt: halt,
            rounds_run: 0,
        }
    }

    /// The value this node decided, if any (for post-run inspection).
    pub fn decision(&self) -> Option<bool> {
        self.decided
    }

    fn state(&mut self, round: u32) -> &mut RoundState {
        let setup = &self.setup;
        self.rounds.entry(round).or_insert_with(|| RoundState::new(setup))
    }

    fn send_bval(&mut self, round: u32, value: bool, ctx: &mut Context<AbaMsg>) {
        let st = self.state(round);
        if !st.bval_sent[value as usize] {
            st.bval_sent[value as usize] = true;
            ctx.broadcast(AbaMsg::BVal { round, value });
        }
    }

    /// Drives the current round forward as far as buffered state allows.
    fn progress(&mut self, ctx: &mut Context<AbaMsg>) {
        loop {
            let round = self.round;
            // Phase 2: broadcast AUX once bin_values is non-empty.
            let (bin, aux_sent) = {
                let st = self.state(round);
                (st.bin, st.aux_sent)
            };
            if !aux_sent && (bin[0] || bin[1]) {
                // Prefer the current estimate when both are binding.
                let v = if bin[self.est as usize] { self.est } else { bin[1] };
                let st = self.state(round);
                st.aux_sent = true;
                st.aux_value = Some(v);
                ctx.broadcast(AbaMsg::Aux { round, value: v });
            }
            // Phase 3: once AUX weight > 2 f_w with values in bin_values,
            // snapshot `vals` and release the coin shares.
            self.try_snapshot_vals(round);
            let need_coin = {
                let st = self.state(round);
                st.vals.is_some() && !st.coin_sent
            };
            if need_coin {
                let partials: Vec<PartialSignature> = {
                    let tag = self.setup.coin_tag(round);
                    self.setup.shares[ctx.me()]
                        .iter()
                        .map(|s| self.setup.scheme.partial_sign(s, &tag))
                        .collect()
                };
                let st = self.state(round);
                st.coin_sent = true;
                ctx.broadcast(AbaMsg::CoinShare { round, partials });
            }
            // Phase 4: decide / adopt with the coin.
            self.try_combine_coin(round);
            let (vals, coin) = {
                let st = self.state(round);
                (st.vals, st.coin)
            };
            let (Some(vals), Some(coin)) = (vals, coin) else { return };
            self.rounds_run += 1;
            if vals[0] != vals[1] {
                // Singleton vals = {v}.
                let v = vals[1]; // vals[1] set <=> v = true
                self.est = v;
                if v == coin && self.decided.is_none() {
                    self.decide(v, ctx);
                }
            } else {
                // Both values seen: adopt the coin.
                self.est = coin;
            }
            self.round += 1;
            let (next, est) = (self.round, self.est);
            self.send_bval(next, est, ctx);
            // Loop: buffered messages may already complete the next round.
        }
    }

    fn try_snapshot_vals(&mut self, round: u32) {
        let Some(st) = self.rounds.get(&round) else { return };
        if st.vals.is_some() || !st.aux_sent {
            return;
        }
        // Weight of AUX senders whose value is currently in bin_values.
        let mut vals = [false; 2];
        let mut weight: u128 = 0;
        for (&voter, &v) in &st.aux_of {
            if st.bin[v as usize] {
                weight += self.setup.weight_of(voter);
                vals[v as usize] = true;
            }
        }
        if weight * 3 > 2 * self.setup.weight_total() {
            self.rounds.get_mut(&round).expect("checked above").vals = Some(vals);
        }
    }

    fn try_combine_coin(&mut self, round: u32) {
        let tag = self.setup.coin_tag(round);
        let scheme = self.setup.scheme.clone();
        let pk = self.setup.pk.clone();
        let st = self.state(round);
        if st.coin.is_some() || st.coin_partials.len() < scheme.threshold() {
            return;
        }
        if let Ok(sig) = scheme.combine(&st.coin_partials) {
            if scheme.verify(&pk, &tag, &sig) {
                st.coin = Some(sig.beacon_output().to_u64() & 1 == 1);
            }
        }
    }

    fn decide(&mut self, value: bool, ctx: &mut Context<AbaMsg>) {
        if self.decided.is_none() {
            self.decided = Some(value);
            ctx.output(vec![value as u8]);
        }
        if !self.decided_sent {
            self.decided_sent = true;
            ctx.broadcast(AbaMsg::Decided { value });
        }
    }
}

impl Protocol for AbaNode {
    type Msg = AbaMsg;

    fn on_start(&mut self, ctx: &mut Context<AbaMsg>) {
        let (round, est) = (self.round, self.est);
        self.send_bval(round, est, ctx);
        self.progress(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: AbaMsg, ctx: &mut Context<AbaMsg>) {
        let voter = self.setup.view.stable_of(from);
        match msg {
            AbaMsg::BVal { round, value } => {
                let relay = {
                    let st = self.state(round);
                    st.bval_votes[value as usize].vote(voter);
                    st.bval_relay[value as usize].vote(voter)
                };
                if relay {
                    self.send_bval(round, value, ctx);
                }
                let st = self.state(round);
                if st.bval_votes[value as usize].reached() {
                    st.bin[value as usize] = true;
                }
            }
            AbaMsg::Aux { round, value } => {
                self.state(round).aux_of.entry(voter).or_insert(value);
            }
            AbaMsg::CoinShare { round, partials } => {
                let tag = self.setup.coin_tag(round);
                let scheme = self.setup.scheme.clone();
                let pk = self.setup.pk.clone();
                let st = self.state(round);
                for p in partials {
                    if scheme.verify_partial(&pk, &tag, &p) && st.coin_seen.insert(p.index) {
                        st.coin_partials.push(p);
                    }
                }
            }
            AbaMsg::Decided { value } => {
                if self.decided_adopt[value as usize].vote(voter) && self.decided.is_none() {
                    self.decide(value, ctx);
                }
                if self.decided_halt[value as usize].vote(voter) && self.decided == Some(value)
                {
                    self.decide(value, ctx);
                    ctx.halt();
                    return;
                }
            }
        }
        self.progress(ctx);
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<AbaMsg>) {
        // Coin keys first: carry when the backing tickets are unchanged,
        // deterministic same-secret re-deal when they moved (see
        // `AbaSetup::on_epoch`). After a re-deal, buffered partials of
        // un-combined rounds no longer verify and our own shares must go
        // out again under the new generation; already-combined coins keep
        // their value (the group secret survives resharing), so no round
        // can see two different coins.
        let Some(rekeyed) = self.setup.on_epoch(event) else {
            // A mis-addressed event (its delta does not chain from this
            // instance's dealt tickets) is ignored wholesale — reweighing
            // trackers under weights the setup never adopted would be the
            // half-applied state the contract forbids.
            return;
        };
        if rekeyed {
            for st in self.rounds.values_mut() {
                if st.coin.is_none() {
                    st.coin_partials.clear();
                    st.coin_seen.clear();
                    st.coin_sent = false;
                }
            }
        }
        match self.setup.view.roster().cloned() {
            // Party regime: identities are fixed, but stake is not — every
            // weighted tally re-derives under the event's weight vector
            // (`AbaSetup::on_epoch` already refreshed the vector new
            // quorums are minted from).
            None => {
                for st in self.rounds.values_mut() {
                    for q in st.bval_votes.iter_mut().chain(st.bval_relay.iter_mut()) {
                        q.reweigh(event);
                    }
                    for value in [false, true] {
                        if st.bval_votes[value as usize].reached() {
                            st.bin[value as usize] = true;
                        }
                    }
                }
                for q in self.decided_adopt.iter_mut().chain(self.decided_halt.iter_mut()) {
                    q.reweigh(event);
                }
            }
            // Roster-hosted nominal regime: every tracker migrates onto
            // the new epoch — surviving voters carry, retired voters and
            // their AUX claims are shed, count thresholds re-derive from
            // the new population.
            Some(roster) => {
                for st in self.rounds.values_mut() {
                    for q in st.bval_votes.iter_mut().chain(st.bval_relay.iter_mut()) {
                        q.migrate(&roster);
                    }
                    st.aux_of.retain(|id, _| roster.contains(*id));
                    for value in [false, true] {
                        if st.bval_votes[value as usize].reached() {
                            st.bin[value as usize] = true;
                        }
                    }
                }
                for q in self.decided_adopt.iter_mut().chain(self.decided_halt.iter_mut()) {
                    q.migrate(&roster);
                }
                // Catch-up re-announcement (the epochal Bracha move):
                // voters spawned this epoch missed every pre-boundary
                // message, and with enough joins the quorums over the
                // grown population are unreachable from survivor votes
                // alone — while survivors, having spoken exactly once,
                // would never speak again. Re-broadcast what this node
                // already said (its BVals, its AUX per round, its
                // Decided); stable-keyed trackers and first-vote-wins
                // maps make every duplicate a no-op. Rounds go out in
                // ascending order so the emission schedule — and with it
                // the seeded delay stream — stays deterministic.
                let mut rounds: Vec<u32> = self.rounds.keys().copied().collect();
                rounds.sort_unstable();
                for round in rounds {
                    let st = &self.rounds[&round];
                    for value in [false, true] {
                        if st.bval_sent[value as usize] {
                            ctx.broadcast(AbaMsg::BVal { round, value });
                        }
                    }
                    if let Some(value) = st.aux_value {
                        ctx.broadcast(AbaMsg::Aux { round, value });
                    }
                }
                if self.decided_sent {
                    if let Some(value) = self.decided {
                        ctx.broadcast(AbaMsg::Decided { value });
                    }
                }
            }
        }
        // The boundary op itself can cross a threshold with no further
        // vote arriving (stake grew onto recorded voters; a shrinking
        // population lowered a count base) — and honest parties cast each
        // vote exactly once, so the vote-path transitions would never
        // re-run. Re-fire them here: BV relay duty, then the decide
        // gadget; `progress` covers the bin/AUX/coin chain.
        let mut relays: Vec<(u32, bool)> = Vec::new();
        for (&round, st) in self.rounds.iter() {
            for value in [false, true] {
                if st.bval_relay[value as usize].reached() && !st.bval_sent[value as usize] {
                    relays.push((round, value));
                }
            }
        }
        relays.sort_unstable();
        for (round, value) in relays {
            self.send_bval(round, value, ctx);
        }
        for value in [false, true] {
            if self.decided_adopt[value as usize].reached() && self.decided.is_none() {
                self.decide(value, ctx);
            }
            if self.decided_halt[value as usize].reached() && self.decided == Some(value) {
                self.decide(value, ctx);
                ctx.halt();
                return;
            }
        }
        self.progress(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Swiper, WeightRestriction};
    use swiper_net::adversary::Silent;
    use swiper_net::{DelayModel, Simulation};

    fn run_nominal(
        n: usize,
        inputs: &[bool],
        silent: usize,
        seed: u64,
    ) -> swiper_net::RunReport {
        let setup = AbaSetup::nominal(n, seed, &mut StdRng::seed_from_u64(seed));
        let mut nodes: Vec<Box<dyn Protocol<Msg = AbaMsg>>> = Vec::new();
        for i in 0..n {
            if i >= n - silent {
                nodes.push(Box::new(Silent::new()));
            } else {
                nodes.push(Box::new(AbaNode::new(setup.clone(), inputs[i % inputs.len()])));
            }
        }
        Simulation::new(nodes, seed).run()
    }

    fn decisions(report: &swiper_net::RunReport, honest: usize) -> Vec<u8> {
        (0..honest)
            .map(|i| {
                report.outputs[i].as_ref().unwrap_or_else(|| panic!("node {i} never decided"))
                    [0]
            })
            .collect()
    }

    #[test]
    fn unanimous_input_decides_that_value() {
        for seed in [1u64, 2, 3] {
            let report = run_nominal(4, &[true], 0, seed);
            let d = decisions(&report, 4);
            assert!(d.iter().all(|&v| v == 1), "validity violated, seed {seed}");
        }
        for seed in [4u64, 5] {
            let report = run_nominal(4, &[false], 0, seed);
            let d = decisions(&report, 4);
            assert!(d.iter().all(|&v| v == 0), "validity violated, seed {seed}");
        }
    }

    #[test]
    fn mixed_inputs_still_agree() {
        for seed in [7u64, 8, 9, 10] {
            let report = run_nominal(4, &[true, false, true, false], 0, seed);
            let d = decisions(&report, 4);
            assert!(
                d.windows(2).all(|w| w[0] == w[1]),
                "agreement violated, seed {seed}: {d:?}"
            );
        }
    }

    #[test]
    fn tolerates_t_silent_parties() {
        // n = 7, t = 2 silent.
        for seed in [11u64, 12] {
            let report = run_nominal(7, &[true, false], 2, seed);
            let d = decisions(&report, 5);
            assert!(d.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {d:?}");
        }
    }

    #[test]
    fn adversarial_delays_do_not_break_agreement() {
        let setup = AbaSetup::nominal(4, 99, &mut StdRng::seed_from_u64(99));
        let inputs = [true, false, false, true];
        let nodes: Vec<Box<dyn Protocol<Msg = AbaMsg>>> =
            inputs.iter().map(|&inp| Box::new(AbaNode::new(setup.clone(), inp)) as _).collect();
        let report =
            Simulation::new(nodes, 99).with_delay(DelayModel::BiasAgainstLowIds(1, 60)).run();
        let d = decisions(&report, 4);
        assert!(d.windows(2).all(|w| w[0] == w[1]), "{d:?}");
    }

    #[test]
    fn weighted_aba_end_to_end() {
        // The paper's §6.2 composition: weighted voting + WR(1/3, 1/2)
        // tickets for the coin, f_w = f_n = 1/3.
        let weights = Weights::new(vec![40, 25, 15, 10, 10]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        for seed in [21u64, 22] {
            let setup = AbaSetup::deal(
                weights.clone(),
                &sol.assignment,
                seed,
                &mut StdRng::seed_from_u64(seed),
            );
            let inputs = [true, false, true, false, true];
            let nodes: Vec<Box<dyn Protocol<Msg = AbaMsg>>> = inputs
                .iter()
                .map(|&inp| Box::new(AbaNode::new(setup.clone(), inp)) as _)
                .collect();
            let report = Simulation::new(nodes, seed).run();
            let d = decisions(&report, 5);
            assert!(d.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {d:?}");
        }
    }

    #[test]
    fn weighted_aba_tolerates_silent_weight() {
        // Silent parties hold 30% (< 1/3) of the weight.
        let weights = Weights::new(vec![30, 25, 20, 15, 10]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let setup =
            AbaSetup::deal(weights, &sol.assignment, 31, &mut StdRng::seed_from_u64(31));
        let mut nodes: Vec<Box<dyn Protocol<Msg = AbaMsg>>> = Vec::new();
        nodes.push(Box::new(Silent::new())); // party 0: 30%
        for i in 1..5 {
            nodes.push(Box::new(AbaNode::new(setup.clone(), i % 2 == 0)));
        }
        let report = Simulation::new(nodes, 31).run();
        let d: Vec<u8> =
            (1..5).map(|i| report.outputs[i].as_ref().expect("decided")[0]).collect();
        assert!(d.windows(2).all(|w| w[0] == w[1]), "{d:?}");
    }
}
