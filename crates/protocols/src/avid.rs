//! Asynchronous Verifiable Information Dispersal — erasure-coded storage
//! and broadcast (paper Section 5.1; Cachin–Tessaro, reference \[17\]).
//!
//! The dealer erasure-codes the blob into `m` fragments committed by a
//! Merkle root and sends each party its fragments. Parties acknowledge
//! verified fragments; once acknowledgements carry enough weight the blob
//! is durably dispersed, and parties exchange fragments to reconstruct.
//!
//! * **Nominal instantiation**: `m = n`, `k = t + 1`, acknowledgement
//!   quorum `2t + 1` (with `n = 3t + 1`).
//! * **Weighted instantiation (the paper's contribution)**: solve Weight
//!   Qualification with `beta_w = f_w = 1/3` and any `beta_n < beta_w`;
//!   use `(k, m) = (ceil(beta_n * T), T)` coding where `T` is the ticket
//!   total, give party `i` its `t_i` fragments, and wait for
//!   acknowledgements of weight `> 2 f_w`. Any such quorum contains honest
//!   weight `> f_w = beta_w`, whose tickets exceed `beta_n * T >= k` by the
//!   WQ guarantee — reconstruction always succeeds. Resilience is
//!   preserved: `f_w = f_n = 1/3`.
//!
//! The price is the code rate `beta_n` instead of `f_w` — the paper's
//! `x1.33` communication and `x3.56` computation worst case for
//! `(beta_w, beta_n) = (1/3, 1/4)`.

use std::collections::{HashMap, HashSet};

use swiper_core::{EpochEvent, Ratio, StableId, TicketAssignment, VirtualUsers, Weights};
use swiper_crypto::hash::Digest;
use swiper_crypto::{MerkleProof, MerkleTree};
use swiper_erasure::shards::{decode_bytes, encode_bytes, Shard};
use swiper_net::{Context, MessageSize, NodeId, Protocol};

use crate::quorum::{Quorum, QuorumTracker};

/// The sentinel output when the dealer provably misencoded.
pub const BOT: &[u8] = b"<AVID-BOT>";

/// A fragment with its Merkle inclusion proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenShard {
    /// The fragment.
    pub shard: Shard,
    /// Inclusion proof against the dispersal root.
    pub proof: MerkleProof,
}

impl ProvenShard {
    fn verify(&self, root: &Digest) -> bool {
        self.proof.verify(root, &self.shard.data, self.shard.index as usize)
    }

    fn size(&self) -> usize {
        self.shard.data.len() + 4 + 32 * self.proof.len()
    }
}

/// AVID protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AvidMsg {
    /// Dealer hands a party its fragments.
    Disperse {
        /// Merkle root over all `m` fragments.
        root: Digest,
        /// This party's fragments with proofs.
        shards: Vec<ProvenShard>,
    },
    /// A party acknowledges verified storage of its fragments.
    Stored {
        /// The dispersal being acknowledged.
        root: Digest,
    },
    /// Retrieval: a party shares its stored fragments.
    Fragments {
        /// The dispersal being retrieved.
        root: Digest,
        /// The sharing party's fragments with proofs.
        shards: Vec<ProvenShard>,
    },
}

impl MessageSize for AvidMsg {
    fn size_bytes(&self) -> usize {
        match self {
            AvidMsg::Disperse { shards, .. } | AvidMsg::Fragments { shards, .. } => {
                33 + shards.iter().map(ProvenShard::size).sum::<usize>()
            }
            AvidMsg::Stored { .. } => 33,
        }
    }
}

/// Shared instance configuration.
#[derive(Debug, Clone)]
pub struct AvidConfig {
    weights: Weights,
    mapping: VirtualUsers,
    k: usize,
    m: usize,
}

impl AvidConfig {
    /// Nominal configuration: `m = n` fragments, one per party,
    /// `k = t + 1` with `t = floor((n - 1) / 3)`.
    pub fn nominal(n: usize) -> Self {
        let t = (n.saturating_sub(1)) / 3;
        let weights = Weights::new(vec![1; n]).expect("n > 0");
        let tickets = TicketAssignment::new(vec![1; n]);
        let mapping = VirtualUsers::from_assignment(&tickets).expect("small");
        AvidConfig { weights, mapping, k: t + 1, m: n }
    }

    /// Weighted configuration from a Weight Qualification solution with
    /// ticket-side threshold `beta_n`: `(k, m) = (ceil(beta_n * T), T)`.
    ///
    /// # Panics
    ///
    /// Panics if the ticket total is zero.
    pub fn weighted(weights: Weights, tickets: &TicketAssignment, beta_n: Ratio) -> Self {
        let mapping = VirtualUsers::from_assignment(tickets).expect("ticket total fits memory");
        let total = mapping.total();
        assert!(total > 0, "ticket assignment must allocate tickets");
        let k_num = beta_n.num() * total as u128;
        let k = usize::try_from(k_num.div_ceil(beta_n.den())).expect("fits").max(1);
        AvidConfig { weights, mapping, k, m: total }
    }

    /// Reconstruction threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fragment count `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    fn ack_quorum(&self) -> Quorum {
        // > 2 f_w = 2/3 of weight (nominal: > 2n/3 parties = 2t+1).
        Quorum::weighted(self.weights.clone(), Ratio::of(2, 3))
    }

    /// Epoch stake refresh: replaces the weight vector new ack quorums
    /// are minted from. Party sets are fixed across epochs; an event over
    /// a different count is a mis-addressed driver bug and is ignored.
    fn reweigh(&mut self, event: &EpochEvent) {
        let _ = event.refresh_weights(&mut self.weights);
    }

    fn shards_of(&self, party: usize, all: &[Shard], tree: &MerkleTree) -> Vec<ProvenShard> {
        self.mapping
            .virtuals_of(party)
            .map(|v| ProvenShard { shard: all[v].clone(), proof: tree.proof(v) })
            .collect()
    }
}

/// State common to dealer and non-dealer parties.
pub struct AvidNode {
    config: AvidConfig,
    dealer: NodeId,
    /// Blob to disperse (dealer only).
    input: Option<Vec<u8>>,
    my_shards: Vec<ProvenShard>,
    my_root: Option<Digest>,
    acked: bool,
    /// Ack quorums **keyed by root**: `Stored` votes for different
    /// dispersals must never pool. An equivocating dealer shows each half
    /// of the network an internally consistent dispersal under a
    /// different root; with a single unkeyed quorum the mixed acks would
    /// complete *both* halves and honest parties could retrieve
    /// different blobs. Per-root counting restores the quorum
    /// intersection argument: only a root acked by weight `> 2 f_w` —
    /// which contains honest weight `> f_w`, enough fragments to decode
    /// exactly one blob — ever enters retrieval.
    ack_quorums: HashMap<Digest, Quorum>,
    /// Roots whose ack quorum has completed (retrieval started).
    completed: HashSet<Digest>,
    collected: HashMap<Digest, HashMap<u32, Shard>>,
    delivered: bool,
}

impl AvidNode {
    /// A non-dealer party.
    pub fn new(config: AvidConfig, dealer: NodeId) -> Self {
        AvidNode {
            config,
            dealer,
            input: None,
            my_shards: Vec::new(),
            my_root: None,
            acked: false,
            ack_quorums: HashMap::new(),
            completed: HashSet::new(),
            collected: HashMap::new(),
            delivered: false,
        }
    }

    /// The dealer with its blob.
    pub fn dealer(config: AvidConfig, dealer: NodeId, blob: Vec<u8>) -> Self {
        let mut node = Self::new(config, dealer);
        node.input = Some(blob);
        node
    }

    fn try_deliver(&mut self, root: Digest, ctx: &mut Context<AvidMsg>) {
        if self.delivered {
            return;
        }
        let Some(shards) = self.collected.get(&root) else { return };
        if shards.len() < self.config.k {
            return;
        }
        let list: Vec<Shard> = shards.values().cloned().collect();
        let Ok(data) = decode_bytes(&list, self.config.k, self.config.m) else {
            return;
        };
        // Dealer-consistency check: re-encode and compare the Merkle root.
        // If the committed fragment vector is a codeword this recovers it
        // exactly and every honest party agrees on `data`; otherwise every
        // honest party fails this check and outputs BOT.
        let reencoded = match encode_bytes(&data, self.config.k, self.config.m) {
            Ok(s) => s,
            Err(_) => return,
        };
        let leaves: Vec<&[u8]> = reencoded.iter().map(|s| s.data.as_slice()).collect();
        let tree = MerkleTree::build(&leaves);
        self.delivered = true;
        if tree.root() == root {
            ctx.output(data);
        } else {
            // The BOT path too: totality still depends on this node's
            // fragment relay, so the halt below stays duty-gated.
            ctx.output(BOT.to_vec());
        }
        self.maybe_halt(ctx);
    }

    /// Halt-before-duty guard (same class as the ECBC seed-15 bug): a
    /// party can decode from fragments others relayed *before* it has
    /// acknowledged its own bundle or shared its own fragments — e.g. when
    /// a Byzantine peer feeds fragments to it alone. Halting at that point
    /// drops the pending `Disperse`/`Stored` deliveries, so this party's
    /// acknowledgement never counts toward anyone's quorum and its
    /// fragments are never relayed — starving slower parties below the
    /// reconstruction threshold `k`. Exit only once both dispersal-echo
    /// duties (ack, fragment relay for the acked root) are done.
    fn maybe_halt(&mut self, ctx: &mut Context<AvidMsg>) {
        let relayed = self.my_root.as_ref().is_some_and(|r| self.completed.contains(r));
        if self.delivered && self.acked && relayed {
            ctx.halt();
        }
    }
}

impl Protocol for AvidNode {
    type Msg = AvidMsg;

    fn on_start(&mut self, ctx: &mut Context<AvidMsg>) {
        if let Some(blob) = self.input.clone() {
            let shards =
                encode_bytes(&blob, self.config.k, self.config.m).expect("valid parameters");
            let leaves: Vec<&[u8]> = shards.iter().map(|s| s.data.as_slice()).collect();
            let tree = MerkleTree::build(&leaves);
            let root = tree.root();
            for party in 0..ctx.n() {
                let bundle = self.config.shards_of(party, &shards, &tree);
                ctx.send(party, AvidMsg::Disperse { root, shards: bundle });
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: AvidMsg, ctx: &mut Context<AvidMsg>) {
        match msg {
            AvidMsg::Disperse { root, shards } => {
                if from != self.dealer || self.acked {
                    return;
                }
                let expected: Vec<usize> = self.config.mapping.virtuals_of(ctx.me()).collect();
                let indices: Vec<usize> =
                    shards.iter().map(|ps| ps.shard.index as usize).collect();
                if indices != expected || !shards.iter().all(|ps| ps.verify(&root)) {
                    return; // bad dealer bundle: never acknowledge
                }
                self.my_shards = shards;
                self.my_root = Some(root);
                self.acked = true;
                ctx.broadcast(AvidMsg::Stored { root });
                if self.completed.contains(&root) {
                    // This root's ack quorum passed while our bundle was
                    // still in flight, so the retrieval broadcast went out
                    // without our fragments — relay them now.
                    ctx.broadcast(AvidMsg::Fragments { root, shards: self.my_shards.clone() });
                }
                self.maybe_halt(ctx);
            }
            AvidMsg::Stored { root } => {
                // Per-root vote: acks for different dispersals never pool
                // (see `ack_quorums`).
                if !self.ack_quorums.contains_key(&root) {
                    let fresh = self.config.ack_quorum();
                    self.ack_quorums.insert(root, fresh);
                }
                let quorum = self.ack_quorums.get_mut(&root).expect("just inserted");
                if quorum.vote(StableId::solo(from)) && !self.completed.contains(&root) {
                    self.completed.insert(root);
                    // Retrieval phase: share the fragments we stored for
                    // *this* root (none when we acked a different one).
                    let shards = if self.my_root == Some(root) {
                        self.my_shards.clone()
                    } else {
                        Vec::new()
                    };
                    ctx.broadcast(AvidMsg::Fragments { root, shards });
                    self.maybe_halt(ctx);
                }
            }
            AvidMsg::Fragments { root, shards } => {
                let entry = self.collected.entry(root).or_default();
                for ps in shards {
                    if ps.verify(&root) {
                        entry.entry(ps.shard.index).or_insert(ps.shard);
                    }
                }
                self.try_deliver(root, ctx);
            }
        }
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<AvidMsg>) {
        // Per the stable-identity contract, the dispersal itself is
        // epoch-pinned: fragment indices and ownership are fixed by the
        // minting epoch's `(k, m)` code (re-deriving them mid-flight would
        // orphan already-dealt fragments), and epoch-crossing deployments
        // start *new* dispersals under the new assignment, as the SMR
        // pipeline does when its WQ tickets move. Stake is NOT pinned:
        // the ack quorum is a weighted tally and re-derives under the
        // event's weight vector — acks are kept, their weight is current.
        // A reweigh can also COMPLETE a pending ack quorum (stake grew
        // onto recorded ackers), and parties ack exactly once — run the
        // retrieval transition here, in root order so replays stay
        // deterministic.
        self.config.reweigh(event);
        let mut newly_completed: Vec<Digest> = Vec::new();
        for (root, q) in self.ack_quorums.iter_mut() {
            q.reweigh(event);
            if q.reached() && !self.completed.contains(root) {
                newly_completed.push(*root);
            }
        }
        newly_completed.sort();
        for root in newly_completed {
            self.completed.insert(root);
            let shards =
                if self.my_root == Some(root) { self.my_shards.clone() } else { Vec::new() };
            ctx.broadcast(AvidMsg::Fragments { root, shards });
        }
        self.maybe_halt(ctx);
    }
}

/// A Byzantine dealer that corrupts one party's fragment *after* building
/// the Merkle tree over the corrupted vector — internally consistent proofs
/// over a non-codeword, the classic AVID attack.
pub struct MisencodingDealer {
    config: AvidConfig,
    blob: Vec<u8>,
}

impl MisencodingDealer {
    /// Creates the attacker.
    pub fn new(config: AvidConfig, blob: Vec<u8>) -> Self {
        MisencodingDealer { config, blob }
    }
}

impl Protocol for MisencodingDealer {
    type Msg = AvidMsg;

    fn on_start(&mut self, ctx: &mut Context<AvidMsg>) {
        let mut shards =
            encode_bytes(&self.blob, self.config.k, self.config.m).expect("valid parameters");
        // Corrupt the last fragment, then commit to the corrupted vector.
        if let Some(last) = shards.last_mut() {
            if let Some(b) = last.data.first_mut() {
                *b ^= 0xFF;
            }
        }
        let leaves: Vec<&[u8]> = shards.iter().map(|s| s.data.as_slice()).collect();
        let tree = MerkleTree::build(&leaves);
        let root = tree.root();
        for party in 0..ctx.n() {
            let bundle = self.config.shards_of(party, &shards, &tree);
            ctx.send(party, AvidMsg::Disperse { root, shards: bundle });
        }
    }

    fn on_message(&mut self, _from: NodeId, _msg: AvidMsg, _ctx: &mut Context<AvidMsg>) {}
}

/// A Byzantine party that acknowledges honestly but relays its fragments
/// to a single *target* party immediately — skipping the ack-quorum wait
/// and leaving everyone else without them. The target can then reach the
/// reconstruction threshold `k` before its own dispersal-echo duties are
/// done, which is exactly the schedule that exposes halt-before-duty bugs
/// in the retrieval phase.
pub struct TargetedFragmentSender {
    dealer: NodeId,
    target: NodeId,
}

impl TargetedFragmentSender {
    /// Creates the attacker aiming its fragments at `target`.
    pub fn new(dealer: NodeId, target: NodeId) -> Self {
        TargetedFragmentSender { dealer, target }
    }
}

impl Protocol for TargetedFragmentSender {
    type Msg = AvidMsg;

    fn on_start(&mut self, _ctx: &mut Context<AvidMsg>) {}

    fn on_message(&mut self, from: NodeId, msg: AvidMsg, ctx: &mut Context<AvidMsg>) {
        if let AvidMsg::Disperse { root, shards } = msg {
            if from != self.dealer {
                return;
            }
            ctx.broadcast(AvidMsg::Stored { root });
            ctx.send(self.target, AvidMsg::Fragments { root, shards });
        }
    }
}

#[cfg(test)]
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;
    use swiper_core::{Swiper, WeightQualification};
    use swiper_net::adversary::Silent;
    use swiper_net::{DelayModel, Simulation};

    fn run_nominal(n: usize, blob: &[u8], silent: usize, seed: u64) -> swiper_net::RunReport {
        let config = AvidConfig::nominal(n);
        let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = Vec::new();
        nodes.push(Box::new(AvidNode::dealer(config.clone(), 0, blob.to_vec())));
        for i in 1..n {
            if i > n - 1 - silent {
                nodes.push(Box::new(Silent::new()));
            } else {
                nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
            }
        }
        Simulation::new(nodes, seed).run()
    }

    #[test]
    fn nominal_honest_dealer_delivers() {
        let blob = b"erasure-coded broadcast pays off for big blobs";
        let report = run_nominal(4, blob, 0, 5);
        for (i, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Some(blob.as_ref()), "node {i}");
        }
    }

    #[test]
    fn nominal_tolerates_t_silent() {
        let blob = b"resilient";
        let report = run_nominal(7, blob, 2, 11);
        for i in 0..5 {
            assert_eq!(report.outputs[i].as_deref(), Some(blob.as_ref()), "node {i}");
        }
    }

    #[test]
    fn misencoding_dealer_yields_agreement_on_bot() {
        for seed in [1u64, 2, 3] {
            let config = AvidConfig::nominal(4);
            let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = Vec::new();
            nodes.push(Box::new(MisencodingDealer::new(config.clone(), b"evil".to_vec())));
            for _ in 1..4 {
                nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
            }
            let report = Simulation::new(nodes, seed).run();
            // All honest nodes that output agree, and none outputs a
            // non-BOT forged value other than the... decode of the
            // corrupted codeword. The consistency check forces BOT.
            for i in 1..4 {
                if let Some(out) = &report.outputs[i] {
                    assert_eq!(out.as_slice(), BOT, "node {i} seed {seed}");
                }
            }
            assert!(report.agreement_among(&[1, 2, 3]));
        }
    }

    /// Regression for the halt-before-duty bug in the retrieval phase:
    /// the victim (party 1, 2 fragments) can hit `k = 3` from the
    /// dealer's 2 fragments plus the Byzantine's targeted 1 before its
    /// own ack/relay duties are done. Pre-fix it halted there, its 2
    /// fragments were never relayed, and the spectator (party 2, zero
    /// fragments of its own) was starved below `k` forever — as was the
    /// dealer. Post-fix every honest party delivers on every schedule.
    #[test]
    fn early_decoder_still_relays_its_fragments() {
        let weights = Weights::new(vec![25, 25, 25, 25]).unwrap();
        let tickets = TicketAssignment::new(vec![2, 2, 0, 1]);
        let config = AvidConfig::weighted(weights, &tickets, Ratio::of(1, 2));
        assert_eq!(config.k(), 3);
        let blob = b"halt only after the dispersal-echo duty".to_vec();
        for seed in 0..60 {
            for delay in [DelayModel::Uniform(1, 24), DelayModel::Uniform(1, 64)] {
                let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = Vec::new();
                nodes.push(Box::new(AvidNode::dealer(config.clone(), 0, blob.clone())));
                nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
                nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
                nodes.push(Box::new(TargetedFragmentSender::new(0, 1)));
                let report = Simulation::new(nodes, seed).with_delay(delay).run();
                for i in 0..3 {
                    assert_eq!(
                        report.outputs[i].as_deref(),
                        Some(blob.as_slice()),
                        "party {i} starved at seed {seed} {delay:?}"
                    );
                }
            }
        }
    }

    /// Zoo regression (`EquivocatingDealer`): the dealer builds two
    /// internally consistent dispersals — different blobs, different
    /// Merkle roots — and shows each to half the network. The defense
    /// under test is the **per-root ack quorum**: `Stored` votes for
    /// different roots must never pool. Reverted to a single unkeyed
    /// quorum, the mixed acks complete *both* halves, each half's
    /// fragments enter retrieval, and on many schedules the lone A-half
    /// party decodes blob A while the B-half decodes blob B — a safety
    /// violation. With the defense, at most one root ever clears its
    /// quorum and every honest party that outputs agrees.
    #[test]
    fn equivocating_dealer_cannot_split_honest_outputs() {
        use swiper_net::adversary::EquivocatingDealer;
        // n = 7, t = 2, k = 3, ack quorum 5: each half of the split holds
        // k fragments of its own root, so if both halves' retrievals ever
        // start, the halves decode different blobs. Only the per-root
        // quorum prevents that: neither root can collect 5 same-root acks
        // (the A-half has at most 4 voters, the B-half at most 4 counting
        // the dealer), so with the defense no retrieval begins at all.
        for seed in 0..50u64 {
            for delay in [DelayModel::Uniform(1, 24), DelayModel::BiasAgainstLowIds(1, 40)] {
                let config = AvidConfig::nominal(7);
                assert_eq!(config.k(), 3);
                let a = AvidNode::dealer(config.clone(), 0, b"blob-A".to_vec());
                let b = AvidNode::dealer(config.clone(), 0, b"blob-B".to_vec());
                let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> =
                    vec![Box::new(EquivocatingDealer::new(a, b, 4))];
                for _ in 1..7 {
                    nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
                }
                let report = Simulation::new(nodes, seed).with_delay(delay).run();
                assert!(
                    report.agreement_among(&[1, 2, 3, 4, 5, 6]),
                    "equivocating dealer split honest outputs at seed {seed} {delay:?}: {:?}",
                    report.outputs
                );
            }
        }
    }

    /// Zoo regression (`AdaptiveDelay`): a network adversary that
    /// recognizes the victim's dispersal bundle on the wire (by its
    /// leading fragment index) and delays it until long after the ack
    /// quorum completed. The victim's 4 fragments are load-bearing
    /// (`k = 4`, everyone else holds 3 combined), so the defense under
    /// test is the **late-relay branch** of the `Disperse` handler: a
    /// party whose bundle arrives after retrieval began must still relay
    /// its fragments. Revert that branch and every party — the victim
    /// included — starves below `k` forever, on every seed.
    #[test]
    fn delayed_dispersal_still_relays_fragments_late() {
        use swiper_net::AdaptiveDelay;
        fn is_victim_bundle(m: &AvidMsg) -> bool {
            matches!(m, AvidMsg::Disperse { shards, .. }
                if shards.first().is_some_and(|ps| ps.shard.index == 1))
        }
        let weights = Weights::new(vec![30, 4, 33, 33]).unwrap();
        let tickets = TicketAssignment::new(vec![1, 4, 1, 1]);
        let config = AvidConfig::weighted(weights, &tickets, Ratio::of(1, 2));
        assert_eq!(config.k(), 4, "victim fragments must be load-bearing");
        let blob = b"the victim's fragments are load-bearing".to_vec();
        for seed in 0..25u64 {
            let adaptive =
                AdaptiveDelay::new(DelayModel::Uniform(1, 16)).rule(is_victim_bundle, 400);
            let nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = vec![
                Box::new(AvidNode::dealer(config.clone(), 0, blob.clone())),
                Box::new(AvidNode::new(config.clone(), 0)),
                Box::new(AvidNode::new(config.clone(), 0)),
                Box::new(AvidNode::new(config.clone(), 0)),
            ];
            let report = Simulation::new(nodes, seed).with_adaptive_delay(adaptive).run();
            for (i, out) in report.outputs.iter().enumerate() {
                assert_eq!(
                    out.as_deref(),
                    Some(blob.as_slice()),
                    "party {i} starved at seed {seed} despite the late relay"
                );
            }
        }
    }

    #[test]
    fn weighted_avid_end_to_end() {
        // Weights -> WQ -> tickets -> weighted AVID, per Section 5.1.
        let weights = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        let sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
        let config = AvidConfig::weighted(weights, &sol.assignment, Ratio::of(1, 4));
        let blob = b"weighted dispersal with WQ-sized fragments".to_vec();
        let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = Vec::new();
        nodes.push(Box::new(AvidNode::dealer(config.clone(), 0, blob.clone())));
        for _ in 1..5 {
            nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, 17).run();
        for (i, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Some(blob.as_slice()), "party {i}");
        }
    }

    #[test]
    fn weighted_avid_tolerates_heavy_silent_minority() {
        let weights = Weights::new(vec![40, 30, 15, 15]).unwrap();
        let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        let sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
        let config = AvidConfig::weighted(weights, &sol.assignment, Ratio::of(1, 4));
        let blob = b"survives 30% silent weight".to_vec();
        let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = Vec::new();
        nodes.push(Box::new(AvidNode::dealer(config.clone(), 0, blob.clone())));
        nodes.push(Box::new(Silent::new())); // party 1: 30% of weight
        nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
        nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
        let report = Simulation::new(nodes, 23).run();
        for i in [0usize, 2, 3] {
            assert_eq!(report.outputs[i].as_deref(), Some(blob.as_slice()), "party {i}");
        }
    }

    #[test]
    fn avid_beats_bracha_on_bytes() {
        // The whole point of IDA: per-party communication ~ |M|/k, not |M|.
        let blob = vec![0xCD; 20_000];
        let n = 7;
        let avid = run_nominal(n, &blob, 0, 3);

        let config = crate::bracha::BrachaConfig::nominal(n);
        let mut nodes: Vec<Box<dyn Protocol<Msg = crate::bracha::BrachaMsg>>> = Vec::new();
        nodes.push(Box::new(crate::bracha::BrachaNode::sender(
            config.clone(),
            0,
            blob.clone(),
        )));
        for _ in 1..n {
            nodes.push(Box::new(crate::bracha::BrachaNode::new(config.clone(), 0)));
        }
        let bracha = Simulation::new(nodes, 3).run();
        assert!(
            avid.metrics.total_bytes() * 2 < bracha.metrics.total_bytes(),
            "AVID {} vs Bracha {}",
            avid.metrics.total_bytes(),
            bracha.metrics.total_bytes()
        );
    }

    #[test]
    fn weighted_k_matches_formula() {
        let weights = Weights::new(vec![5, 5, 5]).unwrap();
        let tickets = TicketAssignment::new(vec![2, 2, 2]);
        let config = AvidConfig::weighted(weights, &tickets, Ratio::of(1, 4));
        // ceil(6/4) = 2.
        assert_eq!(config.k(), 2);
        assert_eq!(config.m(), 6);
    }
}
