//! Single Secret Leader Election under the black-box transformation
//! (paper Section 4.4) and the *chain-quality* relaxation.
//!
//! The nominal SSLE of Boneh et al. (reference \[10\]) elects one of `T`
//! participants so that only the winner learns the result until it chooses
//! to reveal. Applying weight reduction — each party registering its `t_i`
//! virtual users — preserves safety and liveness but **not fairness**: the
//! probability of winning becomes proportional to tickets, not weight.
//! The paper therefore relaxes fairness to *chain quality*: the fraction
//! of elections won by corrupt parties stays below `alpha := f_n` whenever
//! corrupt weight is below `f_w` (WR with `alpha_w = f_w`,
//! `alpha_n = f_n`).
//!
//! The DDH commitment-shuffle of \[10\] is simulated with hash commitments
//! and a beacon-seeded shuffle (see DESIGN.md): what the experiments need
//! is *who wins how often* and *that only the winner can produce an
//! opening*, both of which the simulation preserves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use swiper_core::{TicketAssignment, VirtualUsers, Weights};
use swiper_crypto::hash::{digest_parts, Digest};

/// A registered SSLE instance over `T` virtual users.
#[derive(Debug, Clone)]
pub struct SsleInstance {
    mapping: VirtualUsers,
    /// Per-virtual-user secrets (held by the owning party; the instance
    /// plays the role of the full system state in this simulation).
    secrets: Vec<u64>,
    /// Public commitments `H(v, secret_v)`.
    commitments: Vec<Digest>,
}

/// The public outcome of one election round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Election {
    /// The round number.
    pub round: u64,
    /// Position of the winning commitment after the shuffle (public).
    pub winner_slot: usize,
    /// The winning virtual user (secret until revealed; exposed here for
    /// test/measurement purposes).
    pub winner_virtual: usize,
}

/// A winner's proof of leadership: the opening of the winning commitment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaderProof {
    /// The winning virtual user.
    pub virtual_user: usize,
    /// The committed secret.
    pub secret: u64,
}

impl SsleInstance {
    /// Registers every virtual user of the ticket assignment with a fresh
    /// secret (deterministic from `seed`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment allocates no tickets.
    pub fn setup(tickets: &TicketAssignment, seed: u64) -> Self {
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        assert!(mapping.total() > 0, "SSLE needs at least one registered user");
        let mut rng = StdRng::seed_from_u64(seed);
        let secrets: Vec<u64> = (0..mapping.total()).map(|_| rng.random()).collect();
        let commitments = secrets.iter().enumerate().map(|(v, s)| commit(v, *s)).collect();
        SsleInstance { mapping, secrets, commitments }
    }

    /// Number of registered virtual users.
    pub fn registered(&self) -> usize {
        self.mapping.total()
    }

    /// Runs the election for `round` using the beacon output as shared
    /// randomness: shuffle the commitments, pick the first slot.
    pub fn elect(&self, round: u64, beacon: &Digest) -> Election {
        let total = self.registered();
        // Beacon-seeded Fisher–Yates shuffle of commitment slots.
        let seed =
            digest_parts(&[b"swiper.ssle.shuffle", beacon.as_bytes(), &round.to_le_bytes()]);
        let mut rng = StdRng::seed_from_u64(seed.to_u64());
        let mut perm: Vec<usize> = (0..total).collect();
        for i in (1..total).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        Election { round, winner_slot: 0, winner_virtual: perm[0] }
    }

    /// The owner of the winning virtual user (the elected *party*).
    pub fn winner_party(&self, e: &Election) -> usize {
        self.mapping.owner_of(e.winner_virtual)
    }

    /// Produces the leadership proof — only callable meaningfully by the
    /// winning party (other parties do not know the secret; the simulation
    /// enforces this by checking ownership).
    pub fn prove(&self, e: &Election, party: usize) -> Option<LeaderProof> {
        if self.mapping.owner_of(e.winner_virtual) != party {
            return None;
        }
        Some(LeaderProof {
            virtual_user: e.winner_virtual,
            secret: self.secrets[e.winner_virtual],
        })
    }

    /// Verifies a claimed leadership proof against the public commitments.
    pub fn verify(&self, e: &Election, proof: &LeaderProof) -> bool {
        proof.virtual_user == e.winner_virtual
            && commit(proof.virtual_user, proof.secret) == self.commitments[proof.virtual_user]
    }
}

fn commit(v: usize, secret: u64) -> Digest {
    digest_parts(&[b"swiper.ssle.commit", &(v as u64).to_le_bytes(), &secret.to_le_bytes()])
}

/// Measured election statistics over many rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElectionStats {
    /// Rounds run.
    pub rounds: u64,
    /// Wins per party.
    pub wins: Vec<u64>,
    /// Fraction of rounds won by the designated corrupt set.
    pub corrupt_fraction: f64,
    /// `max_i |win_freq_i - weight_share_i|` — the fairness deviation the
    /// paper's Section 9 discusses (weight reduction does NOT preserve
    /// fairness, only chain quality).
    pub fairness_gap: f64,
}

/// Runs `rounds` elections and measures chain quality and (un)fairness.
pub fn measure_elections(
    tickets: &TicketAssignment,
    weights: &Weights,
    corrupt: &[usize],
    rounds: u64,
    seed: u64,
) -> ElectionStats {
    let instance = SsleInstance::setup(tickets, seed);
    let mut wins = vec![0u64; tickets.len()];
    let mut corrupt_wins = 0u64;
    for round in 0..rounds {
        // Each round's beacon output is modelled as a hash of the round.
        let beacon =
            digest_parts(&[b"swiper.ssle.beacon", &seed.to_le_bytes(), &round.to_le_bytes()]);
        let e = instance.elect(round, &beacon);
        let party = instance.winner_party(&e);
        wins[party] += 1;
        if corrupt.contains(&party) {
            corrupt_wins += 1;
        }
        // The winner can prove; nobody else can.
        debug_assert!(instance.prove(&e, party).is_some());
    }
    let total_weight = weights.total() as f64;
    let fairness_gap = wins
        .iter()
        .enumerate()
        .map(|(p, &w)| {
            let freq = w as f64 / rounds as f64;
            let share = weights.get(p) as f64 / total_weight;
            (freq - share).abs()
        })
        .fold(0.0, f64::max);
    ElectionStats {
        rounds,
        wins,
        corrupt_fraction: corrupt_wins as f64 / rounds as f64,
        fairness_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiper_core::{Ratio, Swiper, WeightRestriction};

    fn tickets_for(ws: &[u64]) -> (Weights, TicketAssignment) {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        (weights, sol.assignment)
    }

    #[test]
    fn only_winner_can_prove_and_proofs_verify() {
        let (_, tickets) = tickets_for(&[50, 30, 20]);
        let instance = SsleInstance::setup(&tickets, 42);
        let beacon = digest_parts(&[b"b"]);
        let e = instance.elect(0, &beacon);
        let winner = instance.winner_party(&e);
        let proof = instance.prove(&e, winner).expect("winner proves");
        assert!(instance.verify(&e, &proof));
        for party in 0..3 {
            if party != winner {
                assert!(instance.prove(&e, party).is_none(), "party {party} must not prove");
            }
        }
        // A forged proof with the wrong secret fails.
        let forged = LeaderProof { virtual_user: e.winner_virtual, secret: 0xDEAD };
        assert!(!instance.verify(&e, &forged) || proof.secret == 0xDEAD);
    }

    #[test]
    fn elections_are_deterministic_per_beacon() {
        let (_, tickets) = tickets_for(&[50, 30, 20]);
        let instance = SsleInstance::setup(&tickets, 42);
        let beacon = digest_parts(&[b"epoch-9"]);
        assert_eq!(instance.elect(3, &beacon), instance.elect(3, &beacon));
        // Different rounds shuffle differently (with overwhelming
        // probability for this fixed instance).
        let other = instance.elect(4, &beacon);
        let same = instance.elect(3, &beacon);
        assert!(other.winner_virtual != same.winner_virtual || instance.registered() <= 2);
    }

    #[test]
    fn chain_quality_bounded_by_ticket_fraction() {
        // Corrupt party 2 holds < 1/4 of the weight; WR(1/4, 1/3)
        // guarantees it holds < 1/3 of tickets, so its win rate over many
        // rounds concentrates below ~1/3.
        let (weights, tickets) = tickets_for(&[45, 35, 20]);
        let stats = measure_elections(&tickets, &weights, &[2], 4000, 7);
        let corrupt_tickets = tickets.get(2) as f64 / tickets.total() as f64;
        assert!(corrupt_tickets < 1.0 / 3.0, "WR guarantee: {corrupt_tickets}");
        assert!(
            stats.corrupt_fraction < 1.0 / 3.0,
            "chain quality violated: {}",
            stats.corrupt_fraction
        );
    }

    #[test]
    fn win_frequency_tracks_tickets_not_weight() {
        // The fairness caveat of Section 4.4: frequencies follow the
        // *ticket* distribution. With coarse tickets the deviation from
        // weight shares is visible.
        let (weights, tickets) = tickets_for(&[50, 30, 20]);
        let stats = measure_elections(&tickets, &weights, &[], 6000, 11);
        let t_total = tickets.total() as f64;
        for p in 0..3 {
            let expected = tickets.get(p) as f64 / t_total;
            let got = stats.wins[p] as f64 / stats.rounds as f64;
            assert!(
                (got - expected).abs() < 0.05,
                "party {p}: win freq {got} vs ticket share {expected}"
            );
        }
    }

    #[test]
    fn all_rounds_have_exactly_one_winner() {
        let (weights, tickets) = tickets_for(&[10, 10, 10, 10]);
        let stats = measure_elections(&tickets, &weights, &[], 500, 3);
        assert_eq!(stats.wins.iter().sum::<u64>(), 500);
    }
}
