//! # swiper-protocols — the weighted protocol zoo
//!
//! Implementations of the distributed protocols the Swiper paper derives
//! from its weight reduction problems (Sections 4–6), in both their
//! *nominal* (one party, one vote) and *weighted* forms, running on the
//! deterministic simulator of `swiper-net`:
//!
//! | module | paper | weight reduction used |
//! |--------|-------|----------------------|
//! | [`quorum`] | §1.2 weighted voting | none (exact rational quorums) |
//! | [`bracha`] | §5.1 substrate | weighted voting |
//! | [`avid`] | §5.1 erasure-coded broadcast/storage | WQ |
//! | [`ecbc`] | §5.2 error-corrected broadcast | WQ |
//! | [`beacon`] | §4.1 randomness beacon / common coin | WR |
//! | [`aba`] | §6.2 substrate: binary agreement with coin | WR + weighted voting |
//! | [`blackbox`] | §4.4 black-box transformation | WR |
//! | [`vba`] | Def. 4.3 / §6.2 validated multi-valued agreement | WR + weighted voting |
//! | [`ssle`] | §4.4 single secret leader election, chain quality | WR |
//! | [`checkpoint`] | §6.3 consensus checkpointing | WR (blunt + tight) |
//! | [`tight`] | §4.3 vote-then-act tight threshold actions | WR |
//! | [`smr`] | §6.1 asynchronous SMR composition | WR + WQ |
//! | [`overhead`] | Table 1 | analytic overhead formulas |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aba;
pub mod avid;
pub mod beacon;
pub mod blackbox;
pub mod bracha;
pub mod checkpoint;
pub mod dkg;
pub mod ecbc;
pub mod overhead;
pub mod quorum;
pub mod smr;
pub mod ssle;
pub mod tight;
pub mod vba;
pub mod wire;
