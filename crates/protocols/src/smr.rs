//! Asynchronous state machine replication by composition
//! (paper Section 6.1).
//!
//! The paper's recipe for weighting an asynchronous SMR (HoneyBadger /
//! DAG-style): use a *weighted* communication-efficient broadcast
//! (Section 5 — here, the erasure-coded dissemination of [`crate::avid`])
//! plus *weighted* distributed randomness (Section 4.1 — the threshold
//! beacon), and convert everything else by weighted voting. The randomness
//! part runs a nominal scheme with `alpha_n = 1/2` over `WR(1/3, 1/2)`
//! tickets, "levelling the resilience of different parts of the protocol
//! without affecting the resilience of the composition" — `f_w = f_n =
//! 1/3`.
//!
//! This module is a deterministic round-driven composition harness (the
//! async machinery of the individual components is exercised in their own
//! modules): each round, alive parties contribute a batch, the beacon
//! elects a stake-weighted leader, and every party appends the leader's
//! batch. It measures the dissemination bytes of the erasure-coded path
//! against naive full replication.
//!
//! # Live-instance epoch reconfiguration
//!
//! [`SmrInstance`] is the long-running form: it pipelines disseminated
//! but not-yet-committed rounds and survives epoch reconfigurations
//! ([`SmrInstance::reconfigure`]) instead of tearing down. Across an
//! epoch boundary it carries
//!
//! * the **committed prefix** (the ledger) — always;
//! * the **beacon state** (threshold scheme, group key, per-party
//!   shares) — whenever the epoch's WR ticket assignment is unchanged;
//!   otherwise the keys are re-dealt *deterministically* from the
//!   session seed and the assignment's fingerprint, so every replica —
//!   and the teardown-rebuild baseline — derives identical keys and
//!   therefore identical leader sequences (this carry/re-deal split is
//!   the recipe `EpochEvent::rekey_seed` now carries to every consumer;
//!   `crate::aba::AbaSetup::on_epoch` applies it to coin keys);
//! * the **dissemination pipeline** — whenever the epoch's WQ ticket
//!   assignment is unchanged; otherwise the coding parameters `(k, m)`
//!   moved and the un-committed rounds re-disseminate (they are the only
//!   rounds that ever re-run).
//!
//! [`ReconfigureMode::Rebuild`] is the teardown-rebuild baseline: every
//! boundary re-keys and re-disseminates everything in flight. Both modes
//! commit bit-identical ledgers by construction; the `epochs` bench bin
//! and the nightly CI job fail on any divergence, and the live mode's
//! value shows up as strictly fewer restarted rounds.
//!
//! # Identity model
//!
//! Per the stable-identity contract (`swiper_net::Protocol`'s
//! `on_reconfigure` docs), everything this composition carries across a
//! boundary is keyed by identities that never renumber: the ledger and
//! pipeline by *round number*, batches and beacon shares by *party* —
//! party sets are fixed across epochs, and deltas of any shape (gains,
//! losses, mixed join/leave with live renumbering) are equally
//! supported. Dense virtual positions appear only inside one epoch's
//! coding/dealing (fragment indices, share indices); when the assignment
//! backing them moves, the affected state is re-derived rather than
//! translated — deterministically for the beacon, by re-dissemination
//! for the pipeline — which is exactly why no gain-only restriction
//! exists here.

use std::collections::{HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swiper_core::{Ratio, TicketAssignment, VirtualUsers, Weights};
use swiper_crypto::thresh::{KeyShare, PublicKey, ThresholdScheme};
use swiper_erasure::shards::encode_bytes;

/// Folds a ticket-assignment fingerprint into a 64-bit RNG seed.
fn fold_fingerprint(tickets: &TicketAssignment) -> u64 {
    let fp = tickets.fingerprint();
    (fp ^ (fp >> 64)) as u64
}

/// Deals the beacon's threshold keys over the WR virtual users.
fn deal_beacon<R: Rng + ?Sized>(
    wr_mapping: &VirtualUsers,
    rng: &mut R,
) -> (ThresholdScheme, PublicKey, Vec<Vec<KeyShare>>) {
    let total = wr_mapping.total();
    let scheme = ThresholdScheme::new(total / 2 + 1, total).expect("threshold <= total");
    let (pk, all) = scheme.keygen(rng);
    let shares = (0..wr_mapping.parties())
        .map(|p| wr_mapping.virtuals_of(p).map(|v| all[v]).collect())
        .collect();
    (scheme, pk, shares)
}

/// Configuration of the SMR composition.
#[derive(Debug, Clone)]
pub struct SmrConfig {
    weights: Weights,
    /// WQ tickets for dissemination (`(ceil(beta_n T), T)` coding).
    wq_tickets: TicketAssignment,
    beta_n: Ratio,
    /// WR tickets for the beacon.
    wr_mapping: VirtualUsers,
    scheme: ThresholdScheme,
    pk: PublicKey,
    shares: Vec<Vec<KeyShare>>,
}

impl SmrConfig {
    /// Builds the composition from the two weight reduction solutions.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or empty assignments.
    pub fn new<R: Rng + ?Sized>(
        weights: Weights,
        wq_tickets: TicketAssignment,
        beta_n: Ratio,
        wr_tickets: &TicketAssignment,
        rng: &mut R,
    ) -> Self {
        assert_eq!(weights.len(), wq_tickets.len(), "WQ tickets mismatch");
        assert_eq!(weights.len(), wr_tickets.len(), "WR tickets mismatch");
        let wr_mapping = VirtualUsers::from_assignment(wr_tickets).expect("fits memory");
        assert!(wr_mapping.total() > 0 && wq_tickets.total() > 0, "empty reduction");
        let (scheme, pk, shares) = deal_beacon(&wr_mapping, rng);
        SmrConfig { weights, wq_tickets, beta_n, wr_mapping, scheme, pk, shares }
    }

    /// Like [`SmrConfig::new`], but the beacon keys derive
    /// deterministically from `session_seed` and the WR assignment's
    /// fingerprint. Every replica — and every rebuild for the *same*
    /// assignment — deals identical keys, which is what lets a live
    /// instance carry its beacon state across an epoch whose WR tickets
    /// did not move while staying bit-compatible with a full rebuild.
    pub fn deterministic(
        weights: Weights,
        wq_tickets: TicketAssignment,
        beta_n: Ratio,
        wr_tickets: &TicketAssignment,
        session_seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(session_seed ^ fold_fingerprint(wr_tickets));
        SmrConfig::new(weights, wq_tickets, beta_n, wr_tickets, &mut rng)
    }

    /// The dissemination code parameters `(k, m)`.
    pub fn code_params(&self) -> (usize, usize) {
        let total = usize::try_from(self.wq_tickets.total()).expect("fits");
        let k_num = self.beta_n.num() * total as u128;
        let k = usize::try_from(k_num.div_ceil(self.beta_n.den())).expect("fits").max(1);
        (k, total)
    }

    /// Beacon output for a round, produced from the shares of the `alive`
    /// parties (they must jointly clear the threshold).
    ///
    /// Returns `None` when the alive set lacks the shares — which the WR
    /// guarantee rules out for any alive set of weight `> 2/3 W`.
    pub fn beacon(&self, round: u64, alive: &[usize]) -> Option<swiper_crypto::hash::Digest> {
        let tag = {
            let mut t = b"swiper.smr.round.".to_vec();
            t.extend_from_slice(&round.to_le_bytes());
            t
        };
        let mut partials = Vec::new();
        for &p in alive {
            for s in &self.shares[p] {
                partials.push(self.scheme.partial_sign(s, &tag));
            }
        }
        let sig = self.scheme.combine(&partials).ok()?;
        if !self.scheme.verify(&self.pk, &tag, &sig) {
            return None;
        }
        Some(sig.beacon_output())
    }

    /// Stake-weighted leader for a beacon output: the owner of the
    /// `(beacon mod T)`-th WR virtual user — election probability is
    /// proportional to tickets, i.e. approximately to stake.
    pub fn leader(&self, beacon: &swiper_crypto::hash::Digest) -> usize {
        let total = self.wr_mapping.total() as u64;
        self.wr_mapping.owner_of((beacon.to_u64() % total) as usize)
    }
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct SmrRun {
    /// Committed ledger (identical for every honest party by
    /// construction; the tests assert the invariants that make it so).
    pub ledger: Vec<(u64, usize, Vec<u8>)>,
    /// Leaders per round.
    pub leaders: Vec<usize>,
    /// Total bytes of erasure-coded dissemination.
    pub coded_bytes: u64,
    /// Bytes a full-replication broadcast of the same batches would cost.
    pub replicated_bytes: u64,
}

/// Runs `rounds` of the composition. `alive` lists the participating
/// parties (crashed parties contribute nothing); batches come from
/// `batch_of(round, party)`.
///
/// # Panics
///
/// Panics if the alive set cannot produce the beacon (alive weight must
/// exceed `2/3` of the total, the asynchronous SMR liveness condition).
pub fn run<F>(config: &SmrConfig, rounds: u64, alive: &[usize], mut batch_of: F) -> SmrRun
where
    F: FnMut(u64, usize) -> Vec<u8>,
{
    let n = config.weights.len();
    let (k, m) = config.code_params();
    let mut ledger = Vec::new();
    let mut leaders = Vec::new();
    let mut coded_bytes = 0u64;
    let mut replicated_bytes = 0u64;
    for round in 0..rounds {
        // 1. Alive parties disseminate their batches (erasure-coded).
        let mut batches: Vec<Option<Vec<u8>>> = vec![None; n];
        for &p in alive {
            let batch = batch_of(round, p);
            let shards = encode_bytes(&batch, k, m).expect("valid code");
            // Dispersal sends each fragment to its owner once; retrieval
            // has every party relay its fragments to all n parties. Total
            // per batch: shard_bytes * (1 + n).
            let shard_bytes: usize = shards.iter().map(|s| s.len()).sum();
            coded_bytes += shard_bytes as u64 * (1 + n as u64);
            replicated_bytes += (batch.len() * n * n) as u64;
            batches[p] = Some(batch);
        }
        // 2. Beacon -> leader.
        let beacon = config.beacon(round, alive).expect("alive weight > 2/3 required");
        let leader = config.leader(&beacon);
        leaders.push(leader);
        // 3. Commit the leader's batch (skip rounds led by crashed parties
        //    — their batch never disseminated).
        if let Some(batch) = &batches[leader] {
            ledger.push((round, leader, batch.clone()));
        }
    }
    SmrRun { ledger, leaders, coded_bytes, replicated_bytes }
}

/// How an [`SmrInstance`] crosses an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigureMode {
    /// Splice: carry the committed prefix, the beacon state (when the WR
    /// tickets are unchanged) and the dissemination pipeline (when the WQ
    /// tickets are unchanged) across the boundary.
    Live,
    /// Teardown-rebuild baseline: re-key the beacon and re-disseminate
    /// every un-committed round, whatever the deltas say.
    Rebuild,
}

/// What one [`SmrInstance::reconfigure`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochCrossing {
    /// Un-committed rounds that survived in the pipeline.
    pub survived: u64,
    /// Un-committed rounds torn down and re-disseminated.
    pub restarted: u64,
    /// Whether the beacon keys were re-dealt.
    pub rekeyed: bool,
}

/// One disseminated, not-yet-committed round.
#[derive(Debug, Clone)]
struct PreparedRound {
    round: u64,
    batches: Vec<Option<Vec<u8>>>,
}

/// A long-running SMR composition that survives epoch reconfigurations:
/// rounds are *prepared* (batches disseminated, erasure-coded under the
/// epoch's WQ tickets) into a pipeline and *committed* (beacon → leader →
/// ledger) in order. See the module docs for what crosses an epoch
/// boundary in [`ReconfigureMode::Live`] versus
/// [`ReconfigureMode::Rebuild`].
pub struct SmrInstance {
    config: SmrConfig,
    wr_tickets: TicketAssignment,
    session_seed: u64,
    pipeline: VecDeque<PreparedRound>,
    next_round: u64,
    ledger: Vec<(u64, usize, Vec<u8>)>,
    coded_bytes: u64,
    restarted_rounds: u64,
    survived_rounds: u64,
    rekeys: u64,
}

impl SmrInstance {
    /// Creates the instance at epoch 0. Beacon keys are dealt
    /// deterministically from `session_seed` and the WR assignment (see
    /// [`SmrConfig::deterministic`]).
    pub fn new(
        weights: Weights,
        wq_tickets: TicketAssignment,
        beta_n: Ratio,
        wr_tickets: TicketAssignment,
        session_seed: u64,
    ) -> Self {
        let config =
            SmrConfig::deterministic(weights, wq_tickets, beta_n, &wr_tickets, session_seed);
        SmrInstance {
            config,
            wr_tickets,
            session_seed,
            pipeline: VecDeque::new(),
            next_round: 0,
            ledger: Vec::new(),
            coded_bytes: 0,
            restarted_rounds: 0,
            survived_rounds: 0,
            rekeys: 0,
        }
    }

    /// The committed ledger so far.
    pub fn ledger(&self) -> &[(u64, usize, Vec<u8>)] {
        &self.ledger
    }

    /// Disseminated-but-uncommitted rounds currently in flight.
    pub fn pipeline_len(&self) -> usize {
        self.pipeline.len()
    }

    /// Un-committed rounds re-disseminated across all epoch crossings.
    pub fn restarted_rounds(&self) -> u64 {
        self.restarted_rounds
    }

    /// Un-committed rounds that crossed an epoch without re-running.
    pub fn survived_rounds(&self) -> u64 {
        self.survived_rounds
    }

    /// Beacon key deals beyond the initial one.
    pub fn rekeys(&self) -> u64 {
        self.rekeys
    }

    /// Total erasure-coded dissemination bytes, re-dissemination included.
    pub fn coded_bytes(&self) -> u64 {
        self.coded_bytes
    }

    /// Erasure-codes one round's batches and charges the wire cost.
    fn disseminate(&mut self, batches: &[Option<Vec<u8>>]) {
        let n = self.config.weights.len();
        let (k, m) = self.config.code_params();
        for batch in batches.iter().flatten() {
            let shards = encode_bytes(batch, k, m).expect("valid code");
            let shard_bytes: usize = shards.iter().map(|s| s.len()).sum();
            self.coded_bytes += shard_bytes as u64 * (1 + n as u64);
        }
    }

    /// Prepares the next round: `alive` parties contribute
    /// `batch_of(round, party)` and the batches disseminate under the
    /// current epoch's coding parameters.
    pub fn prepare<F>(&mut self, alive: &[usize], mut batch_of: F)
    where
        F: FnMut(u64, usize) -> Vec<u8>,
    {
        let n = self.config.weights.len();
        let round = self.next_round;
        self.next_round += 1;
        let mut batches: Vec<Option<Vec<u8>>> = vec![None; n];
        for &p in alive {
            batches[p] = Some(batch_of(round, p));
        }
        self.disseminate(&batches);
        self.pipeline.push_back(PreparedRound { round, batches });
    }

    /// Commits the oldest prepared round: beacon → leader → ledger (a
    /// round led by a crashed party commits nothing). Returns whether a
    /// block was appended; `None` when the pipeline is empty.
    ///
    /// # Panics
    ///
    /// Panics if the alive set cannot produce the beacon (alive weight
    /// must exceed `2/3` of the total — the liveness condition).
    pub fn commit(&mut self, alive: &[usize]) -> Option<bool> {
        let prepared = self.pipeline.pop_front()?;
        let beacon =
            self.config.beacon(prepared.round, alive).expect("alive weight > 2/3 required");
        let leader = self.config.leader(&beacon);
        if let Some(batch) = &prepared.batches[leader] {
            self.ledger.push((prepared.round, leader, batch.clone()));
            Some(true)
        } else {
            Some(false)
        }
    }

    /// Crosses an epoch boundary into the new weight/ticket assignments.
    /// In [`ReconfigureMode::Live`] only the state the deltas actually
    /// invalidate is rebuilt; in [`ReconfigureMode::Rebuild`] everything
    /// in flight is. The committed prefix always survives.
    pub fn reconfigure(
        &mut self,
        weights: Weights,
        wq_tickets: TicketAssignment,
        wr_tickets: TicketAssignment,
        mode: ReconfigureMode,
    ) -> EpochCrossing {
        assert_eq!(weights.len(), wq_tickets.len(), "WQ tickets mismatch");
        assert_eq!(weights.len(), wr_tickets.len(), "WR tickets mismatch");
        let wq_changed = wq_tickets.as_slice() != self.config.wq_tickets.as_slice();
        let wr_changed = wr_tickets.as_slice() != self.wr_tickets.as_slice();
        self.config.weights = weights;
        // Beacon: re-deal only when the WR assignment moved (or the
        // baseline insists). Deterministic dealing keeps a re-deal for an
        // unchanged assignment bit-identical to the carried state, which
        // is exactly why Live and Rebuild commit the same ledgers.
        let rekeyed = wr_changed || mode == ReconfigureMode::Rebuild;
        if rekeyed {
            let mapping = VirtualUsers::from_assignment(&wr_tickets).expect("fits memory");
            assert!(mapping.total() > 0, "empty WR reduction");
            let mut rng =
                StdRng::seed_from_u64(self.session_seed ^ fold_fingerprint(&wr_tickets));
            let (scheme, pk, shares) = deal_beacon(&mapping, &mut rng);
            self.config.wr_mapping = mapping;
            self.config.scheme = scheme;
            self.config.pk = pk;
            self.config.shares = shares;
            self.rekeys += 1;
        }
        self.wr_tickets = wr_tickets;
        // Pipeline: un-committed rounds re-disseminate only when the WQ
        // assignment (and with it the code parameters) moved.
        let in_flight = self.pipeline.len() as u64;
        let restart = wq_changed || mode == ReconfigureMode::Rebuild;
        self.config.wq_tickets = wq_tickets;
        if restart {
            self.restarted_rounds += in_flight;
            // Re-charge the wire cost of every in-flight round under the
            // new code parameters; taking the pipeline out and back
            // avoids cloning the batches just to satisfy the borrows.
            let rounds = std::mem::take(&mut self.pipeline);
            for prepared in &rounds {
                self.disseminate(&prepared.batches);
            }
            self.pipeline = rounds;
        } else {
            self.survived_rounds += in_flight;
        }
        EpochCrossing {
            survived: if restart { 0 } else { in_flight },
            restarted: if restart { in_flight } else { 0 },
            rekeyed,
        }
    }
}

/// Wire messages of the [`SmrNode`] message-passing automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmrMsg {
    /// The round leader's batch.
    Propose(u64, Vec<u8>),
    /// Witness of the leader's batch digest.
    Echo(u64, swiper_crypto::hash::Digest),
    /// Commit vote for the batch digest.
    Ready(u64, swiper_crypto::hash::Digest),
}

impl swiper_net::MessageSize for SmrMsg {
    fn size_bytes(&self) -> usize {
        match self {
            SmrMsg::Propose(_, batch) => 8 + batch.len(),
            SmrMsg::Echo(..) | SmrMsg::Ready(..) => 8 + 32,
        }
    }
}

/// Per-round voting state of one [`SmrNode`].
#[derive(Default)]
struct SmrRound {
    /// Digest of the leader's verified batch, once the propose arrived.
    accepted: Option<swiper_crypto::hash::Digest>,
    /// Distinct echo senders per digest. `BTreeMap`, not `HashMap`: when
    /// an equivocating leader lets two digests clear a threshold in the
    /// same callback, the winner must not depend on hash iteration order
    /// (fresh replay nodes have fresh hasher seeds — the twin contract
    /// forbids it).
    echoes: std::collections::BTreeMap<swiper_crypto::hash::Digest, HashSet<usize>>,
    /// Distinct ready senders per digest (ordered for the same reason).
    readies: std::collections::BTreeMap<swiper_crypto::hash::Digest, HashSet<usize>>,
    sent_echo: bool,
    sent_ready: bool,
    /// Digest with a full ready quorum, pending in-order commit.
    committable: Option<swiper_crypto::hash::Digest>,
}

/// A message-passing SMR replica: the [`Protocol`](swiper_net::Protocol)
/// automaton form of the composition, runnable on *both* execution
/// backends (the deterministic simulator and the threaded runtime — see
/// `docs/ARCHITECTURE.md`).
///
/// Each round is a Bracha-shaped commit: the round's stake-weighted
/// leader (elected from a digest chain seeded by `session_seed`, election
/// probability proportional to weight) proposes a deterministic batch,
/// replicas echo its digest after verifying it, send `Ready` on an
/// `n - f` echo quorum (amplifying on `f + 1` readies), and commit on an
/// `n - f` ready quorum. Rounds commit strictly in order; committing
/// round `r` triggers the leader of `r + 1`, so the commit rate is the
/// pipeline's end-to-end latency — what the `runtime_scale` bench
/// measures as commits/sec. After the last round every replica outputs
/// `committed_rounds (8 bytes LE) || ledger_digest` and goes quiet.
///
/// All internal tallies are keyed lookups, counts, or ordered-map scans —
/// nothing consults hash iteration order to decide *what to send* — so
/// the automaton is a deterministic function of its callback sequence,
/// which the twin-replay contract requires.
pub struct SmrNode {
    me: usize,
    n: usize,
    weights: Weights,
    session_seed: u64,
    rounds: u64,
    batch_bytes: usize,
    /// Highest round not yet committed (rounds commit in order).
    next_commit: u64,
    ledger_digest: swiper_crypto::hash::Digest,
    state: std::collections::BTreeMap<u64, SmrRound>,
    done: bool,
}

impl SmrNode {
    /// A replica for `me` of an `n`-party, `rounds`-round chain with
    /// `batch_bytes` batches.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != n` or `rounds == 0`.
    pub fn new(
        me: usize,
        weights: Weights,
        session_seed: u64,
        rounds: u64,
        batch_bytes: usize,
    ) -> Self {
        let n = weights.len();
        assert!(me < n, "replica id out of range");
        assert!(rounds > 0, "need at least one round");
        SmrNode {
            me,
            n,
            weights,
            session_seed,
            rounds,
            batch_bytes,
            next_commit: 0,
            ledger_digest: swiper_crypto::hash::digest(b"swiper.smr.genesis"),
            state: std::collections::BTreeMap::new(),
            done: false,
        }
    }

    /// Tolerated faults: `floor((n - 1) / 3)`.
    fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Quorum size `n - f`.
    fn quorum(&self) -> usize {
        self.n - self.f()
    }

    /// The round's election digest: a chain seeded by `session_seed`, the
    /// same at every replica.
    fn round_digest(&self, round: u64) -> swiper_crypto::hash::Digest {
        swiper_crypto::hash::digest_parts(&[
            b"swiper.smr.node.round",
            &self.session_seed.to_le_bytes(),
            &round.to_le_bytes(),
        ])
    }

    /// Stake-weighted leader of `round`: sample the election digest
    /// against the cumulative weight distribution.
    pub fn leader_of(&self, round: u64) -> usize {
        let total = self.weights.total();
        let point = self.round_digest(round).to_u64() as u128 % total;
        let mut acc = 0u128;
        for (p, w) in self.weights.as_slice().iter().enumerate() {
            acc += u128::from(*w);
            if point < acc {
                return p;
            }
        }
        self.n - 1
    }

    /// The deterministic batch the round's leader proposes: an expansion
    /// of the election digest, so any replica can verify it byte for
    /// byte.
    fn batch_of(&self, round: u64) -> Vec<u8> {
        let seed = self.round_digest(round);
        let mut batch = Vec::with_capacity(self.batch_bytes);
        let mut counter = 0u64;
        while batch.len() < self.batch_bytes {
            let block = swiper_crypto::hash::digest_parts(&[
                b"swiper.smr.batch",
                seed.as_bytes(),
                &counter.to_le_bytes(),
            ]);
            let take = (self.batch_bytes - batch.len()).min(32);
            batch.extend_from_slice(&block.as_bytes()[..take]);
            counter += 1;
        }
        batch
    }

    /// Rounds committed so far.
    pub fn committed(&self) -> u64 {
        self.next_commit
    }

    fn propose(&mut self, round: u64, ctx: &mut swiper_net::Context<SmrMsg>) {
        if round < self.rounds && self.leader_of(round) == self.me {
            ctx.broadcast(SmrMsg::Propose(round, self.batch_of(round)));
        }
    }

    /// Re-examines `round` after new state: emit echo/ready when a
    /// threshold cleared, then commit every in-order committable round.
    fn advance(&mut self, round: u64, ctx: &mut swiper_net::Context<SmrMsg>) {
        let quorum = self.quorum();
        let amplify = self.f() + 1;
        let entry = self.state.entry(round).or_default();
        if !entry.sent_echo {
            if let Some(d) = entry.accepted {
                entry.sent_echo = true;
                ctx.broadcast(SmrMsg::Echo(round, d));
            }
        }
        if !entry.sent_ready {
            // An echo quorum, or a Byzantine-safe f+1 ready amplification,
            // commits this replica to the digest.
            let ready_for = entry
                .echoes
                .iter()
                .find(|(_, s)| s.len() >= quorum)
                .or_else(|| entry.readies.iter().find(|(_, s)| s.len() >= amplify))
                .map(|(d, _)| *d);
            if let Some(d) = ready_for {
                entry.sent_ready = true;
                ctx.broadcast(SmrMsg::Ready(round, d));
            }
        }
        if entry.committable.is_none() {
            if let Some((d, _)) = entry.readies.iter().find(|(_, s)| s.len() >= quorum) {
                entry.committable = Some(*d);
            }
        }
        // Commit strictly in order; each commit folds the batch digest
        // into the ledger digest and unleashes the next round's leader.
        while self.next_commit < self.rounds {
            let r = self.next_commit;
            let Some(d) = self.state.get(&r).and_then(|s| s.committable) else { break };
            self.ledger_digest = swiper_crypto::hash::digest_parts(&[
                b"swiper.smr.ledger",
                self.ledger_digest.as_bytes(),
                d.as_bytes(),
            ]);
            self.next_commit += 1;
            self.state.remove(&r);
            self.propose(self.next_commit, ctx);
        }
        if self.next_commit == self.rounds && !self.done {
            self.done = true;
            let mut out = self.next_commit.to_le_bytes().to_vec();
            out.extend_from_slice(self.ledger_digest.as_bytes());
            ctx.output(out);
        }
    }
}

impl swiper_net::Protocol for SmrNode {
    type Msg = SmrMsg;

    fn on_start(&mut self, ctx: &mut swiper_net::Context<SmrMsg>) {
        self.propose(0, ctx);
    }

    fn on_message(&mut self, from: usize, msg: SmrMsg, ctx: &mut swiper_net::Context<SmrMsg>) {
        match msg {
            SmrMsg::Propose(round, batch) => {
                if round >= self.rounds
                    || round < self.next_commit
                    || from != self.leader_of(round)
                    || batch != self.batch_of(round)
                {
                    return;
                }
                let d = swiper_crypto::hash::digest(&batch);
                self.state.entry(round).or_default().accepted = Some(d);
                self.advance(round, ctx);
            }
            SmrMsg::Echo(round, d) => {
                if round >= self.rounds || round < self.next_commit {
                    return;
                }
                self.state.entry(round).or_default().echoes.entry(d).or_default().insert(from);
                self.advance(round, ctx);
            }
            SmrMsg::Ready(round, d) => {
                if round >= self.rounds || round < self.next_commit {
                    return;
                }
                self.state.entry(round).or_default().readies.entry(d).or_default().insert(from);
                self.advance(round, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Swiper, WeightQualification, WeightRestriction};

    fn config(ws: &[u64]) -> SmrConfig {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let wq_sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
        let wr_sol = Swiper::new().solve_restriction(&weights, &wr).unwrap();
        SmrConfig::new(
            weights,
            wq_sol.assignment,
            Ratio::of(1, 4),
            &wr_sol.assignment,
            &mut StdRng::seed_from_u64(3),
        )
    }

    fn smr_nodes(
        ws: &[u64],
        seed: u64,
        rounds: u64,
    ) -> Vec<Box<dyn swiper_net::Protocol<Msg = SmrMsg>>> {
        let weights = Weights::new(ws.to_vec()).unwrap();
        (0..ws.len())
            .map(|me| {
                Box::new(SmrNode::new(me, weights.clone(), seed, rounds, 64))
                    as Box<dyn swiper_net::Protocol<Msg = SmrMsg>>
            })
            .collect()
    }

    #[test]
    fn smr_node_chain_commits_on_the_simulator() {
        let report = swiper_net::Simulation::new(smr_nodes(&[40, 30, 20, 10], 11, 5), 77)
            .with_delay(swiper_net::DelayModel::Uniform(1, 9))
            .run();
        let outs = report.outputs_of(&[0, 1, 2, 3]);
        assert!(report.unanimity_among(&[0, 1, 2, 3]), "replicas disagree: {outs:?}");
        let out = report.outputs[0].as_ref().expect("committed");
        assert_eq!(u64::from_le_bytes(out[..8].try_into().unwrap()), 5);
        assert_eq!(out.len(), 8 + 32);
    }

    #[test]
    fn smr_node_runs_identically_on_both_backends() {
        // The same automaton drives on the threaded runtime, and its trace
        // replays on the simulator substrate bit-identically.
        let weights = Weights::new(vec![40, 30, 20, 10]).unwrap();
        let nodes: swiper_net::SendNodes<SmrMsg> = (0..4)
            .map(|me| {
                Box::new(SmrNode::new(me, weights.clone(), 11, 4, 64))
                    as Box<dyn swiper_net::Protocol<Msg = SmrMsg> + Send>
            })
            .collect();
        let full = swiper_net::ThreadedRuntime::new(nodes).with_workers(2).run_traced();
        assert!(full.report.unanimity_among(&[0, 1, 2, 3]));
        let twin = full.trace.replay(smr_nodes(&[40, 30, 20, 10], 11, 4)).expect("twin");
        assert_eq!(twin.outputs, full.report.outputs);
        assert_eq!(twin.metrics, full.report.metrics);
    }

    #[test]
    fn smr_node_leaders_are_stake_weighted() {
        let weights = Weights::new(vec![60, 20, 10, 10]).unwrap();
        let node = SmrNode::new(0, weights, 3, 1, 16);
        let whale = (0..400).filter(|&r| node.leader_of(r) == 0).count();
        assert!(whale > 160, "whale led only {whale}/400 rounds");
    }

    #[test]
    fn node_automata_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SmrNode>();
        assert_send::<crate::bracha::BrachaNode>();
        assert_send::<crate::aba::AbaNode>();
        assert_send::<crate::quorum::Roster>();
    }

    #[test]
    fn all_alive_rounds_commit() {
        let cfg = config(&[40, 30, 20, 10]);
        let alive = [0usize, 1, 2, 3];
        let run = run(&cfg, 20, &alive, |r, p| format!("batch-{r}-{p}").into_bytes());
        assert_eq!(run.ledger.len(), 20, "every round commits when all are alive");
        assert_eq!(run.leaders.len(), 20);
    }

    #[test]
    fn crashed_minority_does_not_block() {
        let cfg = config(&[40, 30, 20, 10]);
        // Party 3 (10% < 1/3) crashed: liveness preserved, rounds led by 3
        // are skipped.
        let alive = [0usize, 1, 2];
        let run = run(&cfg, 30, &alive, |r, p| format!("b{r}{p}").into_bytes());
        let skipped = run.leaders.iter().filter(|&&l| l == 3).count();
        assert_eq!(run.ledger.len(), 30 - skipped);
        for (_, leader, _) in &run.ledger {
            assert!(alive.contains(leader));
        }
    }

    #[test]
    fn determinism_across_replicas() {
        // Two replicas computing the same run agree block-for-block — the
        // agreement property of the composition.
        let cfg = config(&[40, 30, 20, 10]);
        let alive = [0usize, 1, 2, 3];
        let a = run(&cfg, 15, &alive, |r, p| vec![r as u8, p as u8]);
        let b = run(&cfg, 15, &alive, |r, p| vec![r as u8, p as u8]);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.leaders, b.leaders);
    }

    #[test]
    fn leaders_are_stake_weighted() {
        let cfg = config(&[60, 20, 10, 10]);
        let alive = [0usize, 1, 2, 3];
        let run = run(&cfg, 400, &alive, |_, _| vec![0]);
        let whale_rounds = run.leaders.iter().filter(|&&l| l == 0).count();
        // The whale holds ~60% of tickets; allow generous slack.
        assert!(whale_rounds > 400 * 2 / 5, "whale led only {whale_rounds}/400 rounds");
    }

    #[test]
    fn coded_dissemination_beats_replication() {
        let cfg = config(&[40, 30, 20, 10]);
        let alive = [0usize, 1, 2, 3];
        let big = vec![0xEE; 4000];
        let run = run(&cfg, 5, &alive, move |_, _| big.clone());
        assert!(
            run.coded_bytes < run.replicated_bytes,
            "coded {} vs replicated {}",
            run.coded_bytes,
            run.replicated_bytes
        );
    }

    #[test]
    #[should_panic(expected = "alive weight > 2/3 required")]
    fn insufficient_alive_weight_panics() {
        let cfg = config(&[40, 30, 20, 10]);
        // Only 30% alive: the beacon cannot be produced.
        let _ = run(&cfg, 1, &[1usize], |_, _| vec![]);
    }

    fn solutions(ws: &[u64]) -> (Weights, TicketAssignment, TicketAssignment) {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let wq_sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
        let wr_sol = Swiper::new().solve_restriction(&weights, &wr).unwrap();
        (weights, wq_sol.assignment, wr_sol.assignment)
    }

    #[test]
    fn live_instance_without_epochs_matches_run() {
        let (weights, wq, wr) = solutions(&[40, 30, 20, 10]);
        let cfg =
            SmrConfig::deterministic(weights.clone(), wq.clone(), Ratio::of(1, 4), &wr, 9);
        let alive = [0usize, 1, 2, 3];
        let batch = |r: u64, p: usize| format!("b{r}-{p}").into_bytes();
        let baseline = run(&cfg, 12, &alive, batch);
        let mut inst = SmrInstance::new(weights, wq, Ratio::of(1, 4), wr, 9);
        for _ in 0..12 {
            inst.prepare(&alive, batch);
        }
        while inst.commit(&alive).is_some() {}
        assert_eq!(inst.ledger(), &baseline.ledger[..]);
        assert_eq!(inst.coded_bytes(), baseline.coded_bytes);
    }

    /// The live-reconfiguration contract in miniature: across an epoch
    /// whose deltas are empty the pipeline and beacon state survive;
    /// across one that moves the WQ tickets the in-flight rounds re-run;
    /// and in every case the committed ledger is bit-identical to the
    /// teardown-rebuild baseline — the live instance only ever does
    /// *less* work, never different work.
    #[test]
    fn live_reconfigure_matches_rebuild_with_fewer_restarts() {
        let (weights, wq, wr) = solutions(&[40, 30, 20, 10]);
        let alive = [0usize, 1, 2, 3];
        let batch = |r: u64, p: usize| format!("epoch-batch-{r}-{p}").into_bytes();
        let mut live =
            SmrInstance::new(weights.clone(), wq.clone(), Ratio::of(1, 4), wr.clone(), 5);
        let mut base =
            SmrInstance::new(weights.clone(), wq.clone(), Ratio::of(1, 4), wr.clone(), 5);
        // Epoch 0: pipeline two rounds ahead, commit one.
        for inst in [&mut live, &mut base] {
            inst.prepare(&alive, batch);
            inst.prepare(&alive, batch);
            inst.prepare(&alive, batch);
            inst.commit(&alive);
        }
        // Epoch 1: nothing moved — live splices, baseline rebuilds.
        let c1_live =
            live.reconfigure(weights.clone(), wq.clone(), wr.clone(), ReconfigureMode::Live);
        let c1_base =
            base.reconfigure(weights.clone(), wq.clone(), wr.clone(), ReconfigureMode::Rebuild);
        assert_eq!(c1_live, EpochCrossing { survived: 2, restarted: 0, rekeyed: false });
        assert_eq!(c1_base, EpochCrossing { survived: 0, restarted: 2, rekeyed: true });
        for inst in [&mut live, &mut base] {
            inst.prepare(&alive, batch);
            inst.commit(&alive);
        }
        // Epoch 2: the WQ assignment moves — both re-disseminate.
        let mut wq2 = wq.as_slice().to_vec();
        wq2[3] += 1;
        let wq2 = TicketAssignment::new(wq2);
        let c2_live =
            live.reconfigure(weights.clone(), wq2.clone(), wr.clone(), ReconfigureMode::Live);
        assert_eq!(c2_live, EpochCrossing { survived: 0, restarted: 2, rekeyed: false });
        let _ = base.reconfigure(
            weights.clone(),
            wq2.clone(),
            wr.clone(),
            ReconfigureMode::Rebuild,
        );
        for inst in [&mut live, &mut base] {
            inst.prepare(&alive, batch);
            while inst.commit(&alive).is_some() {}
        }
        assert_eq!(live.ledger(), base.ledger(), "live must commit the baseline's log");
        assert_eq!(live.ledger().len(), 5, "five rounds commit with everyone alive");
        assert!(
            live.restarted_rounds() < base.restarted_rounds(),
            "live restarted {} vs baseline {}",
            live.restarted_rounds(),
            base.restarted_rounds()
        );
        assert!(live.survived_rounds() > 0);
        assert!(live.rekeys() < base.rekeys());
        assert!(live.coded_bytes() < base.coded_bytes());
    }
}
