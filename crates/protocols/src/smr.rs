//! Asynchronous state machine replication by composition
//! (paper Section 6.1).
//!
//! The paper's recipe for weighting an asynchronous SMR (HoneyBadger /
//! DAG-style): use a *weighted* communication-efficient broadcast
//! (Section 5 — here, the erasure-coded dissemination of [`crate::avid`])
//! plus *weighted* distributed randomness (Section 4.1 — the threshold
//! beacon), and convert everything else by weighted voting. The randomness
//! part runs a nominal scheme with `alpha_n = 1/2` over `WR(1/3, 1/2)`
//! tickets, "levelling the resilience of different parts of the protocol
//! without affecting the resilience of the composition" — `f_w = f_n =
//! 1/3`.
//!
//! This module is a deterministic round-driven composition harness (the
//! async machinery of the individual components is exercised in their own
//! modules): each round, alive parties contribute a batch, the beacon
//! elects a stake-weighted leader, and every party appends the leader's
//! batch. It measures the dissemination bytes of the erasure-coded path
//! against naive full replication.

use rand::Rng;
use swiper_core::{Ratio, TicketAssignment, VirtualUsers, Weights};
use swiper_crypto::thresh::{KeyShare, PublicKey, ThresholdScheme};
use swiper_erasure::shards::encode_bytes;

/// Configuration of the SMR composition.
#[derive(Debug, Clone)]
pub struct SmrConfig {
    weights: Weights,
    /// WQ tickets for dissemination (`(ceil(beta_n T), T)` coding).
    wq_tickets: TicketAssignment,
    beta_n: Ratio,
    /// WR tickets for the beacon.
    wr_mapping: VirtualUsers,
    scheme: ThresholdScheme,
    pk: PublicKey,
    shares: Vec<Vec<KeyShare>>,
}

impl SmrConfig {
    /// Builds the composition from the two weight reduction solutions.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or empty assignments.
    pub fn new<R: Rng + ?Sized>(
        weights: Weights,
        wq_tickets: TicketAssignment,
        beta_n: Ratio,
        wr_tickets: &TicketAssignment,
        rng: &mut R,
    ) -> Self {
        assert_eq!(weights.len(), wq_tickets.len(), "WQ tickets mismatch");
        assert_eq!(weights.len(), wr_tickets.len(), "WR tickets mismatch");
        let wr_mapping = VirtualUsers::from_assignment(wr_tickets).expect("fits memory");
        let total = wr_mapping.total();
        assert!(total > 0 && wq_tickets.total() > 0, "empty reduction");
        let scheme = ThresholdScheme::new(total / 2 + 1, total).expect("threshold <= total");
        let (pk, all) = scheme.keygen(rng);
        let shares = (0..wr_mapping.parties())
            .map(|p| wr_mapping.virtuals_of(p).map(|v| all[v]).collect())
            .collect();
        SmrConfig { weights, wq_tickets, beta_n, wr_mapping, scheme, pk, shares }
    }

    /// The dissemination code parameters `(k, m)`.
    pub fn code_params(&self) -> (usize, usize) {
        let total = usize::try_from(self.wq_tickets.total()).expect("fits");
        let k_num = self.beta_n.num() * total as u128;
        let k = usize::try_from(k_num.div_ceil(self.beta_n.den())).expect("fits").max(1);
        (k, total)
    }

    /// Beacon output for a round, produced from the shares of the `alive`
    /// parties (they must jointly clear the threshold).
    ///
    /// Returns `None` when the alive set lacks the shares — which the WR
    /// guarantee rules out for any alive set of weight `> 2/3 W`.
    pub fn beacon(&self, round: u64, alive: &[usize]) -> Option<swiper_crypto::hash::Digest> {
        let tag = {
            let mut t = b"swiper.smr.round.".to_vec();
            t.extend_from_slice(&round.to_le_bytes());
            t
        };
        let mut partials = Vec::new();
        for &p in alive {
            for s in &self.shares[p] {
                partials.push(self.scheme.partial_sign(s, &tag));
            }
        }
        let sig = self.scheme.combine(&partials).ok()?;
        if !self.scheme.verify(&self.pk, &tag, &sig) {
            return None;
        }
        Some(sig.beacon_output())
    }

    /// Stake-weighted leader for a beacon output: the owner of the
    /// `(beacon mod T)`-th WR virtual user — election probability is
    /// proportional to tickets, i.e. approximately to stake.
    pub fn leader(&self, beacon: &swiper_crypto::hash::Digest) -> usize {
        let total = self.wr_mapping.total() as u64;
        self.wr_mapping.owner_of((beacon.to_u64() % total) as usize)
    }
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct SmrRun {
    /// Committed ledger (identical for every honest party by
    /// construction; the tests assert the invariants that make it so).
    pub ledger: Vec<(u64, usize, Vec<u8>)>,
    /// Leaders per round.
    pub leaders: Vec<usize>,
    /// Total bytes of erasure-coded dissemination.
    pub coded_bytes: u64,
    /// Bytes a full-replication broadcast of the same batches would cost.
    pub replicated_bytes: u64,
}

/// Runs `rounds` of the composition. `alive` lists the participating
/// parties (crashed parties contribute nothing); batches come from
/// `batch_of(round, party)`.
///
/// # Panics
///
/// Panics if the alive set cannot produce the beacon (alive weight must
/// exceed `2/3` of the total, the asynchronous SMR liveness condition).
pub fn run<F>(config: &SmrConfig, rounds: u64, alive: &[usize], mut batch_of: F) -> SmrRun
where
    F: FnMut(u64, usize) -> Vec<u8>,
{
    let n = config.weights.len();
    let (k, m) = config.code_params();
    let mut ledger = Vec::new();
    let mut leaders = Vec::new();
    let mut coded_bytes = 0u64;
    let mut replicated_bytes = 0u64;
    for round in 0..rounds {
        // 1. Alive parties disseminate their batches (erasure-coded).
        let mut batches: Vec<Option<Vec<u8>>> = vec![None; n];
        for &p in alive {
            let batch = batch_of(round, p);
            let shards = encode_bytes(&batch, k, m).expect("valid code");
            // Dispersal sends each fragment to its owner once; retrieval
            // has every party relay its fragments to all n parties. Total
            // per batch: shard_bytes * (1 + n).
            let shard_bytes: usize = shards.iter().map(|s| s.len()).sum();
            coded_bytes += shard_bytes as u64 * (1 + n as u64);
            replicated_bytes += (batch.len() * n * n) as u64;
            batches[p] = Some(batch);
        }
        // 2. Beacon -> leader.
        let beacon = config.beacon(round, alive).expect("alive weight > 2/3 required");
        let leader = config.leader(&beacon);
        leaders.push(leader);
        // 3. Commit the leader's batch (skip rounds led by crashed parties
        //    — their batch never disseminated).
        if let Some(batch) = &batches[leader] {
            ledger.push((round, leader, batch.clone()));
        }
    }
    SmrRun { ledger, leaders, coded_bytes, replicated_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Swiper, WeightQualification, WeightRestriction};

    fn config(ws: &[u64]) -> SmrConfig {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let wq_sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
        let wr_sol = Swiper::new().solve_restriction(&weights, &wr).unwrap();
        SmrConfig::new(
            weights,
            wq_sol.assignment,
            Ratio::of(1, 4),
            &wr_sol.assignment,
            &mut StdRng::seed_from_u64(3),
        )
    }

    #[test]
    fn all_alive_rounds_commit() {
        let cfg = config(&[40, 30, 20, 10]);
        let alive = [0usize, 1, 2, 3];
        let run = run(&cfg, 20, &alive, |r, p| format!("batch-{r}-{p}").into_bytes());
        assert_eq!(run.ledger.len(), 20, "every round commits when all are alive");
        assert_eq!(run.leaders.len(), 20);
    }

    #[test]
    fn crashed_minority_does_not_block() {
        let cfg = config(&[40, 30, 20, 10]);
        // Party 3 (10% < 1/3) crashed: liveness preserved, rounds led by 3
        // are skipped.
        let alive = [0usize, 1, 2];
        let run = run(&cfg, 30, &alive, |r, p| format!("b{r}{p}").into_bytes());
        let skipped = run.leaders.iter().filter(|&&l| l == 3).count();
        assert_eq!(run.ledger.len(), 30 - skipped);
        for (_, leader, _) in &run.ledger {
            assert!(alive.contains(leader));
        }
    }

    #[test]
    fn determinism_across_replicas() {
        // Two replicas computing the same run agree block-for-block — the
        // agreement property of the composition.
        let cfg = config(&[40, 30, 20, 10]);
        let alive = [0usize, 1, 2, 3];
        let a = run(&cfg, 15, &alive, |r, p| vec![r as u8, p as u8]);
        let b = run(&cfg, 15, &alive, |r, p| vec![r as u8, p as u8]);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.leaders, b.leaders);
    }

    #[test]
    fn leaders_are_stake_weighted() {
        let cfg = config(&[60, 20, 10, 10]);
        let alive = [0usize, 1, 2, 3];
        let run = run(&cfg, 400, &alive, |_, _| vec![0]);
        let whale_rounds = run.leaders.iter().filter(|&&l| l == 0).count();
        // The whale holds ~60% of tickets; allow generous slack.
        assert!(whale_rounds > 400 * 2 / 5, "whale led only {whale_rounds}/400 rounds");
    }

    #[test]
    fn coded_dissemination_beats_replication() {
        let cfg = config(&[40, 30, 20, 10]);
        let alive = [0usize, 1, 2, 3];
        let big = vec![0xEE; 4000];
        let run = run(&cfg, 5, &alive, move |_, _| big.clone());
        assert!(
            run.coded_bytes < run.replicated_bytes,
            "coded {} vs replicated {}",
            run.coded_bytes,
            run.replicated_bytes
        );
    }

    #[test]
    #[should_panic(expected = "alive weight > 2/3 required")]
    fn insufficient_alive_weight_panics() {
        let cfg = config(&[40, 30, 20, 10]);
        // Only 30% alive: the beacon cannot be produced.
        let _ = run(&cfg, 1, &[1usize], |_, _| vec![]);
    }
}
