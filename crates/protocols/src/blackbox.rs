//! The black-box transformation (paper Section 4.4).
//!
//! Given **any** nominal protocol `P` designed for `T` participants with
//! resilience `f_n`, and a Weight Restriction solution with
//! `alpha_w := f_w`, `alpha_n := f_n` (`f_w = f_n - epsilon`), the weighted
//! protocol `P'` simply runs `P` over `T` *virtual users*, party `i`
//! controlling `t_i` of them:
//!
//! * messages between virtual users of the same party short-circuit
//!   in-process; cross-party messages are wrapped and routed to the owner;
//! * party `i` outputs the value output by its first virtual identity;
//! * parties with `t_i = 0` cannot run virtual users — they wait for
//!   parties of total weight `> f_w * W` *vouching* for the same output
//!   (at least one voucher is honest, so the adopted output is correct).
//!
//! Because corrupt weight `< f_w * W` maps to `< f_n * T` virtual users,
//! `P`'s guarantees carry over verbatim. The transformation needs no
//! knowledge of `P`'s internals — the wrapper below is generic over any
//! [`swiper_net::Protocol`] implementation.

use std::collections::{HashMap, VecDeque};

use swiper_core::{Ratio, TicketAssignment, VirtualUsers, Weights};
use swiper_net::{Context, Effects, MessageSize, NodeId, Protocol};

use crate::quorum::{QuorumTracker, WeightQuorum};

/// Wrapper messages of the transformed protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlackBoxMsg<M> {
    /// A nominal-protocol message between two virtual users.
    Inner {
        /// Sending virtual user.
        from_virtual: u32,
        /// Receiving virtual user.
        to_virtual: u32,
        /// The wrapped nominal message.
        msg: M,
    },
    /// Output voucher for zero-ticket parties.
    Vouch {
        /// The vouched output.
        output: Vec<u8>,
    },
}

impl<M: MessageSize> MessageSize for BlackBoxMsg<M> {
    fn size_bytes(&self) -> usize {
        match self {
            BlackBoxMsg::Inner { msg, .. } => 8 + msg.size_bytes(),
            BlackBoxMsg::Vouch { output } => output.len(),
        }
    }
}

/// Shared transformation parameters.
#[derive(Debug, Clone)]
pub struct BlackBoxConfig {
    weights: Weights,
    mapping: VirtualUsers,
    f_w: Ratio,
}

impl BlackBoxConfig {
    /// Builds the configuration from the weighted system and its WR ticket
    /// assignment (`alpha_w = f_w`, `alpha_n = f_n`).
    ///
    /// # Panics
    ///
    /// Panics on weight/ticket length mismatch or an empty assignment.
    pub fn new(weights: Weights, tickets: &TicketAssignment, f_w: Ratio) -> Self {
        assert_eq!(weights.len(), tickets.len(), "weights/tickets mismatch");
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        assert!(mapping.total() > 0, "at least one virtual user required");
        BlackBoxConfig { weights, mapping, f_w }
    }

    /// Number of virtual users `T`.
    pub fn virtual_count(&self) -> usize {
        self.mapping.total()
    }

    /// The virtual-user mapping.
    pub fn mapping(&self) -> &VirtualUsers {
        &self.mapping
    }
}

/// The transformed node: party `i` running its `t_i` virtual users of `P`.
pub struct BlackBox<P: Protocol> {
    config: BlackBoxConfig,
    party: usize,
    /// My virtual users: `(virtual id, automaton, halted)`.
    virtuals: Vec<(usize, P, bool)>,
    vouch_quorums: HashMap<Vec<u8>, WeightQuorum>,
    output_done: bool,
    started: bool,
}

impl<P: Protocol> BlackBox<P> {
    /// Creates party `party`'s wrapper; `factory(v)` builds the automaton
    /// for virtual user `v` (it will see `n = T` and `me = v`).
    pub fn new<F>(config: BlackBoxConfig, party: usize, mut factory: F) -> Self
    where
        F: FnMut(usize) -> P,
    {
        let virtuals =
            config.mapping.virtuals_of(party).map(|v| (v, factory(v), false)).collect();
        BlackBox {
            config,
            party,
            virtuals,
            vouch_quorums: HashMap::new(),
            output_done: false,
            started: false,
        }
    }

    /// Routes one batch of inner effects, draining same-party deliveries
    /// in-process until quiescent.
    fn route(
        &mut self,
        initial: Vec<(usize, Effects<P::Msg>)>,
        ctx: &mut Context<BlackBoxMsg<P::Msg>>,
    ) {
        // Queue of (from_virtual, to_virtual, msg) for local delivery.
        let mut local: VecDeque<(usize, usize, P::Msg)> = VecDeque::new();
        let mut pending: Vec<(usize, Effects<P::Msg>)> = initial;
        loop {
            for (from_v, effects) in pending.drain(..) {
                self.apply_effects(from_v, effects, &mut local, ctx);
            }
            let Some((from_v, to_v, msg)) = local.pop_front() else { break };
            let total = self.config.virtual_count();
            if let Some(slot) =
                self.virtuals.iter_mut().find(|(v, _, halted)| *v == to_v && !halted)
            {
                let mut inner_ctx = Context::detached(to_v, total, ctx.now());
                slot.1.on_message(from_v, msg, &mut inner_ctx);
                pending.push((to_v, inner_ctx.into_effects()));
            }
        }
    }

    fn apply_effects(
        &mut self,
        from_v: usize,
        effects: Effects<P::Msg>,
        local: &mut VecDeque<(usize, usize, P::Msg)>,
        ctx: &mut Context<BlackBoxMsg<P::Msg>>,
    ) {
        let Effects { outbox, timers, output, halted } = effects;
        for (to_v, msg) in outbox {
            let owner = self.config.mapping.owner_of(to_v);
            if owner == self.party {
                local.push_back((from_v, to_v, msg));
            } else {
                ctx.send(
                    owner,
                    BlackBoxMsg::Inner {
                        from_virtual: from_v as u32,
                        to_virtual: to_v as u32,
                        msg,
                    },
                );
            }
        }
        for (delay, id) in timers {
            // Encode the virtual id in the high bits of the timer id.
            assert!(id < 1 << 32, "inner timer ids must fit 32 bits");
            ctx.set_timer(delay, ((from_v as u64) << 32) | id);
        }
        if let Some(out) = output {
            // "Party i outputs the value output by its first virtual
            // identity" — we take the first *producing* virtual user and
            // vouch it towards zero-ticket parties.
            if !self.output_done {
                self.output_done = true;
                ctx.output(out.clone());
                ctx.broadcast(BlackBoxMsg::Vouch { output: out });
            }
        }
        if halted {
            if let Some(slot) = self.virtuals.iter_mut().find(|(v, _, _)| *v == from_v) {
                slot.2 = true;
            }
        }
    }
}

impl<P: Protocol> Protocol for BlackBox<P> {
    type Msg = BlackBoxMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        self.started = true;
        let total = self.config.virtual_count();
        let mut pending = Vec::new();
        // Collect virtual ids first to satisfy the borrow checker, then
        // start each automaton.
        let ids: Vec<usize> = self.virtuals.iter().map(|(v, _, _)| *v).collect();
        for v in ids {
            let mut inner_ctx = Context::detached(v, total, ctx.now());
            if let Some(slot) = self.virtuals.iter_mut().find(|(id, _, _)| *id == v) {
                slot.1.on_start(&mut inner_ctx);
            }
            pending.push((v, inner_ctx.into_effects()));
        }
        self.route(pending, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        match msg {
            BlackBoxMsg::Inner { from_virtual, to_virtual, msg } => {
                let (from_v, to_v) = (from_virtual as usize, to_virtual as usize);
                if from_v >= self.config.virtual_count() || to_v >= self.config.virtual_count()
                {
                    return;
                }
                // Anti-spoofing: the wire sender must own the claimed
                // virtual sender; we must own the recipient.
                if self.config.mapping.owner_of(from_v) != from
                    || self.config.mapping.owner_of(to_v) != self.party
                {
                    return;
                }
                let total = self.config.virtual_count();
                let mut pending = Vec::new();
                if let Some(slot) =
                    self.virtuals.iter_mut().find(|(v, _, halted)| *v == to_v && !halted)
                {
                    let mut inner_ctx = Context::detached(to_v, total, ctx.now());
                    slot.1.on_message(from_v, msg, &mut inner_ctx);
                    pending.push((to_v, inner_ctx.into_effects()));
                }
                self.route(pending, ctx);
            }
            BlackBoxMsg::Vouch { output } => {
                let weights = self.config.weights.clone();
                let f_w = self.config.f_w;
                let q = self
                    .vouch_quorums
                    .entry(output.clone())
                    .or_insert_with(|| WeightQuorum::new(weights, f_w));
                if q.vote(from) && !self.output_done {
                    // Weight > f_w vouching the same output: at least one
                    // voucher is honest.
                    self.output_done = true;
                    ctx.output(output);
                }
            }
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<Self::Msg>) {
        let v = (id >> 32) as usize;
        let inner_id = id & 0xFFFF_FFFF;
        let total = self.config.virtual_count();
        let mut pending = Vec::new();
        if let Some(slot) =
            self.virtuals.iter_mut().find(|(vid, _, halted)| *vid == v && !halted)
        {
            let mut inner_ctx = Context::detached(v, total, ctx.now());
            slot.1.on_timer(inner_id, &mut inner_ctx);
            pending.push((v, inner_ctx.into_effects()));
        }
        self.route(pending, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aba::{AbaMsg, AbaNode, AbaSetup};
    use crate::bracha::{BrachaConfig, BrachaMsg, BrachaNode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Swiper, WeightRestriction};
    use swiper_net::Simulation;

    /// WR(f_w = 1/4, f_n = 1/3): the epsilon-loss transformation setup.
    fn config(ws: &[u64]) -> (BlackBoxConfig, TicketAssignment) {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        (BlackBoxConfig::new(weights, &sol.assignment, Ratio::of(1, 4)), sol.assignment)
    }

    #[test]
    fn blackbox_bracha_broadcast_reaches_all_parties() {
        // Nominal Bracha over T virtual users, wrapped for 5 weighted
        // parties. Virtual user 0 is the designated sender.
        let (config, tickets) = config(&[50, 20, 15, 10, 5]);
        let total = config.virtual_count();
        let payload = b"black-box broadcast".to_vec();
        let bracha_cfg = BrachaConfig::nominal(total);
        let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..5)
            .map(|party| {
                let bc = bracha_cfg.clone();
                let payload = payload.clone();
                Box::new(BlackBox::new(config.clone(), party, move |v| {
                    if v == 0 {
                        BrachaNode::sender(bc.clone(), 0, payload.clone())
                    } else {
                        BrachaNode::new(bc.clone(), 0)
                    }
                })) as _
            })
            .collect();
        let report = Simulation::new(nodes, 3).run();
        let _ = tickets;
        for (i, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Some(payload.as_slice()), "party {i}");
        }
    }

    #[test]
    fn blackbox_aba_agreement_and_validity() {
        // Nominal (equal-ticket) ABA wrapped into the weighted model.
        let (config, _tickets) = config(&[40, 30, 20, 10]);
        let total = config.virtual_count();
        let setup = AbaSetup::nominal(total, 77, &mut StdRng::seed_from_u64(77));
        // All parties input `true` -> must decide true (validity).
        let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<AbaMsg>>>> = (0..4)
            .map(|party| {
                let s = setup.clone();
                Box::new(BlackBox::new(config.clone(), party, move |_v| {
                    AbaNode::new(s.clone(), true)
                })) as _
            })
            .collect();
        let report = Simulation::new(nodes, 7).run();
        for (i, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Some(&[1u8][..]), "party {i}");
        }
    }

    #[test]
    fn blackbox_aba_mixed_inputs_agree() {
        let (config, _) = config(&[40, 30, 20, 10]);
        let total = config.virtual_count();
        for seed in [5u64, 6] {
            let setup = AbaSetup::nominal(total, seed, &mut StdRng::seed_from_u64(seed));
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<AbaMsg>>>> = (0..4)
                .map(|party| {
                    let s = setup.clone();
                    let input = party % 2 == 0;
                    Box::new(BlackBox::new(config.clone(), party, move |_v| {
                        AbaNode::new(s.clone(), input)
                    })) as _
                })
                .collect();
            let report = Simulation::new(nodes, seed).run();
            assert!(report.agreement_among(&[0, 1, 2, 3]), "seed {seed}");
            for i in 0..4 {
                assert!(report.outputs[i].is_some(), "party {i} seed {seed}");
            }
        }
    }

    #[test]
    fn zero_ticket_parties_learn_via_vouchers() {
        // Engineer a distribution where a dust party gets zero tickets.
        let weights = Weights::new(vec![500, 300, 198, 1, 1]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let zero_parties: Vec<usize> = (0..5).filter(|&p| sol.assignment.get(p) == 0).collect();
        assert!(
            !zero_parties.is_empty(),
            "need a zero-ticket party: {:?}",
            sol.assignment.as_slice()
        );
        let config = BlackBoxConfig::new(weights, &sol.assignment, Ratio::of(1, 4));
        let total = config.virtual_count();
        let payload = b"vouched".to_vec();
        let bracha_cfg = BrachaConfig::nominal(total);
        let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..5)
            .map(|party| {
                let bc = bracha_cfg.clone();
                let payload = payload.clone();
                Box::new(BlackBox::new(config.clone(), party, move |v| {
                    if v == 0 {
                        BrachaNode::sender(bc.clone(), 0, payload.clone())
                    } else {
                        BrachaNode::new(bc.clone(), 0)
                    }
                })) as _
            })
            .collect();
        let report = Simulation::new(nodes, 11).run();
        for &p in &zero_parties {
            assert_eq!(
                report.outputs[p].as_deref(),
                Some(payload.as_slice()),
                "zero-ticket party {p} must learn the output"
            );
        }
    }

    #[test]
    fn spoofed_virtual_senders_are_dropped() {
        // Party 1 claims to speak for virtual users it does not own; the
        // wrapper must ignore those messages entirely.
        struct Spoofer {
            config: BlackBoxConfig,
        }
        impl Protocol for Spoofer {
            type Msg = BlackBoxMsg<BrachaMsg>;
            fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
                // Claim to be virtual user 0 (owned by party 0).
                let owner0 = self.config.mapping().owner_of(0);
                assert_ne!(owner0, 1);
                for to_v in 0..self.config.virtual_count() {
                    let owner = self.config.mapping().owner_of(to_v);
                    ctx.send(
                        owner,
                        BlackBoxMsg::Inner {
                            from_virtual: 0,
                            to_virtual: to_v as u32,
                            msg: BrachaMsg::Initial(b"forged".to_vec()),
                        },
                    );
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: Self::Msg, _c: &mut Context<Self::Msg>) {}
        }
        let (config, _) = config(&[50, 20, 15, 10, 5]);
        let total = config.virtual_count();
        let bracha_cfg = BrachaConfig::nominal(total);
        let mut nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = Vec::new();
        for party in 0..5 {
            if party == 1 {
                nodes.push(Box::new(Spoofer { config: config.clone() }));
            } else {
                let bc = bracha_cfg.clone();
                nodes.push(Box::new(BlackBox::new(config.clone(), party, move |_v| {
                    // No sender at all: nothing should ever be delivered.
                    BrachaNode::new(bc.clone(), 0)
                })));
            }
        }
        let report = Simulation::new(nodes, 13).run();
        for (i, out) in report.outputs.iter().enumerate() {
            assert!(out.is_none(), "party {i} must not deliver a forged broadcast");
        }
    }
}
