//! The black-box transformation (paper Section 4.4).
//!
//! Given **any** nominal protocol `P` designed for `T` participants with
//! resilience `f_n`, and a Weight Restriction solution with
//! `alpha_w := f_w`, `alpha_n := f_n` (`f_w = f_n - epsilon`), the weighted
//! protocol `P'` simply runs `P` over `T` *virtual users*, party `i`
//! controlling `t_i` of them:
//!
//! * messages between virtual users of the same party short-circuit
//!   in-process; cross-party messages are wrapped and routed to the owner;
//! * party `i` outputs the value output by its first virtual identity;
//! * parties with `t_i = 0` cannot run virtual users — they wait for
//!   parties of total weight `> f_w * W` *vouching* for the same output
//!   (at least one voucher is honest, so the adopted output is correct).
//!
//! Because corrupt weight `< f_w * W` maps to `< f_n * T` virtual users,
//! `P`'s guarantees carry over verbatim. The transformation needs no
//! knowledge of `P`'s internals — the wrapper below is generic over any
//! [`swiper_net::Protocol`] implementation.
//!
//! # The stable identity model
//!
//! Dense virtual ids are a **per-epoch artifact**: a [`TicketDelta`](swiper_core::TicketDelta) that
//! touches party `i` renumbers every virtual user after `i`'s range. The
//! wire therefore never carries dense ids. Inner messages name their
//! endpoints by [`StableId`] — `(party, offset)` — the coordinate that
//! survives every reshuffle a surviving user can live through, and each
//! replica resolves stable ids to its *current* dense numbering exactly
//! once, at delivery, through a shared [`Roster`]:
//!
//! * **spoofing** is checked on the face of the id — the wire sender must
//!   *be* the claimed identity's party — with no historical state;
//! * a stable id that does not resolve (`offset` at or beyond the party's
//!   current ticket count) belongs to a **retired** user — whether the
//!   message was minted an epoch or ten epochs ago — and is dropped;
//! * pending **timers** record the stable id of their setter and die with
//!   it on retirement.
//!
//! This replaces the per-epoch translation tables of the dense-id design:
//! there is no mapping history to retain (the documented unbounded-memory
//! leak of delta-only reconfiguration is gone — translation state is one
//! mapping plus the pending-timer table, independent of how many epochs
//! the instance has crossed), and one logical voter can never be counted
//! under both its pre- and post-epoch ids, because no component ever sees
//! two ids for it.
//!
//! # Live-instance epoch reconfiguration
//!
//! [`Protocol::on_reconfigure`] splices a delta into the live instance:
//!
//! * the shared [`Roster`] is updated in place
//!   ([`swiper_core::VirtualUsers::apply_delta`]) — the wrapper *and*
//!   every hosted automaton holding a roster clone see the new epoch
//!   atomically;
//! * **surviving** sub-instances (offsets below the owner's new ticket
//!   count) keep their state — no re-keying is even needed, their
//!   identity is the key;
//! * **retired** sub-instances are dropped along with their pending
//!   timers;
//! * surviving automata then receive the `EpochEvent` themselves, so
//!   epoch-aware nominal protocols (e.g.
//!   [`crate::bracha::BrachaConfig::epochal`]) migrate their quorum
//!   trackers — shedding retired voters' weight and re-deriving
//!   thresholds from the new total — and protocols holding epoch-pinned
//!   keys (e.g. [`crate::aba::AbaSetup::with_roster`]) apply their
//!   carry/re-deal rule from the event's rekey seed;
//! * **added** sub-instances are spawned mid-flight via the stored
//!   factory; they begin at `on_start` and may rely on the vouching path
//!   to learn an output that was decided before they joined.
//!
//! What a nominal protocol `P` may assume across the boundary: its own
//! accumulated state survives, messages keep flowing, and any identity it
//! keyed by `(party, offset)` still means the same logical peer. What it
//! may **not** assume: that the total `T` or any *dense* index is stable.
//! Protocols that bake dense indices into cryptographic material (dealt
//! shares, fragment positions) survive exactly the deltas that keep those
//! positions meaningful; the epoch-crossing seed sweeps exercise both the
//! friendly and the hostile case.
//!
//! # Cross-epoch stake refresh
//!
//! Reconfiguration arrives as an [`EpochEvent`] — the delta *plus the new
//! per-party weight vector* — so the wrapper is weight-bearing end to
//! end: the **vouch quorum tallies with current-epoch stake**. At every
//! boundary the stored weight vector is replaced by the event's and each
//! accumulated vouch tally is re-derived under it
//! ([`crate::quorum::WeightQuorum::reweigh`]): votes are kept, per-party
//! weights and the threshold base re-derive, so a whale whose stake
//! collapsed mid-vouch stops propping up an almost-complete quorum (the
//! pending tally is *revoked*) and stale stake can never push a forged
//! output across a current-epoch threshold. Outputs already adopted are
//! irreversible — the guarantee is that no quorum *crosses* a threshold
//! except under the stake of the epoch it crosses in. The former
//! limitation of the ticket-only contract — "the vouch quorum keeps
//! weighing votes with the construction-time weight vector; rebuild the
//! wrapper to refresh it" — is gone: a long-lived wrapped instance is
//! correct and live under both renumbering *and* stake drift, which the
//! mixed-churn sweeps assert with weights actually refreshed each epoch.

use std::collections::{HashMap, VecDeque};

use swiper_core::{EpochEvent, Ratio, StableId, TicketAssignment, VirtualUsers, Weights};
use swiper_net::{Context, Effects, MessageSize, NodeId, Protocol};

use crate::quorum::{QuorumTracker, Roster, WeightQuorum};

/// The virtual-user factory a [`BlackBox`] retains for mid-flight spawns:
/// `factory(v, roster)` builds the automaton for dense id `v` under the
/// spawn-time numbering, with the wrapper's live identity directory.
pub type VirtualFactory<P> = Box<dyn FnMut(usize, &Roster) -> P>;

/// Wrapper messages of the transformed protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlackBoxMsg<M> {
    /// A nominal-protocol message between two virtual users, named by
    /// their epoch-stable identities.
    Inner {
        /// Sending virtual user.
        from: StableId,
        /// Receiving virtual user.
        to: StableId,
        /// The wrapped nominal message.
        msg: M,
    },
    /// Output voucher for zero-ticket parties.
    Vouch {
        /// The vouched output.
        output: Vec<u8>,
    },
}

impl<M: MessageSize> MessageSize for BlackBoxMsg<M> {
    fn size_bytes(&self) -> usize {
        match self {
            BlackBoxMsg::Inner { msg, .. } => 16 + msg.size_bytes(),
            BlackBoxMsg::Vouch { output } => output.len(),
        }
    }
}

/// Shared transformation parameters.
#[derive(Debug, Clone)]
pub struct BlackBoxConfig {
    weights: Weights,
    mapping: VirtualUsers,
    f_w: Ratio,
}

impl BlackBoxConfig {
    /// Builds the configuration from the weighted system and its WR ticket
    /// assignment (`alpha_w = f_w`, `alpha_n = f_n`).
    ///
    /// # Panics
    ///
    /// Panics on weight/ticket length mismatch or an empty assignment.
    pub fn new(weights: Weights, tickets: &TicketAssignment, f_w: Ratio) -> Self {
        assert_eq!(weights.len(), tickets.len(), "weights/tickets mismatch");
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        assert!(mapping.total() > 0, "at least one virtual user required");
        BlackBoxConfig { weights, mapping, f_w }
    }

    /// Number of virtual users `T` (construction epoch).
    pub fn virtual_count(&self) -> usize {
        self.mapping.total()
    }

    /// The virtual-user mapping (construction epoch; live instances track
    /// the current epoch through their [`BlackBox::roster`]).
    pub fn mapping(&self) -> &VirtualUsers {
        &self.mapping
    }
}

/// The transformed node: party `i` running its `t_i` virtual users of `P`.
pub struct BlackBox<P: Protocol> {
    weights: Weights,
    f_w: Ratio,
    party: usize,
    /// This replica's identity directory: the current epoch's mapping,
    /// shared with every hosted automaton built through the factory.
    roster: Roster,
    /// Epochs crossed so far (telemetry only — nothing on the wire or in
    /// the translation path depends on it).
    epoch: u64,
    /// Factory for spawning virtual users, kept for mid-flight joins.
    factory: VirtualFactory<P>,
    /// My virtual users: `(stable identity, automaton, halted)`.
    virtuals: Vec<(StableId, P, bool)>,
    /// Pending timers: nonce -> (setter's stable id, inner timer id).
    timer_map: HashMap<u64, (StableId, u64)>,
    timer_nonce: u64,
    vouch_quorums: HashMap<Vec<u8>, WeightQuorum>,
    output_done: bool,
    started: bool,
}

impl<P: Protocol> BlackBox<P> {
    /// Creates party `party`'s wrapper; `factory(v, roster)` builds the
    /// automaton for virtual user `v` (it will see `n = T` and `me = v`
    /// under the numbering current at spawn time). The roster is this
    /// replica's live identity directory — epoch-aware nominal protocols
    /// capture a clone of it so their quorum trackers resolve and migrate
    /// identities in lockstep with the wrapper. The factory is retained:
    /// epoch reconfigurations use it to spawn virtual users added
    /// mid-flight.
    pub fn new<F>(config: BlackBoxConfig, party: usize, mut factory: F) -> Self
    where
        F: FnMut(usize, &Roster) -> P + 'static,
    {
        let BlackBoxConfig { weights, mapping, f_w } = config;
        let roster = Roster::new(mapping.clone());
        let virtuals = mapping
            .virtuals_of(party)
            .map(|v| (mapping.stable_of(v), factory(v, &roster), false))
            .collect();
        BlackBox {
            weights,
            f_w,
            party,
            roster,
            epoch: 0,
            factory: Box::new(factory),
            virtuals,
            timer_map: HashMap::new(),
            timer_nonce: 0,
            vouch_quorums: HashMap::new(),
            output_done: false,
            started: false,
        }
    }

    /// Epochs crossed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The live identity directory (current epoch's mapping).
    pub fn roster(&self) -> &Roster {
        &self.roster
    }

    /// Size of the cross-epoch translation state: the pending-timer table
    /// plus the hosted automata roster. The stable-identity design keeps
    /// exactly **one** mapping however many epochs the instance crosses —
    /// this is the bounded-memory claim the long-replay regression pins
    /// (the dense-id design retained one full mapping per crossed epoch).
    pub fn translation_footprint(&self) -> usize {
        self.timer_map.len() + self.virtuals.len() + 1
    }

    /// Routes one batch of inner effects, draining same-party deliveries
    /// in-process until quiescent. Local queue entries carry the current
    /// dense ids of both ends (delivery is always same-epoch in-process).
    fn route(
        &mut self,
        initial: Vec<(StableId, Effects<P::Msg>)>,
        ctx: &mut Context<BlackBoxMsg<P::Msg>>,
    ) {
        let mut local: VecDeque<(usize, StableId, P::Msg)> = VecDeque::new();
        let mut pending: Vec<(StableId, Effects<P::Msg>)> = initial;
        loop {
            for (from, effects) in pending.drain(..) {
                self.apply_effects(from, effects, &mut local, ctx);
            }
            let Some((from_dense, to, msg)) = local.pop_front() else { break };
            let total = self.roster.total();
            if let Some(slot) =
                self.virtuals.iter_mut().find(|(id, _, halted)| *id == to && !halted)
            {
                let Some(to_dense) = self.roster.dense_of(to) else { continue };
                let mut inner_ctx = Context::detached(to_dense, total, ctx.now());
                slot.1.on_message(from_dense, msg, &mut inner_ctx);
                pending.push((to, inner_ctx.into_effects()));
            }
        }
    }

    fn apply_effects(
        &mut self,
        from: StableId,
        effects: Effects<P::Msg>,
        local: &mut VecDeque<(usize, StableId, P::Msg)>,
        ctx: &mut Context<BlackBoxMsg<P::Msg>>,
    ) {
        let Effects { outbox, timers, output, halted } = effects;
        let Some(from_dense) = self.roster.dense_of(from) else {
            // A user can emit effects and retire within one boundary
            // batch; its late effects die with it.
            return;
        };
        for (to_v, msg) in outbox {
            // A surviving automaton may still address a dense peer id that
            // only existed before a shrinking delta (its `n` was baked at
            // spawn); such sends are dropped, mirroring the receive-side
            // resolution, never indexed out of bounds.
            if to_v >= self.roster.total() {
                continue;
            }
            let to = self.roster.stable_of(to_v);
            if to.party_ix() == self.party {
                local.push_back((from_dense, to, msg));
            } else {
                ctx.send(to.party_ix(), BlackBoxMsg::Inner { from, to, msg });
            }
        }
        for (delay, id) in timers {
            // Timers survive renumbering for free: the nonce map records
            // the setter's stable identity, and the firing path resolves
            // it (or drops it with the retired user).
            let nonce = self.timer_nonce;
            self.timer_nonce += 1;
            self.timer_map.insert(nonce, (from, id));
            ctx.set_timer(delay, nonce);
        }
        if let Some(out) = output {
            // "Party i outputs the value output by its first virtual
            // identity" — we take the first *producing* virtual user and
            // vouch it towards zero-ticket parties.
            if !self.output_done {
                self.output_done = true;
                ctx.output(out.clone());
                ctx.broadcast(BlackBoxMsg::Vouch { output: out });
            }
        }
        if halted {
            if let Some(slot) = self.virtuals.iter_mut().find(|(id, _, _)| *id == from) {
                slot.2 = true;
            }
        }
    }
}

impl<P: Protocol> Protocol for BlackBox<P> {
    type Msg = BlackBoxMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        self.started = true;
        let total = self.roster.total();
        let mut pending = Vec::new();
        // Collect identities first to satisfy the borrow checker, then
        // start each automaton.
        let ids: Vec<StableId> = self.virtuals.iter().map(|(id, _, _)| *id).collect();
        for id in ids {
            let Some(dense) = self.roster.dense_of(id) else { continue };
            let mut inner_ctx = Context::detached(dense, total, ctx.now());
            if let Some(slot) = self.virtuals.iter_mut().find(|(vid, _, _)| *vid == id) {
                slot.1.on_start(&mut inner_ctx);
            }
            pending.push((id, inner_ctx.into_effects()));
        }
        self.route(pending, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        match msg {
            BlackBoxMsg::Inner { from: from_id, to, msg } => {
                // Anti-spoofing on the face of the identity: the wire
                // sender must *be* the claimed sender's party, and we must
                // be the recipient's. No history needed — party ids never
                // renumber.
                if from_id.party_ix() != from || to.party_ix() != self.party {
                    return;
                }
                // Resolve both ends against the current epoch; an end
                // that does not resolve is retired (or never existed) and
                // drops the message, however old or new its minting epoch.
                let (Some(cur_from), Some(to_dense)) =
                    (self.roster.dense_of(from_id), self.roster.dense_of(to))
                else {
                    return;
                };
                let total = self.roster.total();
                let mut pending = Vec::new();
                if let Some(slot) =
                    self.virtuals.iter_mut().find(|(id, _, halted)| *id == to && !halted)
                {
                    let mut inner_ctx = Context::detached(to_dense, total, ctx.now());
                    slot.1.on_message(cur_from, msg, &mut inner_ctx);
                    pending.push((to, inner_ctx.into_effects()));
                }
                self.route(pending, ctx);
            }
            BlackBoxMsg::Vouch { output } => {
                let weights = self.weights.clone();
                let f_w = self.f_w;
                let q = self
                    .vouch_quorums
                    .entry(output.clone())
                    .or_insert_with(|| WeightQuorum::new(weights, f_w));
                if q.vote(StableId::solo(from)) && !self.output_done {
                    // Weight > f_w vouching the same output: at least one
                    // voucher is honest.
                    self.output_done = true;
                    ctx.output(output);
                }
            }
        }
    }

    fn on_timer(&mut self, nonce: u64, ctx: &mut Context<Self::Msg>) {
        let Some((setter, inner_id)) = self.timer_map.remove(&nonce) else { return };
        // A timer set by a since-retired user dies with it.
        if !self.roster.contains(setter) {
            return;
        }
        let total = self.roster.total();
        let mut pending = Vec::new();
        if let Some(slot) =
            self.virtuals.iter_mut().find(|(id, _, halted)| *id == setter && !halted)
        {
            let Some(dense) = self.roster.dense_of(setter) else { return };
            let mut inner_ctx = Context::detached(dense, total, ctx.now());
            slot.1.on_timer(inner_id, &mut inner_ctx);
            pending.push((setter, inner_ctx.into_effects()));
        }
        self.route(pending, ctx);
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<Self::Msg>) {
        let old_count = self.roster.tickets_of(self.party);
        if self.roster.apply_delta(event.delta()).is_err() {
            // An event whose delta was diffed against a different base
            // than the live mapping is a driver bug; the mapping is
            // untouched, so the instance keeps running under the old
            // epoch (weights included — a half-applied event would be
            // worse than a stale one).
            debug_assert!(false, "mis-sequenced EpochEvent reached BlackBox");
            return;
        }
        self.epoch += 1;
        // Stake refresh: the vouch path tallies under this epoch's
        // weights from here on. Pending vouch quorums keep their votes
        // but re-derive every contribution and the threshold base — a
        // collapsed whale's almost-complete quorum is revoked, stale
        // stake never crosses a live threshold.
        if event.refresh_weights(&mut self.weights) {
            // A reweigh can also COMPLETE a pending quorum (stake grew
            // onto already-recorded vouchers), and vouchers vouch exactly
            // once — no later vote will re-run the adoption check. Act on
            // the transition here; ties across outputs (possible only
            // with Byzantine vouchers) break lexicographically so every
            // replay is deterministic.
            let mut completed: Vec<&Vec<u8>> = Vec::new();
            for (output, q) in self.vouch_quorums.iter_mut() {
                q.reweigh(event);
                if q.reached() {
                    completed.push(output);
                }
            }
            completed.sort();
            if let Some(&output) = completed.first() {
                if !self.output_done {
                    self.output_done = true;
                    ctx.output(output.clone());
                }
            }
        } else {
            debug_assert!(false, "EpochEvent weights cover a different party count");
        }
        // Retire users whose identity no longer resolves; their pending
        // timers are purged eagerly (the fire path would drop them anyway
        // — this just keeps the footprint tight). Survivors need no
        // re-keying — their stable identity *is* their key.
        let roster = self.roster.clone();
        self.virtuals.retain(|(id, _, _)| roster.contains(*id));
        self.timer_map.retain(|_, (setter, _)| roster.contains(*setter));
        // Propagate the boundary to surviving automata so epoch-aware
        // inner protocols migrate their trackers (shed retired voters,
        // re-derive totals) and can make immediate progress.
        let total = roster.total();
        let mut pending = Vec::new();
        let ids: Vec<StableId> = self
            .virtuals
            .iter()
            .filter(|(_, _, halted)| !halted)
            .map(|(id, _, _)| *id)
            .collect();
        for id in ids {
            let Some(dense) = roster.dense_of(id) else { continue };
            let mut inner_ctx = Context::detached(dense, total, ctx.now());
            if let Some(slot) = self.virtuals.iter_mut().find(|(vid, _, _)| *vid == id) {
                slot.1.on_reconfigure(event, &mut inner_ctx);
            }
            pending.push((id, inner_ctx.into_effects()));
        }
        // Spawn users added to this party mid-flight. The factory's
        // captured state is *dealing-epoch* state (for instance an
        // `AbaSetup`'s coin key table, sized for the old population), so
        // a joiner receives the event before it starts: it enters the
        // protocol already in the current epoch, holding the same
        // re-dealt material every survivor derived — resharing depends
        // only on the group secret and the event, not on which old
        // generation a replica caught up from.
        let new_count = roster.tickets_of(self.party);
        for offset in old_count..new_count {
            let id = StableId::new(self.party, offset);
            let dense = roster.dense_of(id).expect("offset < new count");
            let mut automaton = (self.factory)(dense, &roster);
            let mut inner_ctx = Context::detached(dense, total, ctx.now());
            automaton.on_reconfigure(event, &mut inner_ctx);
            automaton.on_start(&mut inner_ctx);
            self.virtuals.push((id, automaton, false));
            pending.push((id, inner_ctx.into_effects()));
        }
        self.route(pending, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aba::{AbaMsg, AbaNode, AbaSetup};
    use crate::bracha::{BrachaConfig, BrachaMsg, BrachaNode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Swiper, TicketDelta, WeightRestriction};
    use swiper_net::{EpochedSimulation, Simulation};

    /// Event whose stake stands still: the identity-plumbing tests
    /// exercise renumbering, not stake drift.
    fn event_of(delta: &TicketDelta, weights: &Weights) -> EpochEvent {
        EpochEvent::new(1, delta.clone(), weights, weights.clone(), 0).unwrap()
    }

    /// WR(f_w = 1/4, f_n = 1/3): the epsilon-loss transformation setup.
    fn config(ws: &[u64]) -> (BlackBoxConfig, TicketAssignment) {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        (BlackBoxConfig::new(weights, &sol.assignment, Ratio::of(1, 4)), sol.assignment)
    }

    #[test]
    fn blackbox_bracha_broadcast_reaches_all_parties() {
        // Nominal Bracha over T virtual users, wrapped for 5 weighted
        // parties. Virtual user 0 is the designated sender.
        let (config, tickets) = config(&[50, 20, 15, 10, 5]);
        let total = config.virtual_count();
        let payload = b"black-box broadcast".to_vec();
        let bracha_cfg = BrachaConfig::nominal(total);
        let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..5)
            .map(|party| {
                let bc = bracha_cfg.clone();
                let payload = payload.clone();
                Box::new(BlackBox::new(config.clone(), party, move |v, _roster| {
                    if v == 0 {
                        BrachaNode::sender(bc.clone(), 0, payload.clone())
                    } else {
                        BrachaNode::new(bc.clone(), 0)
                    }
                })) as _
            })
            .collect();
        let report = Simulation::new(nodes, 3).run();
        let _ = tickets;
        for (i, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Some(payload.as_slice()), "party {i}");
        }
    }

    #[test]
    fn blackbox_aba_agreement_and_validity() {
        // Nominal (equal-ticket) ABA wrapped into the weighted model.
        let (config, _tickets) = config(&[40, 30, 20, 10]);
        let total = config.virtual_count();
        let setup = AbaSetup::nominal(total, 77, &mut StdRng::seed_from_u64(77));
        // All parties input `true` -> must decide true (validity).
        let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<AbaMsg>>>> = (0..4)
            .map(|party| {
                let s = setup.clone();
                Box::new(BlackBox::new(config.clone(), party, move |_v, _roster| {
                    AbaNode::new(s.clone(), true)
                })) as _
            })
            .collect();
        let report = Simulation::new(nodes, 7).run();
        for (i, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Some(&[1u8][..]), "party {i}");
        }
    }

    #[test]
    fn blackbox_aba_mixed_inputs_agree() {
        let (config, _) = config(&[40, 30, 20, 10]);
        let total = config.virtual_count();
        for seed in [5u64, 6] {
            let setup = AbaSetup::nominal(total, seed, &mut StdRng::seed_from_u64(seed));
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<AbaMsg>>>> = (0..4)
                .map(|party| {
                    let s = setup.clone();
                    let input = party % 2 == 0;
                    Box::new(BlackBox::new(config.clone(), party, move |_v, _roster| {
                        AbaNode::new(s.clone(), input)
                    })) as _
                })
                .collect();
            let report = Simulation::new(nodes, seed).run();
            assert!(report.agreement_among(&[0, 1, 2, 3]), "seed {seed}");
            for i in 0..4 {
                assert!(report.outputs[i].is_some(), "party {i} seed {seed}");
            }
        }
    }

    #[test]
    fn zero_ticket_parties_learn_via_vouchers() {
        // Engineer a distribution where a dust party gets zero tickets.
        let weights = Weights::new(vec![500, 300, 198, 1, 1]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let zero_parties: Vec<usize> = (0..5).filter(|&p| sol.assignment.get(p) == 0).collect();
        assert!(
            !zero_parties.is_empty(),
            "need a zero-ticket party: {:?}",
            sol.assignment.as_slice()
        );
        let config = BlackBoxConfig::new(weights, &sol.assignment, Ratio::of(1, 4));
        let total = config.virtual_count();
        let payload = b"vouched".to_vec();
        let bracha_cfg = BrachaConfig::nominal(total);
        let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..5)
            .map(|party| {
                let bc = bracha_cfg.clone();
                let payload = payload.clone();
                Box::new(BlackBox::new(config.clone(), party, move |v, _roster| {
                    if v == 0 {
                        BrachaNode::sender(bc.clone(), 0, payload.clone())
                    } else {
                        BrachaNode::new(bc.clone(), 0)
                    }
                })) as _
            })
            .collect();
        let report = Simulation::new(nodes, 11).run();
        for &p in &zero_parties {
            assert_eq!(
                report.outputs[p].as_deref(),
                Some(payload.as_slice()),
                "zero-ticket party {p} must learn the output"
            );
        }
    }

    #[test]
    fn spoofed_virtual_senders_are_dropped() {
        // Party 1 claims to speak for stable identities it does not own;
        // the wrapper must ignore those messages entirely — the claimed
        // identity's party is on the face of the id, so no history or
        // epoch bookkeeping is involved.
        struct Spoofer {
            config: BlackBoxConfig,
        }
        impl Protocol for Spoofer {
            type Msg = BlackBoxMsg<BrachaMsg>;
            fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
                // Claim to be virtual user 0 (owned by party 0).
                let mapping = self.config.mapping();
                let forged_from = mapping.stable_of(0);
                assert_ne!(forged_from.party_ix(), 1);
                for to_v in 0..self.config.virtual_count() {
                    let to = mapping.stable_of(to_v);
                    ctx.send(
                        to.party_ix(),
                        BlackBoxMsg::Inner {
                            from: forged_from,
                            to,
                            msg: BrachaMsg::Initial(b"forged".to_vec()),
                        },
                    );
                    // Identities that have never existed (absurd offsets)
                    // must be dropped outright, whatever the claimed
                    // party.
                    ctx.send(
                        to.party_ix(),
                        BlackBoxMsg::Inner {
                            from: StableId::new(1, 900),
                            to,
                            msg: BrachaMsg::Initial(b"forged-ghost".to_vec()),
                        },
                    );
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: Self::Msg, _c: &mut Context<Self::Msg>) {}
        }
        let (config, _) = config(&[50, 20, 15, 10, 5]);
        let total = config.virtual_count();
        let bracha_cfg = BrachaConfig::nominal(total);
        let mut nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = Vec::new();
        for party in 0..5 {
            if party == 1 {
                nodes.push(Box::new(Spoofer { config: config.clone() }));
            } else {
                let bc = bracha_cfg.clone();
                nodes.push(Box::new(BlackBox::new(
                    config.clone(),
                    party,
                    move |_v, _roster| {
                        // No sender at all: nothing should ever be delivered.
                        BrachaNode::new(bc.clone(), 0)
                    },
                )));
            }
        }
        let report = Simulation::new(nodes, 13).run();
        for (i, out) in report.outputs.iter().enumerate() {
            assert!(out.is_none(), "party {i} must not deliver a forged broadcast");
        }
    }

    /// The state-survival witness: each virtual user broadcasts one
    /// `Hello` at start and arms a timer that fires long after the epoch
    /// boundary; on fire it outputs iff it heard from every epoch-0
    /// virtual id. The hellos are never re-sent, and all of them are
    /// delivered *before* the boundary — so any implementation that drops
    /// automaton state (or pending timers) at the epoch crossing can
    /// never output, while one that splices keeps completing.
    struct Accumulator {
        expected: usize,
        heard: std::collections::HashSet<usize>,
    }

    impl Accumulator {
        fn new(expected: usize) -> Self {
            Accumulator { expected, heard: std::collections::HashSet::new() }
        }
    }

    impl Protocol for Accumulator {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(1);
            ctx.set_timer(500, 0);
        }
        fn on_message(&mut self, from: NodeId, _m: u64, _ctx: &mut Context<u64>) {
            self.heard.insert(from);
        }
        fn on_timer(&mut self, _id: u64, ctx: &mut Context<u64>) {
            if self.heard.len() >= self.expected {
                ctx.output(b"done".to_vec());
            }
        }
    }

    #[test]
    fn reconfigure_preserves_surviving_state_and_spawns_joiners() {
        // Epoch 0 tickets [2, 2, 1] -> epoch 1 tickets [2, 1, 2]: party 1
        // retires its offset-1 user, party 2 gains one mid-flight, and
        // every id from party 1 onward is renumbered. Hellos (16 wrapped
        // cross-party messages) all land before the boundary at event 16;
        // the verdict timers all fire after it. All parties completing
        // therefore *proves* the heard-sets and pending timers crossed
        // the epoch intact under the renumbering.
        let weights = Weights::new(vec![40, 40, 20]).unwrap();
        let old = TicketAssignment::new(vec![2, 2, 1]);
        let new = TicketAssignment::new(vec![2, 1, 2]);
        let delta = TicketDelta::between(&old, &new).unwrap();
        let event = event_of(&delta, &weights);
        let total = old.total() as usize;
        for seed in 0..25u64 {
            let config = BlackBoxConfig::new(weights.clone(), &old, Ratio::of(1, 4));
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<u64>>>> = (0..3)
                .map(|party| {
                    Box::new(BlackBox::new(config.clone(), party, move |_v, _roster| {
                        Accumulator::new(total)
                    })) as _
                })
                .collect();
            let report = EpochedSimulation::new(nodes, seed).inject_at(16, event.clone()).run();
            assert_eq!(report.reconfigurations, 1, "seed {seed}");
            for (i, out) in report.outputs.iter().enumerate() {
                assert_eq!(
                    out.as_deref(),
                    Some(b"done".as_ref()),
                    "party {i} lost state across the epoch at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn bracha_survives_suffix_churn_mid_broadcast() {
        // The broadcast sender is virtual user 0 (party 0); the delta
        // only touches the *last* party, so every stable identity the
        // Bracha instances have pinned stays live while the total ticket
        // count changes under the instance's feet.
        let weights = Weights::new(vec![50, 20, 15, 10, 5]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let old = sol.assignment.clone();
        let mut churned = old.as_slice().to_vec();
        let last = churned.len() - 1;
        churned[last] += 1; // the dust party gains one ticket
        let new = TicketAssignment::new(churned);
        let delta = TicketDelta::between(&old, &new).unwrap();
        let event = event_of(&delta, &weights);
        let payload = b"epoch-crossing broadcast".to_vec();
        for seed in 0..25u64 {
            let config = BlackBoxConfig::new(weights.clone(), &old, Ratio::of(1, 4));
            let sender_id = config.mapping().stable_of(0);
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..5)
                .map(|party| {
                    let payload = payload.clone();
                    Box::new(BlackBox::new(config.clone(), party, move |v, roster| {
                        let bc = BrachaConfig::epochal(roster.clone());
                        if roster.stable_of(v) == sender_id {
                            BrachaNode::sender_with_id(bc, sender_id, payload.clone())
                        } else {
                            BrachaNode::with_sender_id(bc, sender_id)
                        }
                    })) as _
                })
                .collect();
            let report = EpochedSimulation::new(nodes, seed).inject_at(10, event.clone()).run();
            assert_eq!(report.reconfigurations, 1, "seed {seed}");
            for (i, out) in report.outputs.iter().enumerate() {
                assert_eq!(out.as_deref(), Some(payload.as_slice()), "party {i} seed {seed}");
            }
        }
    }

    #[test]
    fn mis_sequenced_delta_leaves_instance_intact() {
        // A delta diffed against a *different* base must be rejected and
        // the live mapping left untouched (debug_assert fires only in
        // debug builds; release keeps running the old epoch).
        let weights = Weights::new(vec![40, 40, 20]).unwrap();
        let base = TicketAssignment::new(vec![2, 2, 1]);
        let other = TicketAssignment::new(vec![1, 2, 1]);
        let next = TicketAssignment::new(vec![1, 2, 2]);
        let bad_delta = TicketDelta::between(&other, &next).unwrap();
        let bad_event = event_of(&bad_delta, &weights);
        let config = BlackBoxConfig::new(weights, &base, Ratio::of(1, 4));
        let mut bb: BlackBox<Accumulator> =
            BlackBox::new(config, 0, move |_v, _roster| Accumulator::new(5));
        let before = bb.roster().snapshot();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = Context::detached(0, 3, 0);
            bb.on_reconfigure(&bad_event, &mut ctx);
        }));
        // Debug builds assert; if the assertion is compiled out, the
        // mapping must be unchanged and the epoch not advanced.
        if result.is_ok() {
            assert_eq!(bb.roster().snapshot(), before);
            assert_eq!(bb.epoch(), 0);
        }
    }

    /// The bounded-memory regression for the deleted per-epoch mapping
    /// history: a live instance is driven across many reconfigurations —
    /// with pending timers and traffic in flight the whole time — and its
    /// translation footprint must be *independent of the epoch count*.
    /// The dense-id design retained one full `VirtualUsers` per crossed
    /// epoch ("no entry is provably dead"); stable identities need
    /// exactly one mapping, so 4 epochs and 40 must cost the same.
    #[test]
    fn translation_state_is_bounded_across_long_replays() {
        /// Timer-free chatterer: broadcasts once at start (and once per
        /// spawn), keeping traffic minted in every epoch without adding
        /// *pending* state — so the footprint isolates exactly the
        /// translation tables.
        struct Hello;
        impl Protocol for Hello {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.broadcast(1);
            }
            fn on_message(&mut self, _f: NodeId, _m: u64, _c: &mut Context<u64>) {}
        }

        fn footprint_after(epochs: usize) -> usize {
            let weights = Weights::new(vec![40, 40, 20]).unwrap();
            let base = TicketAssignment::new(vec![2, 2, 1]);
            let flip = TicketAssignment::new(vec![1, 3, 1]);
            let config = BlackBoxConfig::new(weights, &base, Ratio::of(1, 4));
            let mut bb: BlackBox<Hello> = BlackBox::new(config, 0, move |_v, _roster| Hello);
            let mut ctx = Context::detached(0, 3, 0);
            bb.on_start(&mut ctx);
            // Alternate between two assignments so every epoch renumbers
            // live identities (the worst case for translation state).
            let stake = Weights::new(vec![40, 40, 20]).unwrap();
            let (mut cur, mut nxt) = (base, flip);
            for _ in 0..epochs {
                let delta = TicketDelta::between(&cur, &nxt).unwrap();
                let event = event_of(&delta, &stake);
                let mut ctx = Context::detached(0, 3, 0);
                bb.on_reconfigure(&event, &mut ctx);
                std::mem::swap(&mut cur, &mut nxt);
            }
            assert_eq!(bb.epoch(), epochs as u64);
            bb.translation_footprint()
        }
        let short = footprint_after(4);
        let long = footprint_after(40);
        assert_eq!(
            short, long,
            "translation state grew with the epoch count: {short} -> {long}"
        );
    }

    /// Post-boundary duplicates of a pre-boundary message must not be
    /// double-delivered under a new identity: the wire names stable ids,
    /// so a replayed message resolves to the *same* logical endpoints and
    /// inner-protocol dedup (quorum trackers, heard-sets) sees one voter.
    /// Counts each distinct *stable* sender exactly once and fails if a
    /// renumbering epoch makes one voter look like two.
    struct Census {
        roster: Roster,
        quorum: crate::quorum::CountQuorum,
        expected: usize,
    }

    impl Protocol for Census {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(1);
            ctx.set_timer(900, 0);
        }
        fn on_message(&mut self, from: NodeId, _m: u64, _ctx: &mut Context<u64>) {
            self.quorum.vote(self.roster.stable_of(from));
        }
        fn on_reconfigure(&mut self, _e: &EpochEvent, _ctx: &mut Context<u64>) {
            self.quorum.migrate(&self.roster);
        }
        fn on_timer(&mut self, _id: u64, ctx: &mut Context<u64>) {
            // Exactly the live population: more means double-counting,
            // fewer means lost survivors.
            if self.quorum.count() == self.expected {
                ctx.output(b"exact".to_vec());
            } else {
                ctx.output(format!("count={}", self.quorum.count()).into_bytes());
            }
        }
    }

    #[test]
    fn renumbering_boundary_does_not_double_count_senders() {
        // Epoch 0 [2, 2, 1] -> epoch 1 [1, 2, 2]: party 0 shrinks, so
        // *every* surviving id renumbers; party 2 gains one user that
        // broadcasts fresh hellos post-boundary. Pre-boundary hellos from
        // survivors arrive under the old numbering, the joiner's under the
        // new one — a dense-keyed census would count a renumbered survivor
        // as a new voter (or mistake the joiner for a survivor occupying
        // its old slot). The assertion is exact: the distinct-voter count
        // must land on the live population, nothing more, nothing less.
        let weights = Weights::new(vec![40, 40, 20]).unwrap();
        let old = TicketAssignment::new(vec![2, 2, 1]);
        let new = TicketAssignment::new(vec![1, 2, 2]);
        let delta = TicketDelta::between(&old, &new).unwrap();
        let event = event_of(&delta, &weights);
        let expected = new.total() as usize;
        for seed in 0..25u64 {
            let config = BlackBoxConfig::new(weights.clone(), &old, Ratio::of(1, 4));
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<u64>>>> = (0..3)
                .map(|party| {
                    Box::new(BlackBox::new(config.clone(), party, move |_v, roster| Census {
                        roster: roster.clone(),
                        quorum: crate::quorum::CountQuorum::at_least(expected, expected),
                        expected,
                    })) as _
                })
                .collect();
            let report = EpochedSimulation::new(nodes, seed).inject_at(12, event.clone()).run();
            assert_eq!(report.reconfigurations, 1, "seed {seed}");
            for (i, out) in report.outputs.iter().enumerate() {
                assert_eq!(
                    out.as_deref(),
                    Some(b"exact".as_ref()),
                    "party {i} mis-counted voters across the boundary at seed {seed}: {:?}",
                    report.outputs[i].as_deref().map(String::from_utf8_lossy)
                );
            }
        }
    }
}
