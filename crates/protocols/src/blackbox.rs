//! The black-box transformation (paper Section 4.4).
//!
//! Given **any** nominal protocol `P` designed for `T` participants with
//! resilience `f_n`, and a Weight Restriction solution with
//! `alpha_w := f_w`, `alpha_n := f_n` (`f_w = f_n - epsilon`), the weighted
//! protocol `P'` simply runs `P` over `T` *virtual users*, party `i`
//! controlling `t_i` of them:
//!
//! * messages between virtual users of the same party short-circuit
//!   in-process; cross-party messages are wrapped and routed to the owner;
//! * party `i` outputs the value output by its first virtual identity;
//! * parties with `t_i = 0` cannot run virtual users — they wait for
//!   parties of total weight `> f_w * W` *vouching* for the same output
//!   (at least one voucher is honest, so the adopted output is correct).
//!
//! Because corrupt weight `< f_w * W` maps to `< f_n * T` virtual users,
//! `P`'s guarantees carry over verbatim. The transformation needs no
//! knowledge of `P`'s internals — the wrapper below is generic over any
//! [`swiper_net::Protocol`] implementation.
//!
//! # Live-instance epoch reconfiguration
//!
//! A deployment re-solves weight reduction every epoch and publishes a
//! [`TicketDelta`]. The wrapper's [`Protocol::on_reconfigure`] splices the
//! delta into the live instance instead of tearing it down:
//!
//! * the virtual-user mapping is updated in place
//!   ([`swiper_core::VirtualUsers::apply_delta`]), and the previous
//!   epoch's mapping is retained so in-flight messages minted under old
//!   numberings can still be translated (wrapped messages carry their
//!   epoch);
//! * **surviving** sub-instances — those whose `(owner, offset)`
//!   coordinate is still live — keep their state and are re-keyed to
//!   their new dense virtual ids;
//! * **retired** sub-instances (offsets at or beyond the owner's new
//!   ticket count) are dropped along with their pending timers;
//! * **added** sub-instances are spawned mid-flight via the stored
//!   factory; they begin at `on_start` and may rely on the vouching path
//!   to learn an output that was decided before they joined.
//!
//! What a nominal protocol `P` may assume across the boundary: its own
//! accumulated state survives, and messages keep flowing (translated).
//! What it may **not** assume: that the total `T` or any peer's id is
//! stable — deltas that touch party `i` renumber every virtual user after
//! `i`'s range. Instances pinned to specific peer ids (a broadcast
//! sender, dealt cryptographic shares) therefore survive exactly the
//! deltas that keep those ids fixed (changes confined to later parties,
//! or ticket moves that preserve prefix ranges); the epoch-crossing seed
//! sweeps exercise both the friendly and the hostile case.
//!
//! Two deliberate limits of delta-only reconfiguration: a [`TicketDelta`]
//! carries tickets, not stake, so the **vouch quorum keeps weighing votes
//! with the construction-time weight vector** — deployments whose stake
//! drifts far from the epoch-0 snapshot must rebuild the wrapper to
//! refresh it (tracked in the ROADMAP's cross-epoch quorum identity
//! item). And the per-epoch **mapping history is retained unboundedly**:
//! in the asynchronous model no bound exists on how long a message minted
//! in an old epoch may stay in flight, so no entry is provably dead;
//! long-lived deployments would cap the window and accept dropping
//! stragglers from evicted epochs.

use std::collections::{HashMap, VecDeque};

use swiper_core::{Ratio, TicketAssignment, TicketDelta, VirtualUsers, Weights};
use swiper_net::{Context, Effects, MessageSize, NodeId, Protocol};

use crate::quorum::{QuorumTracker, WeightQuorum};

/// Wrapper messages of the transformed protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlackBoxMsg<M> {
    /// A nominal-protocol message between two virtual users.
    Inner {
        /// The epoch whose numbering `from_virtual`/`to_virtual` use.
        epoch: u64,
        /// Sending virtual user.
        from_virtual: u32,
        /// Receiving virtual user.
        to_virtual: u32,
        /// The wrapped nominal message.
        msg: M,
    },
    /// Output voucher for zero-ticket parties.
    Vouch {
        /// The vouched output.
        output: Vec<u8>,
    },
}

impl<M: MessageSize> MessageSize for BlackBoxMsg<M> {
    fn size_bytes(&self) -> usize {
        match self {
            BlackBoxMsg::Inner { msg, .. } => 16 + msg.size_bytes(),
            BlackBoxMsg::Vouch { output } => output.len(),
        }
    }
}

/// Shared transformation parameters.
#[derive(Debug, Clone)]
pub struct BlackBoxConfig {
    weights: Weights,
    mapping: VirtualUsers,
    f_w: Ratio,
}

impl BlackBoxConfig {
    /// Builds the configuration from the weighted system and its WR ticket
    /// assignment (`alpha_w = f_w`, `alpha_n = f_n`).
    ///
    /// # Panics
    ///
    /// Panics on weight/ticket length mismatch or an empty assignment.
    pub fn new(weights: Weights, tickets: &TicketAssignment, f_w: Ratio) -> Self {
        assert_eq!(weights.len(), tickets.len(), "weights/tickets mismatch");
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        assert!(mapping.total() > 0, "at least one virtual user required");
        BlackBoxConfig { weights, mapping, f_w }
    }

    /// Number of virtual users `T` (current epoch).
    pub fn virtual_count(&self) -> usize {
        self.mapping.total()
    }

    /// The virtual-user mapping (current epoch).
    pub fn mapping(&self) -> &VirtualUsers {
        &self.mapping
    }
}

/// The transformed node: party `i` running its `t_i` virtual users of `P`.
pub struct BlackBox<P: Protocol> {
    config: BlackBoxConfig,
    party: usize,
    /// Epochs already crossed; also the tag on outgoing inner messages.
    epoch: u64,
    /// Mapping of each *past* epoch `e < self.epoch`, indexed by epoch —
    /// the translation table for in-flight messages and timers minted
    /// before a reconfiguration.
    history: Vec<VirtualUsers>,
    /// Factory for spawning virtual users, kept for mid-flight joins.
    factory: Box<dyn FnMut(usize) -> P>,
    /// My virtual users: `(current virtual id, automaton, halted)`.
    virtuals: Vec<(usize, P, bool)>,
    /// Pending timers: nonce -> (epoch, virtual id at set time, inner id).
    timer_map: HashMap<u64, (u64, usize, u64)>,
    timer_nonce: u64,
    vouch_quorums: HashMap<Vec<u8>, WeightQuorum>,
    output_done: bool,
    started: bool,
}

impl<P: Protocol> BlackBox<P> {
    /// Creates party `party`'s wrapper; `factory(v)` builds the automaton
    /// for virtual user `v` (it will see `n = T` and `me = v`). The
    /// factory is retained: epoch reconfigurations use it to spawn
    /// virtual users added mid-flight.
    pub fn new<F>(config: BlackBoxConfig, party: usize, mut factory: F) -> Self
    where
        F: FnMut(usize) -> P + 'static,
    {
        let virtuals =
            config.mapping.virtuals_of(party).map(|v| (v, factory(v), false)).collect();
        BlackBox {
            config,
            party,
            epoch: 0,
            history: Vec::new(),
            factory: Box::new(factory),
            virtuals,
            timer_map: HashMap::new(),
            timer_nonce: 0,
            vouch_quorums: HashMap::new(),
            output_done: false,
            started: false,
        }
    }

    /// Epochs crossed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Translates virtual id `v` minted under `epoch`'s numbering to the
    /// current numbering. `None` when the id never existed in that epoch,
    /// the epoch is unknown (future), or the user has since retired.
    fn translate(&self, epoch: u64, v: usize) -> Option<usize> {
        if epoch == self.epoch {
            return (v < self.config.mapping.total()).then_some(v);
        }
        let old = self.history.get(usize::try_from(epoch).ok()?)?;
        if v >= old.total() {
            return None;
        }
        let (owner, offset) = old.locate(v);
        self.config.mapping.at(owner, offset)
    }

    /// The party owning `v` under `epoch`'s numbering (`None` when out of
    /// range or the epoch is unknown).
    fn owner_in(&self, epoch: u64, v: usize) -> Option<usize> {
        let mapping = if epoch == self.epoch {
            &self.config.mapping
        } else {
            self.history.get(usize::try_from(epoch).ok()?)?
        };
        (v < mapping.total()).then(|| mapping.owner_of(v))
    }

    /// Routes one batch of inner effects, draining same-party deliveries
    /// in-process until quiescent.
    fn route(
        &mut self,
        initial: Vec<(usize, Effects<P::Msg>)>,
        ctx: &mut Context<BlackBoxMsg<P::Msg>>,
    ) {
        // Queue of (from_virtual, to_virtual, msg) for local delivery.
        let mut local: VecDeque<(usize, usize, P::Msg)> = VecDeque::new();
        let mut pending: Vec<(usize, Effects<P::Msg>)> = initial;
        loop {
            for (from_v, effects) in pending.drain(..) {
                self.apply_effects(from_v, effects, &mut local, ctx);
            }
            let Some((from_v, to_v, msg)) = local.pop_front() else { break };
            let total = self.config.virtual_count();
            if let Some(slot) =
                self.virtuals.iter_mut().find(|(v, _, halted)| *v == to_v && !halted)
            {
                let mut inner_ctx = Context::detached(to_v, total, ctx.now());
                slot.1.on_message(from_v, msg, &mut inner_ctx);
                pending.push((to_v, inner_ctx.into_effects()));
            }
        }
    }

    fn apply_effects(
        &mut self,
        from_v: usize,
        effects: Effects<P::Msg>,
        local: &mut VecDeque<(usize, usize, P::Msg)>,
        ctx: &mut Context<BlackBoxMsg<P::Msg>>,
    ) {
        let Effects { outbox, timers, output, halted } = effects;
        for (to_v, msg) in outbox {
            // A surviving automaton may still address a peer id that only
            // existed before a shrinking delta (its `n` was baked at
            // construction); such sends are dropped, mirroring the
            // receive-side translation, never indexed out of bounds.
            if to_v >= self.config.mapping.total() {
                continue;
            }
            let owner = self.config.mapping.owner_of(to_v);
            if owner == self.party {
                local.push_back((from_v, to_v, msg));
            } else {
                ctx.send(
                    owner,
                    BlackBoxMsg::Inner {
                        epoch: self.epoch,
                        from_virtual: from_v as u32,
                        to_virtual: to_v as u32,
                        msg,
                    },
                );
            }
        }
        for (delay, id) in timers {
            // Timers survive renumbering: the nonce indirection records
            // which epoch's id the setter used, and the firing path
            // translates it (or drops it with the retired user).
            let nonce = self.timer_nonce;
            self.timer_nonce += 1;
            self.timer_map.insert(nonce, (self.epoch, from_v, id));
            ctx.set_timer(delay, nonce);
        }
        if let Some(out) = output {
            // "Party i outputs the value output by its first virtual
            // identity" — we take the first *producing* virtual user and
            // vouch it towards zero-ticket parties.
            if !self.output_done {
                self.output_done = true;
                ctx.output(out.clone());
                ctx.broadcast(BlackBoxMsg::Vouch { output: out });
            }
        }
        if halted {
            if let Some(slot) = self.virtuals.iter_mut().find(|(v, _, _)| *v == from_v) {
                slot.2 = true;
            }
        }
    }
}

impl<P: Protocol> Protocol for BlackBox<P> {
    type Msg = BlackBoxMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        self.started = true;
        let total = self.config.virtual_count();
        let mut pending = Vec::new();
        // Collect virtual ids first to satisfy the borrow checker, then
        // start each automaton.
        let ids: Vec<usize> = self.virtuals.iter().map(|(v, _, _)| *v).collect();
        for v in ids {
            let mut inner_ctx = Context::detached(v, total, ctx.now());
            if let Some(slot) = self.virtuals.iter_mut().find(|(id, _, _)| *id == v) {
                slot.1.on_start(&mut inner_ctx);
            }
            pending.push((v, inner_ctx.into_effects()));
        }
        self.route(pending, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        match msg {
            BlackBoxMsg::Inner { epoch, from_virtual, to_virtual, msg } => {
                // Future-epoch tags cannot come from an honest replica:
                // reconfigurations reach every node at the same event.
                if epoch > self.epoch {
                    return;
                }
                let (from_v, to_v) = (from_virtual as usize, to_virtual as usize);
                // Anti-spoofing under the *minting* epoch's numbering:
                // the wire sender must own the claimed virtual sender; we
                // must own the recipient.
                if self.owner_in(epoch, from_v) != Some(from)
                    || self.owner_in(epoch, to_v) != Some(self.party)
                {
                    return;
                }
                // Translate both ids into the current numbering; either
                // end having retired drops the message.
                let (Some(cur_from), Some(cur_to)) =
                    (self.translate(epoch, from_v), self.translate(epoch, to_v))
                else {
                    return;
                };
                let total = self.config.virtual_count();
                let mut pending = Vec::new();
                if let Some(slot) =
                    self.virtuals.iter_mut().find(|(v, _, halted)| *v == cur_to && !halted)
                {
                    let mut inner_ctx = Context::detached(cur_to, total, ctx.now());
                    slot.1.on_message(cur_from, msg, &mut inner_ctx);
                    pending.push((cur_to, inner_ctx.into_effects()));
                }
                self.route(pending, ctx);
            }
            BlackBoxMsg::Vouch { output } => {
                let weights = self.config.weights.clone();
                let f_w = self.config.f_w;
                let q = self
                    .vouch_quorums
                    .entry(output.clone())
                    .or_insert_with(|| WeightQuorum::new(weights, f_w));
                if q.vote(from) && !self.output_done {
                    // Weight > f_w vouching the same output: at least one
                    // voucher is honest.
                    self.output_done = true;
                    ctx.output(output);
                }
            }
        }
    }

    fn on_timer(&mut self, nonce: u64, ctx: &mut Context<Self::Msg>) {
        let Some((epoch, set_v, inner_id)) = self.timer_map.remove(&nonce) else { return };
        // A timer set by a since-retired user dies with it.
        let Some(v) = self.translate(epoch, set_v) else { return };
        let total = self.config.virtual_count();
        let mut pending = Vec::new();
        if let Some(slot) =
            self.virtuals.iter_mut().find(|(vid, _, halted)| *vid == v && !halted)
        {
            let mut inner_ctx = Context::detached(v, total, ctx.now());
            slot.1.on_timer(inner_id, &mut inner_ctx);
            pending.push((v, inner_ctx.into_effects()));
        }
        self.route(pending, ctx);
    }

    fn on_reconfigure(&mut self, delta: &TicketDelta, ctx: &mut Context<Self::Msg>) {
        let old = self.config.mapping.clone();
        if self.config.mapping.apply_delta(delta).is_err() {
            // A delta diffed against a different base than the live
            // mapping is a driver bug; the mapping is untouched, so the
            // instance keeps running under the old epoch.
            debug_assert!(false, "mis-sequenced TicketDelta reached BlackBox");
            return;
        }
        self.history.push(old);
        self.epoch += 1;
        let old_map = &self.history[self.history.len() - 1];
        // Re-key survivors to their new dense ids; retire the rest. A
        // party's users retire from the top of its range (offset >= new
        // ticket count), so surviving state is the longest-served prefix.
        let current = &self.config.mapping;
        let mut survivors = Vec::with_capacity(self.virtuals.len());
        for (v, automaton, halted) in self.virtuals.drain(..) {
            let (owner, offset) = old_map.locate(v);
            debug_assert_eq!(owner, self.party, "wrapper only hosts its own users");
            if let Some(new_v) = current.at(owner, offset) {
                survivors.push((new_v, automaton, halted));
            }
        }
        self.virtuals = survivors;
        // Spawn users added to this party mid-flight.
        let old_count = old_map.tickets_of(self.party);
        let new_count = current.tickets_of(self.party);
        let total = current.total();
        let spawned: Vec<usize> = (old_count..new_count)
            .map(|offset| current.at(self.party, offset).expect("offset < new count"))
            .collect();
        let mut pending = Vec::new();
        for new_v in spawned {
            let mut automaton = (self.factory)(new_v);
            let mut inner_ctx = Context::detached(new_v, total, ctx.now());
            automaton.on_start(&mut inner_ctx);
            self.virtuals.push((new_v, automaton, false));
            pending.push((new_v, inner_ctx.into_effects()));
        }
        self.route(pending, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aba::{AbaMsg, AbaNode, AbaSetup};
    use crate::bracha::{BrachaConfig, BrachaMsg, BrachaNode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Swiper, WeightRestriction};
    use swiper_net::{EpochedSimulation, Simulation};

    /// WR(f_w = 1/4, f_n = 1/3): the epsilon-loss transformation setup.
    fn config(ws: &[u64]) -> (BlackBoxConfig, TicketAssignment) {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        (BlackBoxConfig::new(weights, &sol.assignment, Ratio::of(1, 4)), sol.assignment)
    }

    #[test]
    fn blackbox_bracha_broadcast_reaches_all_parties() {
        // Nominal Bracha over T virtual users, wrapped for 5 weighted
        // parties. Virtual user 0 is the designated sender.
        let (config, tickets) = config(&[50, 20, 15, 10, 5]);
        let total = config.virtual_count();
        let payload = b"black-box broadcast".to_vec();
        let bracha_cfg = BrachaConfig::nominal(total);
        let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..5)
            .map(|party| {
                let bc = bracha_cfg.clone();
                let payload = payload.clone();
                Box::new(BlackBox::new(config.clone(), party, move |v| {
                    if v == 0 {
                        BrachaNode::sender(bc.clone(), 0, payload.clone())
                    } else {
                        BrachaNode::new(bc.clone(), 0)
                    }
                })) as _
            })
            .collect();
        let report = Simulation::new(nodes, 3).run();
        let _ = tickets;
        for (i, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Some(payload.as_slice()), "party {i}");
        }
    }

    #[test]
    fn blackbox_aba_agreement_and_validity() {
        // Nominal (equal-ticket) ABA wrapped into the weighted model.
        let (config, _tickets) = config(&[40, 30, 20, 10]);
        let total = config.virtual_count();
        let setup = AbaSetup::nominal(total, 77, &mut StdRng::seed_from_u64(77));
        // All parties input `true` -> must decide true (validity).
        let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<AbaMsg>>>> = (0..4)
            .map(|party| {
                let s = setup.clone();
                Box::new(BlackBox::new(config.clone(), party, move |_v| {
                    AbaNode::new(s.clone(), true)
                })) as _
            })
            .collect();
        let report = Simulation::new(nodes, 7).run();
        for (i, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Some(&[1u8][..]), "party {i}");
        }
    }

    #[test]
    fn blackbox_aba_mixed_inputs_agree() {
        let (config, _) = config(&[40, 30, 20, 10]);
        let total = config.virtual_count();
        for seed in [5u64, 6] {
            let setup = AbaSetup::nominal(total, seed, &mut StdRng::seed_from_u64(seed));
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<AbaMsg>>>> = (0..4)
                .map(|party| {
                    let s = setup.clone();
                    let input = party % 2 == 0;
                    Box::new(BlackBox::new(config.clone(), party, move |_v| {
                        AbaNode::new(s.clone(), input)
                    })) as _
                })
                .collect();
            let report = Simulation::new(nodes, seed).run();
            assert!(report.agreement_among(&[0, 1, 2, 3]), "seed {seed}");
            for i in 0..4 {
                assert!(report.outputs[i].is_some(), "party {i} seed {seed}");
            }
        }
    }

    #[test]
    fn zero_ticket_parties_learn_via_vouchers() {
        // Engineer a distribution where a dust party gets zero tickets.
        let weights = Weights::new(vec![500, 300, 198, 1, 1]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let zero_parties: Vec<usize> = (0..5).filter(|&p| sol.assignment.get(p) == 0).collect();
        assert!(
            !zero_parties.is_empty(),
            "need a zero-ticket party: {:?}",
            sol.assignment.as_slice()
        );
        let config = BlackBoxConfig::new(weights, &sol.assignment, Ratio::of(1, 4));
        let total = config.virtual_count();
        let payload = b"vouched".to_vec();
        let bracha_cfg = BrachaConfig::nominal(total);
        let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..5)
            .map(|party| {
                let bc = bracha_cfg.clone();
                let payload = payload.clone();
                Box::new(BlackBox::new(config.clone(), party, move |v| {
                    if v == 0 {
                        BrachaNode::sender(bc.clone(), 0, payload.clone())
                    } else {
                        BrachaNode::new(bc.clone(), 0)
                    }
                })) as _
            })
            .collect();
        let report = Simulation::new(nodes, 11).run();
        for &p in &zero_parties {
            assert_eq!(
                report.outputs[p].as_deref(),
                Some(payload.as_slice()),
                "zero-ticket party {p} must learn the output"
            );
        }
    }

    #[test]
    fn spoofed_virtual_senders_are_dropped() {
        // Party 1 claims to speak for virtual users it does not own; the
        // wrapper must ignore those messages entirely.
        struct Spoofer {
            config: BlackBoxConfig,
        }
        impl Protocol for Spoofer {
            type Msg = BlackBoxMsg<BrachaMsg>;
            fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
                // Claim to be virtual user 0 (owned by party 0).
                let owner0 = self.config.mapping().owner_of(0);
                assert_ne!(owner0, 1);
                for to_v in 0..self.config.virtual_count() {
                    let owner = self.config.mapping().owner_of(to_v);
                    ctx.send(
                        owner,
                        BlackBoxMsg::Inner {
                            epoch: 0,
                            from_virtual: 0,
                            to_virtual: to_v as u32,
                            msg: BrachaMsg::Initial(b"forged".to_vec()),
                        },
                    );
                    // Future-epoch tags must be dropped outright, whatever
                    // the claimed ids.
                    ctx.send(
                        owner,
                        BlackBoxMsg::Inner {
                            epoch: 9,
                            from_virtual: 0,
                            to_virtual: to_v as u32,
                            msg: BrachaMsg::Initial(b"forged-future".to_vec()),
                        },
                    );
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: Self::Msg, _c: &mut Context<Self::Msg>) {}
        }
        let (config, _) = config(&[50, 20, 15, 10, 5]);
        let total = config.virtual_count();
        let bracha_cfg = BrachaConfig::nominal(total);
        let mut nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = Vec::new();
        for party in 0..5 {
            if party == 1 {
                nodes.push(Box::new(Spoofer { config: config.clone() }));
            } else {
                let bc = bracha_cfg.clone();
                nodes.push(Box::new(BlackBox::new(config.clone(), party, move |_v| {
                    // No sender at all: nothing should ever be delivered.
                    BrachaNode::new(bc.clone(), 0)
                })));
            }
        }
        let report = Simulation::new(nodes, 13).run();
        for (i, out) in report.outputs.iter().enumerate() {
            assert!(out.is_none(), "party {i} must not deliver a forged broadcast");
        }
    }

    /// The state-survival witness: each virtual user broadcasts one
    /// `Hello` at start and arms a timer that fires long after the epoch
    /// boundary; on fire it outputs iff it heard from every epoch-0
    /// virtual id. The hellos are never re-sent, and all of them are
    /// delivered *before* the boundary — so any implementation that drops
    /// automaton state (or pending timers) at the epoch crossing can
    /// never output, while one that splices keeps completing.
    struct Accumulator {
        expected: usize,
        heard: std::collections::HashSet<usize>,
    }

    impl Accumulator {
        fn new(expected: usize) -> Self {
            Accumulator { expected, heard: std::collections::HashSet::new() }
        }
    }

    impl Protocol for Accumulator {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(1);
            ctx.set_timer(500, 0);
        }
        fn on_message(&mut self, from: NodeId, _m: u64, _ctx: &mut Context<u64>) {
            self.heard.insert(from);
        }
        fn on_timer(&mut self, _id: u64, ctx: &mut Context<u64>) {
            if self.heard.len() >= self.expected {
                ctx.output(b"done".to_vec());
            }
        }
    }

    #[test]
    fn reconfigure_preserves_surviving_state_and_spawns_joiners() {
        // Epoch 0 tickets [2, 2, 1] -> epoch 1 tickets [2, 1, 2]: party 1
        // retires its offset-1 user, party 2 gains one mid-flight, and
        // every id from party 1 onward is renumbered. Hellos (16 wrapped
        // cross-party messages) all land before the boundary at event 16;
        // the verdict timers all fire after it. All parties completing
        // therefore *proves* the heard-sets and pending timers crossed
        // the epoch intact and were re-keyed to the new numbering.
        let weights = Weights::new(vec![40, 40, 20]).unwrap();
        let old = TicketAssignment::new(vec![2, 2, 1]);
        let new = TicketAssignment::new(vec![2, 1, 2]);
        let delta = TicketDelta::between(&old, &new).unwrap();
        let total = old.total() as usize;
        for seed in 0..25u64 {
            let config = BlackBoxConfig::new(weights.clone(), &old, Ratio::of(1, 4));
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<u64>>>> = (0..3)
                .map(|party| {
                    Box::new(BlackBox::new(config.clone(), party, move |_v| {
                        Accumulator::new(total)
                    })) as _
                })
                .collect();
            let report = EpochedSimulation::new(nodes, seed).inject_at(16, delta.clone()).run();
            assert_eq!(report.reconfigurations, 1, "seed {seed}");
            for (i, out) in report.outputs.iter().enumerate() {
                assert_eq!(
                    out.as_deref(),
                    Some(b"done".as_ref()),
                    "party {i} lost state across the epoch at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn bracha_survives_suffix_churn_mid_broadcast() {
        // The broadcast sender is virtual user 0 (party 0); the delta
        // only touches the *last* party, so the sender's id — and every
        // id the Bracha instances have pinned — stays stable while the
        // total ticket count changes under the instance's feet.
        let weights = Weights::new(vec![50, 20, 15, 10, 5]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let old = sol.assignment.clone();
        let mut churned = old.as_slice().to_vec();
        let last = churned.len() - 1;
        churned[last] += 1; // the dust party gains one ticket
        let new = TicketAssignment::new(churned);
        let delta = TicketDelta::between(&old, &new).unwrap();
        let total = old.total() as usize;
        let payload = b"epoch-crossing broadcast".to_vec();
        let bracha_cfg = BrachaConfig::nominal(total);
        for seed in 0..25u64 {
            let config = BlackBoxConfig::new(weights.clone(), &old, Ratio::of(1, 4));
            let nodes: Vec<Box<dyn Protocol<Msg = BlackBoxMsg<BrachaMsg>>>> = (0..5)
                .map(|party| {
                    let bc = bracha_cfg.clone();
                    let payload = payload.clone();
                    Box::new(BlackBox::new(config.clone(), party, move |v| {
                        if v == 0 {
                            BrachaNode::sender(bc.clone(), 0, payload.clone())
                        } else {
                            BrachaNode::new(bc.clone(), 0)
                        }
                    })) as _
                })
                .collect();
            let report = EpochedSimulation::new(nodes, seed).inject_at(10, delta.clone()).run();
            assert_eq!(report.reconfigurations, 1, "seed {seed}");
            for (i, out) in report.outputs.iter().enumerate() {
                assert_eq!(out.as_deref(), Some(payload.as_slice()), "party {i} seed {seed}");
            }
        }
    }

    #[test]
    fn mis_sequenced_delta_leaves_instance_intact() {
        // A delta diffed against a *different* base must be rejected and
        // the live mapping left untouched (debug_assert fires only in
        // debug builds; release keeps running the old epoch).
        let weights = Weights::new(vec![40, 40, 20]).unwrap();
        let base = TicketAssignment::new(vec![2, 2, 1]);
        let other = TicketAssignment::new(vec![1, 2, 1]);
        let next = TicketAssignment::new(vec![1, 2, 2]);
        let bad_delta = TicketDelta::between(&other, &next).unwrap();
        let config = BlackBoxConfig::new(weights, &base, Ratio::of(1, 4));
        let mut bb: BlackBox<Accumulator> =
            BlackBox::new(config, 0, move |_v| Accumulator::new(5));
        let before = bb.config.mapping().clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = Context::detached(0, 3, 0);
            bb.on_reconfigure(&bad_delta, &mut ctx);
        }));
        // Debug builds assert; if the assertion is compiled out, the
        // mapping must be unchanged and the epoch not advanced.
        if result.is_ok() {
            assert_eq!(bb.config.mapping(), &before);
            assert_eq!(bb.epoch(), 0);
        }
    }
}
