//! Consensus checkpointing with weighted threshold signatures
//! (paper Section 6.3; Pikachu, reference \[6\]).
//!
//! A proof-of-stake chain periodically *checkpoints* its prefix by having
//! validators threshold-sign the checkpoint block. Weight reduction gives
//! a weighted scheme out of any nominal one:
//!
//! * **blunt** (Section 4.2): WR with `alpha_w = f_w = 1/3`,
//!   `alpha_n = 1/2`; any honest-weight coalition reaches the share
//!   threshold, no corrupt coalition does — sufficient for checkpoint
//!   certificates;
//! * **tight** (Section 4.3): one extra *vote* round upgrades the blunt
//!   structure to an exact weighted threshold `A_w(beta)`: honest parties
//!   release their signature shares only after seeing votes of weight
//!   `> beta * W`, so a certificate exists iff a weighted threshold of
//!   parties approved — at the cost of exactly one message delay, as the
//!   paper notes.

use rand::Rng;
use swiper_core::{Ratio, TicketAssignment, VirtualUsers, Weights};
use swiper_crypto::thresh::{
    KeyShare, PartialSignature, PublicKey, Signature, ThresholdScheme,
};
use swiper_crypto::CryptoError;

/// A checkpointing authority over a weighted validator set.
#[derive(Debug, Clone)]
pub struct CheckpointScheme {
    weights: Weights,
    scheme: ThresholdScheme,
    pk: PublicKey,
    shares: Vec<Vec<KeyShare>>,
}

impl CheckpointScheme {
    /// Deals key shares over the WR ticket assignment (share threshold
    /// `ceil(T/2)`-ish via `alpha_n = 1/2`).
    ///
    /// # Panics
    ///
    /// Panics on weight/ticket mismatch or an empty assignment.
    pub fn setup<R: Rng + ?Sized>(
        weights: Weights,
        tickets: &TicketAssignment,
        rng: &mut R,
    ) -> Self {
        assert_eq!(weights.len(), tickets.len(), "weights/tickets mismatch");
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        let total = mapping.total();
        assert!(total > 0, "checkpointing needs at least one ticket");
        let threshold = total / 2 + 1;
        let scheme = ThresholdScheme::new(threshold, total).expect("threshold <= total");
        let (pk, all) = scheme.keygen(rng);
        let shares = (0..mapping.parties())
            .map(|p| mapping.virtuals_of(p).map(|v| all[v]).collect())
            .collect();
        CheckpointScheme { weights, scheme, pk, shares }
    }

    /// The underlying share threshold.
    pub fn share_threshold(&self) -> usize {
        self.scheme.threshold()
    }

    /// Partial signatures of one party over a checkpoint.
    pub fn partials_of(&self, party: usize, checkpoint: &[u8]) -> Vec<PartialSignature> {
        self.shares[party].iter().map(|s| self.scheme.partial_sign(s, checkpoint)).collect()
    }

    /// **Blunt certification**: pools the shares of `signers` and combines
    /// when they reach the share threshold.
    ///
    /// # Errors
    ///
    /// [`CryptoError::NotEnoughShares`] when the signers' pooled tickets
    /// fall short (e.g. a corrupt-only coalition).
    pub fn certify_blunt(
        &self,
        checkpoint: &[u8],
        signers: &[usize],
    ) -> Result<Signature, CryptoError> {
        let mut partials: Vec<PartialSignature> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &p in signers {
            if seen.insert(p) {
                partials.extend(self.partials_of(p, checkpoint));
            }
        }
        self.scheme.combine(&partials)
    }

    /// **Tight certification** (Section 4.3): requires an explicit vote set
    /// of weight `> beta * W` *before* any share is released; returns the
    /// certificate produced from the voters' shares.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::NotEnoughShares`] when the voters' weight does not
    ///   clear `beta` (the action must not be performed), or when — despite
    ///   a valid vote — the voters' tickets fall short of the share
    ///   threshold (impossible for `beta >= 2/3` under WR(1/3, 1/2)).
    pub fn certify_tight(
        &self,
        checkpoint: &[u8],
        voters: &[usize],
        beta: Ratio,
    ) -> Result<Signature, CryptoError> {
        let mut dedup: Vec<usize> = voters.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        let weight = self.weights.subset_weight(&dedup);
        // Strictly more than beta * W.
        if weight * beta.den() <= beta.num() * self.weights.total() {
            return Err(CryptoError::NotEnoughShares {
                needed: self.share_threshold(),
                have: 0,
            });
        }
        self.certify_blunt(checkpoint, &dedup)
    }

    /// Verifies a checkpoint certificate.
    pub fn verify(&self, checkpoint: &[u8], sig: &Signature) -> bool {
        self.scheme.verify(&self.pk, checkpoint, sig)
    }
}

/// A toy proof-of-stake chain that checkpoints every `interval` blocks —
/// the composition the paper's Section 6.3 describes.
#[derive(Debug, Clone)]
pub struct CheckpointedChain {
    scheme: CheckpointScheme,
    interval: usize,
    blocks: Vec<Vec<u8>>,
    checkpoints: Vec<(usize, Signature)>,
}

impl CheckpointedChain {
    /// An empty chain checkpointing every `interval` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn new(scheme: CheckpointScheme, interval: usize) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        CheckpointedChain { scheme, interval, blocks: Vec::new(), checkpoints: Vec::new() }
    }

    /// Appends a block; at each interval boundary, the given signer set
    /// certifies the prefix.
    ///
    /// # Errors
    ///
    /// Propagates certificate failures at checkpoint heights.
    pub fn append(&mut self, block: Vec<u8>, signers: &[usize]) -> Result<(), CryptoError> {
        self.blocks.push(block);
        if self.blocks.len().is_multiple_of(self.interval) {
            let tag = self.prefix_tag(self.blocks.len());
            let sig = self.scheme.certify_blunt(&tag, signers)?;
            self.checkpoints.push((self.blocks.len(), sig));
        }
        Ok(())
    }

    /// Number of blocks.
    pub fn height(&self) -> usize {
        self.blocks.len()
    }

    /// Certified checkpoints (height, certificate).
    pub fn checkpoints(&self) -> &[(usize, Signature)] {
        &self.checkpoints
    }

    /// Verifies every checkpoint certificate against the chain prefix.
    pub fn verify_checkpoints(&self) -> bool {
        self.checkpoints.iter().all(|(height, sig)| {
            let tag = self.prefix_tag(*height);
            self.scheme.verify(&tag, sig)
        })
    }

    fn prefix_tag(&self, height: usize) -> Vec<u8> {
        let mut h = swiper_crypto::Hasher::new();
        h.update(b"swiper.checkpoint.prefix");
        h.update(&(height as u64).to_le_bytes());
        for b in &self.blocks[..height] {
            h.update(&(b.len() as u64).to_le_bytes());
            h.update(b);
        }
        h.finalize().as_bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swiper_core::{Swiper, WeightRestriction};

    fn setup(ws: &[u64]) -> CheckpointScheme {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        CheckpointScheme::setup(weights, &sol.assignment, &mut StdRng::seed_from_u64(5))
    }

    #[test]
    fn honest_majority_certifies() {
        let cs = setup(&[40, 30, 15, 10, 5]);
        // Parties {0, 1} hold 70% of the weight.
        let sig = cs.certify_blunt(b"cp-1", &[0, 1]).unwrap();
        assert!(cs.verify(b"cp-1", &sig));
        assert!(!cs.verify(b"cp-2", &sig));
    }

    #[test]
    fn corrupt_minority_cannot_certify() {
        let cs = setup(&[40, 30, 15, 10, 5]);
        // Parties {2, 3, 4} hold 30% (< 1/3): the blunt guarantee says
        // their pooled tickets stay below the share threshold.
        assert!(matches!(
            cs.certify_blunt(b"cp-1", &[2, 3, 4]),
            Err(CryptoError::NotEnoughShares { .. })
        ));
        // Duplicate listings do not help.
        assert!(cs.certify_blunt(b"cp-1", &[2, 2, 3, 3, 4, 4]).is_err());
    }

    #[test]
    fn tight_requires_weighted_vote_quorum() {
        let cs = setup(&[40, 30, 15, 10, 5]);
        // beta = 2/3: voters {0, 1} hold 70% > 2/3 -> certificate.
        let sig = cs.certify_tight(b"cp", &[0, 1], Ratio::of(2, 3)).unwrap();
        assert!(cs.verify(b"cp", &sig));
        // Voters {0, 2, 3} hold 65% <= 2/3 (not strictly more): refused,
        // even though their tickets would clear the blunt threshold.
        assert!(cs.certify_blunt(b"cp", &[0, 2, 3]).is_ok());
        assert!(cs.certify_tight(b"cp", &[0, 2, 3], Ratio::of(2, 3)).is_err());
    }

    #[test]
    fn chain_checkpoints_periodically_and_verifies() {
        let cs = setup(&[40, 30, 15, 10, 5]);
        let mut chain = CheckpointedChain::new(cs, 3);
        for i in 0..10u8 {
            chain.append(vec![i], &[0, 1]).unwrap();
        }
        assert_eq!(chain.height(), 10);
        assert_eq!(chain.checkpoints().len(), 3); // at heights 3, 6, 9
        assert!(chain.verify_checkpoints());
    }

    #[test]
    fn chain_append_fails_without_quorum_at_boundary() {
        let cs = setup(&[40, 30, 15, 10, 5]);
        let mut chain = CheckpointedChain::new(cs, 2);
        chain.append(vec![1], &[4]).unwrap(); // not a boundary: fine
        assert!(chain.append(vec![2], &[4]).is_err()); // boundary, no quorum
    }

    #[test]
    fn certificates_bind_the_prefix() {
        let cs = setup(&[40, 30, 15, 10, 5]);
        let mut a = CheckpointedChain::new(cs.clone(), 2);
        let mut b = CheckpointedChain::new(cs, 2);
        a.append(vec![1], &[0, 1]).unwrap();
        a.append(vec![2], &[0, 1]).unwrap();
        b.append(vec![1], &[0, 1]).unwrap();
        b.append(vec![9], &[0, 1]).unwrap(); // different block 2
        let (_, sig_a) = a.checkpoints()[0];
        // Chain B's prefix tag differs, so A's certificate does not verify
        // against B's prefix.
        let tag_b = b.prefix_tag(2);
        assert!(!a.scheme.verify(&tag_b, &sig_a));
    }
}
