//! Error-corrected broadcast with online error correction
//! (paper Section 5.2; Das–Xiang–Ren "Asynchronous Data Dissemination",
//! reference \[27\]).
//!
//! Unlike AVID, fragments carry **no cryptographic proofs** — recipients
//! hold only a hash of the data and use Reed–Solomon *error correction* to
//! ride out garbage fragments from Byzantine parties. This removes the
//! Merkle machinery (useful without trusted setup) at the price of a
//! lower-rate code.
//!
//! * **Nominal instantiation** (`n = 3t + 1`): `k = t + 1`, `m = n`; after
//!   hearing from all `2t + 1` honest and `e <= t` malicious parties,
//!   `2t + 1 + e >= k + 2e` — online error correction succeeds.
//! * **Weighted instantiation**: Weight Qualification with
//!   `beta_w := 1 - f_w = 2/3` and `beta_n := r/2 + 1/2` for code rate
//!   `r < 1/3`; code `(ceil(r * T), T)`. Honest fragments (`> beta_n T` by
//!   WQ) always cover `k + 2e` for any error fraction `e <= (1 - beta_n)T`.
//!   Resilience is preserved (`f_w = f_n = 1/3`); the Section 5.2 example
//!   (`r = 1/4`, `beta_n = 5/8`) costs x1.33 communication and up to x7.11
//!   computation in the worst case.
//!
//! Long payloads span multiple code *stripes*; a party's fragment carries
//! one symbol per stripe, so a Byzantine party corrupts the same fragment
//! position in every stripe and one error budget `e` covers all stripes.

use std::collections::HashMap;

use swiper_core::{EpochEvent, Ratio, TicketAssignment, VirtualUsers};
use swiper_crypto::hash::{digest, Digest};
use swiper_erasure::shards::{pack_symbols, unpack_symbols};
use swiper_erasure::ReedSolomon;
use swiper_field::F61;
use swiper_net::{Context, MessageSize, NodeId, Protocol};

/// ECBC protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcbcMsg {
    /// Sender hands a party its fragments (and the data hash).
    Propose {
        /// Hash of the disseminated data.
        hash: Digest,
        /// Stripes per fragment.
        stripes: u32,
        /// `(fragment index, one symbol per stripe)` owned by the receiver.
        fragments: Vec<(u32, Vec<u64>)>,
    },
    /// A party relays its fragments to everyone.
    Echo {
        /// Hash of the data being reconstructed.
        hash: Digest,
        /// Stripes per fragment.
        stripes: u32,
        /// The sender's own fragments.
        fragments: Vec<(u32, Vec<u64>)>,
    },
}

impl MessageSize for EcbcMsg {
    fn size_bytes(&self) -> usize {
        match self {
            EcbcMsg::Propose { fragments, .. } | EcbcMsg::Echo { fragments, .. } => {
                37 + fragments.iter().map(|(_, s)| 4 + 8 * s.len()).sum::<usize>()
            }
        }
    }
}

/// Shared instance configuration.
#[derive(Debug, Clone)]
pub struct EcbcConfig {
    mapping: VirtualUsers,
    k: usize,
    m: usize,
}

impl EcbcConfig {
    /// Nominal configuration: `k = t + 1`, `m = n`, `t = floor((n-1)/3)`.
    pub fn nominal(n: usize) -> Self {
        let t = n.saturating_sub(1) / 3;
        let tickets = TicketAssignment::new(vec![1; n]);
        let mapping = VirtualUsers::from_assignment(&tickets).expect("small");
        EcbcConfig { mapping, k: t + 1, m: n }
    }

    /// Weighted configuration from a WQ ticket assignment and code rate
    /// `r` (`k = ceil(r * T)`, `m = T`). The tickets must come from
    /// `WQ(1 - f_w, r/2 + 1/2)` for the liveness guarantee to hold.
    ///
    /// # Panics
    ///
    /// Panics if the ticket total is zero.
    pub fn weighted(tickets: &TicketAssignment, rate: Ratio) -> Self {
        let mapping = VirtualUsers::from_assignment(tickets).expect("fits memory");
        let total = mapping.total();
        assert!(total > 0, "ticket assignment must allocate tickets");
        let k_num = rate.num() * total as u128;
        let k = usize::try_from(k_num.div_ceil(rate.den())).expect("fits").max(1);
        EcbcConfig { mapping, k, m: total }
    }

    /// Reconstruction threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fragment count `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    fn codec(&self) -> ReedSolomon<F61> {
        ReedSolomon::new(self.k, self.m).expect("validated at construction")
    }

    fn owns(&self, party: usize, index: u32) -> bool {
        self.mapping.virtuals_of(party).any(|v| v == index as usize)
    }

    /// Encodes a payload into per-fragment symbol columns
    /// (`columns[i][s]` = symbol of fragment `i` in stripe `s`).
    fn encode_columns(&self, payload: &[u8]) -> (u32, Vec<Vec<F61>>) {
        let symbols = pack_symbols(payload, self.k).expect("k > 0");
        let stripes = symbols.len() / self.k;
        let rs = self.codec();
        let mut columns = vec![Vec::with_capacity(stripes); self.m];
        for stripe in symbols.chunks(self.k) {
            let frags = rs.encode(stripe).expect("k symbols");
            for (i, f) in frags.into_iter().enumerate() {
                columns[i].push(f);
            }
        }
        (stripes as u32, columns)
    }
}

/// Collected fragments for one `(hash, stripes)` reconstruction target.
#[derive(Debug, Default)]
struct Collected {
    by_index: HashMap<u32, Vec<F61>>,
}

/// Sender + receiver node. The sender is the party with `input = Some(..)`.
pub struct EcbcNode {
    config: EcbcConfig,
    sender: NodeId,
    input: Option<Vec<u8>>,
    echoed: bool,
    collected: HashMap<(Digest, u32), Collected>,
    delivered: bool,
    /// Total per-stripe Welch–Berlekamp attempts — the computation metric
    /// behind the paper's x7.11 worst case.
    pub decode_attempts: usize,
}

impl EcbcNode {
    /// A receiver.
    pub fn new(config: EcbcConfig, sender: NodeId) -> Self {
        EcbcNode {
            config,
            sender,
            input: None,
            echoed: false,
            collected: HashMap::new(),
            delivered: false,
            decode_attempts: 0,
        }
    }

    /// The sender with its payload.
    pub fn sender(config: EcbcConfig, sender: NodeId, payload: Vec<u8>) -> Self {
        let mut node = Self::new(config, sender);
        node.input = Some(payload);
        node
    }

    fn try_deliver(&mut self, hash: Digest, stripes: u32, ctx: &mut Context<EcbcMsg>) {
        if self.delivered {
            return;
        }
        let Some(col) = self.collected.get(&(hash, stripes)) else { return };
        let (k, m) = (self.config.k, self.config.m);
        let received = col.by_index.len();
        if received < k {
            return;
        }
        let rs = self.config.codec();
        let max_e = (received - k) / 2;
        'budget: for e in 0..=max_e {
            let mut symbols: Vec<F61> = Vec::with_capacity(k * stripes as usize);
            for stripe in 0..stripes as usize {
                let mut frags: Vec<Option<F61>> = vec![None; m];
                for (&i, column) in &col.by_index {
                    frags[i as usize] = column.get(stripe).copied();
                }
                self.decode_attempts += 1;
                match rs.decode_errors(&frags, e) {
                    Ok(out) => symbols.extend(out.message),
                    Err(_) => continue 'budget,
                }
            }
            if let Ok(data) = unpack_symbols(&symbols) {
                if digest(&data) == hash {
                    self.delivered = true;
                    ctx.output(data);
                    // Totality depends on every honest party eventually
                    // echoing its fragments: halting before our Propose
                    // arrived would starve slower parties of one honest
                    // fragment and leave them unable to absorb the full
                    // error budget. Halt only once the echo duty is done.
                    if self.echoed {
                        ctx.halt();
                    }
                    return;
                }
            }
        }
    }
}

impl Protocol for EcbcNode {
    type Msg = EcbcMsg;

    fn on_start(&mut self, ctx: &mut Context<EcbcMsg>) {
        if let Some(payload) = self.input.clone() {
            let hash = digest(&payload);
            let (stripes, columns) = self.config.encode_columns(&payload);
            for party in 0..ctx.n() {
                let fragments: Vec<(u32, Vec<u64>)> = self
                    .config
                    .mapping
                    .virtuals_of(party)
                    .map(|v| (v as u32, columns[v].iter().map(|f| f.value()).collect()))
                    .collect();
                ctx.send(party, EcbcMsg::Propose { hash, stripes, fragments });
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: EcbcMsg, ctx: &mut Context<EcbcMsg>) {
        match msg {
            EcbcMsg::Propose { hash, stripes, fragments } => {
                if from != self.sender || self.echoed {
                    return;
                }
                // Only fragments this party actually owns are relayed.
                let mine: Vec<(u32, Vec<u64>)> = fragments
                    .into_iter()
                    .filter(|(i, _)| self.config.owns(ctx.me(), *i))
                    .collect();
                self.echoed = true;
                ctx.broadcast(EcbcMsg::Echo { hash, stripes, fragments: mine });
                if self.delivered {
                    ctx.halt();
                }
            }
            EcbcMsg::Echo { hash, stripes, fragments } => {
                let config = &self.config;
                let col = self.collected.entry((hash, stripes)).or_default();
                for (i, vals) in fragments {
                    // A party may only supply its own fragment indices —
                    // Byzantine nodes cannot mask honest fragments.
                    if config.owns(from, i)
                        && vals.len() == stripes as usize
                        && (i as usize) < config.m
                    {
                        col.by_index
                            .entry(i)
                            .or_insert_with(|| vals.iter().map(|&v| F61::new(v)).collect());
                    }
                }
                self.try_deliver(hash, stripes, ctx);
            }
        }
    }

    fn on_reconfigure(&mut self, _event: &EpochEvent, _ctx: &mut Context<EcbcMsg>) {
        // Deliberate no-op: ECBC keeps no quorum trackers — neither
        // identity nor stake ever enters a tally. Its per-sender state is
        // the fragment table, keyed by *code position*, and the `owns`
        // checks bind positions to parties; both are fixed by the minting
        // epoch's `(k, m)` code. An in-flight broadcast must complete
        // under the layout its fragments were encoded for (re-deriving
        // ownership mid-flight would reject honest echoes of already-
        // dealt fragments); new epochs start new broadcasts under their
        // own assignment and weights.
    }
}

/// A Byzantine party that echoes garbage values for its own fragments —
/// the error pattern online error correction exists to absorb.
pub struct GarbageEchoer {
    config: EcbcConfig,
    sender: NodeId,
}

impl GarbageEchoer {
    /// Creates the attacker.
    pub fn new(config: EcbcConfig, sender: NodeId) -> Self {
        GarbageEchoer { config, sender }
    }
}

impl Protocol for GarbageEchoer {
    type Msg = EcbcMsg;

    fn on_start(&mut self, _ctx: &mut Context<EcbcMsg>) {}

    fn on_message(&mut self, from: NodeId, msg: EcbcMsg, ctx: &mut Context<EcbcMsg>) {
        if let EcbcMsg::Propose { hash, stripes, fragments } = msg {
            if from != self.sender {
                return;
            }
            let garbage: Vec<(u32, Vec<u64>)> = fragments
                .into_iter()
                .filter(|(i, _)| self.config.owns(ctx.me(), *i))
                .map(|(i, vals)| {
                    (i, vals.into_iter().map(|v| v.wrapping_add(0xBAD_C0DE)).collect())
                })
                .collect();
            ctx.broadcast(EcbcMsg::Echo { hash, stripes, fragments: garbage });
        }
    }
}

#[cfg(test)]
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;
    use swiper_core::{Swiper, WeightQualification, Weights};
    use swiper_net::adversary::Silent;
    use swiper_net::Simulation;

    fn run_nominal(
        n: usize,
        blob: &[u8],
        garbage: usize,
        silent: usize,
        seed: u64,
    ) -> swiper_net::RunReport {
        let config = EcbcConfig::nominal(n);
        let mut nodes: Vec<Box<dyn Protocol<Msg = EcbcMsg>>> = Vec::new();
        nodes.push(Box::new(EcbcNode::sender(config.clone(), 0, blob.to_vec())));
        for i in 1..n {
            if i <= garbage {
                nodes.push(Box::new(GarbageEchoer::new(config.clone(), 0)));
            } else if i <= garbage + silent {
                nodes.push(Box::new(Silent::new()));
            } else {
                nodes.push(Box::new(EcbcNode::new(config.clone(), 0)));
            }
        }
        Simulation::new(nodes, seed).run()
    }

    #[test]
    fn all_honest_deliver() {
        let blob = b"online error correction over multiple stripes of data";
        let report = run_nominal(4, blob, 0, 0, 3);
        for (i, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Some(blob.as_ref()), "node {i}");
        }
    }

    #[test]
    fn rides_out_t_garbage_echoers() {
        // n = 7, t = 2 garbage: honest nodes decode through the errors.
        let blob = b"corrupted fragments corrected";
        let report = run_nominal(7, blob, 2, 0, 9);
        for i in [0usize, 3, 4, 5, 6] {
            assert_eq!(report.outputs[i].as_deref(), Some(blob.as_ref()), "node {i}");
        }
    }

    #[test]
    fn rides_out_mixed_garbage_and_silence() {
        let blob = b"mixed faults";
        // n = 10, t = 3: 1 garbage + 2 silent.
        let report = run_nominal(10, blob, 1, 2, 15);
        for i in [0usize, 4, 5, 6, 7, 8, 9] {
            assert_eq!(report.outputs[i].as_deref(), Some(blob.as_ref()), "node {i}");
        }
    }

    #[test]
    fn garbage_costs_extra_decode_attempts() {
        // The computation overhead the paper accounts for: with garbage
        // echoers present, parties burn additional decode attempts.
        let blob = b"attempt accounting";
        let clean = run_nominal(7, blob, 0, 0, 9);
        let dirty = run_nominal(7, blob, 2, 0, 9);
        // Both deliver; dirty run cannot be cheaper in events.
        assert!(dirty.events > 0 && clean.events > 0);
        for i in [0usize, 3, 4, 5, 6] {
            assert_eq!(dirty.outputs[i].as_deref(), Some(blob.as_ref()));
        }
    }

    #[test]
    fn weighted_ecbc_with_wq_tickets() {
        // Section 5.2 instantiation: beta_w = 2/3, r = 1/4, beta_n = 5/8.
        let weights = Weights::new(vec![30, 25, 20, 15, 10]).unwrap();
        let wq = WeightQualification::new(Ratio::of(2, 3), Ratio::of(5, 8)).unwrap();
        let sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
        let config = EcbcConfig::weighted(&sol.assignment, Ratio::of(1, 4));
        let blob = b"weighted error-corrected broadcast".to_vec();
        let mut nodes: Vec<Box<dyn Protocol<Msg = EcbcMsg>>> = Vec::new();
        nodes.push(Box::new(EcbcNode::sender(config.clone(), 0, blob.clone())));
        for _ in 1..5 {
            nodes.push(Box::new(EcbcNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, 31).run();
        for (i, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Some(blob.as_slice()), "party {i}");
        }
    }

    #[test]
    fn weighted_ecbc_tolerates_garbage_weight() {
        let weights = Weights::new(vec![30, 30, 20, 20]).unwrap();
        let wq = WeightQualification::new(Ratio::of(2, 3), Ratio::of(5, 8)).unwrap();
        let sol = Swiper::new().solve_qualification(&weights, &wq).unwrap();
        let config = EcbcConfig::weighted(&sol.assignment, Ratio::of(1, 4));
        let blob = b"garbage-tolerant weighted".to_vec();
        let mut nodes: Vec<Box<dyn Protocol<Msg = EcbcMsg>>> = Vec::new();
        nodes.push(Box::new(EcbcNode::sender(config.clone(), 0, blob.clone())));
        // Party 1 (30% of weight < 1/3) echoes garbage.
        nodes.push(Box::new(GarbageEchoer::new(config.clone(), 0)));
        nodes.push(Box::new(EcbcNode::new(config.clone(), 0)));
        nodes.push(Box::new(EcbcNode::new(config.clone(), 0)));
        let report = Simulation::new(nodes, 37).run();
        for i in [0usize, 2, 3] {
            assert_eq!(report.outputs[i].as_deref(), Some(blob.as_slice()), "party {i}");
        }
    }

    #[test]
    fn wrong_hash_never_delivers_forged_data() {
        // A Byzantine sender cannot make parties deliver data that does not
        // match the hash: the decoder's check is the hash itself. Here the
        // "sender" proposes fragments of X under hash(Y).
        struct LyingSender {
            config: EcbcConfig,
        }
        impl Protocol for LyingSender {
            type Msg = EcbcMsg;
            fn on_start(&mut self, ctx: &mut Context<EcbcMsg>) {
                let (stripes, columns) = self.config.encode_columns(b"real payload");
                let wrong_hash = digest(b"something else entirely");
                for party in 0..ctx.n() {
                    let fragments: Vec<(u32, Vec<u64>)> = self
                        .config
                        .mapping
                        .virtuals_of(party)
                        .map(|v| (v as u32, columns[v].iter().map(|f| f.value()).collect()))
                        .collect();
                    ctx.send(party, EcbcMsg::Propose { hash: wrong_hash, stripes, fragments });
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: EcbcMsg, _c: &mut Context<EcbcMsg>) {}
        }
        let config = EcbcConfig::nominal(4);
        let mut nodes: Vec<Box<dyn Protocol<Msg = EcbcMsg>>> = Vec::new();
        nodes.push(Box::new(LyingSender { config: config.clone() }));
        for _ in 1..4 {
            nodes.push(Box::new(EcbcNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, 41).run();
        for i in 1..4 {
            assert!(report.outputs[i].is_none(), "node {i} must not deliver");
        }
    }
}
