//! Bracha asynchronous reliable broadcast, nominal and weighted.
//!
//! The classic three-phase protocol (INITIAL / ECHO / READY). Nominal
//! thresholds for `n = 3t + 1` — `2t+1` echoes, `t+1` ready amplification,
//! `2t+1` ready delivery — translate to the weighted model by *weighted
//! voting* alone (paper Section 1.2): weight `> (1+f_w)/2` for echoes,
//! `> f_w` for amplification, `> 2 f_w` for delivery, with `f_w = 1/3`.
//!
//! Bracha RBC sends the whole payload `O(n^2)` times; the erasure-coded
//! broadcast in [`crate::avid`] is the communication-efficient alternative
//! the paper's Section 5.1 weights with WQ.

use std::collections::HashMap;

use swiper_core::{EpochEvent, Ratio, StableId, Weights};
use swiper_crypto::hash::{digest, Digest};
use swiper_net::{Context, MessageSize, NodeId, Protocol};

use crate::quorum::{IdentityView, Quorum, QuorumTracker, Roster};

/// Bracha protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrachaMsg {
    /// Sender's initial payload.
    Initial(Vec<u8>),
    /// Echo of the payload (keyed by digest; payload carried for delivery).
    Echo(Digest, Vec<u8>),
    /// Ready declaration.
    Ready(Digest, Vec<u8>),
}

impl MessageSize for BrachaMsg {
    fn size_bytes(&self) -> usize {
        match self {
            BrachaMsg::Initial(p) => 1 + p.len(),
            BrachaMsg::Echo(_, p) | BrachaMsg::Ready(_, p) => 1 + 32 + p.len(),
        }
    }
}

/// Quorum configuration shared by all Bracha nodes of one instance.
#[derive(Debug, Clone)]
pub struct BrachaConfig {
    n: usize,
    weights: Option<Weights>,
    /// How delivery-time sender ids map to stable voter identities.
    view: IdentityView,
}

impl BrachaConfig {
    /// Nominal configuration for `n` parties (`t < n/3` tolerated).
    pub fn nominal(n: usize) -> Self {
        BrachaConfig { n, weights: None, view: IdentityView::Party }
    }

    /// Weighted configuration (`f_w = 1/3` of total weight tolerated).
    pub fn weighted(weights: Weights) -> Self {
        BrachaConfig { n: weights.len(), weights: Some(weights), view: IdentityView::Party }
    }

    /// Epoch-aware nominal configuration over the black-box wrapper's
    /// shared [`Roster`]: votes are keyed by stable `(party, offset)`
    /// identity, quorum thresholds track the roster's *current* virtual
    /// population, and [`Protocol::on_reconfigure`] migrates accumulated
    /// votes across renumbering deltas (retired voters shed, survivors
    /// kept). This is the form that stays safe *and live* under mixed
    /// join/leave epoch reconfigurations.
    pub fn epochal(roster: Roster) -> Self {
        BrachaConfig { n: roster.total(), weights: None, view: IdentityView::Virtual(roster) }
    }

    fn quorum(&self, threshold: Ratio) -> Quorum {
        match &self.weights {
            None => {
                let n = self.view.roster().map_or(self.n, Roster::total);
                Quorum::nominal(n, threshold)
            }
            Some(w) => Quorum::weighted(w.clone(), threshold),
        }
    }

    /// Echo quorum: `> (1 + f_w)/2 = 2/3` of weight (or `> 2n/3` parties).
    fn echo_quorum(&self) -> Quorum {
        self.quorum(Ratio::of(2, 3))
    }

    /// Ready amplification: `> f_w = 1/3`.
    fn amplify_quorum(&self) -> Quorum {
        self.quorum(Ratio::of(1, 3))
    }

    /// Delivery: `> 2 f_w = 2/3`.
    fn deliver_quorum(&self) -> Quorum {
        self.quorum(Ratio::of(2, 3))
    }
}

/// One Bracha node.
pub struct BrachaNode {
    config: BrachaConfig,
    /// The designated sender's *stable* identity: dense sender ids are a
    /// per-epoch artifact, so the INITIAL check resolves the delivery-time
    /// id through the identity view and compares coordinates.
    sender: StableId,
    /// `Some(payload)` when this node is the sender.
    input: Option<Vec<u8>>,
    echoed: bool,
    ready_sent: bool,
    delivered: bool,
    /// What this node last echoed / declared ready, retained so the
    /// epochal form can re-announce it to joiners spawned mid-flight
    /// (stable-keyed trackers make the duplicates free).
    echo_payload: Option<(Digest, Vec<u8>)>,
    ready_payload: Option<(Digest, Vec<u8>)>,
    echo_quorums: HashMap<Digest, Quorum>,
    ready_amplify: HashMap<Digest, Quorum>,
    ready_deliver: HashMap<Digest, Quorum>,
}

impl BrachaNode {
    /// A non-sender node waiting for `sender`'s broadcast (`sender` is the
    /// dense id under the construction-time numbering). Epochal factories
    /// that can spawn joiners *after* a renumbering delta must use
    /// [`BrachaNode::with_sender_id`] instead: a dense id resolved at
    /// spawn time may name a different logical user than it did at epoch
    /// 0.
    pub fn new(config: BrachaConfig, sender: NodeId) -> Self {
        let sender = config.view.stable_of(sender);
        Self::with_sender_id(config, sender)
    }

    /// A non-sender node pinned to the designated sender's epoch-stable
    /// identity — the renumbering-proof constructor (derive the id from
    /// the epoch-0 mapping, e.g. `mapping.stable_of(0)`).
    pub fn with_sender_id(config: BrachaConfig, sender: StableId) -> Self {
        BrachaNode {
            config,
            sender,
            input: None,
            echoed: false,
            ready_sent: false,
            delivered: false,
            echo_payload: None,
            ready_payload: None,
            echo_quorums: HashMap::new(),
            ready_amplify: HashMap::new(),
            ready_deliver: HashMap::new(),
        }
    }

    /// The sender node with its payload.
    pub fn sender(config: BrachaConfig, sender: NodeId, payload: Vec<u8>) -> Self {
        let mut node = Self::new(config, sender);
        node.input = Some(payload);
        node
    }

    /// The sender node pinned by stable identity (see
    /// [`BrachaNode::with_sender_id`]).
    pub fn sender_with_id(config: BrachaConfig, sender: StableId, payload: Vec<u8>) -> Self {
        let mut node = Self::with_sender_id(config, sender);
        node.input = Some(payload);
        node
    }

    /// Re-asserts everything this node already said (its INITIAL when it
    /// is the sender, its ECHO, its READY). Duplicates are free votes
    /// that return the tracker's current verdict, so both epoch-boundary
    /// paths lean on this: the party regime to fire quorums completed by
    /// a reweigh, the epochal regime to let joiners catch up.
    fn reannounce(&self, ctx: &mut Context<BrachaMsg>) {
        if let Some(payload) = self.input.clone() {
            ctx.broadcast(BrachaMsg::Initial(payload));
        }
        if let Some((d, payload)) = self.echo_payload.clone() {
            ctx.broadcast(BrachaMsg::Echo(d, payload));
        }
        if let Some((d, payload)) = self.ready_payload.clone() {
            ctx.broadcast(BrachaMsg::Ready(d, payload));
        }
    }

    fn maybe_ready(&mut self, d: Digest, payload: &[u8], ctx: &mut Context<BrachaMsg>) {
        if !self.ready_sent {
            self.ready_sent = true;
            self.ready_payload = Some((d, payload.to_vec()));
            ctx.broadcast(BrachaMsg::Ready(d, payload.to_vec()));
        }
    }
}

impl Protocol for BrachaNode {
    type Msg = BrachaMsg;

    fn on_start(&mut self, ctx: &mut Context<BrachaMsg>) {
        if let Some(payload) = self.input.clone() {
            ctx.broadcast(BrachaMsg::Initial(payload));
        }
    }

    fn on_message(&mut self, from: NodeId, msg: BrachaMsg, ctx: &mut Context<BrachaMsg>) {
        let voter = self.config.view.stable_of(from);
        match msg {
            BrachaMsg::Initial(payload) => {
                // Only the designated sender's first INITIAL is echoed.
                if voter == self.sender && !self.echoed {
                    self.echoed = true;
                    let d = digest(&payload);
                    self.echo_payload = Some((d, payload.clone()));
                    ctx.broadcast(BrachaMsg::Echo(d, payload));
                }
            }
            BrachaMsg::Echo(d, payload) => {
                if digest(&payload) != d {
                    return; // malformed
                }
                let q = self.echo_quorums.entry(d).or_insert_with(|| self.config.echo_quorum());
                if q.vote(voter) {
                    self.maybe_ready(d, &payload, ctx);
                }
            }
            BrachaMsg::Ready(d, payload) => {
                if digest(&payload) != d {
                    return;
                }
                // Amplification: join READY once weight > f_w supports it.
                let amplify =
                    self.ready_amplify.entry(d).or_insert_with(|| self.config.amplify_quorum());
                if amplify.vote(voter) {
                    self.maybe_ready(d, &payload, ctx);
                }
                // Delivery: the bigger `> 2 f_w` quorum.
                let deliver =
                    self.ready_deliver.entry(d).or_insert_with(|| self.config.deliver_quorum());
                if deliver.vote(voter) && !self.delivered {
                    self.delivered = true;
                    ctx.output(payload);
                    ctx.halt();
                }
            }
        }
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<BrachaMsg>) {
        // Weighted party-keyed instances refresh their stake: the event's
        // weight vector replaces the construction-time one in the config
        // (so quorums minted after the boundary start current) and every
        // accumulated tracker re-tallies its kept votes under it — stale
        // stake can neither complete nor hold open a quorum.
        let weighted = self.config.weights.is_some();
        if let Some(weights) = &mut self.config.weights {
            let _ = event.refresh_weights(weights);
        }
        let Some(roster) = self.config.view.roster().cloned() else {
            for q in self
                .echo_quorums
                .values_mut()
                .chain(self.ready_amplify.values_mut())
                .chain(self.ready_deliver.values_mut())
            {
                q.reweigh(event);
            }
            // A reweigh can also COMPLETE a pending quorum (stake grew
            // onto already-recorded voters), but every quorum transition
            // lives in the vote path, where the payload rides the
            // message — and honest nodes vote exactly once. Re-assert
            // what this node already said: duplicates are free votes
            // that return the tracker's current verdict, so every peer
            // (and this node, via self-delivery) re-runs its transitions
            // under the new stake with the payload in hand. Only a
            // weighted instance under actual stake drift can be
            // boundary-completed, so the nominal party regime (and
            // stake-stationary boundaries) skip the O(n) re-broadcasts.
            if weighted && event.weights_changed() {
                self.reannounce(ctx);
            }
            return;
        };
        // The epochal (roster-hosted nominal) form migrates every tracker
        // onto the roster's new epoch — survivors' votes carry (stable
        // keys never renumber), retired voters are shed, and thresholds
        // re-derive from the new total.
        for q in self
            .echo_quorums
            .values_mut()
            .chain(self.ready_amplify.values_mut())
            .chain(self.ready_deliver.values_mut())
        {
            q.migrate(&roster);
        }
        // Catch-up re-announcement: voters spawned this epoch missed the
        // pre-boundary traffic, and with enough joins the 2/3 quorums
        // over the *new* population are unreachable from survivor votes
        // alone. Re-broadcasting what this node already said lets joiners
        // participate; stable-keyed trackers make every duplicate a
        // no-op, so the re-announcement can never inflate a tally — this
        // is precisely the move the dense-id design could not afford.
        self.reannounce(ctx);
    }
}

/// A Byzantine sender that equivocates: sends payload `a` to even-numbered
/// nodes and payload `b` to odd ones.
pub struct EquivocatingSender {
    /// Payload for even-numbered receivers.
    pub a: Vec<u8>,
    /// Payload for odd-numbered receivers.
    pub b: Vec<u8>,
}

impl Protocol for EquivocatingSender {
    type Msg = BrachaMsg;

    fn on_start(&mut self, ctx: &mut Context<BrachaMsg>) {
        for to in 0..ctx.n() {
            let payload = if to % 2 == 0 { self.a.clone() } else { self.b.clone() };
            ctx.send(to, BrachaMsg::Initial(payload));
        }
    }

    fn on_message(&mut self, _from: NodeId, _msg: BrachaMsg, _ctx: &mut Context<BrachaMsg>) {}
}

#[cfg(test)]
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;
    use swiper_net::adversary::Silent;
    use swiper_net::{DelayModel, Simulation};

    fn run_nominal(n: usize, byz_silent: usize, seed: u64) -> swiper_net::RunReport {
        let config = BrachaConfig::nominal(n);
        let payload = b"broadcast me".to_vec();
        let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
        nodes.push(Box::new(BrachaNode::sender(config.clone(), 0, payload)));
        for i in 1..n {
            if i > n - 1 - byz_silent {
                nodes.push(Box::new(Silent::new()));
            } else {
                nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
            }
        }
        Simulation::new(nodes, seed).run()
    }

    /// Zoo regression (`SelectiveAck`): the sender is wrapped so its
    /// INITIAL/ECHO/READY reach only a chosen quorum of `2t+1 = 5` of the
    /// 7 parties. The two unchosen parties never see INITIAL, never echo,
    /// and collect only 4 of the 5 READYs the delivery quorum needs —
    /// they can cross it only through the **READY amplification** path
    /// (`> f_w` readies ⇒ join READY), the defense under test. Revert
    /// amplification and the unchosen parties stall one ready short of
    /// delivery forever, on every seed.
    #[test]
    fn selective_ack_sender_cannot_stall_unchosen_parties() {
        use swiper_net::adversary::SelectiveAck;
        let config = BrachaConfig::nominal(7); // t = 2, one Byzantine used
        let payload = b"stall the rest".to_vec();
        for seed in 0..25u64 {
            let chosen = vec![0usize, 1, 2, 3, 4];
            let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
            nodes.push(Box::new(SelectiveAck::new(
                BrachaNode::sender(config.clone(), 0, payload.clone()),
                chosen,
            )));
            for _ in 1..7 {
                nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
            }
            let report = Simulation::new(nodes, seed).run();
            for i in 1..7 {
                assert_eq!(
                    report.outputs[i].as_deref(),
                    Some(payload.as_slice()),
                    "party {i} stalled at seed {seed} without amplification"
                );
            }
        }
    }

    #[test]
    fn honest_sender_all_deliver() {
        let report = run_nominal(4, 0, 7);
        for out in &report.outputs {
            assert_eq!(out.as_deref(), Some(b"broadcast me".as_ref()));
        }
    }

    #[test]
    fn tolerates_t_silent_nodes() {
        // n = 7, t = 2 silent: the 5 honest nodes still deliver.
        let report = run_nominal(7, 2, 21);
        for i in 0..5 {
            assert_eq!(
                report.outputs[i].as_deref(),
                Some(b"broadcast me".as_ref()),
                "node {i}"
            );
        }
    }

    #[test]
    fn equivocating_sender_cannot_split_honest_nodes() {
        for seed in 0..10 {
            let config = BrachaConfig::nominal(4);
            let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
            nodes.push(Box::new(EquivocatingSender { a: b"A".to_vec(), b: b"B".to_vec() }));
            for _ in 1..4 {
                nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
            }
            let report = Simulation::new(nodes, seed).run();
            // Agreement: no two honest nodes deliver different values
            // (delivering nothing is allowed under an equivocating sender).
            assert!(report.agreement_among(&[1, 2, 3]), "seed {seed}");
        }
    }

    #[test]
    fn weighted_whale_quorums_deliver() {
        // A 4-party weighted instance where one party holds most weight.
        let weights = Weights::new(vec![70, 10, 10, 10]).unwrap();
        let config = BrachaConfig::weighted(weights);
        let payload = b"weighted".to_vec();
        let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
        nodes.push(Box::new(BrachaNode::sender(config.clone(), 0, payload)));
        for _ in 1..4 {
            nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, 3).run();
        for out in &report.outputs {
            assert_eq!(out.as_deref(), Some(b"weighted".as_ref()));
        }
    }

    #[test]
    fn weighted_tolerates_heavy_silent_minority() {
        // Silent parties hold 30% of weight (< 1/3): still live.
        let weights = Weights::new(vec![40, 30, 15, 15]).unwrap();
        let config = BrachaConfig::weighted(weights);
        let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
        nodes.push(Box::new(BrachaNode::sender(config.clone(), 0, b"x".to_vec())));
        nodes.push(Box::new(Silent::new())); // 30% silent
        nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
        nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
        let report = Simulation::new(nodes, 5).run();
        assert_eq!(report.outputs[0].as_deref(), Some(b"x".as_ref()));
        assert_eq!(report.outputs[2].as_deref(), Some(b"x".as_ref()));
        assert_eq!(report.outputs[3].as_deref(), Some(b"x".as_ref()));
    }

    #[test]
    fn payload_bytes_scale_quadratically() {
        // Bracha's cost: every node rebroadcasts the payload; total bytes
        // is Omega(n^2 * |M|). This is the baseline AVID beats.
        let big = vec![0xAB; 1000];
        let config = BrachaConfig::nominal(4);
        let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
        nodes.push(Box::new(BrachaNode::sender(config.clone(), 0, big)));
        for _ in 1..4 {
            nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
        }
        let report = Simulation::new(nodes, 9).with_delay(DelayModel::Fixed(1)).run();
        // >= n^2 payload-bearing messages (4 initial + 16 echo + 16 ready).
        assert!(report.metrics.total_bytes() >= (4 + 16 + 16) * 1000);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_nominal(5, 1, 13);
        let b = run_nominal(5, 1, 13);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.events, b.events);
    }
}
