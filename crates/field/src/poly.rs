//! Polynomial utilities over a generic [`Field`]: evaluation, arithmetic,
//! Lagrange interpolation and batch inversion.
//!
//! These are the building blocks of both Reed–Solomon coding
//! (`swiper-erasure`) and Shamir secret sharing (`swiper-crypto`).

use crate::traits::Field;

/// Evaluates `coeffs[0] + coeffs[1] x + ... + coeffs[d] x^d` by Horner.
pub fn eval<F: Field>(coeffs: &[F], x: F) -> F {
    let mut acc = F::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// Adds two coefficient vectors.
pub fn add<F: Field>(a: &[F], b: &[F]) -> Vec<F> {
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| {
            let x = a.get(i).copied().unwrap_or(F::ZERO);
            let y = b.get(i).copied().unwrap_or(F::ZERO);
            x + y
        })
        .collect()
}

/// Multiplies two coefficient vectors (schoolbook).
pub fn mul<F: Field>(a: &[F], b: &[F]) -> Vec<F> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![F::ZERO; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x.is_zero() {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] = out[i + j] + x * y;
        }
    }
    out
}

/// Multiplies every coefficient by a scalar.
pub fn scale<F: Field>(a: &[F], s: F) -> Vec<F> {
    a.iter().map(|&c| c * s).collect()
}

/// Trims trailing zero coefficients (canonical degree form).
pub fn normalize<F: Field>(mut a: Vec<F>) -> Vec<F> {
    while a.last().is_some_and(|c| c.is_zero()) {
        a.pop();
    }
    a
}

/// Degree of the polynomial, or `None` for the zero polynomial.
pub fn degree<F: Field>(a: &[F]) -> Option<usize> {
    a.iter().rposition(|c| !c.is_zero())
}

/// Polynomial long division: returns `(quotient, remainder)`.
///
/// # Panics
///
/// Panics if `b` is the zero polynomial.
pub fn div_rem<F: Field>(a: &[F], b: &[F]) -> (Vec<F>, Vec<F>) {
    let db = degree(b).expect("division by the zero polynomial");
    let lead_inv = b[db].inv().expect("leading coefficient is non-zero");
    let mut rem: Vec<F> = a.to_vec();
    let da = match degree(&rem) {
        Some(d) if d >= db => d,
        _ => return (Vec::new(), normalize(rem)),
    };
    let mut quot = vec![F::ZERO; da - db + 1];
    for k in (0..=da - db).rev() {
        let coeff = rem.get(db + k).copied().unwrap_or(F::ZERO) * lead_inv;
        quot[k] = coeff;
        if coeff.is_zero() {
            continue;
        }
        for (j, &bc) in b.iter().enumerate().take(db + 1) {
            let idx = j + k;
            rem[idx] = rem[idx] - coeff * bc;
        }
    }
    (normalize(quot), normalize(rem))
}

/// Inverts a batch of non-zero elements with a single field inversion
/// (Montgomery's trick).
///
/// # Panics
///
/// Panics if any element is zero.
pub fn batch_invert<F: Field>(xs: &[F]) -> Vec<F> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut prefix = Vec::with_capacity(xs.len());
    let mut acc = F::ONE;
    for &x in xs {
        assert!(!x.is_zero(), "batch_invert of zero element");
        prefix.push(acc);
        acc = acc * x;
    }
    let mut inv_acc = acc.inv().expect("product of non-zero elements is non-zero");
    let mut out = vec![F::ZERO; xs.len()];
    for i in (0..xs.len()).rev() {
        out[i] = prefix[i] * inv_acc;
        inv_acc = inv_acc * xs[i];
    }
    out
}

/// Lagrange-interpolates the unique polynomial of degree `< points.len()`
/// through the given `(x, y)` pairs and returns its coefficients.
///
/// # Panics
///
/// Panics if two `x` values coincide.
pub fn interpolate<F: Field>(points: &[(F, F)]) -> Vec<F> {
    let k = points.len();
    if k == 0 {
        return Vec::new();
    }
    // O(k^2), not the naive O(k^3): build the master polynomial
    // `M(x) = prod_j (x - x_j)` once, then derive each Lagrange numerator
    // `N_i = M / (x - x_i)` by synthetic division (O(k) apiece) and invert
    // all denominators `N_i(x_i) = prod_{j != i} (x_i - x_j)` with a
    // single field inversion. The cubic version dominated Reed–Solomon
    // encoding wall-clock at real chain sizes (k in the hundreds).
    let mut master = vec![F::ONE];
    for &(xj, _) in points {
        master = mul(&master, &[-xj, F::ONE]);
    }
    let mut numerators = Vec::with_capacity(k);
    let mut denoms = Vec::with_capacity(k);
    for &(xi, _) in points {
        // Synthetic (Horner) division of M by (x - x_i); exact because
        // x_i is a root of M.
        let mut n = vec![F::ZERO; k];
        let mut carry = F::ZERO;
        for d in (0..k).rev() {
            carry = master[d + 1] + carry * xi;
            n[d] = carry;
        }
        let di = eval(&n, xi);
        assert!(!di.is_zero(), "duplicate interpolation point");
        numerators.push(n);
        denoms.push(di);
    }
    let inverses = batch_invert(&denoms);
    let mut acc = vec![F::ZERO; k];
    for ((n, inv), &(_, yi)) in numerators.iter().zip(inverses).zip(points) {
        let s = inv * yi;
        for (a, &c) in acc.iter_mut().zip(n) {
            *a = *a + c * s;
        }
    }
    normalize(acc)
}

/// Evaluates the interpolating polynomial through `points` at a single `x`
/// without materializing coefficients (`O(k^2)`).
///
/// # Panics
///
/// Panics if two `x` values coincide.
pub fn interpolate_at<F: Field>(points: &[(F, F)], x: F) -> F {
    let mut acc = F::ZERO;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut num = F::ONE;
        let mut den = F::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            num = num * (x - xj);
            let d = xi - xj;
            assert!(!d.is_zero(), "duplicate interpolation point");
            den = den * d;
        }
        acc = acc + yi * num * den.inv().expect("distinct points");
    }
    acc
}

/// Lagrange coefficients `lambda_i` such that `f(at) = sum lambda_i y_i` for
/// any polynomial `f` of degree `< xs.len()` with `f(x_i) = y_i`. Used by
/// threshold-share combination in `swiper-crypto`.
///
/// # Panics
///
/// Panics if two `x` values coincide.
pub fn lagrange_coefficients<F: Field>(xs: &[F], at: F) -> Vec<F> {
    let mut out = Vec::with_capacity(xs.len());
    for (i, &xi) in xs.iter().enumerate() {
        let mut num = F::ONE;
        let mut den = F::ONE;
        for (j, &xj) in xs.iter().enumerate() {
            if i == j {
                continue;
            }
            num = num * (at - xj);
            let d = xi - xj;
            assert!(!d.is_zero(), "duplicate interpolation point");
            den = den * d;
        }
        out.push(num * den.inv().expect("distinct points"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf256, F61};
    use proptest::prelude::*;

    fn f(v: u64) -> F61 {
        F61::new(v)
    }

    #[test]
    fn eval_constant_and_linear() {
        assert_eq!(eval(&[f(7)], f(100)), f(7));
        // 3 + 2x at x = 5 -> 13
        assert_eq!(eval(&[f(3), f(2)], f(5)), f(13));
        assert_eq!(eval::<F61>(&[], f(5)), F61::ZERO);
    }

    #[test]
    fn mul_matches_known() {
        // (1 + x)(1 - x) = 1 - x^2 over F61.
        let a = [f(1), f(1)];
        let b = [f(1), -f(1)];
        let prod = mul(&a, &b);
        assert_eq!(prod, vec![f(1), f(0), -f(1)]);
    }

    #[test]
    fn div_rem_round_trips() {
        let a = [f(5), f(0), f(3), f(2)]; // 5 + 3x^2 + 2x^3
        let b = [f(1), f(1)]; // 1 + x
        let (q, r) = div_rem(&a, &b);
        let back = add(&mul(&q, &b), &r);
        assert_eq!(normalize(back), normalize(a.to_vec()));
        assert!(degree(&r).is_none_or(|d| d < 1));
    }

    #[test]
    fn interpolate_recovers_polynomial() {
        let coeffs = vec![f(42), f(7), f(13), f(99)];
        let pts: Vec<(F61, F61)> = (1..=4).map(|i| (f(i), eval(&coeffs, f(i)))).collect();
        assert_eq!(interpolate(&pts), coeffs);
    }

    #[test]
    fn interpolate_at_matches_full_interpolation() {
        let coeffs = vec![f(1), f(2), f(3)];
        let pts: Vec<(F61, F61)> = (5..=7).map(|i| (f(i), eval(&coeffs, f(i)))).collect();
        for x in 0..10u64 {
            assert_eq!(interpolate_at(&pts, f(x)), eval(&coeffs, f(x)));
        }
    }

    #[test]
    fn lagrange_coefficients_reconstruct_secret() {
        // Shamir-style: secret at x=0, shares at x=1..3 for degree-2 poly.
        let coeffs = vec![f(1234), f(56), f(78)];
        let xs: Vec<F61> = (1..=3).map(f).collect();
        let lambdas = lagrange_coefficients(&xs, F61::ZERO);
        let mut secret = F61::ZERO;
        for (i, &x) in xs.iter().enumerate() {
            secret = secret + lambdas[i] * eval(&coeffs, x);
        }
        assert_eq!(secret, f(1234));
    }

    #[test]
    fn batch_invert_matches_individual() {
        let xs: Vec<F61> = (1..50).map(f).collect();
        let invs = batch_invert(&xs);
        for (x, inv) in xs.iter().zip(&invs) {
            assert_eq!(*x * *inv, F61::ONE);
        }
        assert!(batch_invert::<F61>(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch_invert of zero")]
    fn batch_invert_rejects_zero() {
        let _ = batch_invert(&[f(1), F61::ZERO]);
    }

    #[test]
    #[should_panic(expected = "duplicate interpolation point")]
    fn duplicate_points_panic() {
        let _ = interpolate(&[(f(1), f(2)), (f(1), f(3))]);
    }

    #[test]
    fn works_over_gf256_too() {
        let coeffs: Vec<Gf256> = vec![Gf256::new(0x12), Gf256::new(0x34), Gf256::new(0x56)];
        let pts: Vec<(Gf256, Gf256)> = (0..3)
            .map(|i| {
                let x = Gf256::eval_point(i);
                (x, eval(&coeffs, x))
            })
            .collect();
        assert_eq!(interpolate(&pts), coeffs);
    }

    proptest! {
        #[test]
        fn interpolation_round_trip_random(
            coeffs in proptest::collection::vec(0u64..1_000_000, 1..8),
        ) {
            let coeffs: Vec<F61> = coeffs.into_iter().map(F61::new).collect();
            let k = coeffs.len();
            let pts: Vec<(F61, F61)> = (0..k)
                .map(|i| {
                    let x = F61::eval_point(i);
                    (x, eval(&coeffs, x))
                })
                .collect();
            let got = interpolate(&pts);
            prop_assert_eq!(normalize(got), normalize(coeffs));
        }

        #[test]
        fn division_invariant(
            a in proptest::collection::vec(0u64..100, 1..8),
            b in proptest::collection::vec(0u64..100, 1..5),
        ) {
            let a: Vec<F61> = a.into_iter().map(F61::new).collect();
            let b: Vec<F61> = b.into_iter().map(F61::new).collect();
            prop_assume!(degree(&b).is_some());
            let (q, r) = div_rem(&a, &b);
            let back = normalize(add(&mul(&q, &b), &r));
            prop_assert_eq!(back, normalize(a));
            if let Some(dr) = degree(&r) {
                prop_assert!(dr < degree(&b).unwrap());
            }
        }
    }
}
