//! The [`Field`] abstraction shared by codecs and secret sharing.

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Add, Mul, Neg, Sub};

/// A finite field element.
///
/// Arithmetic is expressed through the standard operator traits so generic
/// code reads naturally (`a * b + c`). Implementations must be cheap `Copy`
/// value types; all operations are total except [`Field::inv`], which
/// returns `None` for zero.
pub trait Field:
    Copy
    + Clone
    + Debug
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Number of elements in the field.
    const ORDER: u128;

    /// Multiplicative inverse; `None` for zero.
    fn inv(self) -> Option<Self>;

    /// Canonical embedding of an integer (reduced modulo the field
    /// characteristic/size as appropriate).
    fn from_u64(v: u64) -> Self;

    /// Canonical integer representation (`< ORDER`).
    fn to_u64(self) -> u64;

    /// Exponentiation by squaring.
    fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// Whether this is the zero element.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// The `i`-th standard *evaluation point*: a nonzero element, distinct
    /// for distinct `i` as long as `i + 1 < ORDER`. Codecs place fragment
    /// `i` at this point.
    ///
    /// # Panics
    ///
    /// Panics if `i + 1 >= ORDER` (not enough distinct points).
    fn eval_point(i: usize) -> Self {
        let idx = i as u128 + 1;
        assert!(idx < Self::ORDER, "field too small for evaluation point {i}");
        Self::from_u64(idx as u64)
    }
}
