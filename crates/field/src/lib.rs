//! # swiper-field — finite fields for coding and secret sharing
//!
//! Substrate crate for the Swiper reproduction: the erasure/error-correcting
//! codes of Section 5 and the secret sharing / threshold primitives of
//! Section 4 both work over finite fields. Two fields are provided:
//!
//! * [`Gf256`] — the byte field `GF(2^8)` with the `0x11D` reduction
//!   polynomial, the classic Reed–Solomon workhorse (log/exp tables built at
//!   compile time).
//! * [`F61`] — the Mersenne prime field `F_p`, `p = 2^61 - 1`, used when a
//!   code needs more than 255 fragments (ticket counts routinely exceed a
//!   byte) and for Shamir secret sharing.
//!
//! Both implement the [`Field`] trait consumed generically by
//! `swiper-erasure` and `swiper-crypto`, plus [`poly`] utilities
//! (Horner evaluation, Lagrange interpolation, batch inversion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod f61;
mod gf256;
pub mod poly;
mod traits;

pub use f61::F61;
pub use gf256::Gf256;
pub use traits::Field;
