//! `GF(2^8)` with reduction polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11D)
//! and generator `0x02` — the standard Reed–Solomon byte field.
//!
//! Log/exp tables are computed at compile time by a `const fn`, so there is
//! no runtime initialization or locking.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::traits::Field;

/// The reduction polynomial (with the implicit `x^8` bit).
const POLY: u16 = 0x11D;

/// exp[i] = g^i for i in 0..510 (doubled to skip a `% 255`), log[x] for x>0.
const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Duplicate so exp[log a + log b] never needs reduction mod 255.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
const EXP: [u8; 512] = TABLES.0;
const LOG: [u8; 256] = TABLES.1;

/// An element of `GF(2^8)`.
///
/// # Examples
///
/// ```
/// use swiper_field::{Field, Gf256};
///
/// let a = Gf256::new(0x53);
/// let b = Gf256::new(0xCA);
/// assert_eq!(a + b, Gf256::new(0x99)); // addition is XOR
/// assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// Wraps a byte.
    pub fn new(v: u8) -> Self {
        Gf256(v)
    }

    /// The underlying byte.
    pub fn byte(self) -> u8 {
        self.0
    }

    /// The field generator `0x02`.
    pub const GENERATOR: Gf256 = Gf256(2);
}

impl Add for Gf256 {
    type Output = Gf256;
    // Characteristic-2 field: addition IS xor.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    // Characteristic-2 field: subtraction IS xor.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256(0);
        }
        let idx = usize::from(LOG[self.0 as usize]) + usize::from(LOG[rhs.0 as usize]);
        Gf256(EXP[idx])
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    fn neg(self) -> Gf256 {
        self // characteristic 2
    }
}

impl Field for Gf256 {
    const ZERO: Self = Gf256(0);
    const ONE: Self = Gf256(1);
    const ORDER: u128 = 256;

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf256(EXP[255 - usize::from(LOG[self.0 as usize])]))
        }
    }

    fn from_u64(v: u64) -> Self {
        Gf256((v % 256) as u8)
    }

    fn to_u64(self) -> u64 {
        u64::from(self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generator_has_full_order() {
        // 0x02 generates the whole multiplicative group of 255 elements.
        let mut seen = std::collections::HashSet::new();
        let mut x = Gf256::ONE;
        for _ in 0..255 {
            assert!(seen.insert(x.0));
            x = x * Gf256::GENERATOR;
        }
        assert_eq!(x, Gf256::ONE);
        assert_eq!(seen.len(), 255);
    }

    #[test]
    fn mul_matches_slow_carryless_multiply() {
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut acc: u16 = 0;
            while b != 0 {
                if b & 1 == 1 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= POLY;
                }
                b >>= 1;
            }
            acc as u8
        }
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 0x10, 0x53, 0xCA, 0xFF] {
                assert_eq!(
                    (Gf256(a) * Gf256(b)).0,
                    slow_mul(a.into(), b.into()),
                    "a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn every_nonzero_element_inverts() {
        for v in 1..=255u8 {
            let x = Gf256(v);
            assert_eq!(x * x.inv().unwrap(), Gf256::ONE, "v={v}");
        }
        assert!(Gf256::ZERO.inv().is_none());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let g = Gf256::GENERATOR;
        let mut acc = Gf256::ONE;
        for e in 0..300u64 {
            assert_eq!(g.pow(e), acc, "e={e}");
            acc = acc * g;
        }
    }

    #[test]
    fn eval_points_distinct() {
        let pts: Vec<u8> = (0..255).map(|i| Gf256::eval_point(i).0).collect();
        let set: std::collections::HashSet<_> = pts.iter().collect();
        assert_eq!(set.len(), 255);
        assert!(!pts.contains(&0));
    }

    #[test]
    #[should_panic(expected = "field too small")]
    fn eval_point_overflow_panics() {
        let _ = Gf256::eval_point(255);
    }

    proptest! {
        #[test]
        fn field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a + Gf256::ZERO, a);
            prop_assert_eq!(a * Gf256::ONE, a);
            prop_assert_eq!(a - a, Gf256::ZERO);
            if !a.is_zero() {
                prop_assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
            }
        }
    }
}
