//! The Mersenne prime field `F_p` with `p = 2^61 - 1`.
//!
//! Mersenne reduction makes multiplication two shifts and adds, and the
//! 61-bit size leaves headroom for accumulation tricks while fitting
//! comfortably in `u64`. This field backs Shamir secret sharing and the
//! large-fragment-count Reed–Solomon codes (ticket totals routinely exceed
//! the 255 points available in `GF(2^8)`).

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::traits::Field;

/// The modulus `2^61 - 1` (a Mersenne prime).
pub const P: u64 = (1u64 << 61) - 1;

/// An element of `F_{2^61 - 1}`, stored canonically in `[0, p)`.
///
/// # Examples
///
/// ```
/// use swiper_field::{Field, F61};
///
/// let a = F61::new(12345);
/// let b = a.inv().unwrap();
/// assert_eq!(a * b, F61::ONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct F61(u64);

/// Reduces a 128-bit value modulo the Mersenne prime.
fn reduce128(mut x: u128) -> u64 {
    // Fold high bits down twice: x = (x mod 2^61) + floor(x / 2^61).
    x = (x & u128::from(P)) + (x >> 61);
    x = (x & u128::from(P)) + (x >> 61);
    let mut r = x as u64;
    if r >= P {
        r -= P;
    }
    r
}

impl F61 {
    /// Canonical element from any `u64` (reduced mod `p`).
    pub fn new(v: u64) -> Self {
        // v < 2^64 = 8 * 2^61, so one fold suffices plus a final subtract.
        let folded = (v & P) + (v >> 61);
        F61(if folded >= P { folded - P } else { folded })
    }

    /// The canonical value in `[0, p)`.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl Add for F61 {
    type Output = F61;
    fn add(self, rhs: F61) -> F61 {
        let s = self.0 + rhs.0; // < 2p < 2^62
        F61(if s >= P { s - P } else { s })
    }
}

impl Sub for F61 {
    type Output = F61;
    fn sub(self, rhs: F61) -> F61 {
        if self.0 >= rhs.0 {
            F61(self.0 - rhs.0)
        } else {
            F61(self.0 + P - rhs.0)
        }
    }
}

impl Mul for F61 {
    type Output = F61;
    fn mul(self, rhs: F61) -> F61 {
        F61(reduce128(u128::from(self.0) * u128::from(rhs.0)))
    }
}

impl Neg for F61 {
    type Output = F61;
    fn neg(self) -> F61 {
        if self.0 == 0 {
            self
        } else {
            F61(P - self.0)
        }
    }
}

impl Field for F61 {
    const ZERO: Self = F61(0);
    const ONE: Self = F61(1);
    const ORDER: u128 = P as u128;

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            // Fermat: a^(p-2).
            Some(self.pow(P - 2))
        }
    }

    fn from_u64(v: u64) -> Self {
        F61::new(v)
    }

    fn to_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for F61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for F61 {
    fn from(v: u64) -> Self {
        F61::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn modulus_is_mersenne() {
        assert_eq!(P, 2_305_843_009_213_693_951);
    }

    #[test]
    fn canonicalization() {
        assert_eq!(F61::new(P).value(), 0);
        assert_eq!(F61::new(P + 5).value(), 5);
        assert_eq!(F61::new(u64::MAX).value(), u64::MAX % P);
    }

    #[test]
    fn sub_wraps() {
        let a = F61::new(3);
        let b = F61::new(10);
        assert_eq!((a - b).value(), P - 7);
        assert_eq!(a - b + b, a);
    }

    #[test]
    fn neg_zero_is_zero() {
        assert_eq!(-F61::ZERO, F61::ZERO);
        assert_eq!((-F61::new(1)).value(), P - 1);
    }

    #[test]
    fn inv_known_values() {
        assert!(F61::ZERO.inv().is_none());
        assert_eq!(F61::ONE.inv().unwrap(), F61::ONE);
        let two_inv = F61::new(2).inv().unwrap();
        // 2 * (p+1)/2 = p + 1 = 1 mod p.
        assert_eq!(two_inv.value(), P.div_ceil(2));
    }

    #[test]
    fn big_product_reduces_correctly() {
        // (p-1)^2 mod p = 1.
        let x = F61::new(P - 1);
        assert_eq!(x * x, F61::ONE);
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(F61::new(7).pow(0), F61::ONE);
        assert_eq!(F61::ZERO.pow(0), F61::ONE); // 0^0 := 1 convention
        assert_eq!(F61::ZERO.pow(5), F61::ZERO);
        // Fermat's little theorem.
        assert_eq!(F61::new(123_456_789).pow(P - 1), F61::ONE);
    }

    proptest! {
        #[test]
        fn field_axioms(a in 0u64..P, b in 0u64..P, c in 0u64..P) {
            let (a, b, c) = (F61::new(a), F61::new(b), F61::new(c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a + (-a), F61::ZERO);
            prop_assert_eq!(a - b + b, a);
            if !a.is_zero() {
                prop_assert_eq!(a * a.inv().unwrap(), F61::ONE);
            }
        }

        #[test]
        fn mul_matches_naive_bigint(a in 0u64..P, b in 0u64..P) {
            let expect = (u128::from(a) * u128::from(b) % u128::from(P)) as u64;
            prop_assert_eq!((F61::new(a) * F61::new(b)).value(), expect);
        }

        #[test]
        fn canonical_round_trip(v in any::<u64>()) {
            let x = F61::new(v);
            prop_assert!(x.value() < P);
            prop_assert_eq!(x.value() as u128 % (P as u128), (v as u128) % (P as u128));
        }
    }
}
