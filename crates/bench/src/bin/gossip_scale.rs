//! Gossip-overlay dissemination trajectory: weighted Bracha riding
//! [`OverlayNode`] versus the full-mesh flood yardstick, across
//! substrates (`BENCH_gossip.json`, schema `swiper-bench-gossip/v1`).
//!
//! Simulator cells sweep n ∈ {64, 256, 1024} with seeded delay schedules
//! and record reach, rounds-to-full-delivery (max eager hops), total
//! messages and messages per unique first-receipt delivery — the economy
//! figure the overlay must keep strictly below the n²-flood baseline of
//! `n` msgs/delivery at n ≥ 256. The `fullmesh` cells run the *same*
//! machinery with every peer in the active view (eager push to everyone =
//! reliable flooding), so the comparison holds the workload, the repair
//! path and the deliveries semantics fixed and varies only the view.
//! Threaded cells drive the overlay on the [`ThreadedRuntime`] (channel
//! and loopback-TCP socket transports) with timers scaled to the
//! microsecond clock, recording latency percentiles and the
//! determinism-twin verdict.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin gossip_scale -- \
//!     [--ci-smoke] [--threaded-only] [--seed S] [--out PATH] [--diff BASELINE]
//! ```
//!
//! `--ci-smoke` drops the n=1024 overlay cell and the n=256 fullmesh cell
//! (the two slow ones); `--threaded-only` runs just the runtime cells
//! (the nightly soak mode) and `--seed` perturbs their seeds so the soak
//! covers fresh schedules; `--diff` gates the covered rows against a
//! committed baseline via `diff_gossip_rows`, which also holds every
//! fresh row to the reach-100% and beats-the-flood invariants. Threaded
//! cells additionally assert the message conservation law
//! `total == delivered + dropped`, and any twin divergence fails the run
//! on its own, baseline or not.

use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use swiper_bench::{
    diff_gossip_rows, parse_gossip_json, render_gossip_json, GossipBenchRow, TextTable,
};
use swiper_core::Weights;
use swiper_net::{
    DelayModel, OverlayCodec, OverlayConfig, OverlayMsg, OverlayNode, OverlayStats, Protocol,
    SendNodes, Simulation, SocketTransport, ThreadedRuntime,
};
use swiper_protocols::bracha::{BrachaConfig, BrachaMsg, BrachaNode};
use swiper_protocols::wire::BrachaCodec;

const PAYLOAD: &[u8] = b"gossip_scale payload";

struct Args {
    ci_smoke: bool,
    threaded_only: bool,
    seed: u64,
    out: String,
    diff: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ci_smoke: false,
        threaded_only: false,
        seed: 0,
        out: "BENCH_gossip.json".into(),
        diff: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--ci-smoke" => args.ci_smoke = true,
            "--threaded-only" => args.threaded_only = true,
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--diff" => args.diff = Some(value("--diff")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Skewed-but-bounded stake: every party holds between 1 and 97.
fn stake(n: usize) -> Weights {
    Weights::new((0..n as u64).map(|p| 1 + (p * 7919) % 97).collect()).expect("positive stake")
}

/// Weighted Bracha (node 0 the sender) wrapped in the overlay; the shared
/// stats block is attached only when measuring (twin replays run bare so
/// they do not double-count).
fn fleet(
    n: usize,
    seed: u64,
    cfg: &OverlayConfig,
    stats: Option<&Arc<Mutex<OverlayStats>>>,
) -> SendNodes<OverlayMsg<BrachaMsg>> {
    let weights = stake(n);
    (0..n)
        .map(|me| {
            let config = BrachaConfig::weighted(weights.clone());
            let inner: Box<dyn Protocol<Msg = BrachaMsg> + Send> = if me == 0 {
                Box::new(BrachaNode::sender(config, 0, PAYLOAD.to_vec()))
            } else {
                Box::new(BrachaNode::new(config, 0))
            };
            let mut node = OverlayNode::new(inner, weights.clone(), cfg.clone(), seed);
            if let Some(s) = stats {
                node = node.with_stats(Arc::clone(s));
            }
            Box::new(node) as _
        })
        .collect()
}

fn desend<M>(nodes: SendNodes<M>) -> Vec<Box<dyn Protocol<Msg = M>>> {
    nodes.into_iter().map(|b| b as Box<dyn Protocol<Msg = M>>).collect()
}

/// Overlay config for a backend: `fullmesh` pins every peer into the
/// active view and disables pruning, turning eager push into reliable
/// n²-flooding — the measured baseline.
fn config_for(backend: &str, n: usize) -> OverlayConfig {
    match backend {
        "fullmesh" => {
            OverlayConfig { active_degree: n - 1, prune: false, ..OverlayConfig::default() }
        }
        _ => OverlayConfig::default(),
    }
}

#[allow(clippy::too_many_arguments)]
fn row_from(
    backend: &str,
    substrate: &str,
    n: usize,
    seed: u64,
    wall_ms: u64,
    reached: usize,
    msgs: u64,
    stats: &OverlayStats,
) -> GossipBenchRow {
    let deliveries = stats.deliveries.max(1);
    GossipBenchRow {
        bench: "gossip_scale".into(),
        backend: backend.into(),
        substrate: substrate.into(),
        n: n as u64,
        seed,
        wall_ms,
        reach_pct: (reached * 100 / n) as u64,
        rounds: u64::from(stats.max_hops),
        msgs,
        deliveries: stats.deliveries,
        msgs_per_delivery_x100: msgs * 100 / deliveries,
        baseline_msgs_per_delivery: n as u64,
        mean_degree_x100: (stats.mean_degree() * 100.0).round() as u64,
        p50_us: 0,
        p95_us: 0,
        p99_us: 0,
        twin_ok: 1,
    }
}

/// One seeded simulator cell: deterministic counters, no latency axis.
fn run_sim_cell(backend: &str, n: usize, seed: u64) -> GossipBenchRow {
    let cfg = config_for(backend, n);
    let stats = Arc::new(Mutex::new(OverlayStats::default()));
    let t0 = Instant::now();
    let report = Simulation::new(desend(fleet(n, seed, &cfg, Some(&stats))), seed)
        .with_delay(DelayModel::Uniform(1, 20))
        .with_max_events(400_000_000)
        .run();
    let wall_ms = t0.elapsed().as_millis() as u64;
    let reached = report.outputs.iter().filter(|o| o.as_deref() == Some(PAYLOAD)).count();
    let s = stats.lock().expect("sim is single-threaded");
    row_from(backend, "sim", n, seed, wall_ms, reached, report.metrics.total_messages(), &s)
}

/// One threaded-runtime cell: latency percentiles and the twin verdict.
/// Timers are scaled ×500 because the runtime clock ticks microseconds
/// where the simulator ticks abstract units.
fn run_threaded_cell(substrate: &str, n: usize, seed: u64, workers: usize) -> GossipBenchRow {
    let cfg = OverlayConfig::default().scaled_by(500);
    let stats = Arc::new(Mutex::new(OverlayStats::default()));
    let t0 = Instant::now();
    let full = if substrate == "socket" {
        let transport: SocketTransport<OverlayMsg<BrachaMsg>, OverlayCodec<BrachaCodec>> =
            SocketTransport::loopback(n).expect("loopback sockets");
        ThreadedRuntime::new(fleet(n, seed, &cfg, Some(&stats)))
            .with_transport(transport)
            .with_workers(workers)
            .run_traced()
    } else {
        ThreadedRuntime::new(fleet(n, seed, &cfg, Some(&stats)))
            .with_workers(workers)
            .run_traced()
    };
    let wall_ms = t0.elapsed().as_millis().max(1) as u64;
    // Conservation law: every sent message is delivered or drop-accounted.
    assert_eq!(
        full.report.metrics.total_messages(),
        full.report.metrics.delivered_messages() + full.dropped,
        "gossip_scale: {substrate} n={n} seed={seed}: message conservation violated"
    );
    let reached = full.report.outputs.iter().filter(|o| o.as_deref() == Some(PAYLOAD)).count();
    let twin_ok = full
        .trace
        .replay(desend(fleet(n, seed, &cfg, None)))
        .map(|r| r.outputs == full.report.outputs && r.metrics == full.report.metrics)
        .unwrap_or(false);
    let s = stats.lock().expect("workers joined");
    let mut row = row_from(
        "overlay",
        substrate,
        n,
        seed,
        wall_ms,
        reached,
        full.report.metrics.total_messages(),
        &s,
    );
    row.p50_us = full.latency.p50_us;
    row.p95_us = full.latency.p95_us;
    row.p99_us = full.latency.p99_us;
    row.twin_ok = u64::from(twin_ok);
    row
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gossip_scale: {e}");
            return ExitCode::FAILURE;
        }
    };

    // (backend, n, seed, slow): slow cells are dropped under --ci-smoke.
    let sim_cells: &[(&str, usize, u64, bool)] = &[
        ("overlay", 64, 1, false),
        ("overlay", 256, 7, false),
        ("overlay", 1024, 7, true),
        ("fullmesh", 64, 1, false),
        ("fullmesh", 256, 7, true),
    ];
    let mut rows = Vec::new();
    if !args.threaded_only {
        for &(backend, n, seed, slow) in sim_cells {
            if slow && args.ci_smoke {
                continue;
            }
            rows.push(run_sim_cell(backend, n, seed));
        }
    }
    // --seed perturbs the runtime cells (soak mode); 0 keeps the
    // baseline identities.
    rows.push(run_threaded_cell("threaded", 24, 5 + args.seed * 101, 4));
    rows.push(run_threaded_cell("socket", 16, 8 + args.seed * 101, 3));

    let mut table = TextTable::new(vec![
        "backend",
        "substrate",
        "n",
        "seed",
        "wall_ms",
        "reach%",
        "rounds",
        "msgs",
        "msgs/delivery",
        "flood baseline",
        "degree",
        "p99_us",
        "twin",
    ]);
    for r in &rows {
        table.row(vec![
            r.backend.clone(),
            r.substrate.clone(),
            r.n.to_string(),
            r.seed.to_string(),
            r.wall_ms.to_string(),
            r.reach_pct.to_string(),
            r.rounds.to_string(),
            r.msgs.to_string(),
            format!("{:.2}", r.msgs_per_delivery()),
            r.baseline_msgs_per_delivery.to_string(),
            format!("{:.2}", r.mean_degree_x100 as f64 / 100.0),
            r.p99_us.to_string(),
            if r.twin_ok == 1 { "ok".into() } else { "DIVERGED".to_string() },
        ]);
    }
    print!("{}", table.render());

    std::fs::write(&args.out, render_gossip_json(&rows)).expect("write benchmark file");
    println!("wrote {}", args.out);

    // The fresh-row invariants (reach 100%, overlay beats the flood at
    // n ≥ 256) are checked even without a baseline: diff against empty.
    let mut baseline = Vec::new();
    let mut baseline_path = String::from("(none)");
    if let Some(path) = &args.diff {
        let doc = std::fs::read_to_string(path).expect("read baseline");
        baseline = match parse_gossip_json(&doc) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("gossip_scale: baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        baseline_path = path.clone();
    }
    // Gate only the cells this sweep covered, so --ci-smoke can diff
    // against the committed full sweep.
    let covered: Vec<GossipBenchRow> =
        baseline.into_iter().filter(|b| rows.iter().any(|r| r.key() == b.key())).collect();
    let problems = diff_gossip_rows(&covered, &rows, 20);
    for p in &problems {
        eprintln!("gossip_scale: REGRESSION: {p}");
    }
    let twins_ok = rows.iter().all(|r| r.twin_ok == 1);
    if !twins_ok {
        eprintln!("gossip_scale: twin replay DIVERGED — the determinism contract is broken");
    }
    if problems.is_empty() && twins_ok {
        println!("diff vs {baseline_path}: clean ({} rows)", covered.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
