//! Adversarial weight redistribution study (paper Section 9, "Adversarial
//! attacks" future-work direction): *"the weights of honest parties will
//! be organic, but the weights of the adversarial parties may be
//! redistributed maliciously. It is an interesting avenue for future work
//! to study how much an adversary can affect the number of tickets (and,
//! thus, the performance of the system)."*
//!
//! This binary measures exactly that: starting from an organic (Zipf)
//! honest population, an adversary controlling a fixed stake budget
//! registers it under different identity layouts and we record the effect
//! on the total ticket count and on the adversary's ticket share.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin adversarial_weights
//! ```

use swiper_bench::TextTable;
use swiper_core::{Instance, Mode, Ratio, Swiper, WeightRestriction, Weights};
use swiper_weights::gen;

/// Builds the full weight vector: organic honest parties followed by the
/// adversary's chosen identity layout. Returns (weights, adversary ids).
fn population(honest: &Weights, adversary: &[u64]) -> (Weights, Vec<usize>) {
    let mut all: Vec<u64> = honest.as_slice().to_vec();
    let start = all.len();
    all.extend_from_slice(adversary);
    let ids = (start..all.len()).collect();
    (Weights::new(all).expect("non-zero"), ids)
}

fn main() {
    println!("Adversarial weight redistribution (Section 9 study)\n");
    let honest = gen::zipf(200, 1.0, 1_000_000);
    let honest_total = honest.total();
    // Adversary budget: ~24% of the final total (below f_w = 1/3... of
    // the combined system; computed to land at 24%).
    let budget = (honest_total * 24 / 76) as u64;
    println!(
        "honest: n = {}, organic Zipf, W_h = {}; adversary budget = {} (~24%)\n",
        honest.len(),
        honest_total,
        budget
    );

    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let mut table = TextTable::new(vec![
        "adversary layout",
        "identities",
        "total tickets",
        "adv tickets",
        "adv ticket share",
        "vs baseline T",
    ]);

    let layouts: Vec<(&str, Vec<u64>)> = vec![
        ("single identity", vec![budget]),
        ("2 equal identities", vec![budget / 2; 2]),
        ("10 equal identities", vec![budget / 10; 10]),
        ("100 equal identities", vec![budget / 100; 100]),
        ("1000 dust identities", vec![(budget / 1000).max(1); 1000]),
        ("mimic organic tail", gen::zipf(200, 1.0, (budget / 6).max(1)).as_slice().to_vec()),
    ];

    // Every layout is an independent WR instance over (honest ++ adversary);
    // solve the whole study as one parallel batch.
    let populations: Vec<(&str, Vec<usize>, Weights)> = layouts
        .iter()
        .map(|(name, adv)| {
            let (weights, ids) = population(&honest, adv);
            (*name, ids, weights)
        })
        .collect();
    let instances: Vec<Instance> = populations
        .iter()
        .map(|(_, _, weights)| Instance::restriction(weights.clone(), params))
        .collect();
    let solutions = Swiper::with_mode(Mode::Full).solve_many(&instances).unwrap();

    let mut baseline_total: Option<u128> = None;
    for ((name, ids, weights), sol) in populations.iter().zip(&solutions) {
        let identities = ids.len();
        let adv_weight = weights.subset_weight(ids);
        let frac = adv_weight as f64 / weights.total() as f64;
        assert!(frac < 1.0 / 3.0, "{name}: adversary must stay below f_w ({frac:.3})");
        let adv_tickets: u128 = ids.iter().map(|&i| u128::from(sol.assignment.get(i))).sum();
        let total = sol.total_tickets();
        let baseline = *baseline_total.get_or_insert(total);
        table.row(vec![
            name.to_string(),
            identities.to_string(),
            total.to_string(),
            adv_tickets.to_string(),
            format!("{:.1}%", adv_tickets as f64 / total as f64 * 100.0),
            format!("{:+.1}%", (total as f64 / baseline as f64 - 1.0) * 100.0),
        ]);
        // The WR guarantee must hold regardless of the layout.
        assert!(adv_tickets * 2 < total, "{name}: adversary reached alpha_n of the tickets!");
    }
    println!("{}", table.render());
    println!("invariant: the adversary's ticket share stays below alpha_n = 1/2 in");
    println!("every layout (Weight Restriction is adversary-proof by construction);");
    println!("what redistribution *can* do is inflate the total ticket count,");
    println!("degrading performance — the open question the paper poses.");
}
