//! Quick-test ablation (paper Section 3.1): how many exact knapsack DP
//! invocations does the Dantzig/greedy quick test avoid? The paper reports
//! the combined test "speeds up the algorithm by more than a factor of 3
//! on inputs with large enough resulting number of tickets".
//!
//! ```text
//! cargo run --release -p swiper-bench --bin ablation
//! ```

use swiper_bench::TextTable;
use swiper_core::{Mode, Ratio, Swiper, WeightRestriction};
use swiper_weights::{gen, CHAINS};

fn main() {
    println!("Quick-test ablation — validity checks settled without the O(nT) DP\n");
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let mut table = TextTable::new(vec![
        "distribution",
        "n",
        "checks",
        "by upper bound",
        "by lower bound",
        "DP calls",
        "DP avoided",
    ]);

    let mut cases: Vec<(String, swiper_core::Weights)> = vec![
        ("equal n=1000".into(), gen::equal(1000, 3)),
        ("zipf n=1000".into(), gen::zipf(1000, 1.0, 1 << 30)),
        ("pareto n=1000".into(), gen::pareto(1000, 1.2, 1000, 7)),
    ];
    for chain in CHAINS {
        cases.push((chain.name().to_string(), chain.weights()));
    }

    for (name, weights) in cases {
        let sol = Swiper::with_mode(Mode::Full).solve_restriction(&weights, &params).unwrap();
        let st = sol.stats;
        let settled = st.settled_by_upper_bound + st.settled_by_lower_bound;
        let avoided = if st.candidates_checked > 0 {
            settled as f64 / st.candidates_checked as f64 * 100.0
        } else {
            0.0
        };
        table.row(vec![
            name,
            weights.len().to_string(),
            st.candidates_checked.to_string(),
            st.settled_by_upper_bound.to_string(),
            st.settled_by_lower_bound.to_string(),
            st.dp_invocations.to_string(),
            format!("{avoided:.0}%"),
        ]);
    }
    println!("{}", table.render());
    println!("each avoided DP call saves O(n*T) work — the paper's >3x speedup");
    println!("comes from exactly this filter (Section 3.1, 'Practical efficiency').");
}
