//! Million-party solver scaling sweep — the repo's first machine-checked
//! benchmark trajectory (`BENCH_solver.json`).
//!
//! For each population size n ∈ {10³, 10⁴, 10⁵, 10⁶} (capped by
//! `--max-n`) the driver builds a seeded whale-skewed population
//! (`gen::whale_mix`: Zipf whale head over a log-normal body, shuffled)
//! and measures WR(1/3, 1/2) three ways:
//!
//! * **cold** — a fresh `Swiper::solve_restriction`, no caches, no hint;
//! * **warm** — a `Reconfigurator` epoch step: solve the base population,
//!   churn 1% of parties by up to ±5% stake, then measure the warm
//!   re-solve (certificates disabled);
//! * **certified** — the same epoch step with delta-stable verdict
//!   certificates enabled (the `Reconfigurator` default), so stable
//!   verdicts replay from stored margins instead of re-running bounds or
//!   the DP.
//!
//! Every row records the generator seed, wall time, published tickets,
//! `dp_invocations`, `certificate_skips`, `candidates_checked`, the
//! accelerator counters (`cursor_advances`, `probes_saved`,
//! `coarse_cert_hits`) and peak RSS, and the whole
//! sweep is written as `BENCH_solver.json` (schema
//! `swiper-bench-solver/v1`, one row per line). Counter fields are
//! bit-deterministic for a fixed seed, which is what makes the file
//! regression-gateable; wall times are gated with tolerance, RSS is
//! informational.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin solver_scale -- \
//!     [--max-n N] [--out PATH] [--diff BASELINE] [--budget-ms MS] [--seed S]
//! ```
//!
//! `--diff` exits non-zero when any deterministic counter differs from the
//! baseline or a wall time regresses by more than 20% (rows under 250 ms
//! are treated as noise); baseline rows above `--max-n` are ignored so a
//! capped nightly run can diff against the full committed sweep.
//! `--budget-ms` exits non-zero when the cold solve at the largest swept
//! n ≤ 10⁵ exceeds the budget — the nightly wall-clock gate.

use std::process::ExitCode;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper_bench::{
    diff_bench_rows, parse_bench_json, peak_rss_kb, render_bench_json, BenchRow, TextTable,
};
use swiper_core::{Ratio, SolveStats, Swiper, WeightRestriction};
use swiper_weights::epoch::{churn_with, ChurnMode, Reconfigurator, Setting};
use swiper_weights::gen;

const SIZES: [u64; 4] = [1_000, 10_000, 100_000, 1_000_000];
/// Churned parties per epoch step: 1% of the population.
const CHURN_PCT: u64 = 1;

struct Args {
    max_n: u64,
    out: String,
    diff: Option<String>,
    budget_ms: Option<u64>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        max_n: 1_000_000,
        out: "BENCH_solver.json".into(),
        diff: None,
        budget_ms: None,
        seed: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--max-n" => {
                args.max_n = value("--max-n")?.parse().map_err(|e| format!("--max-n: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--diff" => args.diff = Some(value("--diff")?),
            "--budget-ms" => {
                args.budget_ms = Some(
                    value("--budget-ms")?.parse().map_err(|e| format!("--budget-ms: {e}"))?,
                );
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn row(
    case: &str,
    n: u64,
    gen_seed: u64,
    wall_ms: u64,
    tickets: u128,
    stats: &SolveStats,
    rss_delta_kb: u64,
) -> BenchRow {
    BenchRow {
        bench: "solver_scale".into(),
        case_name: case.into(),
        n,
        wall_ms,
        tickets,
        dp_invocations: stats.dp_invocations,
        certificate_skips: stats.certificate_skips,
        candidates_checked: stats.candidates_checked,
        cursor_advances: stats.cursor_advances,
        probes_saved: stats.probes_saved,
        coarse_cert_hits: stats.coarse_cert_hits,
        seed: gen_seed,
        peak_rss_kb: rss_delta_kb,
    }
}

/// One population size: cold solve plus the two epoch-step variants.
fn run_size(n: u64, seed: u64) -> Vec<BenchRow> {
    let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).expect("valid params");
    let setting = Setting::Restriction(p);
    let whales = usize::try_from((n / 10_000).max(8)).expect("fits");
    // The per-size generator seed lands in every emitted row, so any row
    // is reproducible from `(bench, case, n, seed)` alone.
    let gen_seed = seed ^ n;
    let w = gen::whale_mix(usize::try_from(n).expect("fits"), whales, gen_seed);
    let churned = usize::try_from(n * CHURN_PCT).expect("fits").div_ceil(100);

    // VmHWM is a process-lifetime high-water mark; reporting it raw would
    // attribute every earlier cell's peak to this one. Each measured phase
    // reports the *delta* it pushed the mark by (zero when it fits inside
    // a previous peak), so rss columns stay attributable per cell.
    let rss_before = peak_rss_kb();
    let t0 = Instant::now();
    let cold = Swiper::new().solve_restriction(&w, &p).expect("solvable");
    let cold_ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
    let cold_rss = peak_rss_kb().saturating_sub(rss_before);
    let mut rows =
        vec![row("cold", n, gen_seed, cold_ms, cold.assignment.total(), &cold.stats, cold_rss)];

    for (case, certs) in [("warm", false), ("certified", true)] {
        let mut reconf =
            Reconfigurator::new(Swiper::new(), vec![setting]).with_certificates(certs);
        reconf.advance(&w).expect("base epoch solvable");
        // Same churn stream for both variants: the members the warm pass
        // faces are identical, so the counter gap is certificates alone.
        let mut rng = StdRng::seed_from_u64(seed ^ n ^ 0xDEAD_BEEF);
        let w2 = churn_with(ChurnMode::Drift, &w, churned, 5, &mut rng);
        let rss_before = peak_rss_kb();
        let t0 = Instant::now();
        let outcome = reconf.advance(&w2).expect("churned epoch solvable");
        let wall = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
        let rss = peak_rss_kb().saturating_sub(rss_before);
        rows.push(row(
            case,
            n,
            gen_seed,
            wall,
            outcome.solutions[0].assignment.total(),
            &outcome.stats(),
            rss,
        ));
    }
    rows
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("solver_scale: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rows = Vec::new();
    for n in SIZES.into_iter().filter(|&n| n <= args.max_n) {
        rows.extend(run_size(n, args.seed));
        println!("n={n}: done");
    }
    if rows.is_empty() {
        eprintln!("solver_scale: --max-n {} admits no sweep size", args.max_n);
        return ExitCode::FAILURE;
    }

    let mut table = TextTable::new(vec![
        "n",
        "case",
        "seed",
        "wall_ms",
        "tickets",
        "dp",
        "cert_skips",
        "coarse",
        "cursor",
        "saved",
        "candidates",
        "rss_kb",
    ]);
    for r in &rows {
        table.row(vec![
            r.n.to_string(),
            r.case_name.clone(),
            r.seed.to_string(),
            r.wall_ms.to_string(),
            r.tickets.to_string(),
            r.dp_invocations.to_string(),
            r.certificate_skips.to_string(),
            r.coarse_cert_hits.to_string(),
            r.cursor_advances.to_string(),
            r.probes_saved.to_string(),
            r.candidates_checked.to_string(),
            r.peak_rss_kb.to_string(),
        ]);
    }
    print!("{}", table.render());

    std::fs::write(&args.out, render_bench_json(&rows)).expect("write benchmark file");
    println!("wrote {}", args.out);

    let mut ok = true;
    if let Some(budget) = args.budget_ms {
        let gate_n = SIZES.into_iter().filter(|&n| n <= args.max_n.min(100_000)).max();
        let cold = gate_n.and_then(|n| rows.iter().find(|r| r.case_name == "cold" && r.n == n));
        match cold {
            Some(r) if r.wall_ms > budget => {
                eprintln!(
                    "solver_scale: cold n={} took {} ms, over the {} ms budget",
                    r.n, r.wall_ms, budget
                );
                ok = false;
            }
            Some(r) => {
                println!("budget: cold n={} at {} ms within {} ms", r.n, r.wall_ms, budget)
            }
            None => {
                eprintln!("solver_scale: no cold row to apply --budget-ms to");
                ok = false;
            }
        }
    }
    if let Some(baseline_path) = &args.diff {
        let doc = std::fs::read_to_string(baseline_path).expect("read baseline");
        let baseline = match parse_bench_json(&doc) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("solver_scale: baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let in_scope: Vec<BenchRow> =
            baseline.into_iter().filter(|r| r.n <= args.max_n).collect();
        let problems = diff_bench_rows(&in_scope, &rows, 20);
        for p in &problems {
            eprintln!("solver_scale: REGRESSION: {p}");
        }
        if problems.is_empty() {
            println!("diff vs {baseline_path}: clean ({} rows)", in_scope.len());
        }
        ok &= problems.is_empty();
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
