//! Epoch-reconfiguration replay: perturbed chain snapshots through the
//! incremental re-solve loop.
//!
//! For each chain × churn level, the driver replays `--epochs` snapshots
//! where `churn%` of the parties move up to ±5% of their stake per epoch,
//! re-solving WR(1/3, 1/2) each epoch three ways:
//!
//! * **warm** — the `Reconfigurator`'s warm-started bracket over the
//!   persistent per-track `CachingOracle`;
//! * **published** — the loop runs in verified mode, so the published
//!   assignments are the cold-identical ones (re-derived through the
//!   shared cache, which the warm pass just filled at the flip region);
//! * **baseline** — an independent cold solve with a fresh oracle, the
//!   "no incremental machinery" yardstick for dp counts.
//!
//! Per epoch it prints `dp_invocations` (warm pass vs baseline) and the
//! running cache hit rate; per scenario a summary line including how
//! often the warm bracket settled on a different (equally valid) local
//! minimum than cold bisection — the non-monotone dips discussed in
//! `Swiper::resolve_from`. Solver-mode scenarios are also written as
//! `BENCH_epochs.json` (schema `swiper-bench-epochs/v1`), one row per
//! chain × churn with the `bracket_divergence` counter machine-readable
//! instead of buried in the summary line.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin epochs -- [--epochs N] \
//!     [--churn 1,5,20] [--churn-mode drift|mixed] [--chains aptos,tezos] \
//!     [--seed S] [--smr] [--ci-smoke] [--quiet] [--out PATH] [--diff BASELINE]
//! ```
//!
//! `--smr` switches from solver-only replay to **live SMR replay**: each
//! epoch's solutions are spliced into a running [`SmrInstance`] via
//! [`Reconfigurator::drive_simulation`] while a teardown-rebuild twin
//! replays the same epochs the hard way, and the driver reports
//! rounds-survived-per-epoch-change plus any ledger divergence between
//! the two.
//!
//! `--ci-smoke` additionally exits non-zero when the 1%-churn scenarios
//! record a zero cache hit rate (solver mode) or when the live ledger
//! diverges from the teardown-rebuild baseline / stops beating it on
//! restarted rounds at 1% churn (SMR mode) — the nightly guards that the
//! incremental machinery keeps earning its keep. SMR mode also runs the
//! **stake-refresh audit**: a vouch-style weighted quorum is reweighed
//! through each epoch's `EpochEvent`, and any epoch whose published
//! vouch-quorum weights diverge from that epoch's snapshot fails the run
//! (per-epoch `stake=ok|STALE` in the replay lines, `stake_mismatches`
//! in the summary).

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper_bench::{diff_epochs_rows, parse_epochs_json, render_epochs_json, EpochBenchRow};
use swiper_core::{Ratio, Swiper, VirtualUsers, WeightQualification, WeightRestriction};
use swiper_protocols::quorum::{CountQuorum, QuorumTracker, Roster, WeightQuorum};
use swiper_protocols::smr::{ReconfigureMode, SmrInstance};
use swiper_weights::epoch::{churn_with, ChurnMode, Reconfigurator, Setting};
use swiper_weights::Chain;

struct Args {
    epochs: u64,
    churn_pcts: Vec<u64>,
    churn_mode: ChurnMode,
    chains: Vec<Chain>,
    seed: u64,
    smr: bool,
    ci_smoke: bool,
    quiet: bool,
    out: String,
    diff: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        epochs: 16,
        churn_pcts: vec![1, 5, 20],
        churn_mode: ChurnMode::Drift,
        chains: vec![Chain::Aptos, Chain::Tezos],
        seed: 1,
        smr: false,
        ci_smoke: false,
        quiet: false,
        out: "BENCH_epochs.json".into(),
        diff: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--epochs" => {
                args.epochs =
                    value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?;
            }
            "--churn" => {
                args.churn_pcts = value("--churn")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--churn: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--chains" => {
                args.chains = value("--chains")?
                    .split(',')
                    .map(|s| {
                        Chain::parse(s.trim()).ok_or_else(|| format!("unknown chain `{s}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--churn-mode" => {
                let spelled = value("--churn-mode")?;
                args.churn_mode = ChurnMode::parse(spelled.trim())
                    .ok_or_else(|| format!("unknown churn mode `{spelled}`"))?;
            }
            "--smr" => args.smr = true,
            "--ci-smoke" => args.ci_smoke = true,
            "--quiet" => args.quiet = true,
            "--out" => args.out = value("--out")?,
            "--diff" => args.diff = Some(value("--diff")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.epochs == 0 || args.churn_pcts.is_empty() || args.chains.is_empty() {
        return Err("need at least one epoch, churn level and chain".into());
    }
    Ok(args)
}

struct ScenarioReport {
    failed: bool,
    hit_rate: f64,
    /// Warm-pass DP totals with certificates on / off, and the skips that
    /// explain the gap.
    warm_dp_certified: u64,
    warm_dp_plain: u64,
    cert_skips: u64,
    /// Fresh cold-solve DP total — the no-machinery yardstick.
    cold_dp: u64,
    /// Epochs where the warm bracket settled on a different (equally
    /// valid) local minimum than cold bisection.
    divergences: u64,
}

impl ScenarioReport {
    fn failure() -> Self {
        ScenarioReport {
            failed: true,
            hit_rate: 0.0,
            warm_dp_certified: 0,
            warm_dp_plain: 0,
            cert_skips: 0,
            cold_dp: 0,
            divergences: 0,
        }
    }
}

/// One chain × churn replay. Two verified-mode loops consume the same
/// snapshot stream — one with delta-stable certificates (the default), one
/// without (the PR-2 warm baseline) — so their warm passes face identical
/// members and the DP-count gap is attributable to certificates alone.
fn run_scenario(chain: Chain, churn_pct: u64, args: &Args) -> ScenarioReport {
    let solver = Swiper::new();
    let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).expect("valid params");
    let setting = Setting::Restriction(wr);
    let mut reconf = Reconfigurator::new(solver, vec![setting]).with_cold_check(true);
    let mut plain = Reconfigurator::new(solver, vec![setting])
        .with_cold_check(true)
        .with_certificates(false);
    let mut snapshot = chain.weights();
    let churned = (snapshot.len() * usize::try_from(churn_pct).expect("small")).div_ceil(100);
    // Distinct RNG stream per scenario, reproducible from --seed.
    let mut rng = StdRng::seed_from_u64(args.seed ^ (churn_pct << 32) ^ chain.n() as u64);
    let mut divergences = 0u64;
    let mut warm_dp_total = 0u64;
    let mut plain_dp_total = 0u64;
    let mut base_dp_total = 0u64;
    let mut cert_skips = 0u64;
    let mut hits = 0u64;
    let mut lookups = 0u64;
    for epoch in 0..args.epochs {
        let (outcome, plain_outcome) =
            match (reconf.advance(&snapshot), plain.advance(&snapshot)) {
                (Ok(o), Ok(p)) => (o, p),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("{chain} churn={churn_pct}% epoch={epoch}: solve failed: {e}");
                    return ScenarioReport::failure();
                }
            };
        let baseline = solver
            .solve_instance(&setting.instance(snapshot.clone()))
            .expect("baseline solve cannot fail where advance succeeded");
        // Verified mode publishes the cold-identical result; if this ever
        // trips, the incremental machinery has an actual bug. The
        // certificate-free twin must agree too — certificates may only
        // skip work, never move the published answer.
        if outcome.solutions[0].assignment != baseline.assignment
            || plain_outcome.solutions[0].assignment != baseline.assignment
        {
            eprintln!(
                "{chain} churn={churn_pct}% epoch={epoch}: published assignment differs \
                 from the fresh cold solve — incremental machinery is broken"
            );
            return ScenarioReport::failure();
        }
        // Divergence = the warm bracket settled on a different (equally
        // valid) local minimum than cold bisection — a non-monotone dip.
        // Telemetry, not an error: the published result above is cold.
        divergences += u64::from(outcome.verified() == Some(false));
        let warm = outcome.warm_stats().expect("verified mode records the warm pass");
        let plain_warm = plain_outcome.warm_stats().expect("verified mode");
        let published = outcome.stats();
        warm_dp_total += warm.dp_invocations;
        plain_dp_total += plain_warm.dp_invocations;
        base_dp_total += baseline.stats.dp_invocations;
        cert_skips += warm.certificate_skips + published.certificate_skips;
        hits += warm.cache_hits + published.cache_hits;
        lookups += warm.cache_lookups() + published.cache_lookups();
        if !args.quiet {
            println!(
                "{:10} churn={:2}% epoch={:3} tickets={:6} delta={:4} dp={:2} dp_plain={:2} \
                 dp_cold={:2} skips={:2} hit_rate={:.2}",
                chain.name(),
                churn_pct,
                epoch,
                outcome.solutions[0].total_tickets(),
                outcome.delta(0).map_or(0, |d| d.changes().len()),
                warm.dp_invocations,
                plain_warm.dp_invocations,
                baseline.stats.dp_invocations,
                warm.certificate_skips + published.certificate_skips,
                if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
            );
        }
        snapshot = churn_with(args.churn_mode, &snapshot, churned, 5, &mut rng);
    }
    let rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
    println!(
        "{:10} churn={:2}% summary: epochs={} dp_warm={} dp_warm_plain={} dp_cold={} \
         cert_skips={} cache={}/{} ({:.0}%) divergences={} cached_verdicts={}",
        chain.name(),
        churn_pct,
        args.epochs,
        warm_dp_total,
        plain_dp_total,
        base_dp_total,
        cert_skips,
        hits,
        lookups,
        rate * 100.0,
        divergences,
        reconf.cached_verdicts(),
    );
    ScenarioReport {
        failed: false,
        hit_rate: rate,
        warm_dp_certified: warm_dp_total,
        warm_dp_plain: plain_dp_total,
        cert_skips,
        cold_dp: base_dp_total,
        divergences,
    }
}

/// Batches are a pure function of `(round, party)`, so the live instance
/// and the teardown-rebuild twin disseminate identical payloads.
fn batch_of(round: u64, party: usize) -> Vec<u8> {
    format!("b{round}-{party}").into_bytes()
}

struct SmrReport {
    failed: bool,
    survived: u64,
    restarted_live: u64,
    restarted_base: u64,
    /// Epochs where the stable-id census missed the live population —
    /// a double-counted (or stranded) quorum voter. Always a failure.
    double_counts: u64,
    /// Epochs where the published vouch-quorum weights diverged from the
    /// epoch's snapshot — the stake-refresh audit. Always a failure: a
    /// vouch tally weighing votes under any other epoch's stake is
    /// exactly the stale-weights hole the `EpochEvent` contract closes.
    stake_mismatches: u64,
}

/// One chain × churn **live SMR** replay: every epoch is re-solved for
/// both tracks (WQ for dissemination, WR for the beacon), spliced into a
/// live [`SmrInstance`] and torn down + rebuilt in a baseline twin. Per
/// epoch the instance pipelines `ROUNDS_PER_EPOCH` rounds and leaves
/// `PIPELINE_DEPTH` of them un-committed across the boundary — those are
/// the rounds at stake.
fn run_smr_scenario(chain: Chain, churn_pct: u64, args: &Args) -> SmrReport {
    const ROUNDS_PER_EPOCH: u64 = 4;
    const PIPELINE_DEPTH: usize = 2;
    const PROPOSERS: usize = 8;

    let solver = Swiper::new();
    let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).expect("valid params");
    let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).expect("valid params");
    let mut reconf =
        Reconfigurator::new(solver, vec![Setting::Qualification(wq), Setting::Restriction(wr)]);
    let n = chain.n();
    let alive: Vec<usize> = (0..n).collect();
    let mut snapshot = chain.weights();
    let churned = (n * usize::try_from(churn_pct).expect("small")).div_ceil(100);
    let mut rng = StdRng::seed_from_u64(args.seed ^ (churn_pct << 32) ^ n as u64);
    let snapshots: Vec<_> = (0..args.epochs)
        .map(|_| {
            let current = snapshot.clone();
            snapshot = churn_with(args.churn_mode, &snapshot, churned, 5, &mut rng);
            current
        })
        .collect();

    let mut live: Option<SmrInstance> = None;
    let mut base: Option<SmrInstance> = None;
    // Cross-epoch quorum-identity audit: a census tracker votes every
    // live WR virtual user each epoch, migrating across the epoch's
    // delta. Stable keying must land exactly on the live population every
    // epoch — any excess is a double-counted voter (the dense-id bug),
    // any deficit a stranded survivor.
    let mut audit: Option<(Roster, CountQuorum)> = None;
    let mut double_counts = 0u64;
    // Cross-epoch stake-refresh audit: a vouch-style weighted quorum is
    // reweighed through each epoch's event; its published weight vector
    // must be bit-identical to the epoch's snapshot, or the vouch path is
    // tallying under stale stake.
    let mut vouch: Option<WeightQuorum> = None;
    let mut stake_mismatches = 0u64;
    let session_seed = args.seed;
    let quiet = args.quiet;
    let mut epoch = 0u64;
    let result = reconf.drive_simulation(snapshots, |weights, outcome| {
        let wq_t = outcome.solutions[0].assignment.clone();
        let wr_t = outcome.solutions[1].assignment.clone();
        let vouch_q =
            vouch.get_or_insert_with(|| WeightQuorum::new(weights.clone(), Ratio::of(1, 4)));
        if let Some(event) = outcome.event(1) {
            vouch_q.reweigh(event);
        }
        let stake_stale = vouch_q.weights() != weights;
        stake_mismatches += u64::from(stake_stale);
        match &mut audit {
            Some((roster, census)) => {
                if let Some(event) = outcome.event(1) {
                    roster.apply_delta(event.delta()).expect("WR deltas arrive in sequence");
                    census.migrate(roster);
                }
                for v in 0..roster.total() {
                    census.vote(roster.stable_of(v));
                }
                double_counts += u64::from(census.count() != roster.total());
            }
            None => {
                let mapping = VirtualUsers::from_assignment(&wr_t).expect("fits memory");
                let roster = Roster::new(mapping);
                let mut census = CountQuorum::at_least(roster.total(), 1);
                for v in 0..roster.total() {
                    census.vote(roster.stable_of(v));
                }
                double_counts += u64::from(census.count() != roster.total());
                audit = Some((roster, census));
            }
        }
        match (&mut live, &mut base) {
            (Some(l), Some(b)) => {
                let crossing = l.reconfigure(
                    weights.clone(),
                    wq_t.clone(),
                    wr_t.clone(),
                    ReconfigureMode::Live,
                );
                let _ = b.reconfigure(weights.clone(), wq_t, wr_t, ReconfigureMode::Rebuild);
                if !quiet {
                    println!(
                        "{:10} SMR churn={:2}% epoch={:3} survived={} restarted={} \
                         rekeyed={} wq_delta={:3} wr_delta={:3} stake={}",
                        chain.name(),
                        churn_pct,
                        epoch,
                        crossing.survived,
                        crossing.restarted,
                        u8::from(crossing.rekeyed),
                        outcome.delta(0).map_or(0, |d| d.changes().len()),
                        outcome.delta(1).map_or(0, |d| d.changes().len()),
                        if stake_stale { "STALE" } else { "ok" },
                    );
                }
            }
            _ => {
                live = Some(SmrInstance::new(
                    weights.clone(),
                    wq_t.clone(),
                    Ratio::of(1, 4),
                    wr_t.clone(),
                    session_seed,
                ));
                base = Some(SmrInstance::new(
                    weights.clone(),
                    wq_t,
                    Ratio::of(1, 4),
                    wr_t,
                    session_seed,
                ));
            }
        }
        let (l, b) = (live.as_mut().expect("init"), base.as_mut().expect("init"));
        // The heaviest parties propose (chain replicas list whales
        // first); stake-weighted leaders usually land in that committee,
        // so most rounds commit. The whole alive set backs the beacon.
        // Committee size keeps the replay tractable on real chain sizes
        // without changing the epoch semantics.
        let proposers: Vec<usize> = (0..PROPOSERS.min(n)).collect();
        for _ in 0..ROUNDS_PER_EPOCH {
            for inst in [&mut *l, &mut *b] {
                inst.prepare(&proposers, batch_of);
                if inst.pipeline_len() > PIPELINE_DEPTH {
                    inst.commit(&alive);
                }
            }
        }
        epoch += 1;
    });
    if let Err(e) = result {
        eprintln!("{chain} SMR churn={churn_pct}%: solve failed: {e}");
        return SmrReport {
            failed: true,
            survived: 0,
            restarted_live: 0,
            restarted_base: 0,
            double_counts: 0,
            stake_mismatches: 0,
        };
    }
    let (mut l, mut b) = (live.expect("ran"), base.expect("ran"));
    while l.commit(&alive).is_some() {}
    while b.commit(&alive).is_some() {}
    let diverged = l.ledger() != b.ledger();
    if diverged {
        eprintln!(
            "{chain} SMR churn={churn_pct}%: live ledger diverged from the \
             teardown-rebuild baseline — the live reconfiguration is broken"
        );
    }
    if double_counts > 0 {
        eprintln!(
            "{chain} SMR churn={churn_pct}%: quorum double-count telemetry tripped on \
             {double_counts} epoch(s) — stable-id vote migration is broken"
        );
    }
    if stake_mismatches > 0 {
        eprintln!(
            "{chain} SMR churn={churn_pct}%: vouch-quorum weights diverged from the epoch \
             snapshot on {stake_mismatches} epoch(s) — the stake refresh is broken"
        );
    }
    println!(
        "{:10} SMR churn={:2}% summary: epochs={} committed={} survived={} \
         restarted_live={} restarted_base={} rekeys={}/{} coded_mb={:.2}/{:.2} \
         double_counts={} stake_mismatches={} ledger={}",
        chain.name(),
        churn_pct,
        args.epochs,
        l.ledger().len(),
        l.survived_rounds(),
        l.restarted_rounds(),
        b.restarted_rounds(),
        l.rekeys(),
        b.rekeys(),
        l.coded_bytes() as f64 / 1e6,
        b.coded_bytes() as f64 / 1e6,
        double_counts,
        stake_mismatches,
        if diverged { "DIVERGED" } else { "match" },
    );
    SmrReport {
        failed: diverged || double_counts > 0 || stake_mismatches > 0,
        survived: l.survived_rounds(),
        restarted_live: l.restarted_rounds(),
        restarted_base: b.restarted_rounds(),
        double_counts,
        stake_mismatches,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("epochs: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    let mut json_rows: Vec<EpochBenchRow> = Vec::new();
    for &chain in &args.chains {
        for &churn_pct in &args.churn_pcts {
            if args.smr {
                let report = run_smr_scenario(chain, churn_pct, &args);
                ok &= !report.failed;
                if args.ci_smoke && report.double_counts > 0 {
                    eprintln!(
                        "{chain} SMR churn={churn_pct}%: {} double-count epoch(s) \
                         (see telemetry above)",
                        report.double_counts
                    );
                }
                if args.ci_smoke && report.stake_mismatches > 0 {
                    eprintln!(
                        "{chain} SMR churn={churn_pct}%: {} stale-stake epoch(s) — \
                         published vouch weights diverged from the snapshot",
                        report.stake_mismatches
                    );
                }
                if args.ci_smoke && churn_pct == 1 {
                    if report.restarted_live >= report.restarted_base {
                        eprintln!(
                            "{chain} SMR churn=1%: live reconfiguration no longer \
                             reduces restarted rounds ({} vs {})",
                            report.restarted_live, report.restarted_base
                        );
                        ok = false;
                    }
                    if report.survived == 0 {
                        eprintln!(
                            "{chain} SMR churn=1%: no round ever survived an epoch \
                             change — the live pipeline stopped earning its keep"
                        );
                        ok = false;
                    }
                }
            } else {
                let report = run_scenario(chain, churn_pct, &args);
                ok &= !report.failed;
                if !report.failed {
                    json_rows.push(EpochBenchRow {
                        bench: "epochs".into(),
                        chain: chain.name().into(),
                        churn_pct,
                        epochs: args.epochs,
                        bracket_divergence: report.divergences,
                        cert_skips: report.cert_skips,
                        warm_dp: report.warm_dp_certified,
                        plain_dp: report.warm_dp_plain,
                        cold_dp: report.cold_dp,
                        hit_rate_pct: (report.hit_rate * 100.0).round() as u64,
                    });
                }
                if args.ci_smoke && churn_pct == 1 {
                    if report.hit_rate <= 0.0 {
                        eprintln!(
                            "{chain} churn=1%: cache hit rate is zero — the verdict cache \
                             stopped earning its keep"
                        );
                        ok = false;
                    }
                    if report.warm_dp_plain > 0
                        && report.warm_dp_certified >= report.warm_dp_plain
                    {
                        eprintln!(
                            "{chain} churn=1%: certificates no longer skip DP calls \
                             (certified warm {} vs plain warm {})",
                            report.warm_dp_certified, report.warm_dp_plain
                        );
                        ok = false;
                    }
                    if report.cert_skips == 0 {
                        eprintln!(
                            "{chain} churn=1%: zero certificate skips — the delta-stable \
                             fast path stopped earning its keep"
                        );
                        ok = false;
                    }
                }
            }
        }
    }
    if !json_rows.is_empty() {
        std::fs::write(&args.out, render_epochs_json(&json_rows))
            .expect("write benchmark file");
        println!("wrote {}", args.out);
    }
    if let Some(baseline_path) = &args.diff {
        let doc = std::fs::read_to_string(baseline_path).expect("read baseline");
        let baseline = match parse_epochs_json(&doc) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("epochs: baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Gate only the scenarios this sweep covered, so shortened sweeps
        // can diff against the committed full baseline.
        let covered: Vec<EpochBenchRow> = baseline
            .into_iter()
            .filter(|b| json_rows.iter().any(|r| r.key() == b.key()))
            .collect();
        let problems = diff_epochs_rows(&covered, &json_rows);
        for p in &problems {
            eprintln!("epochs: REGRESSION: {p}");
        }
        if problems.is_empty() {
            println!("diff vs {baseline_path}: clean ({} rows)", covered.len());
        }
        ok &= problems.is_empty();
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
