//! Epoch-reconfiguration replay: perturbed chain snapshots through the
//! incremental re-solve loop.
//!
//! For each chain × churn level, the driver replays `--epochs` snapshots
//! where `churn%` of the parties move up to ±5% of their stake per epoch,
//! re-solving WR(1/3, 1/2) each epoch three ways:
//!
//! * **warm** — the `Reconfigurator`'s warm-started bracket over the
//!   persistent per-track `CachingOracle`;
//! * **published** — the loop runs in verified mode, so the published
//!   assignments are the cold-identical ones (re-derived through the
//!   shared cache, which the warm pass just filled at the flip region);
//! * **baseline** — an independent cold solve with a fresh oracle, the
//!   "no incremental machinery" yardstick for dp counts.
//!
//! Per epoch it prints `dp_invocations` (warm pass vs baseline) and the
//! running cache hit rate; per scenario a summary line including how
//! often the warm bracket settled on a different (equally valid) local
//! minimum than cold bisection — the non-monotone dips discussed in
//! `Swiper::resolve_from`.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin epochs -- [--epochs N] \
//!     [--churn 1,5,20] [--chains aptos,tezos] [--seed S] [--ci-smoke] [--quiet]
//! ```
//!
//! `--ci-smoke` additionally exits non-zero when the 1%-churn scenarios
//! record a zero cache hit rate — the nightly guard that the verdict
//! cache keeps earning its keep.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper_core::{Ratio, Swiper, WeightRestriction};
use swiper_weights::epoch::{churn, Reconfigurator, Setting};
use swiper_weights::Chain;

struct Args {
    epochs: u64,
    churn_pcts: Vec<u64>,
    chains: Vec<Chain>,
    seed: u64,
    ci_smoke: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        epochs: 16,
        churn_pcts: vec![1, 5, 20],
        chains: vec![Chain::Aptos, Chain::Tezos],
        seed: 1,
        ci_smoke: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--epochs" => {
                args.epochs =
                    value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?;
            }
            "--churn" => {
                args.churn_pcts = value("--churn")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--churn: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--chains" => {
                args.chains = value("--chains")?
                    .split(',')
                    .map(|s| {
                        Chain::parse(s.trim()).ok_or_else(|| format!("unknown chain `{s}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--ci-smoke" => args.ci_smoke = true,
            "--quiet" => args.quiet = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.epochs == 0 || args.churn_pcts.is_empty() || args.chains.is_empty() {
        return Err("need at least one epoch, churn level and chain".into());
    }
    Ok(args)
}

struct ScenarioReport {
    failed: bool,
    hit_rate: f64,
}

/// One chain × churn replay.
fn run_scenario(chain: Chain, churn_pct: u64, args: &Args) -> ScenarioReport {
    let solver = Swiper::new();
    let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).expect("valid params");
    let setting = Setting::Restriction(wr);
    let mut reconf = Reconfigurator::new(solver, vec![setting]).with_cold_check(true);
    let mut snapshot = chain.weights();
    let churned = (snapshot.len() * usize::try_from(churn_pct).expect("small")).div_ceil(100);
    // Distinct RNG stream per scenario, reproducible from --seed.
    let mut rng = StdRng::seed_from_u64(args.seed ^ (churn_pct << 32) ^ chain.n() as u64);
    let mut divergences = 0u64;
    let mut warm_dp_total = 0u64;
    let mut base_dp_total = 0u64;
    let mut hits = 0u64;
    let mut lookups = 0u64;
    for epoch in 0..args.epochs {
        let outcome = match reconf.advance(&snapshot) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{chain} churn={churn_pct}% epoch={epoch}: solve failed: {e}");
                return ScenarioReport { failed: true, hit_rate: 0.0 };
            }
        };
        let baseline = solver
            .solve_instance(&setting.instance(snapshot.clone()))
            .expect("baseline solve cannot fail where advance succeeded");
        // Verified mode publishes the cold-identical result; if this ever
        // trips, the incremental machinery has an actual bug.
        if outcome.solutions[0].assignment != baseline.assignment {
            eprintln!(
                "{chain} churn={churn_pct}% epoch={epoch}: published assignment differs \
                 from the fresh cold solve — incremental machinery is broken"
            );
            return ScenarioReport { failed: true, hit_rate: 0.0 };
        }
        // Divergence = the warm bracket settled on a different (equally
        // valid) local minimum than cold bisection — a non-monotone dip.
        // Telemetry, not an error: the published result above is cold.
        divergences += u64::from(outcome.verified() == Some(false));
        let warm = outcome.warm_stats().expect("verified mode records the warm pass");
        let published = outcome.stats();
        warm_dp_total += warm.dp_invocations;
        base_dp_total += baseline.stats.dp_invocations;
        hits += warm.cache_hits + published.cache_hits;
        lookups += warm.cache_lookups() + published.cache_lookups();
        if !args.quiet {
            println!(
                "{:10} churn={:2}% epoch={:3} tickets={:6} delta={:4} dp={:2} dp_cold={:2} \
                 hit_rate={:.2}",
                chain.name(),
                churn_pct,
                epoch,
                outcome.solutions[0].total_tickets(),
                outcome.deltas[0].as_ref().map_or(0, |d| d.changes().len()),
                warm.dp_invocations,
                baseline.stats.dp_invocations,
                if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
            );
        }
        snapshot = churn(&snapshot, churned, 5, &mut rng);
    }
    let rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
    println!(
        "{:10} churn={:2}% summary: epochs={} dp_warm={} dp_cold={} cache={}/{} ({:.0}%) \
         divergences={} cached_verdicts={}",
        chain.name(),
        churn_pct,
        args.epochs,
        warm_dp_total,
        base_dp_total,
        hits,
        lookups,
        rate * 100.0,
        divergences,
        reconf.cached_verdicts(),
    );
    ScenarioReport { failed: false, hit_rate: rate }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("epochs: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for &chain in &args.chains {
        for &churn_pct in &args.churn_pcts {
            let report = run_scenario(chain, churn_pct, &args);
            ok &= !report.failed;
            if args.ci_smoke && churn_pct == 1 && report.hit_rate <= 0.0 {
                eprintln!(
                    "{chain} churn=1%: cache hit rate is zero — the verdict cache \
                     stopped earning its keep"
                );
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
