//! Quick solver sanity sweep over the four chain replicas — a fast way to
//! eyeball ticket totals, bounds, modes and runtimes before running the
//! full experiment suite. Each chain also runs a short certified warm
//! replay so the delta-stable certificate fast path's skip counter is
//! visible next to `dp=`, plus one threaded-runtime line: a weighted
//! Bracha broadcast over the chain's whale stakes on the
//! [`ThreadedRuntime`], twin-replayed against the simulator substrate.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin smoke
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper_core::{Mode, Ratio, Swiper, WeightRestriction, WeightSeparation, Weights};
use swiper_net::{
    DelayModel, OverlayConfig, OverlayMsg, OverlayNode, OverlayStats, Protocol, SendNodes,
    Simulation, ThreadedRuntime,
};
use swiper_protocols::bracha::{BrachaConfig, BrachaMsg, BrachaNode};
use swiper_weights::epoch::{churn_with, ChurnMode, Reconfigurator, Setting};
use swiper_weights::CHAINS;

/// Epochs of 1%-churn warm replay per chain.
const REPLAY_EPOCHS: u64 = 6;

/// Parties in the runtime line's weighted broadcast: the chain's top
/// stakes, kept small so the all-to-all automaton stays a smoke test.
const RUNTIME_PARTIES: usize = 16;

/// Weighted Bracha replicas over the chain's heaviest stakes.
fn bracha_nodes(weights: &Weights, payload: &[u8]) -> SendNodes<BrachaMsg> {
    let n = weights.len();
    (0..n)
        .map(|me| {
            let config = BrachaConfig::weighted(weights.clone());
            if me == 0 {
                Box::new(BrachaNode::sender(config, 0, payload.to_vec())) as _
            } else {
                Box::new(BrachaNode::new(config, 0)) as _
            }
        })
        .collect()
}

/// Dissemination economy of one overlay configuration: messages per
/// unique first-receipt delivery (and nodes reached) for a weighted
/// Bracha broadcast carried by [`OverlayNode`] on the simulator.
fn gossip_cost(
    weights: &Weights,
    payload: &[u8],
    cfg: &OverlayConfig,
    seed: u64,
) -> (f64, usize) {
    let stats = Arc::new(Mutex::new(OverlayStats::default()));
    let n = weights.len();
    let nodes: Vec<Box<dyn Protocol<Msg = OverlayMsg<BrachaMsg>>>> = (0..n)
        .map(|me| {
            let config = BrachaConfig::weighted(weights.clone());
            let inner: Box<dyn Protocol<Msg = BrachaMsg> + Send> = if me == 0 {
                Box::new(BrachaNode::sender(config, 0, payload.to_vec()))
            } else {
                Box::new(BrachaNode::new(config, 0))
            };
            Box::new(
                OverlayNode::new(inner, weights.clone(), cfg.clone(), seed)
                    .with_stats(Arc::clone(&stats)),
            ) as _
        })
        .collect();
    let report = Simulation::new(nodes, seed).with_delay(DelayModel::Uniform(1, 20)).run();
    let reached = report.outputs.iter().filter(|o| o.as_deref() == Some(payload)).count();
    let s = stats.lock().expect("sim is single-threaded");
    (report.metrics.total_messages() as f64 / s.deliveries.max(1) as f64, reached)
}

fn main() {
    for chain in CHAINS {
        let w = chain.weights();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        for mode in [Mode::Full, Mode::Linear] {
            let t0 = Instant::now();
            let sol = Swiper::with_mode(mode).solve_restriction(&w, &p).unwrap();
            println!(
                "{:10} n={:6} mode={:?} tickets={:6} bound={:6} dp={} time={:?}",
                chain.name(),
                w.len(),
                mode,
                sol.total_tickets(),
                sol.ticket_bound,
                sol.stats.dp_invocations,
                t0.elapsed()
            );
        }
        let s = WeightSeparation::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let t0 = Instant::now();
        let sol = Swiper::new().solve_separation(&w, &s).unwrap();
        println!(
            "{:10} WS tickets={:6} bound={:6} time={:?}",
            chain.name(),
            sol.total_tickets(),
            sol.ticket_bound,
            t0.elapsed()
        );
        // Certified warm replay: a few 1%-churn epochs through the
        // reconfiguration loop (certificates on by default) to surface the
        // skip counter alongside the DP count.
        let mut reconf = Reconfigurator::new(Swiper::new(), vec![Setting::Restriction(p)]);
        let mut snapshot = w.clone();
        let churned = snapshot.len().div_ceil(100);
        let mut rng = StdRng::seed_from_u64(7);
        let t0 = Instant::now();
        let mut stats = swiper_core::SolveStats::default();
        for _ in 0..REPLAY_EPOCHS {
            let outcome = reconf.advance(&snapshot).unwrap();
            stats.absorb(&outcome.stats());
            snapshot = churn_with(ChurnMode::Drift, &snapshot, churned, 5, &mut rng);
        }
        println!(
            "{:10} replay epochs={} dp={} cert_skips={} cache={}/{} time={:?}",
            chain.name(),
            REPLAY_EPOCHS,
            stats.dp_invocations,
            stats.certificate_skips,
            stats.cache_hits,
            stats.cache_lookups(),
            t0.elapsed()
        );
        // Threaded-runtime line: weighted Bracha over the chain's whale
        // stakes, with the delivery trace replayed on the simulator twin.
        let mut stakes = w.as_slice().to_vec();
        stakes.sort_unstable_by(|a, b| b.cmp(a));
        stakes.truncate(RUNTIME_PARTIES);
        let whales = Weights::new(stakes).unwrap();
        let payload = format!("smoke payload for {}", chain.name()).into_bytes();
        let t0 = Instant::now();
        let full =
            ThreadedRuntime::new(bracha_nodes(&whales, &payload)).with_workers(2).run_traced();
        let fresh: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = bracha_nodes(&whales, &payload)
            .into_iter()
            .map(|b| b as Box<dyn Protocol<Msg = BrachaMsg>>)
            .collect();
        let twin_ok = full
            .trace
            .replay(fresh)
            .map(|r| r.outputs == full.report.outputs && r.metrics == full.report.metrics)
            .unwrap_or(false);
        let delivered = full.report.outputs.iter().filter(|o| o.is_some()).count();
        println!(
            "{:10} runtime n={:6} workers=2 delivered={}/{} msgs={:5} twin={} time={:?}",
            chain.name(),
            whales.len(),
            delivered,
            whales.len(),
            full.report.metrics.delivered_messages(),
            if twin_ok { "ok" } else { "DIVERGED" },
            t0.elapsed()
        );
        assert!(twin_ok, "smoke: {} runtime twin replay diverged", chain.name());
        // Gossip line: the overlay's dissemination economy versus reliable
        // flooding, both backends carrying the same weighted Bracha
        // workload over the whale stakes (flooding = every peer pinned in
        // the active view).
        let t0 = Instant::now();
        let (overlay_cost, overlay_reach) =
            gossip_cost(&whales, &payload, &OverlayConfig::default(), 9);
        let flood_cfg = OverlayConfig {
            active_degree: whales.len() - 1,
            prune: false,
            ..OverlayConfig::default()
        };
        let (flood_cost, flood_reach) = gossip_cost(&whales, &payload, &flood_cfg, 9);
        println!(
            "{:10} gossip  n={:6} overlay msgs/delivery={:.2} fullmesh={:.2} reach={}/{} \
             time={:?}",
            chain.name(),
            whales.len(),
            overlay_cost,
            flood_cost,
            overlay_reach,
            whales.len(),
            t0.elapsed()
        );
        assert_eq!(overlay_reach, whales.len(), "smoke: {} overlay reach", chain.name());
        assert_eq!(flood_reach, whales.len(), "smoke: {} flood reach", chain.name());
    }
}
