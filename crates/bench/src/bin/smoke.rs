//! Quick solver sanity sweep over the four chain replicas — a fast way to
//! eyeball ticket totals, bounds, modes and runtimes before running the
//! full experiment suite. Each chain also runs a short certified warm
//! replay so the delta-stable certificate fast path's skip counter is
//! visible next to `dp=`.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin smoke
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper_core::{Mode, Ratio, Swiper, WeightRestriction, WeightSeparation};
use swiper_weights::epoch::{churn_with, ChurnMode, Reconfigurator, Setting};
use swiper_weights::CHAINS;

/// Epochs of 1%-churn warm replay per chain.
const REPLAY_EPOCHS: u64 = 6;

fn main() {
    for chain in CHAINS {
        let w = chain.weights();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        for mode in [Mode::Full, Mode::Linear] {
            let t0 = Instant::now();
            let sol = Swiper::with_mode(mode).solve_restriction(&w, &p).unwrap();
            println!(
                "{:10} n={:6} mode={:?} tickets={:6} bound={:6} dp={} time={:?}",
                chain.name(),
                w.len(),
                mode,
                sol.total_tickets(),
                sol.ticket_bound,
                sol.stats.dp_invocations,
                t0.elapsed()
            );
        }
        let s = WeightSeparation::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let t0 = Instant::now();
        let sol = Swiper::new().solve_separation(&w, &s).unwrap();
        println!(
            "{:10} WS tickets={:6} bound={:6} time={:?}",
            chain.name(),
            sol.total_tickets(),
            sol.ticket_bound,
            t0.elapsed()
        );
        // Certified warm replay: a few 1%-churn epochs through the
        // reconfiguration loop (certificates on by default) to surface the
        // skip counter alongside the DP count.
        let mut reconf = Reconfigurator::new(Swiper::new(), vec![Setting::Restriction(p)]);
        let mut snapshot = w.clone();
        let churned = snapshot.len().div_ceil(100);
        let mut rng = StdRng::seed_from_u64(7);
        let t0 = Instant::now();
        let mut stats = swiper_core::SolveStats::default();
        for _ in 0..REPLAY_EPOCHS {
            let outcome = reconf.advance(&snapshot).unwrap();
            stats.absorb(&outcome.stats());
            snapshot = churn_with(ChurnMode::Drift, &snapshot, churned, 5, &mut rng);
        }
        println!(
            "{:10} replay epochs={} dp={} cert_skips={} cache={}/{} time={:?}",
            chain.name(),
            REPLAY_EPOCHS,
            stats.dp_invocations,
            stats.certificate_skips,
            stats.cache_hits,
            stats.cache_lookups(),
            t0.elapsed()
        );
    }
}
