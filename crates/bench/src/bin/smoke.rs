//! Quick solver sanity sweep over the four chain replicas — a fast way to
//! eyeball ticket totals, bounds, modes and runtimes before running the
//! full experiment suite.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin smoke
//! ```

use std::time::Instant;
use swiper_core::{Mode, Ratio, Swiper, WeightRestriction, WeightSeparation};
use swiper_weights::CHAINS;

fn main() {
    for chain in CHAINS {
        let w = chain.weights();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        for mode in [Mode::Full, Mode::Linear] {
            let t0 = Instant::now();
            let sol = Swiper::with_mode(mode).solve_restriction(&w, &p).unwrap();
            println!(
                "{:10} n={:6} mode={:?} tickets={:6} bound={:6} dp={} time={:?}",
                chain.name(),
                w.len(),
                mode,
                sol.total_tickets(),
                sol.ticket_bound,
                sol.stats.dp_invocations,
                t0.elapsed()
            );
        }
        let s = WeightSeparation::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let t0 = Instant::now();
        let sol = Swiper::new().solve_separation(&w, &s).unwrap();
        println!(
            "{:10} WS tickets={:6} bound={:6} time={:?}",
            chain.name(),
            sol.total_tickets(),
            sol.ticket_bound,
            t0.elapsed()
        );
    }
}
