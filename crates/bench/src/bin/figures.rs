//! Regenerates **Figures 1–5**: for a chain, (a) the left-column heatmaps —
//! total tickets / max tickets / holders over the `(alpha_n, alpha_w)`
//! grid — and (b) the right-column bootstrap sweeps — the same metrics as
//! the number of parties scales, averaged over bootstrap resamples.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin figures -- --chain tezos [--reps 100] [--out bench_results]
//! ```
//!
//! Output: CSV files, one per figure panel, mirroring the paper's plots:
//! `fig_<chain>_grid.csv` (columns: alpha_n, ratio, alpha_w, total, max,
//! holders) and `fig_<chain>_bootstrap.csv` (columns: pair, nfrac, n,
//! total, max, holders).

use swiper_bench::{figure_pairs, measure_wr, write_csv};
use swiper_core::{Mode, Ratio};
use swiper_weights::bootstrap::resample;
use swiper_weights::Chain;

use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    chain: Chain,
    reps: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut chain = Chain::Tezos;
    let mut reps = 100usize;
    let mut out = "bench_results".to_string();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--chain" => {
                i += 1;
                chain = Chain::parse(&argv[i]).unwrap_or_else(|| {
                    eprintln!("unknown chain `{}`", argv[i]);
                    std::process::exit(2);
                });
            }
            "--reps" => {
                i += 1;
                reps = argv[i].parse().expect("--reps takes a number");
            }
            "--out" => {
                i += 1;
                out = argv[i].clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args { chain, reps, out }
}

fn main() {
    let args = parse_args();
    let weights = args.chain.weights();
    let name = args.chain.name().to_lowercase();
    println!(
        "figures for {} (n = {}, W = {:.2e}), {} bootstrap reps",
        args.chain,
        weights.len(),
        weights.total() as f64,
        args.reps
    );

    // Left column: alpha_n in {1/10..9/10}, alpha_w = ratio * alpha_n with
    // ratio in {1/10..9/10} (the paper sweeps alpha_n in [0.1, 1] and
    // alpha_w in [0.1 an, 0.9 an]).
    let mut grid_rows: Vec<Vec<String>> = Vec::new();
    for an_tenths in 1..=9u128 {
        let alpha_n = Ratio::of(an_tenths, 10);
        for ratio_tenths in 1..=9u128 {
            let alpha_w = Ratio::of(an_tenths * ratio_tenths, 100);
            if alpha_w >= alpha_n || !alpha_w.is_proper() {
                continue;
            }
            let m = measure_wr(&weights, alpha_w, alpha_n, Mode::Full);
            grid_rows.push(vec![
                format!("{:.1}", alpha_n.to_f64()),
                format!("{:.1}", ratio_tenths as f64 / 10.0),
                format!("{:.2}", alpha_w.to_f64()),
                m.total_tickets.to_string(),
                m.max_tickets.to_string(),
                m.holders.to_string(),
            ]);
        }
    }
    write_csv(
        format!("{}/fig_{}_grid.csv", args.out, name),
        &["alpha_n", "aw_over_an", "alpha_w", "total_tickets", "max_tickets", "holders"],
        &grid_rows,
    );

    // Right column: bootstrap n-fraction sweep for the four tracked pairs.
    let mut boot_rows: Vec<Vec<String>> = Vec::new();
    let n = weights.len();
    for (aw, an) in figure_pairs() {
        for frac_tenths in 1..=10usize {
            let size = (n * frac_tenths / 10).max(1);
            let mut rng = StdRng::seed_from_u64(0xF1605 + frac_tenths as u64);
            let (mut tot, mut mx, mut hold) = (0.0f64, 0.0f64, 0.0f64);
            for _ in 0..args.reps {
                let sample = resample(&weights, size, &mut rng);
                let m = measure_wr(&sample, aw, an, Mode::Full);
                tot += m.total_tickets as f64;
                mx += m.max_tickets as f64;
                hold += m.holders as f64;
            }
            let reps = args.reps as f64;
            boot_rows.push(vec![
                format!("({aw},{an})"),
                format!("{:.1}", frac_tenths as f64 / 10.0),
                size.to_string(),
                format!("{:.1}", tot / reps),
                format!("{:.1}", mx / reps),
                format!("{:.1}", hold / reps),
            ]);
        }
        println!("  pair ({aw}, {an}) done");
    }
    write_csv(
        format!("{}/fig_{}_bootstrap.csv", args.out, name),
        &["pair", "nfrac", "n", "avg_total_tickets", "avg_max_tickets", "avg_holders"],
        &boot_rows,
    );
}
