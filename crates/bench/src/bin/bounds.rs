//! Upper-bound tightness study (Theorems 2.1/2.3/2.4): achieved tickets vs
//! the theoretical bound on adversarial (equal-weight), whale, and organic
//! (chain replica) distributions, plus a comparison against the exact
//! optimum on tiny instances (the Appendix B reference role).
//!
//! ```text
//! cargo run --release -p swiper-bench --bin bounds
//! ```

use swiper_bench::{measure_wr, measure_ws, TextTable};
use swiper_core::{exact, Mode, Ratio, Swiper, WeightRestriction, Weights};
use swiper_weights::{gen, CHAINS};

fn main() {
    bound_vs_achieved();
    exact_comparison();
}

fn bound_vs_achieved() {
    println!("Theorem bounds vs achieved tickets (WR 1/3 -> 1/2 and WS 1/3 | 1/2)\n");
    let mut table = TextTable::new(vec![
        "distribution",
        "n",
        "WR tickets",
        "WR bound",
        "WR ratio",
        "WS tickets",
        "WS bound",
    ]);
    let aw = Ratio::of(1, 3);
    let an = Ratio::of(1, 2);

    let mut cases: Vec<(String, Weights)> = vec![
        ("equal n=100".into(), gen::equal(100, 7)),
        ("equal n=1000".into(), gen::equal(1000, 7)),
        ("one whale 90%".into(), gen::one_whale(100, 90)),
        ("zipf s=1.0".into(), gen::zipf(1000, 1.0, 1 << 30)),
        ("pareto a=1.2".into(), gen::pareto(1000, 1.2, 1000, 42)),
    ];
    for chain in CHAINS {
        cases.push((chain.name().to_string(), chain.weights()));
    }

    for (name, weights) in cases {
        let wr = measure_wr(&weights, aw, an, Mode::Full);
        let ws = measure_ws(&weights, aw, an, Mode::Full);
        table.row(vec![
            name,
            weights.len().to_string(),
            wr.total_tickets.to_string(),
            wr.bound.to_string(),
            format!("{:.2}", wr.total_tickets as f64 / wr.bound as f64),
            ws.total_tickets.to_string(),
            ws.bound.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("equal weights sit closest to the bound (the worst case);");
    println!("organic skewed distributions stay far below it (Section 7 finding)\n");
}

fn exact_comparison() {
    println!("Swiper vs exact optimum on tiny instances (Appendix B role)\n");
    let mut table = TextTable::new(vec!["weights", "swiper T", "optimal T", "gap"]);
    // alpha_w = 1/3 with 6-8 parties keeps non-trivial light subsets, so
    // the optimum is interesting (> 1 ticket).
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let cases: Vec<Vec<u64>> = vec![
        vec![1, 1, 1, 1, 1, 1, 1],
        vec![5, 4, 3, 2, 1, 1],
        vec![10, 6, 5, 4, 3, 2, 1],
        vec![7, 7, 7, 7, 7, 7],
        vec![9, 8, 7, 3, 2, 1],
        vec![20, 11, 8, 6, 2, 1, 1, 1],
    ];
    for ws in cases {
        let weights = Weights::new(ws.clone()).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let swiper_total = sol.total_tickets();
        let limit = u64::try_from(swiper_total).unwrap().min(24);
        let best = exact::optimal_restriction(&weights, &params, limit)
            .expect("within limits")
            .map(|t| t.total())
            .unwrap_or(swiper_total);
        table.row(vec![
            format!("{ws:?}"),
            swiper_total.to_string(),
            best.to_string(),
            format!("+{}", swiper_total - best),
        ]);
    }
    println!("{}", table.render());
    println!("Swiper is approximate: small gaps to the optimum are expected;");
    println!("the bi-level MIP of Appendix B is likewise 'prohibitively slow' beyond tiny n.");
}
