//! Threaded-runtime scaling sweep — the deployed-seam benchmark
//! trajectory (`BENCH_runtime.json`).
//!
//! For each protocol chain ∈ {bracha, aba, smr} × population size ×
//! worker-thread count, the driver runs the *same automata the simulator
//! tests* on the [`ThreadedRuntime`], measures commit throughput,
//! delivered-message throughput and send→process latency percentiles, and
//! replays the recorded delivery trace on the simulator substrate — every
//! cell carries a `twin_ok` flag and the binary exits non-zero if any
//! replay diverges (the determinism-twin contract, see
//! `docs/ARCHITECTURE.md`).
//!
//! * **bracha** — reliable broadcast of a large seeded payload; every
//!   echo/ready receipt re-hashes the payload, so the cell is CPU-bound
//!   and shows worker scaling.
//! * **aba** — binary agreement with split inputs; threshold-coin crypto
//!   per round.
//! * **smr** — a round-pipelined ledger ([`SmrNode`]); commits/sec is the
//!   pipeline's end-to-end rate.
//!
//! `commits` (protocol progress at quiescence) is schedule-independent
//! and regression-gated exactly, as is `twin_ok`; wall time is gated with
//! 20% tolerance above the 250 ms floor; message counts, latency and RSS
//! are informational (see `swiper_bench::diff_runtime_rows`).
//!
//! ```text
//! cargo run --release -p swiper-bench --bin runtime_scale -- \
//!     [--ci-smoke] [--out PATH] [--diff BASELINE] [--seed S]
//! ```
//!
//! `--ci-smoke` runs a reduced sweep (one population per chain, fewer
//! worker counts) for the nightly soak; `--diff` compares against a
//! committed baseline, restricted to the cells the current sweep covers,
//! and exits non-zero on any regression.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swiper_bench::{
    current_rss_kb, diff_runtime_rows, parse_runtime_json, peak_rss_kb, render_runtime_json,
    RuntimeBenchRow, TextTable,
};
use swiper_core::Weights;
use swiper_net::{
    MessageSize, Protocol, RunReport, SendNodes, SocketTransport, ThreadedRuntime, WireCodec,
};
use swiper_protocols::aba::{AbaNode, AbaSetup};
use swiper_protocols::bracha::{BrachaConfig, BrachaNode};
use swiper_protocols::smr::SmrNode;
use swiper_protocols::wire::{AbaCodec, BrachaCodec, SmrCodec};

/// Rounds of the SMR pipeline per run.
const SMR_ROUNDS: u64 = 30;
/// SMR batch size in bytes.
const SMR_BATCH: usize = 4096;
/// Bracha payload size in bytes (re-hashed at every echo/ready receipt —
/// the CPU load that makes worker scaling visible).
const BRACHA_PAYLOAD: usize = 32 * 1024;

struct Args {
    ci_smoke: bool,
    out: String,
    diff: Option<String>,
    seed: u64,
    /// Transport backends to sweep: `channel`, `socket`, or both.
    transports: Vec<&'static str>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ci_smoke: false,
        out: "BENCH_runtime.json".into(),
        diff: None,
        seed: 1,
        transports: vec!["channel", "socket"],
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--ci-smoke" => args.ci_smoke = true,
            "--out" => args.out = value("--out")?,
            "--diff" => args.diff = Some(value("--diff")?),
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--transport" => {
                args.transports = match value("--transport")?.as_str() {
                    "channel" => vec!["channel"],
                    "socket" => vec!["socket"],
                    "both" => vec!["channel", "socket"],
                    other => {
                        return Err(format!(
                            "--transport: `{other}` (want channel, socket or both)"
                        ))
                    }
                };
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Runs one sweep cell: the chain on the threaded runtime over the given
/// transport backend, then the twin replay. Returns the row plus whether
/// the twin held.
fn run_cell<M, F, C, K>(
    protocol: &str,
    transport: &str,
    n: usize,
    workers: usize,
    make: F,
    commits_of: K,
) -> (RuntimeBenchRow, bool)
where
    M: Clone + MessageSize + Send + 'static,
    F: Fn() -> SendNodes<M>,
    C: WireCodec<M> + Default,
    K: Fn(&RunReport) -> u64,
{
    let runtime = ThreadedRuntime::new(make()).with_workers(workers);
    let full = if transport == "socket" {
        let wire: SocketTransport<M, C> =
            SocketTransport::loopback(n).expect("bind loopback sockets");
        runtime.with_transport(wire).run_traced()
    } else {
        runtime.run_traced()
    };
    // RSS at quiescence: the runtime has joined its workers and the trace
    // is fully materialized, so `VmRSS` here is the footprint this cell
    // actually held — sampled before the twin replay allocates its own
    // copy. `VmHWM`-delta attribution degenerates to 0 for any cell that
    // fits inside an earlier cell's peak; the quiescent sample (with the
    // process peak as a non-Linux-safe fallback) is nonzero for every
    // row.
    let rss_kb = match current_rss_kb() {
        0 => peak_rss_kb(),
        kb => kb,
    };
    // The twin: fresh automata, same constructors, replayed on the
    // simulator substrate. Outputs and metrics must match bit for bit.
    let fresh: Vec<Box<dyn Protocol<Msg = M>>> =
        make().into_iter().map(|b| b as Box<dyn Protocol<Msg = M>>).collect();
    let twin_ok = match full.trace.replay(fresh) {
        Ok(r) => {
            let ok = r.outputs == full.report.outputs && r.metrics == full.report.metrics;
            if !ok {
                eprintln!(
                    "runtime_scale: {protocol}/{transport}/n={n}/w={workers}: twin replay \
                           ran but outputs or metrics differ"
                );
            }
            ok
        }
        Err(e) => {
            eprintln!("runtime_scale: {protocol}/{transport}/n={n}/w={workers}: {e}");
            false
        }
    };
    let commits = commits_of(&full.report);
    let wall_us = full.wall.as_micros().max(1) as u64;
    let msgs = full.report.metrics.delivered_messages();
    let per_sec = |count: u64| count.saturating_mul(1_000_000) / wall_us;
    let row = RuntimeBenchRow {
        bench: "runtime_scale".into(),
        protocol: protocol.into(),
        transport: transport.into(),
        n: n as u64,
        workers: workers as u64,
        wall_ms: wall_us / 1000,
        commits,
        commits_per_sec: per_sec(commits),
        msgs,
        msgs_per_sec: per_sec(msgs),
        p50_us: full.latency.p50_us,
        p95_us: full.latency.p95_us,
        p99_us: full.latency.p99_us,
        peak_rss_kb: rss_kb,
        twin_ok: u64::from(twin_ok),
    };
    (row, twin_ok)
}

fn bracha_nodes(n: usize, seed: u64) -> SendNodes<swiper_protocols::bracha::BrachaMsg> {
    let mut rng = StdRng::seed_from_u64(seed);
    let payload: Vec<u8> = (0..BRACHA_PAYLOAD).map(|_| rng.random::<u8>()).collect();
    (0..n)
        .map(|me| {
            if me == 0 {
                Box::new(BrachaNode::sender(BrachaConfig::nominal(n), 0, payload.clone())) as _
            } else {
                Box::new(BrachaNode::new(BrachaConfig::nominal(n), 0)) as _
            }
        })
        .collect()
}

fn aba_nodes(n: usize, seed: u64) -> SendNodes<swiper_protocols::aba::AbaMsg> {
    let setup = AbaSetup::nominal(n, 0, &mut StdRng::seed_from_u64(seed));
    (0..n).map(|me| Box::new(AbaNode::new(setup.clone(), me % 2 == 0)) as _).collect()
}

fn smr_nodes(n: usize, seed: u64) -> SendNodes<swiper_protocols::smr::SmrMsg> {
    // Mildly skewed stake so the leader schedule is genuinely weighted.
    let weights = Weights::new((0..n).map(|p| 10 + (p as u64 % 7)).collect()).expect("n > 0");
    (0..n)
        .map(|me| Box::new(SmrNode::new(me, weights.clone(), seed, SMR_ROUNDS, SMR_BATCH)) as _)
        .collect()
}

/// Nodes that produced an output (delivered / decided).
fn outputs_count(report: &RunReport) -> u64 {
    report.outputs.iter().filter(|o| o.is_some()).count() as u64
}

/// Sum of committed rounds across SMR replicas (first 8 output bytes).
fn smr_commits(report: &RunReport) -> u64 {
    report
        .outputs
        .iter()
        .flatten()
        .map(|out| u64::from_le_bytes(out[..8].try_into().expect("8-byte count prefix")))
        .sum()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("runtime_scale: {e}");
            return ExitCode::FAILURE;
        }
    };
    let worker_counts: &[usize] = if args.ci_smoke { &[1, 2] } else { &[1, 2, 4] };
    let bracha_sizes: &[usize] = if args.ci_smoke { &[16] } else { &[16, 32] };
    let aba_sizes: &[usize] = if args.ci_smoke { &[8] } else { &[8, 16] };
    let smr_sizes: &[usize] = if args.ci_smoke { &[8] } else { &[8, 16] };

    let mut rows = Vec::new();
    let mut all_twins_ok = true;
    let sweep = |rows: &mut Vec<RuntimeBenchRow>, ok: &mut bool, transport: &str| {
        for &n in bracha_sizes {
            for &w in worker_counts.iter().filter(|&&w| w <= n) {
                let (row, twin) = run_cell::<_, _, BrachaCodec, _>(
                    "bracha",
                    transport,
                    n,
                    w,
                    || bracha_nodes(n, args.seed),
                    outputs_count,
                );
                rows.push(row);
                *ok &= twin;
            }
        }
        for &n in aba_sizes {
            for &w in worker_counts.iter().filter(|&&w| w <= n) {
                let (row, twin) = run_cell::<_, _, AbaCodec, _>(
                    "aba",
                    transport,
                    n,
                    w,
                    || aba_nodes(n, args.seed),
                    outputs_count,
                );
                rows.push(row);
                *ok &= twin;
            }
        }
        for &n in smr_sizes {
            for &w in worker_counts.iter().filter(|&&w| w <= n) {
                let (row, twin) = run_cell::<_, _, SmrCodec, _>(
                    "smr",
                    transport,
                    n,
                    w,
                    || smr_nodes(n, args.seed),
                    smr_commits,
                );
                rows.push(row);
                *ok &= twin;
            }
        }
    };
    for transport in &args.transports {
        sweep(&mut rows, &mut all_twins_ok, transport);
    }

    let mut table = TextTable::new(vec![
        "protocol",
        "transport",
        "n",
        "workers",
        "wall_ms",
        "commits",
        "commits/s",
        "msgs",
        "msgs/s",
        "p50_us",
        "p95_us",
        "p99_us",
        "twin",
    ]);
    for r in &rows {
        table.row(vec![
            r.protocol.clone(),
            r.transport.clone(),
            r.n.to_string(),
            r.workers.to_string(),
            r.wall_ms.to_string(),
            r.commits.to_string(),
            r.commits_per_sec.to_string(),
            r.msgs.to_string(),
            r.msgs_per_sec.to_string(),
            r.p50_us.to_string(),
            r.p95_us.to_string(),
            r.p99_us.to_string(),
            if r.twin_ok == 1 { "ok".into() } else { "DIVERGED".to_string() },
        ]);
    }
    print!("{}", table.render());

    std::fs::write(&args.out, render_runtime_json(&rows)).expect("write benchmark file");
    println!("wrote {}", args.out);

    let mut ok = all_twins_ok;
    if !all_twins_ok {
        eprintln!("runtime_scale: twin replay DIVERGED — the determinism contract is broken");
    }
    if let Some(baseline_path) = &args.diff {
        let doc = std::fs::read_to_string(baseline_path).expect("read baseline");
        let baseline = match parse_runtime_json(&doc) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("runtime_scale: baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Gate only the cells this sweep covered, so --ci-smoke can diff
        // against the committed full sweep.
        let covered: Vec<RuntimeBenchRow> =
            baseline.into_iter().filter(|b| rows.iter().any(|r| r.key() == b.key())).collect();
        let problems = diff_runtime_rows(&covered, &rows, 20);
        for p in &problems {
            eprintln!("runtime_scale: REGRESSION: {p}");
        }
        if problems.is_empty() {
            println!("diff vs {baseline_path}: clean ({} rows)", covered.len());
        }
        ok &= problems.is_empty();
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
