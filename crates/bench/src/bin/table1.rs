//! Regenerates **Table 1**: worst-case communication/computation overhead
//! of the derived weighted protocols, analytically (from the theorems) and
//! — for the broadcast rows — *measured* on the simulator by running the
//! nominal and weighted protocols side by side on a worst-case (equal)
//! weight distribution.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin table1
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use swiper_bench::TextTable;
use swiper_core::{
    Instance, Ratio, Solution, Swiper, WeightQualification, WeightRestriction, Weights,
};
use swiper_net::{Protocol, Simulation};
use swiper_protocols::avid::{AvidConfig, AvidMsg, AvidNode};
use swiper_protocols::beacon::{BeaconMsg, BeaconNode, BeaconSetup};
use swiper_protocols::overhead;

fn main() {
    println!("Table 1 — worst-case overhead factors (analytic, tight bounds)\n");
    let mut table = TextTable::new(vec![
        "protocol",
        "reduction",
        "f_w",
        "f_n",
        "comm (ours)",
        "comp (ours)",
        "comm (paper)",
        "comp (paper)",
    ]);
    for row in overhead::table1() {
        table.row(vec![
            row.protocol.to_string(),
            row.reduction.to_string(),
            row.f_w.to_string(),
            row.f_n.to_string(),
            format!("x{:.2}", row.comm),
            format!("x{:.2}", row.comp),
            format!("x{:.2}", row.paper.0),
            format!("x{:.2}", row.paper.1),
        ]);
    }
    println!("{}", table.render());
    println!(
        "rows where ours < paper use the Theorem 2.1 bound with the optimized constant c\n"
    );

    // Both measured rows run on the same worst-case (equal) weight
    // distribution; their reductions are independent, so solve them as one
    // batch.
    let n = 10;
    let weights = Weights::new(vec![7; n]).unwrap();
    let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
    let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let solutions = Swiper::new()
        .solve_many(&[
            Instance::qualification(weights.clone(), wq),
            Instance::restriction(weights.clone(), wr),
        ])
        .unwrap();

    measured_broadcast_overhead(&weights, &solutions[0]);
    measured_beacon_overhead(&solutions[1]);
}

/// Measured AVID overhead: weighted vs nominal bytes on the simulator with
/// an equal-weight (worst-case) distribution.
fn measured_broadcast_overhead(weights: &Weights, sol: &Solution) {
    println!("Measured: erasure-coded broadcast (AVID), nominal vs weighted");
    let n = weights.len();
    let blob = vec![0x5A; 30_000];

    let nominal_cfg = AvidConfig::nominal(n);
    let nominal = run_avid(&nominal_cfg, n, &blob, 11);

    let weighted_cfg = AvidConfig::weighted(weights.clone(), &sol.assignment, Ratio::of(1, 4));
    let weighted = run_avid(&weighted_cfg, n, &blob, 11);

    let factor = weighted as f64 / nominal as f64;
    let mut t = TextTable::new(vec!["variant", "k", "m", "total bytes", "overhead"]);
    t.row(vec![
        "nominal".to_string(),
        nominal_cfg.k().to_string(),
        nominal_cfg.m().to_string(),
        nominal.to_string(),
        "x1.00".to_string(),
    ]);
    t.row(vec![
        "weighted (WQ 1/3 -> 1/4)".to_string(),
        weighted_cfg.k().to_string(),
        weighted_cfg.m().to_string(),
        weighted.to_string(),
        format!("x{factor:.2}"),
    ]);
    println!("{}", t.render());
    println!("paper bound: x1.33 comm — measured factor should sit at or below it\n");
}

fn run_avid(config: &AvidConfig, n: usize, blob: &[u8], seed: u64) -> u64 {
    let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = Vec::new();
    nodes.push(Box::new(AvidNode::dealer(config.clone(), 0, blob.to_vec())));
    for _ in 1..n {
        nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
    }
    let report = Simulation::new(nodes, seed).run();
    assert!(report.outputs.iter().all(|o| o.is_some()), "AVID must deliver");
    report.metrics.total_bytes()
}

/// Measured beacon overhead: share-message bytes, weighted vs nominal.
fn measured_beacon_overhead(sol: &Solution) {
    println!("Measured: randomness beacon (common coin), nominal vs weighted");
    let n = sol.assignment.len();
    let nominal_setup = BeaconSetup::nominal(n, Ratio::of(1, 2), &mut StdRng::seed_from_u64(1));
    let nominal = run_beacon(&nominal_setup, 7);

    let weighted_setup =
        BeaconSetup::deal(&sol.assignment, Ratio::of(1, 2), &mut StdRng::seed_from_u64(1));
    let total_tickets = sol.total_tickets();
    let weighted = run_beacon(&weighted_setup, 7);

    let factor = weighted as f64 / nominal as f64;
    let mut t = TextTable::new(vec!["variant", "shares", "total bytes", "overhead"]);
    t.row(vec!["nominal".to_string(), n.to_string(), nominal.to_string(), "x1.00".into()]);
    t.row(vec![
        "weighted (WR 1/3 -> 1/2)".to_string(),
        total_tickets.to_string(),
        weighted.to_string(),
        format!("x{factor:.2}"),
    ]);
    println!("{}", t.render());
    println!("paper bound: x1.33 — ticket inflation T/n <= 4/3 for WR(1/3, 1/2)");
}

fn run_beacon(setup: &BeaconSetup, seed: u64) -> u64 {
    let n = setup.shares.len();
    let nodes: Vec<Box<dyn Protocol<Msg = BeaconMsg>>> =
        (0..n).map(|_| Box::new(BeaconNode::new(setup.clone(), 1)) as _).collect();
    let report = Simulation::new(nodes, seed).run();
    assert!(report.outputs.iter().all(|o| o.is_some()), "beacon must complete");
    report.metrics.total_bytes()
}
