//! Regenerates **Table 2**: tickets allocated by Swiper on the four chain
//! distributions, for the paper's WR/WQ and WS parameter settings, in full
//! and `--linear` mode (linear-mode surpluses printed in parentheses, as in
//! the paper).
//!
//! ```text
//! cargo run --release -p swiper-bench --bin table2
//! ```
//!
//! Our chain data are calibrated synthetic replicas (see DESIGN.md), so
//! cells differ from the published ones; the paper's numbers are printed
//! alongside for shape comparison.
//!
//! The whole sweep — chains × (WR + WS settings) — is expressed as one
//! [`Instance`] batch per mode and handed to [`Swiper::solve_many`], which
//! fans the independent solves out across cores.

use swiper_bench::{table2_wr_settings, table2_ws_settings, SolveMeasurement, TextTable};
use swiper_core::{Instance, Mode, Swiper, WeightRestriction, WeightSeparation};
use swiper_weights::CHAINS;

/// The published Table 2 cells (full mode; linear surplus in parentheses
/// rendered separately), in the same row/column order we print.
const PAPER_WR: [[&str; 4]; 4] = [
    ["85", "235", "27", "110"],
    ["133", "425", "61 (+8)", "258 (+1)"],
    ["3091", "8233", "1533", "4691"],
    ["745", "13475", "293", "6258"],
];
const PAPER_WS: [[&str; 3]; 4] = [
    ["385", "98", "437 (+1)"],
    ["670", "233 (+2)", "811"],
    ["10485", "4838", "11858"],
    ["46009", "2188", "64189"],
];

fn main() {
    println!("Table 2 — tickets allocated by Swiper (synthetic chain replicas)\n");

    let wr_settings = table2_wr_settings();
    let ws_settings = table2_ws_settings();
    let columns = wr_settings.len() + ws_settings.len();

    // One instance per table cell, in row-major order.
    let mut instances: Vec<Instance> = Vec::with_capacity(CHAINS.len() * columns);
    for chain in CHAINS {
        let weights = chain.weights();
        for (aw, an) in &wr_settings {
            let params = WeightRestriction::new(*aw, *an).expect("feasible parameters");
            instances.push(Instance::restriction(weights.clone(), params));
        }
        for (a, b) in &ws_settings {
            let params = WeightSeparation::new(*a, *b).expect("feasible parameters");
            instances.push(Instance::separation(weights.clone(), params));
        }
    }
    let full: Vec<SolveMeasurement> = Swiper::with_mode(Mode::Full)
        .solve_many(&instances)
        .expect("solvable")
        .iter()
        .map(SolveMeasurement::from)
        .collect();
    let linear: Vec<SolveMeasurement> = Swiper::with_mode(Mode::Linear)
        .solve_many(&instances)
        .expect("solvable")
        .iter()
        .map(SolveMeasurement::from)
        .collect();

    let mut header: Vec<String> = vec!["system".into(), "n".into(), "W".into()];
    for (aw, an) in &wr_settings {
        header.push(format!("WR {aw}->{an}"));
    }
    for (a, b) in &ws_settings {
        header.push(format!("WS {a}|{b}"));
    }
    let mut table = TextTable::new(header);

    for (ci, chain) in CHAINS.iter().enumerate() {
        let weights = chain.weights();
        let mut cells: Vec<String> = vec![
            chain.name().to_string(),
            weights.len().to_string(),
            format!("{:.2e}", weights.total() as f64),
        ];
        for col in 0..columns {
            let idx = ci * columns + col;
            let surplus = linear[idx].total_tickets.saturating_sub(full[idx].total_tickets);
            let cell = if surplus > 0 {
                format!("{} (+{})", full[idx].total_tickets, surplus)
            } else {
                format!("{}", full[idx].total_tickets)
            };
            cells.push(cell);
        }
        table.row(cells);

        // Paper reference row for shape comparison.
        let mut paper: Vec<String> = vec![format!("  (paper)"), String::new(), String::new()];
        paper.extend(PAPER_WR[ci].iter().map(|s| s.to_string()));
        paper.extend(PAPER_WS[ci].iter().map(|s| s.to_string()));
        table.row(paper);
    }

    println!("{}", table.render());
    println!("note: WR cell `aw->an` doubles as WQ(1-aw, 1-an) by Theorem 2.2;");
    println!("      `(+k)` = extra tickets allocated by --linear mode.");
    println!("      Chain replicas are synthetic (DESIGN.md): compare shapes, not cells.");
}
