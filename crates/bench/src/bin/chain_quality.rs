//! Chain-quality experiment for the black-box SSLE (paper Section 4.4):
//! with corrupt weight below `f_w`, the fraction of elections won by
//! corrupt parties stays below `alpha = f_n` — while *fairness* (win
//! frequency proportional to weight) is visibly NOT preserved, the
//! limitation the paper discusses in Section 9.
//!
//! ```text
//! cargo run --release -p swiper-bench --bin chain_quality
//! ```

use swiper_bench::TextTable;
use swiper_core::{Ratio, Swiper, WeightRestriction, Weights};
use swiper_protocols::ssle::measure_elections;
use swiper_weights::gen;

fn main() {
    println!("SSLE chain quality under WR(f_w = 1/4, f_n = 1/3), 10_000 rounds\n");
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
    let rounds = 10_000u64;

    let mut table = TextTable::new(vec![
        "distribution",
        "corrupt set",
        "corrupt weight",
        "corrupt tickets",
        "corrupt wins",
        "bound (f_n)",
        "fairness gap",
    ]);

    let cases: Vec<(&str, Weights, Vec<usize>)> = vec![
        ("equal n=20", gen::equal(20, 5), (0..4).collect()), // 20% < 25%
        (
            "zipf n=50",
            gen::zipf(50, 1.0, 1_000_000),
            // Corrupt the dust tail: many parties, little weight.
            (25..50).collect(),
        ),
        ("whale+dust", gen::one_whale(30, 60), vec![1, 2, 3, 4, 5, 6]),
    ];

    for (name, weights, corrupt) in cases {
        let corrupt_weight = weights.subset_weight(&corrupt);
        let frac_weight = corrupt_weight as f64 / weights.total() as f64;
        assert!(
            frac_weight < 0.25,
            "{name}: corrupt set must stay below f_w = 1/4 ({frac_weight})"
        );
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        let corrupt_tickets: u128 =
            corrupt.iter().map(|&p| u128::from(sol.assignment.get(p))).sum();
        let frac_tickets = corrupt_tickets as f64 / sol.total_tickets() as f64;
        let stats = measure_elections(&sol.assignment, &weights, &corrupt, rounds, 0xC0DE);
        table.row(vec![
            name.to_string(),
            format!("{} parties", corrupt.len()),
            format!("{:.1}%", frac_weight * 100.0),
            format!("{:.1}%", frac_tickets * 100.0),
            format!("{:.1}%", stats.corrupt_fraction * 100.0),
            "33.3%".to_string(),
            format!("{:.3}", stats.fairness_gap),
        ]);
        assert!(
            stats.corrupt_fraction < 1.0 / 3.0,
            "{name}: chain quality violated ({})",
            stats.corrupt_fraction
        );
    }
    println!("{}", table.render());
    println!("chain quality holds (corrupt wins < f_n); the non-zero fairness gap");
    println!("shows win frequencies track tickets, not weight (Section 9).");
}
