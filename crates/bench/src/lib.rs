//! Shared experiment plumbing for the table/figure binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's experiment index); this library holds the
//! parameter sets, measurement records and small table/CSV writers they
//! share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use swiper_core::{
    Mode, Ratio, Solution, Swiper, TicketAssignment, WeightQualification, WeightRestriction,
    WeightSeparation, Weights,
};

/// The WR/WQ parameter pairs of Table 2 (each WR pair `(aw, an)` is the
/// Theorem 2.2 mirror of the WQ pair `(1-aw, 1-an)` printed below it).
pub fn table2_wr_settings() -> Vec<(Ratio, Ratio)> {
    vec![
        (Ratio::of(1, 4), Ratio::of(1, 3)),
        (Ratio::of(1, 3), Ratio::of(3, 8)),
        (Ratio::of(1, 3), Ratio::of(1, 2)),
        (Ratio::of(2, 3), Ratio::of(3, 4)),
    ]
}

/// The WS parameter pairs of Table 2.
pub fn table2_ws_settings() -> Vec<(Ratio, Ratio)> {
    vec![
        (Ratio::of(1, 4), Ratio::of(1, 3)),
        (Ratio::of(1, 3), Ratio::of(1, 2)),
        (Ratio::of(2, 3), Ratio::of(3, 4)),
    ]
}

/// The `(alpha_w, alpha_n)` pairs tracked in the right-hand columns of
/// Figures 1–5.
pub fn figure_pairs() -> Vec<(Ratio, Ratio)> {
    table2_wr_settings()
}

/// Measurements of one solver run.
#[derive(Debug, Clone, Copy)]
pub struct SolveMeasurement {
    /// Total tickets allocated.
    pub total_tickets: u128,
    /// Largest per-party allocation.
    pub max_tickets: u64,
    /// Parties holding at least one ticket.
    pub holders: usize,
    /// The theoretical bound for the instance.
    pub bound: u64,
}

/// Runs Weight Restriction and extracts the figure metrics.
///
/// # Panics
///
/// Panics when the instance is infeasible (the harness constructs only
/// feasible ones).
pub fn measure_wr(
    weights: &Weights,
    alpha_w: Ratio,
    alpha_n: Ratio,
    mode: Mode,
) -> SolveMeasurement {
    let params = WeightRestriction::new(alpha_w, alpha_n).expect("feasible parameters");
    let sol = Swiper::with_mode(mode).solve_restriction(weights, &params).expect("solvable");
    measurement_of(&sol.assignment, sol.ticket_bound)
}

/// Runs Weight Qualification (via the Theorem 2.2 reduction).
///
/// # Panics
///
/// Panics when the instance is infeasible.
pub fn measure_wq(
    weights: &Weights,
    beta_w: Ratio,
    beta_n: Ratio,
    mode: Mode,
) -> SolveMeasurement {
    let params = WeightQualification::new(beta_w, beta_n).expect("feasible parameters");
    let sol = Swiper::with_mode(mode).solve_qualification(weights, &params).expect("solvable");
    measurement_of(&sol.assignment, sol.ticket_bound)
}

/// Runs Weight Separation.
///
/// # Panics
///
/// Panics when the instance is infeasible.
pub fn measure_ws(
    weights: &Weights,
    alpha: Ratio,
    beta: Ratio,
    mode: Mode,
) -> SolveMeasurement {
    let params = WeightSeparation::new(alpha, beta).expect("feasible parameters");
    let sol = Swiper::with_mode(mode).solve_separation(weights, &params).expect("solvable");
    measurement_of(&sol.assignment, sol.ticket_bound)
}

fn measurement_of(t: &TicketAssignment, bound: u64) -> SolveMeasurement {
    SolveMeasurement {
        total_tickets: t.total(),
        max_tickets: t.max_tickets(),
        holders: t.holders(),
        bound,
    }
}

impl From<&Solution> for SolveMeasurement {
    fn from(sol: &Solution) -> Self {
        measurement_of(&sol.assignment, sol.ticket_bound)
    }
}

/// Schema tag written into (and required from) `BENCH_solver.json`.
pub const BENCH_SOLVER_SCHEMA: &str = "swiper-bench-solver/v1";

/// One measurement row of the machine-checked benchmark trajectory
/// (`BENCH_solver.json`). Counter fields are bit-deterministic for a given
/// seed and code version; `wall_ms` and `peak_rss_kb` are environmental.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRow {
    /// Benchmark family, e.g. `solver_scale`.
    pub bench: String,
    /// Case within the family, e.g. `cold` / `warm` / `certified`.
    pub case_name: String,
    /// Population size.
    pub n: u64,
    /// Wall-clock milliseconds.
    pub wall_ms: u64,
    /// Total tickets allocated by the published solution.
    pub tickets: u128,
    /// Exact-DP invocations across the run.
    pub dp_invocations: u64,
    /// Checks settled by replaying a delta-stable certificate.
    pub certificate_skips: u64,
    /// Family members materialized and checked.
    pub candidates_checked: u64,
    /// Probes answered by the incremental family cursor reusing its
    /// interval state instead of rebuilding candidates from scratch.
    pub cursor_advances: u64,
    /// Estimated probes the sampling-guided bracket avoided versus a cold
    /// bisection of the full `[0, bound]` range.
    pub probes_saved: u64,
    /// Checks settled by a certificate found under a *nearby* stored
    /// total (coarse key); disjoint from `certificate_skips`.
    pub coarse_cert_hits: u64,
    /// RNG seed the weight generator ran with — rows are reproducible
    /// from `(bench, case, n, seed)` alone.
    pub seed: u64,
    /// Per-cell growth of the process peak RSS in kilobytes: `VmHWM`
    /// delta across the cell's measured phase. `VmHWM` is a
    /// process-lifetime high-water mark, so this is a monotone-floor
    /// decomposition — a cell whose footprint fits inside an earlier
    /// cell's peak reports 0, never an inherited peak. Informational,
    /// never regression-gated; 0 when `/proc` is unavailable.
    pub peak_rss_kb: u64,
}

impl BenchRow {
    /// The `(bench, case, n)` identity rows are matched on when diffing.
    pub fn key(&self) -> (String, String, u64) {
        (self.bench.clone(), self.case_name.clone(), self.n)
    }

    fn to_json_line(&self) -> String {
        format!(
            "    {{\"bench\":\"{}\",\"case\":\"{}\",\"n\":{},\"seed\":{},\"wall_ms\":{},\
             \"tickets\":{},\
             \"dp_invocations\":{},\"certificate_skips\":{},\"candidates_checked\":{},\
             \"cursor_advances\":{},\"probes_saved\":{},\"coarse_cert_hits\":{},\
             \"peak_rss_kb\":{}}}",
            self.bench,
            self.case_name,
            self.n,
            self.seed,
            self.wall_ms,
            self.tickets,
            self.dp_invocations,
            self.certificate_skips,
            self.candidates_checked,
            self.cursor_advances,
            self.probes_saved,
            self.coarse_cert_hits,
            self.peak_rss_kb
        )
    }
}

/// Serializes rows as the `BENCH_solver.json` document: a schema header
/// plus one row object per line (line-oriented so the lenient parser and
/// plain `diff` both stay useful). Hand-rolled — the vendored serde shim
/// is marker-only.
pub fn render_bench_json(rows: &[BenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{BENCH_SOLVER_SCHEMA}\",");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&row.to_json_line());
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_solver.json` document produced by
/// [`render_bench_json`]. Lenient and line-oriented: any line containing a
/// `"bench"` key is treated as a row; missing numeric fields default to 0
/// so older files with fewer columns still diff.
///
/// # Errors
///
/// Returns a description when the schema tag is absent or unexpected.
pub fn parse_bench_json(doc: &str) -> Result<Vec<BenchRow>, String> {
    if !doc.contains(&format!("\"schema\": \"{BENCH_SOLVER_SCHEMA}\"")) {
        return Err(format!("missing or unexpected schema tag (want {BENCH_SOLVER_SCHEMA})"));
    }
    let mut rows = Vec::new();
    for line in doc.lines() {
        let Some(bench) = json_str_field(line, "bench") else { continue };
        rows.push(BenchRow {
            bench,
            case_name: json_str_field(line, "case").unwrap_or_default(),
            n: json_num_field(line, "n").unwrap_or(0) as u64,
            wall_ms: json_num_field(line, "wall_ms").unwrap_or(0) as u64,
            tickets: json_num_field(line, "tickets").unwrap_or(0),
            dp_invocations: json_num_field(line, "dp_invocations").unwrap_or(0) as u64,
            certificate_skips: json_num_field(line, "certificate_skips").unwrap_or(0) as u64,
            candidates_checked: json_num_field(line, "candidates_checked").unwrap_or(0) as u64,
            cursor_advances: json_num_field(line, "cursor_advances").unwrap_or(0) as u64,
            probes_saved: json_num_field(line, "probes_saved").unwrap_or(0) as u64,
            coarse_cert_hits: json_num_field(line, "coarse_cert_hits").unwrap_or(0) as u64,
            seed: json_num_field(line, "seed").unwrap_or(0) as u64,
            peak_rss_kb: json_num_field(line, "peak_rss_kb").unwrap_or(0) as u64,
        });
    }
    Ok(rows)
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let tail = &line[line.find(&format!("\"{key}\":\""))? + key.len() + 4..];
    Some(tail[..tail.find('"')?].to_string())
}

fn json_num_field(line: &str, key: &str) -> Option<u128> {
    let tail = &line[line.find(&format!("\"{key}\":"))? + key.len() + 3..];
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Schema tag written into (and required from) `BENCH_epochs.json`.
pub const BENCH_EPOCHS_SCHEMA: &str = "swiper-bench-epochs/v1";

/// One scenario row of the epoch-replay trajectory (`BENCH_epochs.json`):
/// a chain × churn replay through the incremental re-solve loop. The
/// headline counter is `bracket_divergence` — epochs where the warm
/// bracket settled on a different (equally valid) local minimum than cold
/// bisection, the non-monotone dips discussed in `Swiper::resolve_from`.
/// Previously this telemetry only existed as a text summary line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochBenchRow {
    /// Benchmark family, always `epochs`.
    pub bench: String,
    /// Chain the snapshot stream replayed, e.g. `aptos`.
    pub chain: String,
    /// Churned parties per epoch, percent of the population.
    pub churn_pct: u64,
    /// Epochs replayed.
    pub epochs: u64,
    /// Epochs where the warm bracket landed on a different local minimum
    /// than cold bisection (published results stay cold-identical).
    pub bracket_divergence: u64,
    /// Certificate skips across the replay (exact-total key).
    pub cert_skips: u64,
    /// Warm-pass DP invocations with certificates on.
    pub warm_dp: u64,
    /// Warm-pass DP invocations with certificates off.
    pub plain_dp: u64,
    /// Fresh cold-solve DP invocations (the no-machinery yardstick).
    pub cold_dp: u64,
    /// Verdict-cache hit rate over the replay, rounded percent.
    pub hit_rate_pct: u64,
}

impl EpochBenchRow {
    /// The `(bench, chain, churn_pct)` identity rows are matched on.
    pub fn key(&self) -> (String, String, u64) {
        (self.bench.clone(), self.chain.clone(), self.churn_pct)
    }

    fn to_json_line(&self) -> String {
        format!(
            "    {{\"bench\":\"{}\",\"chain\":\"{}\",\"churn_pct\":{},\"epochs\":{},\
             \"bracket_divergence\":{},\"cert_skips\":{},\"warm_dp\":{},\"plain_dp\":{},\
             \"cold_dp\":{},\"hit_rate_pct\":{}}}",
            self.bench,
            self.chain,
            self.churn_pct,
            self.epochs,
            self.bracket_divergence,
            self.cert_skips,
            self.warm_dp,
            self.plain_dp,
            self.cold_dp,
            self.hit_rate_pct
        )
    }
}

/// Serializes epoch-replay rows as the `BENCH_epochs.json` document (same
/// line-oriented shape as [`render_bench_json`]).
pub fn render_epochs_json(rows: &[EpochBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{BENCH_EPOCHS_SCHEMA}\",");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&row.to_json_line());
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_epochs.json` document produced by
/// [`render_epochs_json`]. Lenient and line-oriented, like
/// [`parse_bench_json`].
///
/// # Errors
///
/// Returns a description when the schema tag is absent or unexpected.
pub fn parse_epochs_json(doc: &str) -> Result<Vec<EpochBenchRow>, String> {
    if !doc.contains(&format!("\"schema\": \"{BENCH_EPOCHS_SCHEMA}\"")) {
        return Err(format!("missing or unexpected schema tag (want {BENCH_EPOCHS_SCHEMA})"));
    }
    let mut rows = Vec::new();
    for line in doc.lines() {
        let Some(bench) = json_str_field(line, "bench") else { continue };
        let num = |key: &str| json_num_field(line, key).unwrap_or(0) as u64;
        rows.push(EpochBenchRow {
            bench,
            chain: json_str_field(line, "chain").unwrap_or_default(),
            churn_pct: num("churn_pct"),
            epochs: num("epochs"),
            bracket_divergence: num("bracket_divergence"),
            cert_skips: num("cert_skips"),
            warm_dp: num("warm_dp"),
            plain_dp: num("plain_dp"),
            cold_dp: num("cold_dp"),
            hit_rate_pct: num("hit_rate_pct"),
        });
    }
    Ok(rows)
}

/// Compares a fresh epoch-replay run against a committed baseline.
///
/// The replay is seed-deterministic, so the solver-work counters
/// (`epochs`, `cert_skips`, `warm_dp`, `plain_dp`, `cold_dp`,
/// `hit_rate_pct`) must match exactly. `bracket_divergence` is
/// **informational**: it counts epochs where the warm bracket settled on a
/// different (equally valid) local minimum than cold bisection — a
/// legitimate degree of freedom of the accelerated path, not a regression
/// signal — so it is never gated. Baseline rows missing from the fresh run
/// are regressions; extra fresh rows are not.
pub fn diff_epochs_rows(baseline: &[EpochBenchRow], fresh: &[EpochBenchRow]) -> Vec<String> {
    let mut problems = Vec::new();
    for old in baseline {
        let Some(new) = fresh.iter().find(|r| r.key() == old.key()) else {
            problems.push(format!(
                "row {}/{}/churn={}% missing from fresh run",
                old.bench, old.chain, old.churn_pct
            ));
            continue;
        };
        let id = format!("{}/{}/churn={}%", old.bench, old.chain, old.churn_pct);
        let counters = [
            ("epochs", old.epochs, new.epochs),
            ("cert_skips", old.cert_skips, new.cert_skips),
            ("warm_dp", old.warm_dp, new.warm_dp),
            ("plain_dp", old.plain_dp, new.plain_dp),
            ("cold_dp", old.cold_dp, new.cold_dp),
            ("hit_rate_pct", old.hit_rate_pct, new.hit_rate_pct),
        ];
        for (name, was, now) in counters {
            if was != now {
                problems.push(format!("{id}: {name} changed {was} -> {now}"));
            }
        }
    }
    problems
}

/// Schema tag written into (and required from) `BENCH_runtime.json`.
pub const BENCH_RUNTIME_SCHEMA: &str = "swiper-bench-runtime/v1";

/// One measurement row of the threaded-runtime trajectory
/// (`BENCH_runtime.json`): a protocol chain driven to quiescence on the
/// [`ThreadedRuntime`](swiper_net::ThreadedRuntime) and replay-checked
/// against its simulator twin.
///
/// `commits` (protocol-level progress at quiescence) and `twin_ok` are
/// schedule-independent and regression-gated exactly; wall time is gated
/// with tolerance above [`BENCH_WALL_FLOOR_MS`]; message counts, latency
/// percentiles and RSS vary with the OS schedule and are informational.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeBenchRow {
    /// Benchmark family, e.g. `runtime_scale`.
    pub bench: String,
    /// Protocol chain: `bracha` / `aba` / `smr`.
    pub protocol: String,
    /// Transport backend the runtime ran on: `channel` (in-process
    /// inboxes) or `socket` (loopback TCP through the wire codecs).
    pub transport: String,
    /// Population size.
    pub n: u64,
    /// Worker threads the runtime ran with.
    pub workers: u64,
    /// Wall-clock milliseconds of the run.
    pub wall_ms: u64,
    /// Protocol-level progress at quiescence (deliveries, decisions, or
    /// committed rounds — deterministic for an honest chain).
    pub commits: u64,
    /// Commit throughput, rounded commits per second.
    pub commits_per_sec: u64,
    /// Messages delivered (schedule-dependent for halting protocols).
    pub msgs: u64,
    /// Delivery throughput, rounded messages per second.
    pub msgs_per_sec: u64,
    /// Median send→process latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Resident set size in kilobytes sampled at quiescence (workers
    /// joined, queues drained), falling back to the process `VmHWM` peak
    /// when `VmRSS` is unavailable. The earlier `VmHWM`-delta scheme
    /// reported 0 for any cell whose footprint fit inside a predecessor's
    /// peak, which zeroed most rows of a sweep; a quiescent sample is
    /// nonzero for every live process. Informational, never
    /// regression-gated.
    pub peak_rss_kb: u64,
    /// 1 when the delivery trace replayed bit-identically on the
    /// simulator twin, 0 otherwise.
    pub twin_ok: u64,
}

impl RuntimeBenchRow {
    /// The `(bench, protocol, transport, n, workers)` identity rows are
    /// matched on when diffing.
    pub fn key(&self) -> (String, String, String, u64, u64) {
        (
            self.bench.clone(),
            self.protocol.clone(),
            self.transport.clone(),
            self.n,
            self.workers,
        )
    }

    fn to_json_line(&self) -> String {
        format!(
            "    {{\"bench\":\"{}\",\"protocol\":\"{}\",\"transport\":\"{}\",\"n\":{},\
             \"workers\":{},\
             \"wall_ms\":{},\"commits\":{},\"commits_per_sec\":{},\"msgs\":{},\
             \"msgs_per_sec\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\
             \"peak_rss_kb\":{},\"twin_ok\":{}}}",
            self.bench,
            self.protocol,
            self.transport,
            self.n,
            self.workers,
            self.wall_ms,
            self.commits,
            self.commits_per_sec,
            self.msgs,
            self.msgs_per_sec,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.peak_rss_kb,
            self.twin_ok
        )
    }
}

/// Serializes runtime rows as the `BENCH_runtime.json` document (same
/// line-oriented shape as [`render_bench_json`]).
pub fn render_runtime_json(rows: &[RuntimeBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{BENCH_RUNTIME_SCHEMA}\",");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&row.to_json_line());
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_runtime.json` document produced by
/// [`render_runtime_json`]. Lenient and line-oriented, like
/// [`parse_bench_json`].
///
/// # Errors
///
/// Returns a description when the schema tag is absent or unexpected.
pub fn parse_runtime_json(doc: &str) -> Result<Vec<RuntimeBenchRow>, String> {
    if !doc.contains(&format!("\"schema\": \"{BENCH_RUNTIME_SCHEMA}\"")) {
        return Err(format!("missing or unexpected schema tag (want {BENCH_RUNTIME_SCHEMA})"));
    }
    let mut rows = Vec::new();
    for line in doc.lines() {
        let Some(bench) = json_str_field(line, "bench") else { continue };
        let num = |key: &str| json_num_field(line, key).unwrap_or(0) as u64;
        rows.push(RuntimeBenchRow {
            bench,
            protocol: json_str_field(line, "protocol").unwrap_or_default(),
            // Rows written before the transport axis existed are channel
            // rows: that was the only backend.
            transport: json_str_field(line, "transport").unwrap_or_else(|| "channel".into()),
            n: num("n"),
            workers: num("workers"),
            wall_ms: num("wall_ms"),
            commits: num("commits"),
            commits_per_sec: num("commits_per_sec"),
            msgs: num("msgs"),
            msgs_per_sec: num("msgs_per_sec"),
            p50_us: num("p50_us"),
            p95_us: num("p95_us"),
            p99_us: num("p99_us"),
            peak_rss_kb: num("peak_rss_kb"),
            twin_ok: num("twin_ok"),
        });
    }
    Ok(rows)
}

/// Compares a fresh runtime-benchmark run against a committed baseline.
///
/// `commits` and `twin_ok` must match exactly (they are
/// schedule-independent; a `twin_ok` flip means the determinism-twin
/// contract broke). Wall time regresses when it exceeds the baseline by
/// more than `tol_pct` percent and both sides are above
/// [`BENCH_WALL_FLOOR_MS`]. Message counts, latency percentiles and RSS
/// are never gated. Baseline rows missing from the fresh run are
/// regressions; extra fresh rows are not.
pub fn diff_runtime_rows(
    baseline: &[RuntimeBenchRow],
    fresh: &[RuntimeBenchRow],
    tol_pct: u64,
) -> Vec<String> {
    let mut problems = Vec::new();
    for old in baseline {
        let Some(new) = fresh.iter().find(|r| r.key() == old.key()) else {
            problems.push(format!(
                "row {}/{}/{}/n={}/w={} missing from fresh run",
                old.bench, old.protocol, old.transport, old.n, old.workers
            ));
            continue;
        };
        let id = format!(
            "{}/{}/{}/n={}/w={}",
            old.bench, old.protocol, old.transport, old.n, old.workers
        );
        if old.commits != new.commits {
            problems.push(format!("{id}: commits changed {} -> {}", old.commits, new.commits));
        }
        if old.twin_ok != new.twin_ok {
            problems.push(format!(
                "{id}: twin replay status changed {} -> {}",
                old.twin_ok, new.twin_ok
            ));
        }
        if old.wall_ms >= BENCH_WALL_FLOOR_MS
            && new.wall_ms >= BENCH_WALL_FLOOR_MS
            && new.wall_ms.saturating_mul(100) > old.wall_ms.saturating_mul(100 + tol_pct)
        {
            problems.push(format!(
                "{id}: wall_ms regressed {} -> {} (> {tol_pct}%)",
                old.wall_ms, new.wall_ms
            ));
        }
    }
    problems
}

/// Schema tag written into (and required from) `BENCH_gossip.json`.
pub const BENCH_GOSSIP_SCHEMA: &str = "swiper-bench-gossip/v1";

/// One measurement row of the gossip-overlay dissemination trajectory
/// (`BENCH_gossip.json`): weighted Bracha driven over a dissemination
/// backend (`overlay` partial-view gossip, or the `fullmesh` yardstick)
/// on one substrate (`sim` seeded simulator, or `threaded` runtime).
///
/// Simulator rows are seed-deterministic, so their counters are
/// regression-gated exactly; threaded rows gate `reach_pct` and `twin_ok`
/// exactly and wall time with tolerance, everything else being
/// OS-schedule noise. The headline economy claim — overlay
/// msgs/delivery strictly below the n²-flood baseline of `n` at
/// `n >= 256` — is gated unconditionally on every fresh overlay row by
/// [`diff_gossip_rows`], baseline present or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipBenchRow {
    /// Benchmark family, e.g. `gossip_scale`.
    pub bench: String,
    /// Dissemination backend: `overlay` or `fullmesh`.
    pub backend: String,
    /// Execution substrate: `sim` or `threaded`.
    pub substrate: String,
    /// Population size.
    pub n: u64,
    /// RNG seed (overlay view construction and the delay schedule).
    pub seed: u64,
    /// Wall-clock milliseconds of the run.
    pub wall_ms: u64,
    /// Nodes that delivered the payload, percent of the population.
    pub reach_pct: u64,
    /// Maximum eager-hop count observed — rounds to full delivery.
    pub rounds: u64,
    /// Total messages the run sent (overlay control + data frames).
    pub msgs: u64,
    /// Unique first-receipt payload deliveries across the fleet.
    pub deliveries: u64,
    /// Messages per delivery, fixed-point ×100 (e.g. `1042` = 10.42).
    pub msgs_per_delivery_x100: u64,
    /// The n²-flood yardstick in the same unit: a reliable full-mesh
    /// flood costs `n` messages per delivery (n² messages, n deliveries).
    pub baseline_msgs_per_delivery: u64,
    /// Mean active-view degree across the fleet, fixed-point ×100.
    pub mean_degree_x100: u64,
    /// Median send→process latency, microseconds (threaded rows only).
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds (threaded rows only).
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds (threaded rows only).
    pub p99_us: u64,
    /// 1 when the delivery trace replayed bit-identically on the
    /// simulator twin (threaded rows; simulator rows write 1).
    pub twin_ok: u64,
}

impl GossipBenchRow {
    /// The `(bench, backend, substrate, n, seed)` identity rows are
    /// matched on when diffing.
    pub fn key(&self) -> (String, String, String, u64, u64) {
        (self.bench.clone(), self.backend.clone(), self.substrate.clone(), self.n, self.seed)
    }

    /// Messages per delivery as a float, for display.
    pub fn msgs_per_delivery(&self) -> f64 {
        self.msgs_per_delivery_x100 as f64 / 100.0
    }

    fn to_json_line(&self) -> String {
        format!(
            "    {{\"bench\":\"{}\",\"backend\":\"{}\",\"substrate\":\"{}\",\"n\":{},\
             \"seed\":{},\"wall_ms\":{},\"reach_pct\":{},\"rounds\":{},\"msgs\":{},\
             \"deliveries\":{},\"msgs_per_delivery_x100\":{},\
             \"baseline_msgs_per_delivery\":{},\"mean_degree_x100\":{},\
             \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"twin_ok\":{}}}",
            self.bench,
            self.backend,
            self.substrate,
            self.n,
            self.seed,
            self.wall_ms,
            self.reach_pct,
            self.rounds,
            self.msgs,
            self.deliveries,
            self.msgs_per_delivery_x100,
            self.baseline_msgs_per_delivery,
            self.mean_degree_x100,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.twin_ok
        )
    }
}

/// Serializes gossip rows as the `BENCH_gossip.json` document (same
/// line-oriented shape as [`render_bench_json`]).
pub fn render_gossip_json(rows: &[GossipBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{BENCH_GOSSIP_SCHEMA}\",");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&row.to_json_line());
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_gossip.json` document produced by
/// [`render_gossip_json`]. Lenient and line-oriented, like
/// [`parse_bench_json`].
///
/// # Errors
///
/// Returns a description when the schema tag is absent or unexpected.
pub fn parse_gossip_json(doc: &str) -> Result<Vec<GossipBenchRow>, String> {
    if !doc.contains(&format!("\"schema\": \"{BENCH_GOSSIP_SCHEMA}\"")) {
        return Err(format!("missing or unexpected schema tag (want {BENCH_GOSSIP_SCHEMA})"));
    }
    let mut rows = Vec::new();
    for line in doc.lines() {
        let Some(bench) = json_str_field(line, "bench") else { continue };
        let num = |key: &str| json_num_field(line, key).unwrap_or(0) as u64;
        rows.push(GossipBenchRow {
            bench,
            backend: json_str_field(line, "backend").unwrap_or_default(),
            substrate: json_str_field(line, "substrate").unwrap_or_default(),
            n: num("n"),
            seed: num("seed"),
            wall_ms: num("wall_ms"),
            reach_pct: num("reach_pct"),
            rounds: num("rounds"),
            msgs: num("msgs"),
            deliveries: num("deliveries"),
            msgs_per_delivery_x100: num("msgs_per_delivery_x100"),
            baseline_msgs_per_delivery: num("baseline_msgs_per_delivery"),
            mean_degree_x100: num("mean_degree_x100"),
            p50_us: num("p50_us"),
            p95_us: num("p95_us"),
            p99_us: num("p99_us"),
            twin_ok: num("twin_ok"),
        });
    }
    Ok(rows)
}

/// Population size from which the overlay-beats-flooding economy gate
/// applies: below it the log-degree overlay and the mesh are too close
/// for the comparison to be meaningful.
pub const GOSSIP_ECONOMY_FLOOR_N: u64 = 256;

/// Compares a fresh gossip-overlay run against a committed baseline.
///
/// Simulator rows (`substrate == "sim"`) are seed-deterministic, so
/// `reach_pct`, `rounds`, `msgs`, `deliveries`, `msgs_per_delivery_x100`
/// and `mean_degree_x100` must all match exactly. Threaded rows gate
/// `reach_pct` and `twin_ok` exactly and wall time with `tol_pct` above
/// [`BENCH_WALL_FLOOR_MS`]; their message counts and latency percentiles
/// are OS-schedule noise. Baseline rows missing from the fresh run are
/// regressions; extra fresh rows are not.
///
/// Independently of any baseline, every fresh row is held to the
/// acceptance invariants: reach must be 100%, and `overlay` rows at
/// `n >= `[`GOSSIP_ECONOMY_FLOOR_N`] must spend strictly fewer messages
/// per delivery than the n²-flood baseline.
pub fn diff_gossip_rows(
    baseline: &[GossipBenchRow],
    fresh: &[GossipBenchRow],
    tol_pct: u64,
) -> Vec<String> {
    let mut problems = Vec::new();
    for old in baseline {
        let Some(new) = fresh.iter().find(|r| r.key() == old.key()) else {
            problems.push(format!(
                "row {}/{}/{}/n={}/seed={} missing from fresh run",
                old.bench, old.backend, old.substrate, old.n, old.seed
            ));
            continue;
        };
        let id = format!(
            "{}/{}/{}/n={}/seed={}",
            old.bench, old.backend, old.substrate, old.n, old.seed
        );
        let exact: &[(&str, u64, u64)] = if old.substrate == "sim" {
            &[
                ("reach_pct", old.reach_pct, new.reach_pct),
                ("rounds", old.rounds, new.rounds),
                ("msgs", old.msgs, new.msgs),
                ("deliveries", old.deliveries, new.deliveries),
                (
                    "msgs_per_delivery_x100",
                    old.msgs_per_delivery_x100,
                    new.msgs_per_delivery_x100,
                ),
                ("mean_degree_x100", old.mean_degree_x100, new.mean_degree_x100),
            ]
        } else {
            &[
                ("reach_pct", old.reach_pct, new.reach_pct),
                ("twin_ok", old.twin_ok, new.twin_ok),
            ]
        };
        for &(name, was, now) in exact {
            if was != now {
                problems.push(format!("{id}: {name} changed {was} -> {now}"));
            }
        }
        if old.wall_ms >= BENCH_WALL_FLOOR_MS
            && new.wall_ms >= BENCH_WALL_FLOOR_MS
            && new.wall_ms.saturating_mul(100) > old.wall_ms.saturating_mul(100 + tol_pct)
        {
            problems.push(format!(
                "{id}: wall_ms regressed {} -> {} (> {tol_pct}%)",
                old.wall_ms, new.wall_ms
            ));
        }
    }
    for row in fresh {
        let id = format!(
            "{}/{}/{}/n={}/seed={}",
            row.bench, row.backend, row.substrate, row.n, row.seed
        );
        if row.reach_pct != 100 {
            problems.push(format!("{id}: reach {}% != 100%", row.reach_pct));
        }
        if row.backend == "overlay"
            && row.n >= GOSSIP_ECONOMY_FLOOR_N
            && row.msgs_per_delivery_x100 >= row.baseline_msgs_per_delivery.saturating_mul(100)
        {
            problems.push(format!(
                "{id}: msgs/delivery {:.2} does not beat the n²-flood baseline of {}",
                row.msgs_per_delivery(),
                row.baseline_msgs_per_delivery
            ));
        }
    }
    problems
}

/// Wall-clock floor below which timing rows are treated as noise and not
/// regression-gated.
pub const BENCH_WALL_FLOOR_MS: u64 = 250;

/// Compares a fresh benchmark run against a committed baseline and
/// returns human-readable regression descriptions (empty = pass).
///
/// Deterministic counters (`tickets`, `dp_invocations`,
/// `certificate_skips`, `candidates_checked`, `cursor_advances`,
/// `probes_saved`, `coarse_cert_hits`) must match exactly; wall
/// time regresses when it exceeds the baseline by more than `tol_pct`
/// percent and both sides are above [`BENCH_WALL_FLOOR_MS`]. Peak RSS is
/// reported but never gated (container-dependent). Baseline rows missing
/// from the fresh run are regressions; extra fresh rows are not.
pub fn diff_bench_rows(baseline: &[BenchRow], fresh: &[BenchRow], tol_pct: u64) -> Vec<String> {
    let mut problems = Vec::new();
    for old in baseline {
        let Some(new) = fresh.iter().find(|r| r.key() == old.key()) else {
            problems.push(format!(
                "row {}/{}/n={} missing from fresh run",
                old.bench, old.case_name, old.n
            ));
            continue;
        };
        let id = format!("{}/{}/n={}", old.bench, old.case_name, old.n);
        let counters = [
            ("tickets", old.tickets, new.tickets),
            ("dp_invocations", u128::from(old.dp_invocations), u128::from(new.dp_invocations)),
            (
                "certificate_skips",
                u128::from(old.certificate_skips),
                u128::from(new.certificate_skips),
            ),
            (
                "candidates_checked",
                u128::from(old.candidates_checked),
                u128::from(new.candidates_checked),
            ),
            (
                "cursor_advances",
                u128::from(old.cursor_advances),
                u128::from(new.cursor_advances),
            ),
            ("probes_saved", u128::from(old.probes_saved), u128::from(new.probes_saved)),
            (
                "coarse_cert_hits",
                u128::from(old.coarse_cert_hits),
                u128::from(new.coarse_cert_hits),
            ),
        ];
        for (name, was, now) in counters {
            if was != now {
                problems.push(format!("{id}: {name} changed {was} -> {now}"));
            }
        }
        if old.wall_ms >= BENCH_WALL_FLOOR_MS
            && new.wall_ms >= BENCH_WALL_FLOOR_MS
            && new.wall_ms.saturating_mul(100) > old.wall_ms.saturating_mul(100 + tol_pct)
        {
            problems.push(format!(
                "{id}: wall_ms regressed {} -> {} (> {tol_pct}%)",
                old.wall_ms, new.wall_ms
            ));
        }
    }
    problems
}

/// Peak resident set size of this process in kilobytes, from
/// `/proc/self/status` (`VmHWM`). Returns 0 when unavailable (non-Linux).
///
/// `VmHWM` is monotone over the process lifetime: it never decreases, so
/// in a multi-cell sweep every cell after the largest would inherit its
/// peak. Benchmark binaries must therefore report **per-cell deltas** —
/// sample before the measured phase and subtract (`saturating_sub`), as
/// the [`BenchRow::peak_rss_kb`] / [`RuntimeBenchRow::peak_rss_kb`]
/// schema docs specify.
pub fn peak_rss_kb() -> u64 {
    proc_status_kb("VmHWM:")
}

/// Current resident set size of this process in kilobytes, from
/// `/proc/self/status` (`VmRSS`). Returns 0 when unavailable (non-Linux).
///
/// Unlike [`peak_rss_kb`] this is *not* monotone: sampled at quiescence
/// (workers joined, queues drained) it attributes the footprint actually
/// held by a benchmark cell even when an earlier, larger cell already
/// raised the process high-water mark — exactly the case where the
/// `VmHWM` delta degenerates to 0.
pub fn current_rss_kb() -> u64 {
    proc_status_kb("VmRSS:")
}

fn proc_status_kb(key: &str) -> u64 {
    let Ok(status) = fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix(key))
        .and_then(|l| l.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// A minimal aligned-column table printer for terminal reports.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(line, "| {:width$} ", c, width = widths[i]);
            }
            line.push('|');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let sep: String =
            widths.iter().map(|w| format!("|{}", "-".repeat(w + 2))).collect::<String>() + "|";
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Writes a CSV file (creating parent directories) from a header and rows.
///
/// # Panics
///
/// Panics on I/O errors — experiment harness semantics: fail loudly.
pub fn write_csv<P: AsRef<Path>>(path: P, header: &[&str], rows: &[Vec<String>]) {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create output directory");
    }
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(path, out).expect("write csv");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_match_table2() {
        assert_eq!(table2_wr_settings().len(), 4);
        assert_eq!(table2_ws_settings().len(), 3);
        for (a, b) in table2_wr_settings() {
            assert!(a < b);
        }
        for (a, b) in table2_ws_settings() {
            assert!(a < b);
        }
    }

    #[test]
    fn measurements_are_consistent() {
        let w = Weights::new(vec![50, 30, 20, 10, 5]).unwrap();
        let m = measure_wr(&w, Ratio::of(1, 3), Ratio::of(1, 2), Mode::Full);
        assert!(m.total_tickets <= u128::from(m.bound));
        assert!(u128::from(m.max_tickets) <= m.total_tickets);
        assert!(m.holders <= 5);
    }

    fn row(case: &str, n: u64, wall: u64, dp: u64) -> BenchRow {
        BenchRow {
            bench: "solver_scale".into(),
            case_name: case.into(),
            n,
            wall_ms: wall,
            tickets: 123_456_789_012_345_678_901u128,
            dp_invocations: dp,
            certificate_skips: 3,
            candidates_checked: 40,
            cursor_advances: 7,
            probes_saved: 2,
            coarse_cert_hits: 1,
            seed: 42,
            peak_rss_kb: 10_000,
        }
    }

    #[test]
    fn bench_json_roundtrips() {
        let rows = vec![row("cold", 1000, 12, 5), row("certified", 1_000_000, 900, 0)];
        let doc = render_bench_json(&rows);
        assert_eq!(parse_bench_json(&doc).unwrap(), rows);
        assert!(parse_bench_json("{}").is_err(), "schema tag is mandatory");
    }

    #[test]
    fn rows_without_the_accelerator_columns_parse_as_zero() {
        // Baselines written before the cursor/sampler/coarse counters (and
        // the seed column) existed must keep parsing — the lenient parser
        // defaults every missing numeric field to 0.
        let doc = format!(
            "{{\n  \"schema\": \"{BENCH_SOLVER_SCHEMA}\",\n  \"rows\": [\n    \
             {{\"bench\":\"solver_scale\",\"case\":\"cold\",\"n\":1000,\"wall_ms\":12,\
             \"tickets\":307,\"dp_invocations\":2,\"certificate_skips\":0,\
             \"candidates_checked\":17,\"peak_rss_kb\":100}}\n  ]\n}}\n"
        );
        let rows = parse_bench_json(&doc).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tickets, 307);
        assert_eq!(rows[0].cursor_advances, 0);
        assert_eq!(rows[0].probes_saved, 0);
        assert_eq!(rows[0].coarse_cert_hits, 0);
        assert_eq!(rows[0].seed, 0);
    }

    #[test]
    fn bench_diff_gates_the_accelerator_counters_exactly() {
        let base = vec![row("warm", 1_000_000, 400, 0)];
        for field in ["cursor_advances", "probes_saved", "coarse_cert_hits"] {
            let mut drift = base.clone();
            match field {
                "cursor_advances" => drift[0].cursor_advances += 1,
                "probes_saved" => drift[0].probes_saved += 1,
                _ => drift[0].coarse_cert_hits += 1,
            }
            let problems = diff_bench_rows(&base, &drift, 20);
            assert_eq!(problems.len(), 1, "{field} must be exact-gated");
            assert!(problems[0].contains(field), "{problems:?}");
        }
    }

    #[test]
    fn bench_diff_gates_counters_exactly_and_wall_with_tolerance() {
        let base = vec![row("cold", 1000, 400, 5)];
        // Identical: clean.
        assert!(diff_bench_rows(&base, &base, 20).is_empty());
        // Counter drift: flagged regardless of magnitude.
        let mut drift = base.clone();
        drift[0].dp_invocations = 6;
        assert_eq!(diff_bench_rows(&base, &drift, 20).len(), 1);
        // Wall within tolerance: clean; beyond: flagged; below floor: noise.
        let mut slow = base.clone();
        slow[0].wall_ms = 470;
        assert!(diff_bench_rows(&base, &slow, 20).is_empty());
        slow[0].wall_ms = 500;
        assert_eq!(diff_bench_rows(&base, &slow, 20).len(), 1);
        let mut tiny = base.clone();
        tiny[0].wall_ms = 10;
        let mut tiny_slow = tiny.clone();
        tiny_slow[0].wall_ms = 100;
        assert!(diff_bench_rows(&tiny, &tiny_slow, 20).is_empty());
        // Missing row: flagged.
        assert_eq!(diff_bench_rows(&base, &[], 20).len(), 1);
    }

    #[test]
    fn epochs_json_roundtrips() {
        let rows = vec![
            EpochBenchRow {
                bench: "epochs".into(),
                chain: "aptos".into(),
                churn_pct: 1,
                epochs: 16,
                bracket_divergence: 2,
                cert_skips: 40,
                warm_dp: 3,
                plain_dp: 9,
                cold_dp: 30,
                hit_rate_pct: 87,
            },
            EpochBenchRow {
                bench: "epochs".into(),
                chain: "tezos".into(),
                churn_pct: 20,
                epochs: 16,
                bracket_divergence: 0,
                cert_skips: 0,
                warm_dp: 12,
                plain_dp: 12,
                cold_dp: 31,
                hit_rate_pct: 40,
            },
        ];
        let doc = render_epochs_json(&rows);
        assert_eq!(parse_epochs_json(&doc).unwrap(), rows);
        assert!(parse_epochs_json("{}").is_err(), "schema tag is mandatory");
        assert!(
            parse_epochs_json(&render_bench_json(&[])).is_err(),
            "solver documents must not pass as epochs documents"
        );
    }

    #[test]
    fn epochs_diff_gates_solver_counters_but_not_bracket_divergence() {
        let base = vec![EpochBenchRow {
            bench: "epochs".into(),
            chain: "aptos".into(),
            churn_pct: 5,
            epochs: 16,
            bracket_divergence: 2,
            cert_skips: 40,
            warm_dp: 3,
            plain_dp: 9,
            cold_dp: 30,
            hit_rate_pct: 87,
        }];
        assert!(diff_epochs_rows(&base, &base).is_empty());
        // bracket_divergence is informational: free to drift.
        let mut bracket = base.clone();
        bracket[0].bracket_divergence = 7;
        assert!(diff_epochs_rows(&base, &bracket).is_empty());
        // The solver-work counters are exact.
        for field in ["epochs", "cert_skips", "warm_dp", "plain_dp", "cold_dp", "hit_rate_pct"]
        {
            let mut drift = base.clone();
            match field {
                "epochs" => drift[0].epochs += 1,
                "cert_skips" => drift[0].cert_skips += 1,
                "warm_dp" => drift[0].warm_dp += 1,
                "plain_dp" => drift[0].plain_dp += 1,
                "cold_dp" => drift[0].cold_dp += 1,
                _ => drift[0].hit_rate_pct += 1,
            }
            let problems = diff_epochs_rows(&base, &drift);
            assert_eq!(problems.len(), 1, "{field} must be exact-gated");
            assert!(problems[0].contains(field), "{problems:?}");
        }
        // Missing row: flagged.
        assert_eq!(diff_epochs_rows(&base, &[]).len(), 1);
    }

    fn gossip_row(backend: &str, substrate: &str, n: u64, seed: u64) -> GossipBenchRow {
        GossipBenchRow {
            bench: "gossip_scale".into(),
            backend: backend.into(),
            substrate: substrate.into(),
            n,
            seed,
            wall_ms: 80,
            reach_pct: 100,
            rounds: 6,
            msgs: 26_000,
            deliveries: 2560,
            msgs_per_delivery_x100: 1015,
            baseline_msgs_per_delivery: n,
            mean_degree_x100: 900,
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
            twin_ok: 1,
        }
    }

    #[test]
    fn gossip_json_roundtrips() {
        let mut threaded = gossip_row("overlay", "threaded", 64, 5);
        threaded.p50_us = 40;
        threaded.p99_us = 900;
        let rows = vec![
            gossip_row("overlay", "sim", 256, 7),
            gossip_row("fullmesh", "sim", 64, 1),
            threaded,
        ];
        let doc = render_gossip_json(&rows);
        assert_eq!(parse_gossip_json(&doc).unwrap(), rows);
        assert!(parse_gossip_json("{}").is_err(), "schema tag is mandatory");
        assert!(
            parse_gossip_json(&render_bench_json(&[])).is_err(),
            "solver documents must not pass as gossip documents"
        );
    }

    #[test]
    fn gossip_diff_gates_sim_counters_exactly_and_threaded_loosely() {
        let base = vec![gossip_row("overlay", "sim", 256, 7)];
        assert!(diff_gossip_rows(&base, &base, 20).is_empty());
        // Simulator rows are seed-deterministic: any counter drift flags.
        let mut drift = base.clone();
        drift[0].msgs += 1;
        assert_eq!(diff_gossip_rows(&base, &drift, 20).len(), 1);
        let mut rounds = base.clone();
        rounds[0].rounds += 1;
        assert_eq!(diff_gossip_rows(&base, &rounds, 20).len(), 1);
        // Threaded rows: message counts are schedule noise, but reach and
        // the twin flag are exact.
        let tbase = vec![gossip_row("overlay", "threaded", 64, 5)];
        let mut tnoise = tbase.clone();
        tnoise[0].msgs = 1;
        tnoise[0].p99_us = 9999;
        tnoise[0].rounds += 3;
        assert!(diff_gossip_rows(&tbase, &tnoise, 20).is_empty());
        let mut twin = tbase.clone();
        twin[0].twin_ok = 0;
        assert_eq!(diff_gossip_rows(&tbase, &twin, 20).len(), 1);
        // Missing row: flagged.
        assert_eq!(diff_gossip_rows(&base, &[], 20).len(), 1);
    }

    #[test]
    fn gossip_diff_holds_fresh_rows_to_the_acceptance_invariants() {
        // Partial reach flags with or without a matching baseline row.
        let mut unreached = vec![gossip_row("overlay", "sim", 64, 1)];
        unreached[0].reach_pct = 98;
        assert_eq!(diff_gossip_rows(&[], &unreached, 20).len(), 1);
        // Above the economy floor, overlay msgs/delivery must beat the
        // n²-flood yardstick of n…
        let mut pricey = vec![gossip_row("overlay", "sim", 256, 7)];
        pricey[0].msgs_per_delivery_x100 = 256 * 100;
        let problems = diff_gossip_rows(&[], &pricey, 20);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("baseline"), "{problems:?}");
        // …but small populations and the fullmesh yardstick itself are
        // exempt.
        let mut small = vec![gossip_row("overlay", "sim", 64, 1)];
        small[0].msgs_per_delivery_x100 = 64 * 100;
        assert!(diff_gossip_rows(&[], &small, 20).is_empty());
        let mut mesh = vec![gossip_row("fullmesh", "sim", 256, 7)];
        mesh[0].msgs_per_delivery_x100 = 256 * 100;
        assert!(diff_gossip_rows(&[], &mesh, 20).is_empty());
    }

    fn runtime_row(protocol: &str, n: u64, workers: u64, wall: u64) -> RuntimeBenchRow {
        RuntimeBenchRow {
            bench: "runtime_scale".into(),
            protocol: protocol.into(),
            transport: "channel".into(),
            n,
            workers,
            wall_ms: wall,
            commits: n,
            commits_per_sec: 1000,
            msgs: 5000,
            msgs_per_sec: 90_000,
            p50_us: 40,
            p95_us: 200,
            p99_us: 900,
            peak_rss_kb: 20_000,
            twin_ok: 1,
        }
    }

    #[test]
    fn runtime_json_roundtrips() {
        let mut socket = runtime_row("bracha", 20, 1, 300);
        socket.transport = "socket".into();
        let rows =
            vec![runtime_row("bracha", 20, 1, 300), socket, runtime_row("smr", 10, 4, 800)];
        let doc = render_runtime_json(&rows);
        assert_eq!(parse_runtime_json(&doc).unwrap(), rows);
        assert!(parse_runtime_json("{}").is_err(), "schema tag is mandatory");
        assert!(
            parse_runtime_json(&render_bench_json(&[])).is_err(),
            "solver documents must not pass as runtime documents"
        );
    }

    #[test]
    fn rows_without_a_transport_column_parse_as_channel() {
        // Baselines written before the transport axis existed must keep
        // diffing as channel rows.
        let doc = format!(
            "{{\n  \"schema\": \"{BENCH_RUNTIME_SCHEMA}\",\n  \"rows\": [\n    \
             {{\"bench\":\"runtime_scale\",\"protocol\":\"aba\",\"n\":8,\"workers\":2,\
             \"wall_ms\":10,\"commits\":8,\"twin_ok\":1}}\n  ]\n}}\n"
        );
        let rows = parse_runtime_json(&doc).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].transport, "channel");
    }

    #[test]
    fn transport_is_part_of_the_row_identity() {
        // A socket row never matches a channel baseline (and vice versa):
        // the two backends have independent trajectories.
        let channel = vec![runtime_row("bracha", 20, 1, 300)];
        let mut socket = channel.clone();
        socket[0].transport = "socket".into();
        assert_eq!(diff_runtime_rows(&channel, &socket, 20).len(), 1, "baseline row unmatched");
        let both = vec![channel[0].clone(), socket[0].clone()];
        assert!(diff_runtime_rows(&both, &both, 20).is_empty());
    }

    #[test]
    fn runtime_diff_gates_commits_twin_and_wall() {
        let base = vec![runtime_row("aba", 20, 2, 400)];
        assert!(diff_runtime_rows(&base, &base, 20).is_empty());
        // Schedule-dependent columns may drift freely.
        let mut drift = base.clone();
        drift[0].msgs = 9999;
        drift[0].p99_us = 1;
        drift[0].peak_rss_kb = 1;
        assert!(diff_runtime_rows(&base, &drift, 20).is_empty());
        // Commits and the twin flag are exact.
        let mut commits = base.clone();
        commits[0].commits = 19;
        assert_eq!(diff_runtime_rows(&base, &commits, 20).len(), 1);
        let mut twin = base.clone();
        twin[0].twin_ok = 0;
        assert_eq!(diff_runtime_rows(&base, &twin, 20).len(), 1);
        // Wall: tolerated within tol_pct above the floor, noise below it.
        let mut slow = base.clone();
        slow[0].wall_ms = 500;
        assert_eq!(diff_runtime_rows(&base, &slow, 20).len(), 1);
        let mut tiny = base.clone();
        tiny[0].wall_ms = 10;
        let mut tiny_slow = tiny.clone();
        tiny_slow[0].wall_ms = 100;
        assert!(diff_runtime_rows(&tiny, &tiny_slow, 20).is_empty());
        // Missing row: flagged.
        assert_eq!(diff_runtime_rows(&base, &[], 20).len(), 1);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let s = t.render();
        assert!(s.contains("| a   | bb |"));
        assert!(s.lines().count() == 4);
    }
}
