//! Shared experiment plumbing for the table/figure binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's experiment index); this library holds the
//! parameter sets, measurement records and small table/CSV writers they
//! share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use swiper_core::{
    Mode, Ratio, Solution, Swiper, TicketAssignment, WeightQualification, WeightRestriction,
    WeightSeparation, Weights,
};

/// The WR/WQ parameter pairs of Table 2 (each WR pair `(aw, an)` is the
/// Theorem 2.2 mirror of the WQ pair `(1-aw, 1-an)` printed below it).
pub fn table2_wr_settings() -> Vec<(Ratio, Ratio)> {
    vec![
        (Ratio::of(1, 4), Ratio::of(1, 3)),
        (Ratio::of(1, 3), Ratio::of(3, 8)),
        (Ratio::of(1, 3), Ratio::of(1, 2)),
        (Ratio::of(2, 3), Ratio::of(3, 4)),
    ]
}

/// The WS parameter pairs of Table 2.
pub fn table2_ws_settings() -> Vec<(Ratio, Ratio)> {
    vec![
        (Ratio::of(1, 4), Ratio::of(1, 3)),
        (Ratio::of(1, 3), Ratio::of(1, 2)),
        (Ratio::of(2, 3), Ratio::of(3, 4)),
    ]
}

/// The `(alpha_w, alpha_n)` pairs tracked in the right-hand columns of
/// Figures 1–5.
pub fn figure_pairs() -> Vec<(Ratio, Ratio)> {
    table2_wr_settings()
}

/// Measurements of one solver run.
#[derive(Debug, Clone, Copy)]
pub struct SolveMeasurement {
    /// Total tickets allocated.
    pub total_tickets: u128,
    /// Largest per-party allocation.
    pub max_tickets: u64,
    /// Parties holding at least one ticket.
    pub holders: usize,
    /// The theoretical bound for the instance.
    pub bound: u64,
}

/// Runs Weight Restriction and extracts the figure metrics.
///
/// # Panics
///
/// Panics when the instance is infeasible (the harness constructs only
/// feasible ones).
pub fn measure_wr(
    weights: &Weights,
    alpha_w: Ratio,
    alpha_n: Ratio,
    mode: Mode,
) -> SolveMeasurement {
    let params = WeightRestriction::new(alpha_w, alpha_n).expect("feasible parameters");
    let sol = Swiper::with_mode(mode).solve_restriction(weights, &params).expect("solvable");
    measurement_of(&sol.assignment, sol.ticket_bound)
}

/// Runs Weight Qualification (via the Theorem 2.2 reduction).
///
/// # Panics
///
/// Panics when the instance is infeasible.
pub fn measure_wq(
    weights: &Weights,
    beta_w: Ratio,
    beta_n: Ratio,
    mode: Mode,
) -> SolveMeasurement {
    let params = WeightQualification::new(beta_w, beta_n).expect("feasible parameters");
    let sol = Swiper::with_mode(mode).solve_qualification(weights, &params).expect("solvable");
    measurement_of(&sol.assignment, sol.ticket_bound)
}

/// Runs Weight Separation.
///
/// # Panics
///
/// Panics when the instance is infeasible.
pub fn measure_ws(
    weights: &Weights,
    alpha: Ratio,
    beta: Ratio,
    mode: Mode,
) -> SolveMeasurement {
    let params = WeightSeparation::new(alpha, beta).expect("feasible parameters");
    let sol = Swiper::with_mode(mode).solve_separation(weights, &params).expect("solvable");
    measurement_of(&sol.assignment, sol.ticket_bound)
}

fn measurement_of(t: &TicketAssignment, bound: u64) -> SolveMeasurement {
    SolveMeasurement {
        total_tickets: t.total(),
        max_tickets: t.max_tickets(),
        holders: t.holders(),
        bound,
    }
}

impl From<&Solution> for SolveMeasurement {
    fn from(sol: &Solution) -> Self {
        measurement_of(&sol.assignment, sol.ticket_bound)
    }
}

/// A minimal aligned-column table printer for terminal reports.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(line, "| {:width$} ", c, width = widths[i]);
            }
            line.push('|');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let sep: String =
            widths.iter().map(|w| format!("|{}", "-".repeat(w + 2))).collect::<String>() + "|";
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Writes a CSV file (creating parent directories) from a header and rows.
///
/// # Panics
///
/// Panics on I/O errors — experiment harness semantics: fail loudly.
pub fn write_csv<P: AsRef<Path>>(path: P, header: &[&str], rows: &[Vec<String>]) {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create output directory");
    }
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(path, out).expect("write csv");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_match_table2() {
        assert_eq!(table2_wr_settings().len(), 4);
        assert_eq!(table2_ws_settings().len(), 3);
        for (a, b) in table2_wr_settings() {
            assert!(a < b);
        }
        for (a, b) in table2_ws_settings() {
            assert!(a < b);
        }
    }

    #[test]
    fn measurements_are_consistent() {
        let w = Weights::new(vec![50, 30, 20, 10, 5]).unwrap();
        let m = measure_wr(&w, Ratio::of(1, 3), Ratio::of(1, 2), Mode::Full);
        assert!(m.total_tickets <= u128::from(m.bound));
        assert!(u128::from(m.max_tickets) <= m.total_tickets);
        assert!(m.holders <= 5);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let s = t.render();
        assert!(s.contains("| a   | bb |"));
        assert!(s.lines().count() == 4);
    }
}
