//! Randomness-beacon benchmarks: weighted (WR tickets) vs nominal share
//! signing and combination — the measured counterpart of Table 1's
//! RNG rows (x1.33 bound for WR(1/3, 1/2)).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use swiper_core::{Ratio, Swiper, WeightRestriction, Weights};
use swiper_crypto::thresh::PartialSignature;
use swiper_protocols::beacon::BeaconSetup;

fn bench_beacon_rounds(c: &mut Criterion) {
    let n = 20;
    let mut group = c.benchmark_group("beacon_n20");
    group.sample_size(20);

    // Nominal: one share per party, threshold n/2.
    let nominal = BeaconSetup::nominal(n, Ratio::of(1, 2), &mut StdRng::seed_from_u64(1));
    group.bench_function("nominal_sign_and_combine", |b| {
        b.iter(|| sign_and_combine(black_box(&nominal), 9))
    });

    // Weighted on a skewed distribution.
    let weights = Weights::new((1..=n as u64).map(|i| i * i).collect()).unwrap();
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
    let weighted =
        BeaconSetup::deal(&sol.assignment, Ratio::of(1, 2), &mut StdRng::seed_from_u64(1));
    group.bench_function("weighted_sign_and_combine", |b| {
        b.iter(|| sign_and_combine(black_box(&weighted), 9))
    });

    group.finish();
}

fn sign_and_combine(setup: &BeaconSetup, round: u64) -> [u8; 32] {
    let tag = BeaconSetup::round_tag(round);
    let mut partials: Vec<PartialSignature> = Vec::new();
    for bundle in &setup.shares {
        for share in bundle {
            partials.push(setup.scheme.partial_sign(share, &tag));
        }
    }
    partials.truncate(setup.scheme.threshold());
    let sig = setup.scheme.combine(&partials).expect("threshold met");
    *BeaconSetup::output_of(&sig).as_bytes()
}

criterion_group!(benches, bench_beacon_rounds);
criterion_main!(benches);
