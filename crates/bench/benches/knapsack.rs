//! Knapsack machinery benchmarks: the exact DP against the quasilinear
//! bounds that Swiper's quick test uses to dodge it (Section 3.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use swiper_core::knapsack::{
    fractional_upper_bound_reaches, greedy_lower_bound_reaches, max_profit_dp, quick_test, Item,
};

fn instance(n: usize, seed: u64) -> (Vec<Item>, u128, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<Item> = (0..n)
        .map(|_| Item { profit: rng.random_range(0..8), weight: rng.random_range(1..1000) })
        .collect();
    let total_weight: u128 = items.iter().map(|i| u128::from(i.weight)).sum();
    let total_profit: u64 = items.iter().map(|i| i.profit).sum();
    // Capacity just under a third of the weight; target half the profit.
    (items, total_weight / 3, total_profit / 2)
}

fn bench_dp_vs_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack");
    group.sample_size(20);
    for n in [100usize, 1_000, 5_000] {
        let (items, cap, target) = instance(n, 7);
        group.bench_with_input(BenchmarkId::new("dp", n), &items, |b, its| {
            b.iter(|| max_profit_dp(black_box(its), cap, target))
        });
        group.bench_with_input(BenchmarkId::new("upper_bound", n), &items, |b, its| {
            b.iter(|| fractional_upper_bound_reaches(black_box(its), cap, target))
        });
        group.bench_with_input(BenchmarkId::new("lower_bound", n), &items, |b, its| {
            b.iter(|| greedy_lower_bound_reaches(black_box(its), cap, target))
        });
        group.bench_with_input(BenchmarkId::new("quick_test", n), &items, |b, its| {
            b.iter(|| quick_test(black_box(its), cap, target))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp_vs_bounds);
criterion_main!(benches);
