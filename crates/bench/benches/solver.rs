//! Solver runtime benchmarks: full vs `--linear` mode across input sizes
//! and distributions (the paper's "more than a factor of 3" quick-test
//! speedup claim is about avoided DP invocations; here we measure
//! wall-clock of both modes end to end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swiper_core::{Mode, Ratio, Swiper, WeightRestriction, WeightSeparation};
use swiper_weights::{gen, Chain};

fn bench_modes_by_n(c: &mut Criterion) {
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let mut group = c.benchmark_group("wr_zipf");
    group.sample_size(20);
    for n in [100usize, 1_000, 10_000] {
        let weights = gen::zipf(n, 1.0, 1 << 30);
        for (label, mode) in [("full", Mode::Full), ("linear", Mode::Linear)] {
            group.bench_with_input(BenchmarkId::new(label, n), &weights, |b, w| {
                let solver = Swiper::with_mode(mode);
                b.iter(|| solver.solve_restriction(black_box(w), &params).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_chains(c: &mut Criterion) {
    let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let mut group = c.benchmark_group("wr_chains");
    group.sample_size(10);
    for chain in [Chain::Aptos, Chain::Tezos, Chain::Filecoin] {
        let weights = chain.weights();
        group.bench_with_input(BenchmarkId::from_parameter(chain.name()), &weights, |b, w| {
            let solver = Swiper::new();
            b.iter(|| solver.solve_restriction(black_box(w), &params).unwrap())
        });
    }
    group.finish();
}

fn bench_worst_case_equal_weights(c: &mut Criterion) {
    // Equal weights force the solver towards the theoretical bound: the
    // most DP-heavy case for full mode.
    let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
    let mut group = c.benchmark_group("wr_equal_worst_case");
    group.sample_size(10);
    for n in [100usize, 1_000] {
        let weights = gen::equal(n, 3);
        for (label, mode) in [("full", Mode::Full), ("linear", Mode::Linear)] {
            group.bench_with_input(BenchmarkId::new(label, n), &weights, |b, w| {
                let solver = Swiper::with_mode(mode);
                b.iter(|| solver.solve_restriction(black_box(w), &params).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_separation(c: &mut Criterion) {
    let params = WeightSeparation::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
    let mut group = c.benchmark_group("ws_zipf");
    group.sample_size(10);
    for n in [100usize, 1_000] {
        let weights = gen::zipf(n, 1.0, 1 << 30);
        group.bench_with_input(BenchmarkId::from_parameter(n), &weights, |b, w| {
            let solver = Swiper::new();
            b.iter(|| solver.solve_separation(black_box(w), &params).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_modes_by_n,
    bench_chains,
    bench_worst_case_equal_weights,
    bench_separation
);
criterion_main!(benches);
