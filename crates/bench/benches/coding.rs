//! Reed–Solomon benchmarks: encoding, erasure decoding and error decoding
//! at nominal vs WQ-inflated fragment counts — the computational side of
//! the paper's x3.56 / x7.11 worst-case factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use swiper_erasure::shards::{decode_bytes, encode_bytes};
use swiper_erasure::ReedSolomon;
use swiper_field::F61;

fn bench_byte_coding(c: &mut Criterion) {
    let blob = vec![0xA7u8; 64 * 1024];
    let mut group = c.benchmark_group("shard_coding");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(blob.len() as u64));
    // (k, m) pairs: nominal n=30 (k=10), weighted x4/3 fragments (same
    // rate loss as WQ(1/3, 1/4) at beta_n = 1/4: k = m/4).
    for (label, k, m) in [("nominal_10_30", 10usize, 30usize), ("weighted_20_80", 20, 80)] {
        group.bench_function(BenchmarkId::new("encode", label), |b| {
            b.iter(|| encode_bytes(black_box(&blob), k, m).unwrap())
        });
        let shards = encode_bytes(&blob, k, m).unwrap();
        let subset: Vec<_> = shards[m - k..].to_vec();
        group.bench_function(BenchmarkId::new("decode_erasures", label), |b| {
            b.iter(|| decode_bytes(black_box(&subset), k, m).unwrap())
        });
    }
    group.finish();
}

fn bench_error_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("error_decoding");
    group.sample_size(10);
    for (k, m, e) in [(4usize, 13usize, 2usize), (8, 25, 4), (16, 49, 8)] {
        let rs: ReedSolomon<F61> = ReedSolomon::new(k, m).unwrap();
        let msg: Vec<F61> = (0..k as u64).map(|i| F61::new(i * 37 + 5)).collect();
        let mut frags: Vec<Option<F61>> =
            rs.encode(&msg).unwrap().into_iter().map(Some).collect();
        for (j, f) in frags.iter_mut().enumerate().take(e) {
            *f = Some(F61::new(j as u64 + 999_999));
        }
        group.bench_function(BenchmarkId::from_parameter(format!("k{k}_m{m}_e{e}")), |b| {
            b.iter(|| rs.decode_errors(black_box(&frags), e).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_byte_coding, bench_error_decoding);
criterion_main!(benches);
