//! End-to-end broadcast benchmarks on the simulator: Bracha (full payload
//! everywhere) vs AVID (erasure-coded), nominal vs weighted — the measured
//! counterpart of Table 1's broadcast rows.

use criterion::{criterion_group, criterion_main, Criterion};
use swiper_core::{Mode, Ratio, Swiper, WeightQualification, Weights};
use swiper_net::{Protocol, Simulation};
use swiper_protocols::avid::{AvidConfig, AvidMsg, AvidNode};
use swiper_protocols::bracha::{BrachaConfig, BrachaMsg, BrachaNode};

fn run_bracha(n: usize, blob: &[u8], seed: u64) -> u64 {
    let config = BrachaConfig::nominal(n);
    let mut nodes: Vec<Box<dyn Protocol<Msg = BrachaMsg>>> = Vec::new();
    nodes.push(Box::new(BrachaNode::sender(config.clone(), 0, blob.to_vec())));
    for _ in 1..n {
        nodes.push(Box::new(BrachaNode::new(config.clone(), 0)));
    }
    Simulation::new(nodes, seed).run().metrics.total_bytes()
}

fn run_avid(config: &AvidConfig, n: usize, blob: &[u8], seed: u64) -> u64 {
    let mut nodes: Vec<Box<dyn Protocol<Msg = AvidMsg>>> = Vec::new();
    nodes.push(Box::new(AvidNode::dealer(config.clone(), 0, blob.to_vec())));
    for _ in 1..n {
        nodes.push(Box::new(AvidNode::new(config.clone(), 0)));
    }
    Simulation::new(nodes, seed).run().metrics.total_bytes()
}

fn bench_broadcast(c: &mut Criterion) {
    let n = 10;
    let blob = vec![0x11u8; 16 * 1024];
    let mut group = c.benchmark_group("broadcast_16KiB_n10");
    group.sample_size(10);

    group.bench_function("bracha_nominal", |b| b.iter(|| run_bracha(n, &blob, 3)));

    let nominal = AvidConfig::nominal(n);
    group.bench_function("avid_nominal", |b| b.iter(|| run_avid(&nominal, n, &blob, 3)));

    // Weighted with the worst-case (equal) distribution.
    let weights = Weights::new(vec![5; n]).unwrap();
    let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
    let sol = Swiper::with_mode(Mode::Full).solve_qualification(&weights, &wq).unwrap();
    let weighted = AvidConfig::weighted(weights, &sol.assignment, Ratio::of(1, 4));
    group.bench_function("avid_weighted_equalw", |b| {
        b.iter(|| run_avid(&weighted, n, &blob, 3))
    });

    // Weighted with a skewed (organic-like) distribution: fewer tickets.
    let weights = Weights::new(vec![300, 200, 150, 100, 90, 60, 40, 30, 20, 10]).unwrap();
    let sol = Swiper::with_mode(Mode::Full).solve_qualification(&weights, &wq).unwrap();
    let weighted_skew = AvidConfig::weighted(weights, &sol.assignment, Ratio::of(1, 4));
    group.bench_function("avid_weighted_skewed", |b| {
        b.iter(|| run_avid(&weighted_skew, n, &blob, 3))
    });

    group.finish();

    // Print the byte-count comparison once (factors, not time).
    let b_bytes = run_bracha(n, &blob, 3);
    let a_bytes = run_avid(&nominal, n, &blob, 3);
    let w_bytes = run_avid(&weighted, n, &blob, 3);
    println!(
        "bytes: bracha={} avid_nominal={} avid_weighted={} (weighted/nominal = x{:.2}; paper bound x1.33)",
        b_bytes,
        a_bytes,
        w_bytes,
        w_bytes as f64 / a_bytes as f64
    );
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
