//! Wire codecs: how a protocol message becomes bytes on a socket.
//!
//! The [`SocketTransport`](crate::SocketTransport) frames every
//! [`Envelope`](crate::Envelope) as a length-prefixed record whose header
//! carries the coordinates (`from`, `to`, `send_ix`, `sent_at`) and whose
//! body is the payload, encoded by a [`WireCodec`]. The codec is the only
//! message-type-specific piece: `swiper-net` ships [`U64Codec`] and
//! [`BytesCodec`] for the plain test payloads, and protocol crates
//! implement the trait for their own message enums (see
//! `swiper_protocols::wire`).
//!
//! Encodings are hand-rolled little-endian records (the vendored serde
//! shim is marker-only). The [`WireReader`]/`put_*` helpers keep
//! downstream codecs short and make truncation/trailing-byte errors
//! uniform.

use std::fmt;

/// Why a wire payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the record did.
    Truncated,
    /// Bytes remained after the record was fully decoded.
    TrailingBytes(usize),
    /// An enum discriminant byte had no meaning for this message type.
    BadTag(u8),
    /// A decoded field value is outside its type's domain.
    BadValue(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire record truncated"),
            WireError::TrailingBytes(k) => write!(f, "{k} trailing bytes after wire record"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            WireError::BadValue(what) => write!(f, "wire field out of domain: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes and decodes one message type for the socket transport.
///
/// The contract is exact round-tripping: `decode(encode(m)) == m` for
/// every message the protocol can emit, with no bytes to spare — the
/// transport frames records, so a codec never needs to find its own end,
/// but it must consume *exactly* the body it is given (decode errors on
/// trailing bytes catch version skew early). Codecs must be pure: the
/// determinism-twin contract replays payloads from fresh automata, so an
/// encoding that depends on anything but the message would desynchronize
/// the metrics byte counts.
pub trait WireCodec<M>: Send + Sync + 'static {
    /// Appends the encoding of `msg` to `out`.
    fn encode(&self, msg: &M, out: &mut Vec<u8>);

    /// Decodes one message from exactly `buf`.
    ///
    /// # Errors
    ///
    /// [`WireError`] when `buf` is not exactly one valid encoding.
    fn decode(&self, buf: &[u8]) -> Result<M, WireError>;
}

/// Codec for bare `u64` payloads (the unit-test message type).
#[derive(Debug, Default, Clone, Copy)]
pub struct U64Codec;

impl WireCodec<u64> for U64Codec {
    fn encode(&self, msg: &u64, out: &mut Vec<u8>) {
        out.extend_from_slice(&msg.to_le_bytes());
    }

    fn decode(&self, buf: &[u8]) -> Result<u64, WireError> {
        let mut r = WireReader::new(buf);
        let v = r.take_u64()?;
        r.finish()?;
        Ok(v)
    }
}

/// Codec for raw byte-vector payloads.
#[derive(Debug, Default, Clone, Copy)]
pub struct BytesCodec;

impl WireCodec<Vec<u8>> for BytesCodec {
    fn encode(&self, msg: &Vec<u8>, out: &mut Vec<u8>) {
        out.extend_from_slice(msg);
    }

    fn decode(&self, buf: &[u8]) -> Result<Vec<u8>, WireError> {
        Ok(buf.to_vec())
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends a `u32`-length-prefixed byte slice.
pub fn put_slice(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, u32::try_from(v.len()).expect("wire slice fits u32"));
    out.extend_from_slice(v);
}

/// Cursor over a wire record body; every `take_*` advances and errors
/// uniformly on truncation, and [`WireReader::finish`] rejects leftovers.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    fn take(&mut self, k: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < k {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.buf.split_at(k);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a one-byte `bool` (strictly 0 or 1).
    pub fn take_bool(&mut self) -> Result<bool, WireError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue("bool byte")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `u32`-length-prefixed byte slice (the [`put_slice`] twin).
    pub fn take_slice(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    /// Reads exactly `k` raw bytes.
    pub fn take_bytes(&mut self, k: usize) -> Result<&'a [u8], WireError> {
        self.take(k)
    }

    /// Asserts the record is fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] when bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_codec_roundtrips_and_rejects_malformed() {
        let c = U64Codec;
        let mut buf = Vec::new();
        c.encode(&0xDEAD_BEEF_0042u64, &mut buf);
        assert_eq!(c.decode(&buf), Ok(0xDEAD_BEEF_0042u64));
        assert_eq!(c.decode(&buf[..7]), Err(WireError::Truncated));
        buf.push(0);
        assert_eq!(c.decode(&buf), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn bytes_codec_roundtrips_including_empty() {
        let c = BytesCodec;
        for payload in [Vec::new(), b"swiper".to_vec()] {
            let mut buf = Vec::new();
            c.encode(&payload, &mut buf);
            assert_eq!(c.decode(&buf), Ok(payload));
        }
    }

    #[test]
    fn reader_helpers_roundtrip_and_bound_check() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX);
        put_bool(&mut buf, true);
        put_slice(&mut buf, b"abc");
        let mut r = WireReader::new(&buf);
        assert_eq!(r.take_u32(), Ok(7));
        assert_eq!(r.take_u64(), Ok(u64::MAX));
        assert_eq!(r.take_bool(), Ok(true));
        assert_eq!(r.take_slice(), Ok(b"abc".as_ref()));
        assert!(r.finish().is_ok());

        let mut r = WireReader::new(&[2]);
        assert_eq!(r.take_bool(), Err(WireError::BadValue("bool byte")));
        let mut r = WireReader::new(&[1, 0, 0, 0]);
        assert_eq!(r.take_slice(), Err(WireError::Truncated));
    }
}
