//! The threaded in-process runtime: the deployed twin of the
//! deterministic simulator.
//!
//! [`ThreadedRuntime`] drives the **same unmodified [`Protocol`]
//! automata** the simulator runs, but over real parallelism: nodes are
//! sharded across worker threads, links are bounded per-node inboxes on a
//! pluggable [`Transport`], timers fire off a monotonic clock, and epoch
//! reconfigurations are injected through the existing
//! [`EpochEvent`]/`on_reconfigure` machinery once the global event count
//! crosses the scheduled threshold. Every run records a
//! [`DeliveryTrace`]; replaying it on the simulator substrate
//! ([`DeliveryTrace::replay`]) must reproduce the run's outputs and
//! metrics bit-identically — the determinism-twin contract that keeps
//! this backend testable (see `docs/ARCHITECTURE.md`).
//!
//! # Progress and shutdown
//!
//! Workers never block inside the transport: a backpressured envelope
//! goes to the sender's local retry queue, which keeps bounded links
//! deadlock-free by construction. Quiescence is detected exactly with a
//! global in-flight counter — incremented when an event (message, timer,
//! reconfiguration, start credit) is created, decremented only after its
//! callback *and* the flush of its effects complete — so a zero reading
//! proves no event exists and none can be created. The coordinator then
//! closes the transport and joins every worker: clean shutdown, no
//! detached threads.
//!
//! Events that can no longer happen release their credits as *drops*,
//! with identical bookkeeping to a delivery to a halted node: envelopes
//! rejected by a closed transport, retry-queue and inbox leftovers drained
//! at shutdown, and transport-internal in-flight losses surfaced through
//! [`Transport::take_dropped`] (polled by the coordinator, so a socket
//! closed mid-run converges instead of stalling). The
//! [`RuntimeReport::dropped`] tally closes the conservation law
//! `total_messages == delivered_messages + dropped` for every run.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use swiper_core::EpochEvent;

use crate::metrics::Metrics;
use crate::sim::{Context, NodeId, Protocol, RunReport};
use crate::transport::{ChannelTransport, Envelope, Runtime, SendError, SendNodes, Transport};
use crate::twin::{DeliveryTrace, TraceEvent};
use crate::MessageSize;

/// Percentile summary of a sample histogram, in clock ticks
/// (microseconds) — used for every delivered message's send→process
/// interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Median delivery latency.
    pub p50_us: u64,
    /// 95th-percentile delivery latency.
    pub p95_us: u64,
    /// 99th-percentile delivery latency.
    pub p99_us: u64,
    /// Number of deliveries measured.
    pub samples: u64,
}

/// The historical name of [`HistSummary`].
pub type LatencySummary = HistSummary;

impl HistSummary {
    /// Summarizes `samples` by nearest-rank percentiles. An empty vector —
    /// a swept cell that produced zero commits, a run whose transport died
    /// before any delivery — yields the all-zero summary, never a panic:
    /// zero percentiles over `samples: 0` are unambiguous downstream.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        let Some(last) = samples.len().checked_sub(1) else {
            return HistSummary { p50_us: 0, p95_us: 0, p99_us: 0, samples: 0 };
        };
        samples.sort_unstable();
        let pct = |q: u64| samples[(last as u64 * q / 100) as usize];
        HistSummary {
            p50_us: pct(50),
            p95_us: pct(95),
            p99_us: pct(99),
            samples: samples.len() as u64,
        }
    }
}

/// Everything a threaded run produces: the portable [`RunReport`], the
/// replayable [`DeliveryTrace`], and the wall-clock measurements the
/// benchmark layer reads.
#[derive(Debug)]
pub struct RuntimeReport {
    /// Outputs, event counts and communication metrics — the part that
    /// must match the twin replay bit for bit.
    pub report: RunReport,
    /// The recorded callback sequence (see [`DeliveryTrace::replay`]).
    pub trace: DeliveryTrace,
    /// Real elapsed time of the run.
    pub wall: Duration,
    /// Send→process latency percentiles.
    pub latency: HistSummary,
    /// Messages sent but never processed by a live callback: deliveries to
    /// halted nodes, envelopes rejected by a closed transport, retry-queue
    /// and inbox leftovers drained at shutdown, and transport-internal
    /// in-flight drops ([`Transport::take_dropped`]). The conservation law
    /// `metrics.total_messages() == metrics.delivered_messages() + dropped`
    /// holds for every run, however it ended.
    pub dropped: u64,
}

/// A multi-threaded in-process runtime over boxed `Send` node automata.
///
/// Construction mirrors [`Simulation`](crate::Simulation): boxed nodes
/// plus builder-style configuration. `run` consumes the runtime; use
/// [`ThreadedRuntime::run_traced`] to keep the trace and wall-clock
/// measurements.
///
/// # Examples
///
/// ```
/// use swiper_net::{Context, NodeId, Protocol, ThreadedRuntime};
///
/// struct Hello { heard: usize }
/// impl Protocol for Hello {
///     type Msg = u64;
///     fn on_start(&mut self, ctx: &mut Context<u64>) {
///         ctx.broadcast(7);
///     }
///     fn on_message(&mut self, _from: NodeId, _msg: u64, ctx: &mut Context<u64>) {
///         self.heard += 1;
///         if self.heard == ctx.n() {
///             ctx.output(b"done".to_vec());
///         }
///     }
/// }
///
/// let nodes: Vec<Box<dyn Protocol<Msg = u64> + Send>> =
///     (0..4).map(|_| Box::new(Hello { heard: 0 }) as _).collect();
/// let full = ThreadedRuntime::new(nodes).with_workers(2).run_traced();
/// assert!(full.report.outputs.iter().all(|o| o.as_deref() == Some(b"done".as_ref())));
///
/// // The determinism twin: replay the trace on fresh nodes, bit-identical.
/// let fresh: Vec<Box<dyn Protocol<Msg = u64>>> =
///     (0..4).map(|_| Box::new(Hello { heard: 0 }) as _).collect();
/// let twin = full.trace.replay(fresh).expect("no divergence");
/// assert_eq!(twin.outputs, full.report.outputs);
/// ```
pub struct ThreadedRuntime<M, T: Transport<M> = ChannelTransport<M>> {
    nodes: SendNodes<M>,
    transport: T,
    workers: usize,
    max_events: u64,
    /// Epoch schedule, ascending by global event count.
    reconfigs: Vec<(u64, EpochEvent)>,
    /// Coordinator gives up after this long without any event progress —
    /// a diagnosis aid, not a control-flow tool (the design is
    /// deadlock-free; a stall means an automaton is stuck inside a
    /// callback).
    stall_limit: Duration,
}

impl<M: Send + Clone + MessageSize + 'static> ThreadedRuntime<M, ChannelTransport<M>> {
    /// A runtime over the given automata on an in-process
    /// [`ChannelTransport`], one worker thread per node by default.
    ///
    /// # Panics
    ///
    /// Panics on an empty node set.
    pub fn new(nodes: SendNodes<M>) -> Self {
        assert!(!nodes.is_empty(), "a runtime needs at least one node");
        let n = nodes.len();
        ThreadedRuntime {
            nodes,
            transport: ChannelTransport::new(n),
            workers: n,
            max_events: 2_000_000,
            reconfigs: Vec::new(),
            stall_limit: Duration::from_secs(10),
        }
    }
}

impl<M: Send + Clone + MessageSize + 'static, T: Transport<M>> ThreadedRuntime<M, T> {
    /// Replaces the transport backend (builder style). The new transport
    /// must address the same population.
    pub fn with_transport<T2: Transport<M>>(self, transport: T2) -> ThreadedRuntime<M, T2> {
        assert_eq!(transport.n(), self.nodes.len(), "transport population mismatch");
        ThreadedRuntime {
            nodes: self.nodes,
            transport,
            workers: self.workers,
            max_events: self.max_events,
            reconfigs: self.reconfigs,
            stall_limit: self.stall_limit,
        }
    }

    /// Sets the worker-thread count (builder style); nodes are sharded
    /// round-robin. Clamped to `1..=n`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.clamp(1, self.nodes.len());
        self
    }

    /// Caps the number of processed events (runaway guard; best-effort —
    /// in-flight callbacks may overshoot by a few events).
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Schedules an epoch reconfiguration: once the global processed-event
    /// count reaches `at_event`, every non-halted node receives
    /// [`Protocol::on_reconfigure`] with `event` between two of its
    /// callbacks. Same contract as the simulator's
    /// [`Simulation::with_reconfiguration`](crate::Simulation::with_reconfiguration),
    /// with the injection point per node recorded in the trace so the twin
    /// replay applies it at exactly the same position.
    pub fn with_reconfiguration(mut self, at_event: u64, event: EpochEvent) -> Self {
        let pos = self.reconfigs.partition_point(|(at, _)| *at <= at_event);
        self.reconfigs.insert(pos, (at_event, event));
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Runs to quiescence (or the event cap) and returns the full report:
    /// outputs/metrics, the replayable trace, wall time and latency
    /// percentiles.
    pub fn run_traced(self) -> RuntimeReport {
        let n = self.nodes.len();
        let workers = self.workers;
        let transport = &self.transport;
        let max_events = self.max_events;
        let (thresholds, epochs): (Vec<u64>, Vec<EpochEvent>) =
            self.reconfigs.into_iter().unzip();

        // In-flight event credits: n start credits, +1 per message/timer/
        // per-node reconfiguration, -1 only after the event's callback and
        // effect flush complete. Zero ⟺ quiescent.
        let pending = AtomicI64::new(n as i64);
        let processed = AtomicU64::new(0);
        let dropped = AtomicU64::new(0);
        let shutdown = AtomicBool::new(false);
        let trace = Mutex::new(Vec::<TraceEvent>::new());
        let start_at = Mutex::new(vec![0u64; n]);
        let controls: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let origin = Instant::now();
        let clock = |origin: Instant| origin.elapsed().as_micros() as u64;

        // Shard nodes round-robin across workers.
        let mut shards: Vec<Shard<M>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, node) in self.nodes.into_iter().enumerate() {
            shards[i % workers].push((i, node));
        }

        let mut injected = 0usize;
        let (outputs, metrics, latencies) = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            for shard in shards {
                let epochs = &epochs;
                let pending = &pending;
                let processed = &processed;
                let dropped = &dropped;
                let shutdown = &shutdown;
                let trace = &trace;
                let start_at = &start_at;
                let controls = &controls;
                handles.push(s.spawn(move || {
                    worker_loop(WorkerEnv {
                        shard,
                        n,
                        transport,
                        epochs,
                        pending,
                        processed,
                        dropped,
                        shutdown,
                        trace,
                        start_at,
                        controls,
                        worker_count: workers,
                        origin,
                    })
                }));
            }

            // Coordinator: inject due epochs, detect quiescence, enforce
            // the event cap, then shut down.
            let mut last_progress = (Instant::now(), 0u64);
            loop {
                std::thread::sleep(Duration::from_micros(200));
                // Transport-internal drops (a socket closed mid-run) are
                // events that will never arrive: account them here like
                // halted-node drops, or their pending credits would stall
                // quiescence until the stall limit.
                let d = transport.take_dropped();
                if d > 0 {
                    dropped.fetch_add(d, Ordering::SeqCst);
                    processed.fetch_add(d, Ordering::SeqCst);
                    pending.fetch_sub(d as i64, Ordering::SeqCst);
                }
                let done = processed.load(Ordering::SeqCst);
                while injected < thresholds.len() && thresholds[injected] <= done {
                    pending.fetch_add(n as i64, Ordering::SeqCst);
                    for c in controls.iter() {
                        c.lock().expect("control poisoned").push_back(injected);
                    }
                    injected += 1;
                }
                // `<= 0`, not `== 0`: a drop can be accounted above in the
                // same window its sender's credit lands, so the counter may
                // pass through negative transients.
                if pending.load(Ordering::SeqCst) <= 0 || done >= max_events {
                    break;
                }
                if done != last_progress.1 {
                    last_progress = (Instant::now(), done);
                } else if last_progress.0.elapsed() > self.stall_limit {
                    break; // an automaton is stuck inside a callback
                }
            }
            shutdown.store(true, Ordering::SeqCst);
            transport.close();

            let mut outputs: Vec<Option<Vec<u8>>> = vec![None; n];
            let mut metrics = Metrics::new(n);
            let mut latencies = Vec::new();
            for handle in handles {
                let part = handle.join().expect("worker panicked");
                for (node, out) in part.outputs {
                    outputs[node] = out;
                }
                metrics.absorb(&part.metrics);
                latencies.extend(part.latencies);
            }
            // Final sweep: envelopes the transport accepted that no worker
            // will ever pop (socket buffers emptied by `close`).
            let d = transport.take_dropped();
            if d > 0 {
                dropped.fetch_add(d, Ordering::SeqCst);
                processed.fetch_add(d, Ordering::SeqCst);
                pending.fetch_sub(d as i64, Ordering::SeqCst);
            }
            (outputs, metrics, latencies)
        });

        let elapsed = clock(origin);
        let trace = DeliveryTrace {
            n,
            start_at: start_at.into_inner().expect("start stamps poisoned"),
            events: trace.into_inner().expect("trace poisoned"),
            epochs: epochs.into_iter().take(injected).collect(),
        };
        RuntimeReport {
            report: RunReport {
                outputs,
                elapsed,
                events: processed.load(Ordering::SeqCst),
                reconfigurations: injected as u64,
                metrics,
            },
            trace,
            wall: origin.elapsed(),
            latency: HistSummary::from_samples(latencies),
            dropped: dropped.load(Ordering::SeqCst),
        }
    }
}

impl<M: Send + Clone + MessageSize + 'static, T: Transport<M>> Runtime<M>
    for ThreadedRuntime<M, T>
{
    fn backend(&self) -> &'static str {
        "threaded"
    }

    fn run(self) -> RunReport {
        self.run_traced().report
    }
}

/// One worker's slice of the population: `(node id, automaton)` pairs.
type Shard<M> = Vec<(NodeId, Box<dyn Protocol<Msg = M> + Send>)>;

/// Shared environment one worker operates in.
struct WorkerEnv<'a, M, T: Transport<M>> {
    shard: Shard<M>,
    n: usize,
    transport: &'a T,
    epochs: &'a [EpochEvent],
    pending: &'a AtomicI64,
    processed: &'a AtomicU64,
    dropped: &'a AtomicU64,
    shutdown: &'a AtomicBool,
    trace: &'a Mutex<Vec<TraceEvent>>,
    start_at: &'a Mutex<Vec<u64>>,
    controls: &'a [Mutex<VecDeque<usize>>],
    worker_count: usize,
    origin: Instant,
}

/// What one worker hands back at shutdown.
struct WorkerPart {
    outputs: Vec<(NodeId, Option<Vec<u8>>)>,
    metrics: Metrics,
    latencies: Vec<u64>,
}

/// Accounts one message envelope that will never reach a live callback:
/// the same bookkeeping as a delivery to a halted node — it counts as a
/// processed event and releases its pending credit, but runs no callback,
/// records no delivery and is never traced. The `dropped` tally is what
/// keeps `total_messages == delivered_messages + dropped` exact.
fn account_drop(pending: &AtomicI64, processed: &AtomicU64, dropped: &AtomicU64) {
    processed.fetch_add(1, Ordering::SeqCst);
    dropped.fetch_add(1, Ordering::SeqCst);
    pending.fetch_sub(1, Ordering::SeqCst);
}

/// Per-hosted-node bookkeeping the worker owns.
struct Hosted<M> {
    id: NodeId,
    node: Box<dyn Protocol<Msg = M> + Send>,
    next_send_ix: u64,
    next_timer_ix: u64,
    halted: bool,
    output: Option<Vec<u8>>,
}

fn worker_loop<M: Send + Clone + MessageSize, T: Transport<M>>(
    mut env: WorkerEnv<'_, M, T>,
) -> WorkerPart {
    let worker_ix = env.shard.first().map_or(0, |(id, _)| id % env.worker_count);
    let mut hosted: Vec<Hosted<M>> = std::mem::take(&mut env.shard)
        .into_iter()
        .map(|(id, node)| Hosted {
            id,
            node,
            next_send_ix: 0,
            next_timer_ix: 0,
            halted: false,
            output: None,
        })
        .collect();
    let mut metrics = Metrics::new(env.n);
    let mut latencies: Vec<u64> = Vec::new();
    // Backpressured envelopes, retried in order so this worker's sends
    // stay FIFO even across a full link.
    let mut pending_out: VecDeque<Envelope<M>> = VecDeque::new();
    // (due, slot-in-hosted, timer_ix, id), soonest first.
    let mut timers: BinaryHeap<Reverse<(u64, usize, u64, u64)>> = BinaryHeap::new();
    let now = |env: &WorkerEnv<'_, M, T>| env.origin.elapsed().as_micros() as u64;

    // Flush one callback's effects: record the trace entry *first* (so the
    // global order stays causally consistent — no receiver can process a
    // message before its send's parent event is on record), then hand the
    // sends to the transport with per-sender indices assigned in staging
    // order.
    #[allow(clippy::too_many_arguments)]
    fn flush<M: Send + Clone + MessageSize, T: Transport<M>>(
        env: &WorkerEnv<'_, M, T>,
        host: &mut Hosted<M>,
        ctx: Context<M>,
        entry: Option<TraceEvent>,
        metrics: &mut Metrics,
        pending_out: &mut VecDeque<Envelope<M>>,
        timers: &mut BinaryHeap<Reverse<(u64, usize, u64, u64)>>,
        slot: usize,
        at: u64,
    ) {
        if let Some(entry) = entry {
            env.trace.lock().expect("trace poisoned").push(entry);
        }
        let effects = ctx.into_effects();
        if let Some(out) = effects.output {
            if host.output.is_none() {
                host.output = Some(out);
            }
        }
        if effects.halted {
            host.halted = true;
        }
        for (to, msg) in effects.outbox {
            metrics.record_send(host.id, msg.size_bytes());
            let send_ix = host.next_send_ix;
            host.next_send_ix += 1;
            let envlp = Envelope { from: host.id, to, send_ix, sent_at: at, msg };
            env.pending.fetch_add(1, Ordering::SeqCst);
            if !pending_out.is_empty() {
                pending_out.push_back(envlp);
                continue;
            }
            match env.transport.try_send(envlp) {
                Ok(()) => {}
                Err(SendError::Full(e)) => pending_out.push_back(e),
                Err(SendError::Closed(_)) => {
                    account_drop(env.pending, env.processed, env.dropped);
                }
            }
        }
        for (delay, id) in effects.timers {
            let timer_ix = host.next_timer_ix;
            host.next_timer_ix += 1;
            env.pending.fetch_add(1, Ordering::SeqCst);
            timers.push(Reverse((at + delay.max(1), slot, timer_ix, id)));
        }
    }

    // Time zero: every hosted node starts before this worker consumes any
    // traffic; inbound envelopes simply queue in the transport meanwhile.
    for (slot, host) in hosted.iter_mut().enumerate() {
        let at = now(&env);
        env.start_at.lock().expect("start stamps poisoned")[host.id] = at;
        let mut ctx = Context::detached(host.id, env.n, at);
        host.node.on_start(&mut ctx);
        flush(&env, host, ctx, None, &mut metrics, &mut pending_out, &mut timers, slot, at);
        env.pending.fetch_sub(1, Ordering::SeqCst); // start credit
    }

    let mut idle_spins = 0u32;
    loop {
        let mut did_work = false;

        // 1. Epoch controls: apply to every hosted node, between callbacks.
        loop {
            let next = env.controls[worker_ix].lock().expect("control poisoned").pop_front();
            let Some(epoch_ix) = next else { break };
            did_work = true;
            for (slot, host) in hosted.iter_mut().enumerate() {
                let at = now(&env);
                if host.halted {
                    env.pending.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let id = host.id;
                let mut ctx = Context::detached(id, env.n, at);
                host.node.on_reconfigure(&env.epochs[epoch_ix], &mut ctx);
                flush(
                    &env,
                    host,
                    ctx,
                    Some(TraceEvent::Epoch { to: id, epoch_ix, at }),
                    &mut metrics,
                    &mut pending_out,
                    &mut timers,
                    slot,
                    at,
                );
                env.pending.fetch_sub(1, Ordering::SeqCst);
            }
        }

        // 2. Retry backpressured sends, strictly in order.
        while let Some(envlp) = pending_out.pop_front() {
            match env.transport.try_send(envlp) {
                Ok(()) => did_work = true,
                Err(SendError::Full(e)) => {
                    pending_out.push_front(e);
                    break;
                }
                Err(SendError::Closed(_)) => {
                    account_drop(env.pending, env.processed, env.dropped);
                }
            }
        }

        // 3. Fire due timers.
        while let Some(&Reverse((due, slot, timer_ix, id))) = timers.peek() {
            let at = now(&env);
            if due > at {
                break;
            }
            timers.pop();
            did_work = true;
            env.processed.fetch_add(1, Ordering::SeqCst);
            let host = &mut hosted[slot];
            if host.halted {
                env.pending.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let host_id = host.id;
            let mut ctx = Context::detached(host_id, env.n, at);
            host.node.on_timer(id, &mut ctx);
            flush(
                &env,
                &mut hosted[slot],
                ctx,
                Some(TraceEvent::Timer { to: host_id, timer_ix, id, at }),
                &mut metrics,
                &mut pending_out,
                &mut timers,
                slot,
                at,
            );
            env.pending.fetch_sub(1, Ordering::SeqCst);
        }

        // 4. Drain inbound traffic, a bounded batch per node per pass so
        // timers and controls stay serviced under load.
        for (slot, host) in hosted.iter_mut().enumerate() {
            for _ in 0..32 {
                let Some(envlp) = env.transport.try_recv(host.id) else { break };
                did_work = true;
                let at = now(&env);
                if host.halted {
                    // Parity with the simulator: deliveries to a halted
                    // node count as events but run no callback (and are
                    // not traced — the twin never sees them). They are
                    // drops for the message conservation law.
                    account_drop(env.pending, env.processed, env.dropped);
                    continue;
                }
                env.processed.fetch_add(1, Ordering::SeqCst);
                latencies.push(at.saturating_sub(envlp.sent_at));
                metrics.record_delivery(host.id, envlp.msg.size_bytes());
                let host_id = host.id;
                let mut ctx = Context::detached(host_id, env.n, at);
                host.node.on_message(envlp.from, envlp.msg, &mut ctx);
                flush(
                    &env,
                    host,
                    ctx,
                    Some(TraceEvent::Deliver {
                        to: host_id,
                        from: envlp.from,
                        send_ix: envlp.send_ix,
                        at,
                    }),
                    &mut metrics,
                    &mut pending_out,
                    &mut timers,
                    slot,
                    at,
                );
                env.pending.fetch_sub(1, Ordering::SeqCst);
            }
        }

        if env.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if did_work {
            idle_spins = 0;
        } else {
            idle_spins += 1;
            if idle_spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }

    // Shutdown drain: when the coordinator trips `max_events` (or a stall,
    // or a mid-run transport close), this worker's retry queue and its
    // nodes' inboxes may still hold envelopes whose pending credits were
    // taken at send time. Every one must be drop-accounted, or the run
    // leaks credits and reports a miscounted event total.
    for _ in pending_out.drain(..) {
        account_drop(env.pending, env.processed, env.dropped);
    }
    for host in &hosted {
        while env.transport.try_recv(host.id).is_some() {
            account_drop(env.pending, env.processed, env.dropped);
        }
    }

    WorkerPart {
        outputs: hosted.into_iter().map(|h| (h.id, h.output)).collect(),
        metrics,
        latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node broadcasts its id once; outputs the sum of ids received.
    struct Summer {
        sum: u64,
        heard: usize,
    }

    impl Protocol for Summer {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(ctx.me() as u64);
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Context<u64>) {
            self.sum += msg;
            self.heard += 1;
            if self.heard == ctx.n() {
                ctx.output(self.sum.to_le_bytes().to_vec());
            }
        }
    }

    fn summers(n: usize) -> SendNodes<u64> {
        (0..n).map(|_| Box::new(Summer { sum: 0, heard: 0 }) as _).collect()
    }

    fn summers_sim(n: usize) -> Vec<Box<dyn Protocol<Msg = u64>>> {
        (0..n).map(|_| Box::new(Summer { sum: 0, heard: 0 }) as _).collect()
    }

    #[test]
    fn threaded_run_delivers_everything() {
        for workers in [1, 2, 5] {
            let full = ThreadedRuntime::new(summers(5)).with_workers(workers).run_traced();
            let expect = (0u64..5).sum::<u64>().to_le_bytes().to_vec();
            for out in &full.report.outputs {
                assert_eq!(out.as_ref(), Some(&expect), "workers={workers}");
            }
            assert_eq!(full.report.metrics.total_messages(), 25);
            assert_eq!(full.report.metrics.total_bytes(), 25 * 8);
            assert_eq!(full.report.metrics.delivered_messages(), 25);
        }
    }

    #[test]
    fn trace_replays_bit_identically() {
        let full = ThreadedRuntime::new(summers(6)).with_workers(3).run_traced();
        assert!(!full.trace.is_empty());
        let twin = full.trace.replay(summers_sim(6)).expect("no divergence");
        assert_eq!(twin.outputs, full.report.outputs);
        assert_eq!(twin.metrics, full.report.metrics);
    }

    #[test]
    fn timers_fire_on_the_monotonic_clock() {
        struct TimerNode;
        impl Protocol for TimerNode {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.set_timer(10, 42);
            }
            fn on_message(&mut self, _f: NodeId, _m: u64, _c: &mut Context<u64>) {}
            fn on_timer(&mut self, id: u64, ctx: &mut Context<u64>) {
                ctx.output(id.to_le_bytes().to_vec());
            }
        }
        let nodes: SendNodes<u64> = vec![Box::new(TimerNode)];
        let full = ThreadedRuntime::new(nodes).run_traced();
        assert_eq!(full.report.outputs[0].as_deref(), Some(&42u64.to_le_bytes()[..]));
        let fresh: Vec<Box<dyn Protocol<Msg = u64>>> = vec![Box::new(TimerNode)];
        let twin = full.trace.replay(fresh).expect("no divergence");
        assert_eq!(twin.outputs, full.report.outputs);
    }

    #[test]
    fn event_cap_stops_runaway() {
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.broadcast(0);
            }
            fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Context<u64>) {
                ctx.send(from, msg + 1);
            }
        }
        let nodes: SendNodes<u64> = (0..3).map(|_| Box::new(Chatter) as _).collect();
        let report = ThreadedRuntime::new(nodes).with_max_events(500).run();
        assert!(report.events >= 500, "cap is a floor for the stop decision");
        assert!(report.outputs.iter().all(|o| o.is_none()));
    }

    #[test]
    fn reconfigurations_reach_every_node_and_replay() {
        use swiper_core::{TicketAssignment, TicketDelta, Weights};
        /// Counts reconfigurations; outputs the count on the next message.
        struct EpochAware {
            seen: u8,
        }
        impl Protocol for EpochAware {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.broadcast(0);
            }
            fn on_message(&mut self, _f: NodeId, _m: u64, ctx: &mut Context<u64>) {
                if self.seen > 0 {
                    ctx.output(vec![self.seen]);
                }
            }
            fn on_reconfigure(&mut self, _e: &EpochEvent, ctx: &mut Context<u64>) {
                self.seen += 1;
                ctx.broadcast(1);
            }
        }
        let delta = TicketDelta::between(
            &TicketAssignment::new(vec![1, 1, 1]),
            &TicketAssignment::new(vec![2, 1, 1]),
        )
        .unwrap();
        let stake = Weights::new(vec![1, 1, 1]).unwrap();
        let event = EpochEvent::new(1, delta, &stake, stake.clone(), 0).unwrap();
        let nodes: SendNodes<u64> =
            (0..3).map(|_| Box::new(EpochAware { seen: 0 }) as _).collect();
        let full = ThreadedRuntime::new(nodes)
            .with_workers(2)
            .with_reconfiguration(2, event)
            .run_traced();
        assert_eq!(full.report.reconfigurations, 1);
        for out in &full.report.outputs {
            assert_eq!(out.as_deref(), Some(&[1u8][..]));
        }
        let fresh: Vec<Box<dyn Protocol<Msg = u64>>> =
            (0..3).map(|_| Box::new(EpochAware { seen: 0 }) as _).collect();
        let twin = full.trace.replay(fresh).expect("no divergence");
        assert_eq!(twin.outputs, full.report.outputs);
        assert_eq!(twin.metrics, full.report.metrics);
        assert_eq!(twin.reconfigurations, 1);
    }

    #[test]
    fn tiny_links_backpressure_without_deadlock() {
        // Capacity-1 links under an all-to-all burst: progress must come
        // from the retry queues alone.
        let nodes = summers(6);
        let transport = ChannelTransport::with_capacity(6, 1);
        let full =
            ThreadedRuntime::new(nodes).with_transport(transport).with_workers(3).run_traced();
        let expect = (0u64..6).sum::<u64>().to_le_bytes().to_vec();
        for out in &full.report.outputs {
            assert_eq!(out.as_ref(), Some(&expect));
        }
        let twin = full.trace.replay(summers_sim(6)).expect("no divergence");
        assert_eq!(twin.outputs, full.report.outputs);
    }

    #[test]
    fn hist_summary_percentiles() {
        let s = HistSummary::from_samples((1..=100).collect());
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.samples, 100);
        // The historical alias keeps downstream code compiling.
        let also: LatencySummary = s;
        assert_eq!(also, s);
    }

    #[test]
    fn hist_summary_of_zero_samples_is_all_zero() {
        // A swept cell with zero commits must summarize, not panic.
        let empty = HistSummary::from_samples(Vec::new());
        assert_eq!(empty, HistSummary { p50_us: 0, p95_us: 0, p99_us: 0, samples: 0 });
        let single = HistSummary::from_samples(vec![7]);
        assert_eq!(single, HistSummary { p50_us: 7, p95_us: 7, p99_us: 7, samples: 1 });
    }

    #[test]
    fn zero_delivery_run_reports_zero_percentiles() {
        // End-to-end empty-histogram path: one silent node, no traffic.
        struct Silent;
        impl Protocol for Silent {
            type Msg = u64;
            fn on_start(&mut self, _ctx: &mut Context<u64>) {}
            fn on_message(&mut self, _f: NodeId, _m: u64, _c: &mut Context<u64>) {}
        }
        let nodes: SendNodes<u64> = vec![Box::new(Silent)];
        let full = ThreadedRuntime::new(nodes).run_traced();
        assert_eq!(full.latency.samples, 0);
        assert_eq!((full.latency.p50_us, full.latency.p99_us), (0, 0));
        assert_eq!(full.dropped, 0);
    }

    #[test]
    fn max_events_shutdown_drains_retry_queues_and_accounts_drops() {
        // Fan-out-2 chatter over capacity-1 links: traffic grows without
        // bound, so when the event cap trips, worker retry queues and
        // node inboxes still hold backpressured envelopes whose pending
        // credits were taken at send time. The shutdown drain must
        // account every one — with the drain reverted, `dropped`
        // undercounts and the conservation law below fails.
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.broadcast(0);
            }
            fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Context<u64>) {
                ctx.send(from, msg + 1);
                ctx.send(from, msg + 1);
            }
        }
        let nodes: SendNodes<u64> = (0..3).map(|_| Box::new(Chatter) as _).collect();
        let full = ThreadedRuntime::new(nodes)
            .with_transport(ChannelTransport::with_capacity(3, 1))
            .with_workers(3)
            .with_max_events(200)
            .run_traced();
        assert!(full.report.events >= 200, "cap is a floor for the stop decision");
        assert!(full.dropped > 0, "the cap must strand in-flight envelopes here");
        assert_eq!(
            full.report.metrics.total_messages(),
            full.report.metrics.delivered_messages() + full.dropped,
            "every sent envelope is either delivered or drop-accounted"
        );
    }

    #[test]
    fn mid_run_transport_close_converges_and_accounts_drops() {
        // Killing the transport while traffic is in flight must end the
        // run by drop accounting, not by the 10-second stall limit.
        struct PingPong;
        impl Protocol for PingPong {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.broadcast(0);
            }
            fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Context<u64>) {
                if msg < 100_000 {
                    ctx.send(from, msg + 1);
                }
            }
        }
        let nodes: SendNodes<u64> = (0..4).map(|_| Box::new(PingPong) as _).collect();
        let transport = std::sync::Arc::new(ChannelTransport::new(4));
        let killer = std::sync::Arc::clone(&transport);
        let saboteur = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            killer.close();
        });
        let full =
            ThreadedRuntime::new(nodes).with_transport(transport).with_workers(2).run_traced();
        saboteur.join().unwrap();
        assert!(full.wall < Duration::from_secs(5), "must not ride the stall limit");
        assert_eq!(
            full.report.metrics.total_messages(),
            full.report.metrics.delivered_messages() + full.dropped,
            "every sent envelope is either delivered or drop-accounted"
        );
    }
}
