//! The socket transport: the seam's first real deployment backend.
//!
//! [`SocketTransport`] implements the [`Transport`] contract of
//! `docs/ARCHITECTURE.md` over loopback TCP: every node owns a listener,
//! every destination is reached through one shared connection whose
//! user-space write buffer is bounded (backpressure returns
//! [`SendError::Full`] with the envelope intact), and a single IO pump
//! thread moves bytes — flushing write buffers into the kernel and
//! reading, framing and decoding inbound bytes into per-node receive
//! queues that [`Transport::try_recv`] polls. All worker-facing
//! operations are non-blocking, as the runtime requires.
//!
//! # Wire format
//!
//! One frame per [`Envelope`], length-prefixed:
//!
//! ```text
//! [len: u32le] [from: u32le] [to: u32le] [send_ix: u64le] [sent_at: u64le] [payload…]
//! ```
//!
//! `len` counts everything after itself (24 header bytes + payload). The
//! payload is encoded by a [`WireCodec`] — the only message-type-specific
//! piece. `send_ix` rides the wire because it is the coordinate the
//! determinism twin replays by.
//!
//! # FIFO per link
//!
//! All senders to one destination serialize through that destination's
//! connection mutex, each frame appended atomically, and TCP preserves
//! byte order — so messages between any ordered pair `(from, to)` arrive
//! in send order, the discipline the runtime's retry queues and the twin
//! replay both assume.
//!
//! # Close and drop accounting
//!
//! [`Transport::close`] fails subsequent sends and freezes delivery:
//! `try_recv` refuses under the same lock that guards the queue, so after
//! `close()` returns no further envelope can be handed out. Everything
//! accepted by `try_send` but never handed out — bytes in write buffers,
//! in kernel socket buffers, or queued undelivered — is *in-flight drop*,
//! reported exactly once through [`Transport::take_dropped`] as
//! `sent − delivered`. The runtime accounts those drops like
//! halted-node drops, which is what keeps counted quiescence converging
//! when a socket dies mid-run.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::codec::WireCodec;
use crate::sim::NodeId;
use crate::transport::{Envelope, SendError, Transport, DEFAULT_LINK_CAPACITY};

/// Bytes of envelope header on the wire after the length prefix.
const FRAME_HEADER: usize = 4 + 4 + 8 + 8;
/// Upper bound on a single frame body — a corrupt length prefix must not
/// ask the pump to buffer gigabytes.
const MAX_FRAME: usize = 64 << 20;

/// One outbound connection: the stream plus the bounded user-space write
/// buffer ahead of it. `frames` holds the not-yet-flushed byte length of
/// each queued frame; its length is the backpressure measure.
struct Conn {
    stream: TcpStream,
    buf: VecDeque<u8>,
    frames: VecDeque<usize>,
}

impl Conn {
    /// Writes as much buffered data as the socket accepts right now.
    /// Returns whether any bytes moved. A hard write error drops the
    /// buffered frames (they stay accounted as in-flight drops).
    fn flush_nonblocking(&mut self) -> bool {
        let mut progress = false;
        while !self.buf.is_empty() {
            let (head, _) = self.buf.as_slices();
            match self.stream.write(head) {
                Ok(0) => break,
                Ok(k) => {
                    self.buf.drain(..k);
                    self.consume_frames(k);
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Peer gone: everything still buffered is dropped
                    // in-flight; `sent - delivered` keeps the count.
                    self.buf.clear();
                    self.frames.clear();
                    break;
                }
            }
        }
        progress
    }

    /// Retires `k` flushed bytes from the per-frame bookkeeping.
    fn consume_frames(&mut self, mut k: usize) {
        while k > 0 {
            let front = self.frames.front_mut().expect("flushed bytes beyond frame ledger");
            if *front <= k {
                k -= *front;
                self.frames.pop_front();
            } else {
                *front -= k;
                k = 0;
            }
        }
    }
}

/// One node's inbound queue. `closed` lives under the same mutex so that
/// once [`Transport::close`] has visited every queue, no later `try_recv`
/// can hand out an envelope — the freeze that makes `sent − delivered`
/// an exact drop count.
struct RecvQueue<M> {
    q: VecDeque<Envelope<M>>,
    closed: bool,
}

struct SocketState<M, C> {
    codec: C,
    capacity: usize,
    conns: Vec<Mutex<Conn>>,
    queues: Vec<Mutex<RecvQueue<M>>>,
    closed: AtomicBool,
    /// Envelopes accepted by `try_send` (frame queued toward the wire).
    sent: AtomicU64,
    /// Envelopes handed out by `try_recv`.
    delivered: AtomicU64,
    /// Drops already surfaced through `take_dropped`.
    reported: AtomicU64,
    /// Frames the pump could not decode (codec bug or corruption); they
    /// stay accounted as drops.
    decode_errors: AtomicU64,
}

impl<M, C> SocketState<M, C> {
    /// Fails future sends, freezes delivery and releases buffered memory.
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        for queue in &self.queues {
            let mut q = queue.lock().expect("recv queue poisoned");
            q.closed = true;
            q.q.clear();
        }
        for conn in &self.conns {
            let mut c = conn.lock().expect("conn poisoned");
            c.buf.clear();
            c.frames.clear();
        }
    }
}

/// Joins the IO pump when the last transport handle drops, after closing
/// the shared state so the pump actually exits.
struct PumpGuard {
    stop: Box<dyn Fn() + Send + Sync>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for PumpGuard {
    fn drop(&mut self) {
        (self.stop)();
        if let Some(h) = self.handle.lock().expect("pump handle poisoned").take() {
            let _ = h.join();
        }
    }
}

/// A [`Transport`] over real loopback TCP connections (see the module
/// docs for wire format, FIFO and drop-accounting guarantees).
///
/// Handles are cheap clones over shared state — keep one outside the
/// runtime to inject faults ([`Transport::close`] mid-run) or to inspect
/// [`SocketTransport::decode_errors`] afterwards.
///
/// # Examples
///
/// ```
/// use swiper_net::{Envelope, SocketTransport, Transport, U64Codec};
///
/// let t: SocketTransport<u64, U64Codec> = SocketTransport::loopback(2).unwrap();
/// t.try_send(Envelope { from: 0, to: 1, send_ix: 0, sent_at: 7, msg: 42 }).unwrap();
/// let got = loop {
///     if let Some(env) = t.try_recv(1) {
///         break env;
///     }
///     std::thread::yield_now();
/// };
/// assert_eq!((got.from, got.send_ix, got.sent_at, got.msg), (0, 0, 7, 42));
/// ```
pub struct SocketTransport<M, C: WireCodec<M>> {
    state: Arc<SocketState<M, C>>,
    guard: Arc<PumpGuard>,
}

impl<M, C: WireCodec<M>> Clone for SocketTransport<M, C> {
    fn clone(&self) -> Self {
        SocketTransport { state: Arc::clone(&self.state), guard: Arc::clone(&self.guard) }
    }
}

impl<M: Send + 'static, C: WireCodec<M> + Default> SocketTransport<M, C> {
    /// A loopback transport over `n` nodes with the default link
    /// capacity and a default-constructed codec.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures (bind/connect on 127.0.0.1).
    pub fn loopback(n: usize) -> io::Result<Self> {
        Self::loopback_with_capacity(n, DEFAULT_LINK_CAPACITY)
    }

    /// A loopback transport with `capacity` envelopes of user-space write
    /// buffer per destination connection.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `n` exceeds `u32::MAX` (node ids
    /// are `u32` on the wire).
    pub fn loopback_with_capacity(n: usize, capacity: usize) -> io::Result<Self> {
        Self::with_codec(n, capacity, C::default())
    }
}

impl<M: Send + 'static, C: WireCodec<M>> SocketTransport<M, C> {
    /// A loopback transport with an explicit codec instance.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `n` exceeds `u32::MAX`.
    pub fn with_codec(n: usize, capacity: usize, codec: C) -> io::Result<Self> {
        assert!(capacity > 0, "link capacity must be positive");
        assert!(u32::try_from(n).is_ok(), "node ids must fit u32 on the wire");
        // One listener per node; connects complete against the kernel
        // backlog, so the pump can accept after the mesh is dialed.
        let mut listeners = Vec::with_capacity(n);
        let mut ports = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            ports.push(l.local_addr()?.port());
            l.set_nonblocking(true)?;
            listeners.push(l);
        }
        let mut conns = Vec::with_capacity(n);
        for &port in &ports {
            let stream = TcpStream::connect(("127.0.0.1", port))?;
            stream.set_nonblocking(true)?;
            stream.set_nodelay(true)?;
            conns.push(Mutex::new(Conn {
                stream,
                buf: VecDeque::new(),
                frames: VecDeque::new(),
            }));
        }
        let state = Arc::new(SocketState {
            codec,
            capacity,
            conns,
            queues: (0..n)
                .map(|_| Mutex::new(RecvQueue { q: VecDeque::new(), closed: false }))
                .collect(),
            closed: AtomicBool::new(false),
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            reported: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
        });
        let pump_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("swiper-socket-pump".into())
            .spawn(move || pump(&pump_state, listeners))
            .expect("spawn socket pump");
        let stop_state = Arc::clone(&state);
        let guard = Arc::new(PumpGuard {
            stop: Box::new(move || stop_state.close()),
            handle: Mutex::new(Some(handle)),
        });
        Ok(SocketTransport { state, guard })
    }

    /// Frames the pump failed to decode so far (0 on a healthy wire).
    pub fn decode_errors(&self) -> u64 {
        self.state.decode_errors.load(Ordering::SeqCst)
    }
}

impl<M: Send + 'static, C: WireCodec<M>> Transport<M> for SocketTransport<M, C> {
    fn n(&self) -> usize {
        self.state.queues.len()
    }

    fn try_send(&self, env: Envelope<M>) -> Result<(), SendError<M>> {
        if self.state.closed.load(Ordering::SeqCst) {
            return Err(SendError::Closed(env));
        }
        let mut conn = self.state.conns[env.to].lock().expect("conn poisoned");
        if conn.frames.len() >= self.state.capacity {
            return Err(SendError::Full(env));
        }
        let mut frame = Vec::with_capacity(4 + FRAME_HEADER);
        frame.extend_from_slice(&[0; 4]); // length prefix, patched below
        frame.extend_from_slice(&u32::try_from(env.from).expect("from fits u32").to_le_bytes());
        frame.extend_from_slice(&u32::try_from(env.to).expect("to fits u32").to_le_bytes());
        frame.extend_from_slice(&env.send_ix.to_le_bytes());
        frame.extend_from_slice(&env.sent_at.to_le_bytes());
        self.state.codec.encode(&env.msg, &mut frame);
        let body_len = u32::try_from(frame.len() - 4).expect("frame fits u32");
        frame[..4].copy_from_slice(&body_len.to_le_bytes());
        conn.frames.push_back(frame.len());
        conn.buf.extend(frame);
        self.state.sent.fetch_add(1, Ordering::SeqCst);
        // Opportunistic flush so the common uncongested case costs one
        // syscall here instead of a pump wakeup of latency.
        conn.flush_nonblocking();
        Ok(())
    }

    fn try_recv(&self, node: NodeId) -> Option<Envelope<M>> {
        let mut queue = self.state.queues[node].lock().expect("recv queue poisoned");
        if queue.closed {
            return None;
        }
        let env = queue.q.pop_front()?;
        // Inside the lock: `close()` visits this queue before freezing,
        // so `delivered` is final once close() has returned.
        self.state.delivered.fetch_add(1, Ordering::SeqCst);
        Some(env)
    }

    fn close(&self) {
        self.state.close();
    }

    fn take_dropped(&self) -> u64 {
        if !self.state.closed.load(Ordering::SeqCst) {
            return 0;
        }
        let delivered = self.state.delivered.load(Ordering::SeqCst);
        let sent = self.state.sent.load(Ordering::SeqCst);
        let total = sent.saturating_sub(delivered);
        let prev = self.state.reported.swap(total, Ordering::SeqCst);
        total.saturating_sub(prev)
    }
}

/// One accepted inbound stream plus its partial-frame accumulator.
/// `dest` is learned from the first decoded frame: connection `i` dials
/// node `i`'s listener, so each inbound stream carries exactly one
/// destination — which lets the pump pause reading per destination.
struct Inbound {
    stream: TcpStream,
    acc: Vec<u8>,
    dest: Option<usize>,
}

/// The IO pump: accepts inbound connections, flushes outbound write
/// buffers and decodes inbound frames into the receive queues. Exits when
/// the transport closes.
///
/// Backpressure propagates end to end: a stream whose destination queue
/// holds `capacity` envelopes is not read, so the kernel socket buffers
/// fill, the sender's user-space write buffer stops draining, and
/// `try_send` reports [`SendError::Full`] — the bounded-link discipline
/// of [`ChannelTransport`](crate::ChannelTransport), over a real wire.
fn pump<M: Send, C: WireCodec<M>>(state: &SocketState<M, C>, listeners: Vec<TcpListener>) {
    let n = state.queues.len();
    let mut inbound: Vec<Inbound> = Vec::with_capacity(n);
    let mut scratch = vec![0u8; 64 * 1024];
    while !state.closed.load(Ordering::SeqCst) {
        let mut progress = false;
        for listener in &listeners {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        inbound.push(Inbound { stream, acc: Vec::new(), dest: None });
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        for conn in &state.conns {
            progress |= conn.lock().expect("conn poisoned").flush_nonblocking();
        }
        for ib in &mut inbound {
            if let Some(dest) = ib.dest {
                let full = state.queues[dest].lock().expect("recv queue poisoned").q.len()
                    >= state.capacity;
                if full {
                    continue; // destination backpressured: leave bytes in the kernel
                }
            }
            loop {
                match ib.stream.read(&mut scratch) {
                    Ok(0) => break, // peer shut down; drain what we have
                    Ok(k) => {
                        ib.acc.extend_from_slice(&scratch[..k]);
                        progress = true;
                        break; // one scratch-read per pass keeps the pause responsive
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            deliver_frames(state, &mut ib.acc, &mut ib.dest);
        }
        if !progress {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

/// Extracts every complete frame from `acc`, decodes and enqueues it.
fn deliver_frames<M: Send, C: WireCodec<M>>(
    state: &SocketState<M, C>,
    acc: &mut Vec<u8>,
    dest: &mut Option<usize>,
) {
    let mut consumed = 0;
    loop {
        let rest = &acc[consumed..];
        if rest.len() < 4 {
            break;
        }
        let body_len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if !(FRAME_HEADER..=MAX_FRAME).contains(&body_len) {
            // Desynchronized stream: nothing downstream is trustworthy.
            state.decode_errors.fetch_add(1, Ordering::SeqCst);
            consumed = acc.len();
            break;
        }
        if rest.len() < 4 + body_len {
            break;
        }
        let body = &rest[4..4 + body_len];
        consumed += 4 + body_len;
        let from = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
        let to = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")) as usize;
        let send_ix = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
        let sent_at = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes"));
        if to >= state.queues.len() {
            state.decode_errors.fetch_add(1, Ordering::SeqCst);
            continue;
        }
        if dest.is_none() {
            *dest = Some(to);
        }
        match state.codec.decode(&body[FRAME_HEADER..]) {
            Ok(msg) => {
                let mut queue = state.queues[to].lock().expect("recv queue poisoned");
                if !queue.closed {
                    queue.q.push_back(Envelope { from, to, send_ix, sent_at, msg });
                }
                // A frame landing after close stays undelivered and is
                // therefore counted by `sent - delivered`.
            }
            Err(_) => {
                state.decode_errors.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    acc.drain(..consumed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::U64Codec;

    fn env(from: NodeId, to: NodeId, ix: u64, msg: u64) -> Envelope<u64> {
        Envelope { from, to, send_ix: ix, sent_at: ix * 10, msg }
    }

    fn recv_blocking(t: &SocketTransport<u64, U64Codec>, node: NodeId) -> Envelope<u64> {
        for _ in 0..200_000 {
            if let Some(e) = t.try_recv(node) {
                return e;
            }
            std::thread::yield_now();
        }
        panic!("socket delivery timed out");
    }

    #[test]
    fn frames_cross_the_wire_with_coordinates_intact() {
        let t: SocketTransport<u64, U64Codec> = SocketTransport::loopback(3).unwrap();
        t.try_send(env(2, 1, 9, 777)).unwrap();
        let got = recv_blocking(&t, 1);
        assert_eq!((got.from, got.to, got.send_ix, got.sent_at, got.msg), (2, 1, 9, 90, 777));
        assert_eq!(t.decode_errors(), 0);
    }

    #[test]
    fn fifo_per_link_across_the_wire() {
        let t: SocketTransport<u64, U64Codec> = SocketTransport::loopback(2).unwrap();
        for ix in 0..50 {
            t.try_send(env(0, 1, ix, 1000 + ix)).unwrap();
        }
        for ix in 0..50 {
            let got = recv_blocking(&t, 1);
            assert_eq!((got.send_ix, got.msg), (ix, 1000 + ix), "per-link FIFO broke");
        }
    }

    #[test]
    fn write_buffer_backpressure_hands_the_envelope_back() {
        let t: SocketTransport<u64, U64Codec> =
            SocketTransport::loopback_with_capacity(2, 1).unwrap();
        // Fill: the first frame may flush straight into the kernel, so
        // keep sending until the user-space buffer genuinely holds one.
        let mut ix = 0;
        let full = loop {
            match t.try_send(env(0, 1, ix, ix)) {
                Ok(()) => ix += 1,
                Err(SendError::Full(e)) => break e,
                Err(SendError::Closed(_)) => panic!("not closed"),
            }
            assert!(ix < 1_000_000, "kernel buffer never filled");
        };
        assert_eq!((full.send_ix, full.msg), (ix, ix), "envelope must come back intact");
        // Draining re-opens the link eventually.
        let first = recv_blocking(&t, 1);
        assert_eq!(first.send_ix, 0);
    }

    #[test]
    fn closed_transport_rejects_sends_and_freezes_delivery() {
        let t: SocketTransport<u64, U64Codec> = SocketTransport::loopback(2).unwrap();
        t.try_send(env(0, 1, 0, 5)).unwrap();
        let got = recv_blocking(&t, 1);
        assert_eq!(got.msg, 5);
        t.close();
        assert!(matches!(t.try_send(env(0, 1, 1, 6)), Err(SendError::Closed(_))));
        assert!(t.try_recv(1).is_none());
    }

    #[test]
    fn take_dropped_reports_in_flight_envelopes_exactly_once() {
        let t: SocketTransport<u64, U64Codec> = SocketTransport::loopback(2).unwrap();
        for ix in 0..20 {
            t.try_send(env(0, 1, ix, ix)).unwrap();
        }
        // Deliver a prefix, then kill the transport mid-flight.
        for _ in 0..5 {
            recv_blocking(&t, 1);
        }
        assert_eq!(t.take_dropped(), 0, "an open transport reports no drops");
        t.close();
        assert_eq!(t.take_dropped(), 15, "sent - delivered, exactly");
        assert_eq!(t.take_dropped(), 0, "each drop is reported once");
    }

    #[test]
    fn clones_share_one_wire() {
        let t: SocketTransport<u64, U64Codec> = SocketTransport::loopback(2).unwrap();
        let t2 = t.clone();
        t.try_send(env(0, 1, 0, 1)).unwrap();
        assert_eq!(recv_blocking(&t2, 1).msg, 1);
        t2.close();
        assert!(matches!(t.try_send(env(0, 1, 1, 2)), Err(SendError::Closed(_))));
    }
}
