//! The deployed-runtime seam: how protocol side effects become wire
//! traffic.
//!
//! [`Protocol`] automata describe *what* to send; this module owns the
//! vocabulary for *how* it travels:
//!
//! * [`Delivery`] — the staged send effect. `Context::broadcast` stages a
//!   single [`Delivery::Broadcast`] instead of `n` eager per-recipient
//!   clones, so a backend can expand it with last-send-moves (clone
//!   `n - 1` times, move the last) or, for a future gossip/stake-weighted
//!   fanout backend, never materialize the full fan-out at all.
//! * [`Envelope`] — one addressed message in flight, tagged with the
//!   sender's per-node send index (the coordinate the determinism twin
//!   replays by) and the monotonic send tick (latency accounting).
//! * [`Transport`] — the link layer: non-blocking, bounded, per-node
//!   inboxes. [`ChannelTransport`] is the in-process implementation;
//!   [`SocketTransport`](crate::SocketTransport) carries the same
//!   operations over real loopback TCP (see `docs/ARCHITECTURE.md` for
//!   the contract).
//! * [`Runtime`] — the execution seam: anything that can drive a set of
//!   automata to quiescence and report. The deterministic
//!   [`Simulation`](crate::Simulation) and the threaded
//!   [`ThreadedRuntime`](crate::ThreadedRuntime) are the two backends.
//!
//! Addressing stays [`NodeId`]-based on purpose: the seam abstracts the
//! *carriage* of messages, not the membership of the system.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::sim::{NodeId, Protocol, RunReport};

/// One staged send effect: either a point-to-point message or a
/// full-population broadcast.
///
/// Broadcasts are kept symbolic until a backend flushes them: the
/// deterministic simulator expands recipients in `0..n` order (preserving
/// the seeded delay stream of the eager-clone era byte for byte), the
/// threaded runtime expands with last-send-moves so a large payload is
/// cloned `n - 1` times instead of `n`, and a future partial-view gossip
/// backend can treat the effect as "disseminate" without ever seeing a
/// full recipient list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery<M> {
    /// Send `msg` to one node (possibly the sender itself).
    Unicast(NodeId, M),
    /// Send `msg` to every node, including the sender.
    Broadcast(M),
}

impl<M: Clone> Delivery<M> {
    /// Expands this effect into `(to, msg)` pairs over an `n`-node
    /// population, recipients in ascending order. The last broadcast
    /// recipient receives the moved payload (last-send-moves).
    pub fn expand_into(self, n: usize, out: &mut Vec<(NodeId, M)>) {
        match self {
            Delivery::Unicast(to, msg) => out.push((to, msg)),
            Delivery::Broadcast(msg) => {
                for to in 0..n.saturating_sub(1) {
                    out.push((to, msg.clone()));
                }
                if n > 0 {
                    out.push((n - 1, msg));
                }
            }
        }
    }
}

/// One message in flight between two nodes.
///
/// `send_ix` is the sender's per-node send counter, assigned in staging
/// order when the effect is flushed (a broadcast occupies `n` consecutive
/// indices, recipients ascending). The delivery trace identifies messages
/// by `(from, send_ix)` alone — automata are deterministic, so the twin
/// replay re-derives the payload instead of storing it.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Per-sender send sequence number.
    pub send_ix: u64,
    /// Monotonic tick at which the message was handed to the transport.
    pub sent_at: u64,
    /// The payload.
    pub msg: M,
}

/// Why a non-blocking send did not complete.
#[derive(Debug)]
pub enum SendError<M> {
    /// The destination inbox is at capacity; the envelope is handed back
    /// so the caller can retry without blocking (bounded-link
    /// backpressure).
    Full(Envelope<M>),
    /// The transport has been closed (shutdown); the envelope is handed
    /// back and will never be deliverable.
    Closed(Envelope<M>),
}

/// The link layer under a runtime: bounded, non-blocking, per-node
/// inboxes addressed by [`NodeId`].
///
/// Implementations must be safe to share across worker threads. All three
/// operations are non-blocking by contract — a runtime worker never parks
/// inside the transport, which is what makes the bounded links
/// deadlock-free (backpressured envelopes are retried by the sender, not
/// waited on). [`SocketTransport`](crate::SocketTransport) implements
/// exactly this surface over loopback TCP: `try_send` serializes onto a
/// connection, `try_recv` polls the demultiplexed per-node receive queue
/// (see `docs/ARCHITECTURE.md`).
pub trait Transport<M>: Send + Sync {
    /// Number of addressable nodes.
    fn n(&self) -> usize;

    /// Hands one envelope toward `env.to` without blocking.
    ///
    /// # Errors
    ///
    /// [`SendError::Full`] returns the envelope on backpressure;
    /// [`SendError::Closed`] after [`Transport::close`].
    fn try_send(&self, env: Envelope<M>) -> Result<(), SendError<M>>;

    /// Takes the next pending envelope for `node`, if any.
    fn try_recv(&self, node: NodeId) -> Option<Envelope<M>>;

    /// Shuts the transport down; subsequent sends fail with
    /// [`SendError::Closed`].
    fn close(&self);

    /// Takes the count of envelopes this transport accepted but dropped
    /// undelivered since the last call (in-flight at [`Transport::close`],
    /// lost on a dead connection). Each drop is reported exactly once; the
    /// runtime accounts them like halted-node drops, which is what keeps
    /// counted quiescence converging when a transport dies mid-run.
    ///
    /// The default is `0`: [`ChannelTransport`] never drops on its own —
    /// its leftovers stay poppable after `close()` and are drained (and
    /// counted) by the workers at shutdown.
    fn take_dropped(&self) -> u64 {
        0
    }
}

/// A shared transport handle is a transport: lets a test or harness keep
/// one `Arc` aside (to `close()` mid-run, injecting a fault) while the
/// runtime owns another.
impl<M, T: Transport<M> + ?Sized> Transport<M> for std::sync::Arc<T> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn try_send(&self, env: Envelope<M>) -> Result<(), SendError<M>> {
        (**self).try_send(env)
    }

    fn try_recv(&self, node: NodeId) -> Option<Envelope<M>> {
        (**self).try_recv(node)
    }

    fn close(&self) {
        (**self).close()
    }

    fn take_dropped(&self) -> u64 {
        (**self).take_dropped()
    }
}

/// In-process transport: one bounded MPSC inbox per node.
///
/// Each inbox is a mutex-guarded ring of at most `capacity` envelopes —
/// many senders, one consumer (the worker hosting the node). Locks are
/// held only for a push or pop, and the consumer side is effectively
/// uncontended, so the mutex is as cheap as a channel here while keeping
/// the transport object-shareable (`&self` everywhere).
pub struct ChannelTransport<M> {
    inboxes: Vec<Mutex<VecDeque<Envelope<M>>>>,
    capacity: usize,
    closed: AtomicBool,
}

/// Default per-node inbox capacity: deep enough that honest full-mesh
/// traffic rarely backpressures at benchmark scales, small enough that a
/// runaway sender is throttled instead of ballooning memory.
pub const DEFAULT_LINK_CAPACITY: usize = 1024;

impl<M> ChannelTransport<M> {
    /// A transport over `n` nodes with the default link capacity.
    pub fn new(n: usize) -> Self {
        Self::with_capacity(n, DEFAULT_LINK_CAPACITY)
    }

    /// A transport over `n` nodes with `capacity` envelopes per inbox.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity link can never
    /// deliver).
    pub fn with_capacity(n: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "link capacity must be positive");
        ChannelTransport {
            inboxes: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            capacity,
            closed: AtomicBool::new(false),
        }
    }
}

impl<M: Send> Transport<M> for ChannelTransport<M> {
    fn n(&self) -> usize {
        self.inboxes.len()
    }

    fn try_send(&self, env: Envelope<M>) -> Result<(), SendError<M>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(SendError::Closed(env));
        }
        let mut inbox = self.inboxes[env.to].lock().expect("inbox poisoned");
        if inbox.len() >= self.capacity {
            return Err(SendError::Full(env));
        }
        inbox.push_back(env);
        Ok(())
    }

    fn try_recv(&self, node: NodeId) -> Option<Envelope<M>> {
        self.inboxes[node].lock().expect("inbox poisoned").pop_front()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

/// The execution seam: a backend that drives [`Protocol`] automata to
/// quiescence.
///
/// Two implementations ship: the deterministic
/// [`Simulation`](crate::Simulation) (and its epoch-schedule wrapper
/// [`EpochedSimulation`](crate::EpochedSimulation)) and the threaded
/// [`ThreadedRuntime`](crate::ThreadedRuntime). Tests and harnesses that
/// are generic over the backend take `R: Runtime<M>` and call
/// [`Runtime::run`]; the determinism-twin contract (every runtime run is
/// replayable on the simulator substrate, bit-identically) is what keeps
/// the two backends honest with each other.
pub trait Runtime<M> {
    /// Short backend name for reports and benchmark rows (`"sim"`,
    /// `"threaded"`).
    fn backend(&self) -> &'static str;

    /// Consumes the backend, runs to quiescence (or its event cap) and
    /// reports.
    fn run(self) -> RunReport
    where
        Self: Sized;
}

/// Boxed automata that may cross threads: what the threaded runtime
/// hosts. The [`Protocol`] trait itself stays `Send`-free so simulator
/// tests can keep `Rc`-instrumented probe nodes.
pub type SendNodes<M> = Vec<Box<dyn Protocol<Msg = M> + Send>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: NodeId, to: NodeId, ix: u64, msg: u64) -> Envelope<u64> {
        Envelope { from, to, send_ix: ix, sent_at: 0, msg }
    }

    #[test]
    fn delivery_expansion_orders_recipients_and_moves_last() {
        let mut out = Vec::new();
        Delivery::Broadcast(7u64).expand_into(3, &mut out);
        Delivery::Unicast(1, 9u64).expand_into(3, &mut out);
        assert_eq!(out, vec![(0, 7), (1, 7), (2, 7), (1, 9)]);
    }

    #[test]
    fn channel_transport_is_fifo_per_link() {
        let t = ChannelTransport::new(2);
        t.try_send(env(0, 1, 0, 10)).unwrap();
        t.try_send(env(0, 1, 1, 11)).unwrap();
        assert_eq!(t.try_recv(1).map(|e| e.msg), Some(10));
        assert_eq!(t.try_recv(1).map(|e| e.msg), Some(11));
        assert!(t.try_recv(1).is_none());
        assert!(t.try_recv(0).is_none());
    }

    #[test]
    fn bounded_links_backpressure_and_hand_the_envelope_back() {
        let t = ChannelTransport::with_capacity(1, 2);
        t.try_send(env(0, 0, 0, 1)).unwrap();
        t.try_send(env(0, 0, 1, 2)).unwrap();
        match t.try_send(env(0, 0, 2, 3)) {
            Err(SendError::Full(e)) => assert_eq!((e.send_ix, e.msg), (2, 3)),
            other => panic!("expected backpressure, got {other:?}"),
        }
        // Draining one slot unblocks the link.
        assert_eq!(t.try_recv(0).map(|e| e.msg), Some(1));
        t.try_send(env(0, 0, 2, 3)).unwrap();
    }

    #[test]
    fn closed_transport_rejects_sends() {
        let t = ChannelTransport::new(1);
        t.close();
        assert!(matches!(t.try_send(env(0, 0, 0, 1)), Err(SendError::Closed(_))));
    }
}
